"""The §2 expression subject: acceptance, values, and the Figure 1 trace."""

import pytest

from repro.runtime.harness import run_subject
from repro.runtime.stream import InputStream
from repro.runtime.errors import ParseError
from repro.subjects.expr import ExprSubject


@pytest.fixture
def subject():
    return ExprSubject()


@pytest.mark.parametrize(
    "text,value",
    [
        ("1", 1),
        ("11", 11),
        ("+1", 1),
        ("-1", -1),
        ("1+1", 2),
        ("1-1", 0),
        ("(1)", 1),
        ("(2-94)", -92),
        ("((3))", 3),
        ("1+2+3", 6),
        ("-(2)", -2),
        ("10-+3", 7),
    ],
)
def test_accepts_paper_examples(subject, text, value):
    assert subject.parse(InputStream(text)) == value


@pytest.mark.parametrize(
    "text",
    ["", "A", "(", "(2", "1+", "()", "1)", "(2-94", "+-", "1 + 1", "--"],
)
def test_rejects(subject, text):
    with pytest.raises(ParseError):
        subject.parse(InputStream(text))


def test_figure1_comparisons_on_first_char(subject):
    """On 'A' the parser checks digit, '(', '+' and '-' before rejecting."""
    result = run_subject(subject, "A")
    candidates = set()
    for event in result.recorder.comparisons_at(0):
        candidates.update(event.replacement_candidates())
    assert "(" in candidates
    assert "+" in candidates
    assert "-" in candidates
    assert {"0", "9"} <= candidates  # digits via isdigit class


def test_figure1_prefix_extension(subject):
    """After '(2' the parser wants ')', an operator or more digits at EOF."""
    result = run_subject(subject, "(2")
    assert not result.valid
    eof_index = 2
    candidates = set()
    for event in result.recorder.comparisons_at(eof_index):
        candidates.update(event.replacement_candidates())
    assert ")" in candidates
    assert "+" in candidates and "-" in candidates


def test_nesting_guard(subject):
    deep = "(" * 500
    with pytest.raises(ParseError):
        subject.parse(InputStream(deep))


def test_accepts_helper(subject):
    assert subject.accepts("42")
    assert not subject.accepts("4 2")


def test_files_point_to_module(subject):
    (filename,) = subject.files
    assert filename.endswith("expr.py")
