"""tiny-c bytecode compiler and VM internals."""

import pytest

from repro.runtime.errors import HangError
from repro.runtime.stream import InputStream
from repro.subjects.tinyc import (
    HALT,
    IADD,
    IFETCH,
    ILT,
    IPUSH,
    ISTORE,
    ISUB,
    JMP,
    JNZ,
    JZ,
    TinyCCompiler,
    TinyCLexer,
    TinyCParser,
    TinyCVM,
)


def compile_program(text):
    lexer = TinyCLexer(InputStream(text))
    ast = TinyCParser(lexer).program()
    return TinyCCompiler().compile(ast)


def run_code(code, max_steps=10_000):
    vm = TinyCVM(max_steps)
    vm.run(code)
    return vm.globals


def test_constant_assignment_bytecode():
    code = compile_program("a=7;")
    assert code[:4] == [IPUSH, 7, ISTORE, "a"]
    assert code[-1] == HALT


def test_fetch_and_add_bytecode():
    code = compile_program("a=b+1;")
    assert IFETCH in code and IADD in code


def test_if_compiles_to_jz():
    code = compile_program("if (a<b) c=1;")
    assert JZ in code and ILT in code


def test_if_else_compiles_to_jz_and_jmp():
    code = compile_program("if (a) b=1; else b=2;")
    assert JZ in code and JMP in code


def test_do_while_compiles_to_jnz():
    code = compile_program("do a=a-1; while (0<a);")
    assert JNZ in code and ISUB in code


def test_jump_targets_in_range():
    code = compile_program("{ i=0; while (i<3) { i=i+1; if (i<2) ; else ; } }")
    for position, op in enumerate(code):
        if op in (JZ, JNZ, JMP):
            target = code[position + 1]
            assert isinstance(target, int)
            assert 0 <= target <= len(code)


def test_vm_executes_compiled_if_else():
    globals_ = run_code(compile_program("if (0<1) a=10; else a=20;"))
    assert globals_["a"] == 10


def test_vm_globals_start_at_zero():
    vm = TinyCVM()
    assert vm.globals["a"] == 0
    assert vm.globals["z"] == 0
    assert len(vm.globals) == 26


def test_vm_step_budget():
    code = compile_program("while (0<1) a=a+1;")
    with pytest.raises(HangError):
        run_code(code, max_steps=100)


def test_nested_assignment_value_propagates():
    globals_ = run_code(compile_program("a=b=c=5;"))
    assert globals_["a"] == globals_["b"] == globals_["c"] == 5


def test_comparison_produces_zero_or_one():
    globals_ = run_code(compile_program("{a=3<4; b=4<3;}"))
    assert (globals_["a"], globals_["b"]) == (1, 0)


def test_fibonacci_program():
    source = "{ a=0; b=1; i=0; while (i<10) { c=a+b; a=b; b=c; i=i+1; } }"
    globals_ = run_code(compile_program(source))
    assert globals_["a"] == 55
