"""mjs lexer: tokens, punctuator maximal munch, ASI newline flags."""

import pytest

from repro.runtime.errors import ParseError
from repro.runtime.harness import run_subject
from repro.runtime.stream import InputStream
from repro.subjects.mjs.lexer import MjsLexer
from repro.subjects.mjs.tokens import KEYWORDS, TokKind
from repro.taint.events import ComparisonKind


def lex(text):
    lexer = MjsLexer(InputStream(text))
    tokens = []
    while True:
        token = lexer.next_token()
        if token.kind is TokKind.EOF:
            return tokens
        tokens.append(token)


def texts(text):
    return [token.text for token in lex(text)]


def test_single_punctuators():
    assert texts("( ) { } [ ] ; , .") == ["(", ")", "{", "}", "[", "]", ";", ",", "."]


def test_maximal_munch():
    assert texts(">>>=") == [">>>="]
    assert texts(">>>") == [">>>"]
    assert texts(">>") == [">>"]
    assert texts(">=") == [">="]
    assert texts("===") == ["==="]
    assert texts("==") == ["=="]
    assert texts("=>") == ["=>"]
    assert texts("&&=") == ["&&="]
    assert texts("!==!=!") == ["!==", "!=", "!"]


def test_adjacent_operators_split_correctly():
    assert texts("a+++b") == ["a", "++", "+", "b"]
    assert texts("x>>>=y") == ["x", ">>>=", "y"]


def test_numbers():
    tokens = lex("1 2.5 0x1F 1e3 1.5e-2")
    values = [token.number for token in tokens]
    assert values == [1.0, 2.5, 31.0, 1000.0, 0.015]


def test_bad_exponent_rejected():
    with pytest.raises(ParseError):
        lex("1e")


def test_bad_hex_rejected():
    with pytest.raises(ParseError):
        lex("0x")


def test_strings_both_quotes():
    tokens = lex("'abc' \"def\"")
    assert [token.string for token in tokens] == ["abc", "def"]


def test_string_escapes():
    (token,) = lex(r"'a\n\t\x41B\\'")
    assert token.string == "a\n\tAB\\"


def test_unterminated_string_rejected():
    with pytest.raises(ParseError):
        lex("'abc")


def test_newline_in_string_rejected():
    with pytest.raises(ParseError):
        lex("'ab\ncd'")


def test_identifiers_and_keywords():
    tokens = lex("foo while $bar _x Nan")
    kinds = [token.kind for token in tokens]
    assert kinds == [
        TokKind.IDENT,
        TokKind.KEYWORD,
        TokKind.IDENT,
        TokKind.IDENT,
        TokKind.IDENT,  # "Nan" is not the "NaN" keyword
    ]


def test_every_keyword_recognised():
    for keyword in KEYWORDS:
        (token,) = lex(keyword)
        assert token.kind is TokKind.KEYWORD, keyword
        assert token.text == keyword


def test_identifier_keeps_taints():
    (token,) = lex("abc")
    assert token.name is not None
    assert token.name.taints == (0, 1, 2)


def test_comments_skipped():
    assert texts("a // line comment\n b /* block */ c") == ["a", "b", "c"]


def test_unterminated_block_comment_rejected():
    with pytest.raises(ParseError):
        lex("/* never closed")


def test_nl_before_flag():
    tokens = lex("a\nb c")
    assert [token.nl_before for token in tokens] == [False, True, False]


def test_newline_inside_comment_counts():
    tokens = lex("a /* x\ny */ b")
    assert tokens[1].nl_before


def test_unexpected_character_rejected():
    with pytest.raises(ParseError):
        lex("#")


def test_keyword_scan_recorded_as_strcmp(mjs_subject):
    result = run_subject(mjs_subject, "wh")
    expected = {
        event.other_value
        for event in result.recorder.comparisons
        if event.kind is ComparisonKind.STRCMP
    }
    assert "while" in expected
    assert "with" in expected
