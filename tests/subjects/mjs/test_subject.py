"""mjs Subject wrapper: validity semantics and coverage files."""

import pytest

from repro.runtime.harness import ExitStatus, run_subject
from repro.subjects.mjs import MjsSubject


@pytest.fixture
def subject():
    return MjsSubject()


def test_valid_means_parsed(subject):
    assert subject.accepts("var x = 1;")
    assert subject.accepts("")
    assert not subject.accepts("var = 1;")


def test_runtime_errors_do_not_reject(subject):
    # Uncaught throw, bad calls, NaN arithmetic: all still exit 0.
    assert subject.accepts("throw 'x'")
    assert subject.accepts("(1)(2)")
    assert subject.accepts("undefinedName.member.chain")


def test_hang_reported(subject):
    fast = MjsSubject(max_steps=500)
    result = run_subject(fast, "for (;;) ;")
    assert result.status is ExitStatus.HANG


def test_output_is_print_lines(subject):
    result = run_subject(subject, "print('a'); print(1, 2)")
    assert result.value == ["a", "1 2"]


def test_files_cover_all_mjs_modules(subject):
    names = {filename.rsplit("/", 1)[-1] for filename in subject.files}
    assert {"lexer.py", "parser.py", "interp.py", "builtins.py", "values.py"} <= names


def test_deeply_nested_functions_behave_like_hang_not_crash(subject):
    # A parse that is fine but whose execution out-recurses Python must not
    # crash the harness.
    source = "function f(n) { return f(n) } f(0)"
    result = run_subject(subject, source)
    assert result.status in (ExitStatus.VALID, ExitStatus.HANG)
