"""mjs value model: coercions, scopes, and equality in isolation."""

import math

import pytest

from repro.subjects.mjs.values import (
    UNDEFINED,
    JSArray,
    JSFunction,
    JSObject,
    NativeNamespace,
    ObjectScope,
    Scope,
    format_number,
    loose_equals,
    strict_equals,
    to_int32,
    to_number,
    to_string,
    to_uint32,
    truthy,
    type_of,
)
from repro.taint.tstr import TaintedStr


def test_undefined_is_singleton():
    from repro.subjects.mjs.values import _Undefined

    assert _Undefined() is UNDEFINED
    assert not UNDEFINED


@pytest.mark.parametrize(
    "value,expected",
    [
        (UNDEFINED, False),
        (None, False),
        (0.0, False),
        (math.nan, False),
        ("", False),
        (False, False),
        (1.0, True),
        ("x", True),
        (True, True),
    ],
)
def test_truthy(value, expected):
    assert truthy(value) is expected


def test_truthy_objects_always():
    assert truthy(JSObject())
    assert truthy(JSArray())


@pytest.mark.parametrize(
    "value,expected",
    [
        (True, 1.0),
        (False, 0.0),
        (None, 0.0),
        ("", 0.0),
        (" 42 ", 42.0),
        ("0x10", 16.0),
        ("1e2", 100.0),
    ],
)
def test_to_number(value, expected):
    assert to_number(value) == expected


def test_to_number_nan_cases():
    assert math.isnan(to_number(UNDEFINED))
    assert math.isnan(to_number("xyz"))
    assert math.isnan(to_number(JSObject()))


@pytest.mark.parametrize(
    "number,expected",
    [(0.0, "0"), (-0.0, "0"), (2.5, "2.5"), (1e21, "1e+21"), (math.inf, "Infinity"),
     (-math.inf, "-Infinity"), (math.nan, "NaN"), (42.0, "42")],
)
def test_format_number(number, expected):
    assert format_number(number) == expected


def test_to_string_structures():
    assert to_string(JSArray([1.0, None, UNDEFINED, "x"])) == "1,,,x"
    assert to_string(JSObject({"a": 1})) == "[object Object]"
    assert "function" in to_string(JSFunction("f", [], [], Scope()))


def test_type_of_table():
    assert type_of(None) == "object"
    assert type_of(JSArray()) == "object"
    assert type_of(NativeNamespace("x", {})) == "object"


def test_strict_equals_discriminates_bool_and_number():
    assert not strict_equals(True, 1.0)
    assert strict_equals(1.0, 1.0)
    assert not strict_equals(math.nan, math.nan)
    obj = JSObject()
    assert strict_equals(obj, obj)
    assert not strict_equals(JSObject(), JSObject())


def test_loose_equals_coercion_chains():
    assert loose_equals(None, UNDEFINED)
    assert loose_equals("1", 1.0)
    assert loose_equals(True, "1")
    assert loose_equals(JSArray([1.0]), 1.0)
    assert not loose_equals(None, 0.0)


def test_int32_uint32_edges():
    assert to_int32(2.0**31) == -(2**31)
    assert to_uint32(-1.0) == 2**32 - 1
    assert to_int32(math.nan) == 0
    assert to_uint32(math.inf) == 0


def test_scope_shadowing():
    outer = Scope()
    outer.declare("x", 1)
    inner = Scope(outer)
    inner.declare("x", 2)
    assert inner.get("x") == 2
    assert outer.get("x") == 1


def test_scope_set_walks_to_declaration():
    outer = Scope()
    outer.declare("x", 1)
    inner = Scope(outer)
    inner.set("x", 9)
    assert outer.get("x") == 9


def test_scope_set_undeclared_creates_global():
    root = Scope()
    leaf = Scope(Scope(root))
    leaf.set("g", 7)
    assert root.get("g") == 7


def test_object_scope_in_chain():
    root = Scope()
    root.declare("x", "outer")
    with_scope = ObjectScope(JSObject({"x": "inner"}), root)
    leaf = Scope(with_scope)
    assert leaf.get("x") == "inner"
    leaf.set("x", "updated")
    assert with_scope.obj.props["x"] == "updated"
    assert root.get("x") == "outer"


def test_native_namespace_lookup_records(monkeypatch):
    from repro.taint.recorder import Recorder, recording

    namespace = NativeNamespace("g", {"print": 1, "load": 2})
    recorder = Recorder()
    with recording(recorder):
        value = namespace.lookup(TaintedStr("load", (0, 1, 2, 3)))
    assert value == 2
    assert {event.other_value for event in recorder.comparisons} == {"print", "load"}
