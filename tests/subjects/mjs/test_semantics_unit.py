"""Semantic checker unit behaviour (§7.3 machinery)."""

import pytest

from repro.runtime.errors import SemanticError
from repro.runtime.stream import InputStream
from repro.subjects.mjs.parser import parse_mjs
from repro.subjects.mjs.semantics import SemanticChecker


def check(text):
    SemanticChecker().check(parse_mjs(InputStream(text)))


def rejects(text):
    with pytest.raises(SemanticError):
        check(text)


def test_var_hoisting_allows_use_before_decl():
    check("x = y; var y = 1;")  # y is hoisted


def test_function_hoisting():
    check("f(); function f() {}")


def test_mutual_recursion():
    check("function a() { return b() } function b() { return a() }")


def test_params_and_catch_params_visible():
    check("function f(p) { return p + 1 }")
    check("try {} catch (err) { err }")


def test_catch_param_scoped_to_catch():
    rejects("try {} catch (err) {} err")


def test_function_expression_name_self_visible_only_inside():
    check("var f = function g() { return g };")
    rejects("var f = function g() {}; g")


def test_builtins_allowed():
    check("print(JSON); Object(); isNaN(1); load('x')")


def test_assignment_declares_but_compound_does_not():
    check("q = 1; q += 1")
    rejects("q2 += 1")


def test_nested_scopes_see_outer_declarations():
    check("var x = 1; function f() { return function() { return x } }")


def test_switch_and_loops_checked():
    rejects("switch (missing) {}")
    rejects("while (missing) ;")
    rejects("for (var i = 0; i < missing2; i++) ;")


def test_object_members_checked():
    rejects("var o = {a: missing}")
    check("var v = 1; var o = {a: v}")


def test_typeof_guard_exemption():
    check("if (typeof maybeGlobal) ;")
    rejects("if (typeof (maybeGlobal + 1)) ;")


def test_hoisting_inside_nested_blocks():
    check("x = 1; { if (x) { var deep = 2 } } deep")
