"""Exhaustive lexer matrices: every punctuator and keyword round trips."""

import pytest

from repro.runtime.stream import InputStream
from repro.subjects.mjs.lexer import MjsLexer
from repro.subjects.mjs.tokens import KEYWORDS, MULTI_PUNCT, SINGLE_PUNCT, TokKind


def lex_one(text):
    lexer = MjsLexer(InputStream(text))
    token = lexer.next_token()
    assert lexer.next_token().kind is TokKind.EOF, text
    return token


@pytest.mark.parametrize("punct", sorted(MULTI_PUNCT))
def test_every_multichar_punctuator(punct):
    token = lex_one(punct)
    assert token.kind is TokKind.PUNCT
    assert token.text == punct


@pytest.mark.parametrize("punct", sorted(SINGLE_PUNCT.replace("/", "")))
def test_every_single_punctuator(punct):
    token = lex_one(punct)
    assert token.kind is TokKind.PUNCT
    assert token.text == punct


def test_division_punctuator():
    # '/' needs surrounding context so it is not taken as a comment start.
    lexer = MjsLexer(InputStream("a/b"))
    lexer.next_token()
    token = lexer.next_token()
    assert token.is_punct("/")


@pytest.mark.parametrize("keyword", KEYWORDS)
def test_every_keyword(keyword):
    token = lex_one(keyword)
    assert token.kind is TokKind.KEYWORD
    assert token.text == keyword


@pytest.mark.parametrize("keyword", KEYWORDS)
def test_keyword_prefix_is_identifier(keyword):
    prefix = keyword[:-1]
    if not prefix or prefix in KEYWORDS:
        pytest.skip("prefix empty or itself a keyword")
    token = lex_one(prefix)
    assert token.kind is TokKind.IDENT, prefix


@pytest.mark.parametrize("keyword", KEYWORDS)
def test_keyword_extension_is_identifier(keyword):
    token = lex_one(keyword + "x")
    assert token.kind is TokKind.IDENT


def test_punctuators_index_positions():
    lexer = MjsLexer(InputStream("  >>>="))
    token = lexer.next_token()
    assert token.index == 2
    assert token.text == ">>>="
