"""mjs parser: ASI corners and grammar interactions."""

import pytest

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.subjects.mjs import ast
from repro.subjects.mjs.parser import parse_mjs


def parse(text):
    return parse_mjs(InputStream(text))


def test_asi_does_not_split_expressions():
    # A newline inside a parenthesised expression is plain whitespace.
    program = parse("(1 +\n 2)")
    assert len(program.body) == 1


def test_asi_after_block_statement():
    program = parse("{ } 1")
    assert len(program.body) == 2


def test_semicolonless_function_declaration():
    program = parse("function f() {} f()")
    assert isinstance(program.body[0], ast.FunctionDecl)
    assert isinstance(program.body[1], ast.ExpressionStmt)


def test_break_with_newline_still_one_statement():
    program = parse("while (0) { break\n }")
    body = program.body[0].body.body
    assert isinstance(body[0], ast.BreakStmt)


def test_else_binds_to_nearest_if():
    statement = parse("if (a) if (b) ; else ;").body[0]
    assert statement.alternate is None
    assert statement.consequent.alternate is not None


def test_do_while_condition_parenthesised():
    with pytest.raises(ParseError):
        parse("do ; while 1;")


def test_trailing_comma_in_array_and_object():
    array = parse("[1, 2,]").body[0].expr
    assert len(array.items) == 2
    obj = parse("({a: 1,})").body[0].expr
    assert len(obj.members) == 1


def test_empty_array_and_object():
    assert parse("[]").body[0].expr.items == []
    assert parse("({})").body[0].expr.members == []


def test_keyword_cannot_be_identifier():
    with pytest.raises(ParseError):
        parse("var while = 1;")
    with pytest.raises(ParseError):
        parse("function if() {}")


def test_chained_member_after_call_result():
    expr = parse("f()()[0].x").body[0].expr
    assert isinstance(expr, ast.MemberExpr)


def test_new_member_expression_callee():
    expr = parse("new a.b()").body[0].expr
    assert isinstance(expr, ast.NewExpr)
    assert isinstance(expr.callee, ast.MemberExpr)


def test_in_allowed_in_for_test_clause():
    # Only the init clause restricts `in`.
    program = parse("for (var i = 0; 'a' in o; i++) break;")
    assert isinstance(program.body[0], ast.ForStmt)


def test_sequence_in_parentheses_as_argument():
    call = parse("f((1, 2))").body[0].expr
    assert len(call.args) == 1
    assert isinstance(call.args[0], ast.SequenceExpr)


def test_var_in_for_in_with_initializer_rejected():
    with pytest.raises(ParseError):
        parse("for (var x = 1 in o) ;")


def test_labels_not_supported():
    # Labelled statements are outside the subset, like several mjs builds.
    with pytest.raises(ParseError):
        parse("loop: while (1) break loop;")


def test_getter_syntax_not_supported():
    with pytest.raises(ParseError):
        parse("({get x() { return 1 }})")


def test_regex_literals_not_supported():
    # '/' always means division in this subset (mjs also has no regex).
    with pytest.raises(ParseError):
        parse("var r = /ab+/")


def test_deeply_chained_operators_respect_associativity():
    expr = parse("1 - 2 - 3").body[0].expr
    # ((1-2)-3): left operand is itself a subtraction.
    assert expr.op == "-"
    assert isinstance(expr.left, ast.BinaryExpr)


def test_mixed_logical_precedence():
    expr = parse("a || b && c").body[0].expr
    assert expr.op == "||"
    assert expr.right.op == "&&"


def test_assignment_inside_condition():
    program = parse("if (x = 1) ;")
    assert isinstance(program.body[0].test, ast.AssignExpr)
