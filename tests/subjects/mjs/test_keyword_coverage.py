"""Every Table 4 keyword is reachable in a valid program.

The token inventory is only a fair evaluation target if every inventory
token can actually appear in some accepted input; this matrix proves it for
all 34 reserved words and the 10 builtin-name tokens.
"""

import pytest

from repro.eval.extract import extract_tokens
from repro.eval.tokens import MJS_BUILTIN_NAME_TOKENS
from repro.subjects.mjs.tokens import KEYWORDS

#: One witness program per keyword.
WITNESSES = {
    "break": "while (true) { break }",
    "case": "switch (1) { case 1: break }",
    "catch": "try { throw 1 } catch (e) {}",
    "const": "const c = 1",
    "continue": "for (var i = 0; i < 1; i++) { continue }",
    "debugger": "debugger",
    "default": "switch (1) { default: break }",
    "delete": "delete ({a: 1}).a",
    "do": "do ; while (false)",
    "else": "if (1) ; else ;",
    "false": "false",
    "finally": "try {} finally {}",
    "for": "for (;;) break;",
    "function": "function f() {}",
    "if": "if (1) ;",
    "in": "'a' in {a: 1}",
    "instanceof": "1 instanceof Object",
    "let": "let l = 1",
    "NaN": "NaN",
    "new": "new Object()",
    "null": "null",
    "of": "for (v of [1]) ;",
    "return": "function g() { return }",
    "switch": "switch (1) {}",
    "this": "this",
    "throw": "try { throw 1 } catch (e) {}",
    "true": "true",
    "try": "try {} finally {}",
    "typeof": "typeof 1",
    "undefined": "undefined",
    "var": "var v",
    "void": "void 0",
    "while": "while (false) ;",
    "with": "with ({}) ;",
}

BUILTIN_WITNESSES = {
    "print": "print(1)",
    "load": "load('x')",
    "isNaN": "isNaN(1)",
    "JSON": "JSON.stringify(1)",
    "stringify": "JSON.stringify(1)",
    "Object": "new Object()",
    "length": "'ab'.length",
    "indexOf": "'ab'.indexOf('a')",
    "slice": "'ab'.slice(1)",
    "substr": "'ab'.substr(1)",
}


def test_every_keyword_has_a_witness():
    assert set(WITNESSES) == set(KEYWORDS)


def test_every_builtin_token_has_a_witness():
    assert set(BUILTIN_WITNESSES) == set(MJS_BUILTIN_NAME_TOKENS)


@pytest.mark.parametrize("keyword", sorted(WITNESSES))
def test_keyword_witness_accepted_and_extracted(mjs_subject, keyword):
    program = WITNESSES[keyword]
    assert mjs_subject.accepts(program), program
    assert keyword in extract_tokens("mjs", program), program


@pytest.mark.parametrize("name", sorted(BUILTIN_WITNESSES))
def test_builtin_witness_accepted_and_extracted(mjs_subject, name):
    program = BUILTIN_WITNESSES[name]
    assert mjs_subject.accepts(program), program
    assert name in extract_tokens("mjs", program), program
