"""mjs interpreter: edge cases and coercion corners."""

import pytest

from repro.runtime.stream import InputStream
from repro.subjects.mjs.interp import Interpreter
from repro.subjects.mjs.parser import parse_mjs


def run(text, max_steps=100_000):
    program = parse_mjs(InputStream(text))
    interpreter = Interpreter(max_steps=max_steps)
    return interpreter.run(program)


# ---------------------------------------------------------------------- #
# Coercions
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "text,expected",
    [
        ("print('' + [])", ""),
        ("print('' + [1,2])", "1,2"),
        ("print('' + {})", "[object Object]"),
        ("print(+'42')", "42"),
        ("print(+'0x10')", "16"),
        ("print(+'  ')", "0"),
        ("print(+'x')", "NaN"),
        ("print(-true)", "-1"),
        ("print(!0, !'', !null, !undefined, !NaN)", "true true true true true"),
        ("print(!1, !'a', ![])", "false false false"),
    ],
)
def test_coercions(text, expected):
    assert run(text) == [expected]


@pytest.mark.parametrize(
    "text,expected",
    [
        ("print([] == '')", "true"),
        ("print([1] == 1)", "true"),
        ("print(0 == false, '' == false)", "true true"),
        ("print(null == 0)", "false"),
        ("print(undefined == 0)", "false"),
    ],
)
def test_loose_equality_corners(text, expected):
    assert run(text) == [expected]


def test_string_comparison_is_lexicographic():
    assert run("print('abc' < 'abd', 'Z' < 'a', '10' < '9')") == ["true true true"]


def test_mixed_comparison_coerces_to_number():
    assert run("print('10' < 9, 10 < '9')") == ["false false"]


def test_nan_comparisons_all_false():
    assert run("print(NaN < 1, NaN > 1, NaN <= NaN)") == ["false false false"]


# ---------------------------------------------------------------------- #
# Data structures
# ---------------------------------------------------------------------- #


def test_array_holes_and_growth():
    assert run("var a = []; a[2] = 'x'; print(a.length, a[0], a[2])") == [
        "3 undefined x"
    ]


def test_array_length_truncation():
    assert run("var a = [1,2,3,4]; a.length = 2; print(a.length, '' + a)") == [
        "2 1,2"
    ]


def test_array_slice_negative_indices():
    assert run("print('' + [1,2,3,4].slice(-2))") == ["3,4"]


def test_string_indexing_and_methods():
    assert run("var s = 'hello'; print(s[1], s[99], s.slice(-3))") == [
        "e undefined llo"
    ]


def test_object_numeric_and_keyword_keys():
    assert run("var o = {1: 'a', if: 'b'}; print(o['1'], o['if'])") == ["a b"]


def test_object_property_via_index_expression():
    assert run("var o = {}; o['k' + 1] = 7; print(o.k1)") == ["7"]


def test_nested_object_mutation():
    assert run("var o = {a: {b: [0]}}; o.a.b[0] = 5; print(o.a.b[0])") == ["5"]


def test_delete_array_element_leaves_hole():
    assert run("var a = [1,2,3]; delete a[1]; print(a.length, a[1])") == [
        "3 undefined"
    ]


# ---------------------------------------------------------------------- #
# Functions and control flow
# ---------------------------------------------------------------------- #


def test_missing_and_extra_arguments():
    assert run("function f(a, b) { return '' + a + b } print(f(1), f(1,2,3))") == [
        "1undefined 12"
    ]


def test_closures_share_state():
    script = """
    function counter() { var n = 0; return function() { n += 1; return n } }
    var c = counter();
    print(c(), c(), c());
    """
    assert run(script) == ["1 2 3"]


def test_this_method_call():
    assert run("var o = {x: 5, get: function() { return this.x }}; print(o.get())") == [
        "5"
    ]


def test_arrow_has_no_own_this():
    script = """
    var o = {x: 1, f: function() { var g = y => this.x + y; return g(1) }};
    print(o.f());
    """
    assert run(script) == ["2"]


def test_switch_break_only_exits_switch():
    script = """
    for (var i = 0; i < 2; i++) {
        switch (i) { case 0: print('zero'); break; case 1: print('one'); break; }
    }
    print('done');
    """
    assert run(script) == ["zero", "one", "done"]


def test_nested_loops_break_inner_only():
    script = """
    var count = 0;
    for (var i = 0; i < 2; i++) {
        for (var j = 0; j < 10; j++) { if (j == 1) break; count++; }
    }
    print(count);
    """
    assert run(script) == ["2"]


def test_continue_in_while():
    script = """
    var i = 0, s = 0;
    while (i < 5) { i++; if (i % 2) continue; s += i; }
    print(s);
    """
    assert run(script) == ["6"]


def test_for_loop_without_clauses():
    assert run("var i = 0; for (;;) { i++; if (i > 2) break } print(i)") == ["3"]


def test_comma_in_for_update():
    assert run("for (var i = 0, j = 9; i < 2; i++, j--) ; print(i, j)") == ["2 7"]


def test_try_finally_preserves_return():
    script = """
    function f() { try { return 'r' } finally { print('fin') } }
    print(f());
    """
    assert run(script) == ["fin", "r"]


def test_throw_object_caught():
    assert run("try { throw {code: 7} } catch (e) { print(e.code) }") == ["7"]


# ---------------------------------------------------------------------- #
# Operators
# ---------------------------------------------------------------------- #


def test_shift_counts_are_masked():
    assert run("print(1 << 33, 256 >> 33)") == ["2 128"]


def test_compound_assignment_on_member():
    assert run("var o = {n: 1}; o.n += 2; o.n *= 3; print(o.n)") == ["9"]


def test_logical_assignment_short_circuits():
    script = """
    var calls = 0;
    function boom() { calls++; return 'x' }
    var a = 1; a ||= boom();
    var b = 0; b &&= boom();
    print(a, b, calls);
    """
    assert run(script) == ["1 0 0"]


def test_ternary_nested():
    assert run("print(1 ? 2 ? 'a' : 'b' : 'c')") == ["a"]


def test_typeof_results_exhaustive():
    assert run("print(typeof [], typeof NaN, typeof (x => x))") == [
        "object number function"
    ]


def test_void_discards_side_effect_value():
    assert run("var i = 0; print(void (i = 5), i)") == ["undefined 5"]


def test_json_stringify_nested_and_nan():
    assert run("print(JSON.stringify({a: NaN, b: [undefined]}))") == [
        '{"a":null,"b":[null]}'
    ]


def test_modulo_sign_follows_dividend():
    assert run("print(-7 % 3, 7 % -3)") == ["-1 1"]
