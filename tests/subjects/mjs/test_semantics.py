"""§7.3 semantic restrictions: declare-before-use checking."""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.subjects.mjs import MjsSubject


@pytest.fixture
def strict():
    return MjsSubject(semantic_checks=True)


@pytest.fixture
def sloppy():
    return MjsSubject()


@pytest.mark.parametrize(
    "text",
    [
        "var x = 1; print(x)",
        "let a = 1, b = a; b += a",
        "function f(p) { return p } f(1)",
        "x = 1; x + 1",  # plain assignment declares (sloppy globals)
        "for (let i = 0; i < 2; i++) print(i)",
        "for (k in {a:1}) print(k)",
        "try { throw 1 } catch (e) { print(e) }",
        "typeof neverDeclared",  # typeof is safe, as in JS
        "with ({a: 1}) a + 1",   # `with` defeats static checking
        "var f = function g() { return g }",
        "var h = x => x + 1; h(1)",
        "function outer() { return inner() } function inner() { return 1 } outer()",
    ],
)
def test_semantically_valid(strict, text):
    assert strict.accepts(text), text


@pytest.mark.parametrize(
    "text",
    [
        "print(noSuchName)",
        "a + 1",
        "noSuch += 1",
        "f(1)",
        "for (k2 of [1]) print(k2x)",
        "function f() { return missing } f()",
    ],
)
def test_semantically_invalid(strict, sloppy, text):
    assert not strict.accepts(text), text
    # ... while the paper's (sloppy) configuration accepts all of them.
    assert sloppy.accepts(text), text


def test_paper_limitation_demonstrated():
    """§7.3: pFuzzer's parser-valid inputs often fail semantic checks.

    Fuzz the sloppy subject (the paper's setup), then re-validate the
    outputs under semantic checking — a measurable fraction must fail,
    because the fuzzer "assumes that if a character was accepted by the
    parser, the character is correct".
    """
    sloppy = MjsSubject()
    strict = MjsSubject(semantic_checks=True)
    result = PFuzzer(sloppy, FuzzerConfig(seed=5, max_executions=2500)).run()
    identifier_inputs = [
        text
        for text in result.all_valid
        if any(c.isalpha() for c in text) and strict.accepts(text) != sloppy.accepts(text)
    ]
    assert identifier_inputs, "expected some parser-valid inputs to fail semantics"
