"""mjs parser: statement forms, expression precedence, ASI."""

import pytest

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.subjects.mjs import ast
from repro.subjects.mjs.parser import parse_mjs


def parse(text):
    return parse_mjs(InputStream(text))


def first_stmt(text):
    return parse(text).body[0]


def first_expr(text):
    statement = first_stmt(text)
    assert isinstance(statement, ast.ExpressionStmt)
    return statement.expr


# ---------------------------------------------------------------------- #
# Statements
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "text,node_type",
    [
        (";", ast.EmptyStmt),
        ("{}", ast.BlockStmt),
        ("var x = 1;", ast.VarDecl),
        ("let x;", ast.VarDecl),
        ("const k = 0;", ast.VarDecl),
        ("if (1) ;", ast.IfStmt),
        ("while (1) break;", ast.WhileStmt),
        ("do ; while (0);", ast.DoWhileStmt),
        ("for (;;) break;", ast.ForStmt),
        ("for (var i = 0; i < 3; i++) ;", ast.ForStmt),
        ("for (k in o) ;", ast.ForInStmt),
        ("for (let v of a) ;", ast.ForInStmt),
        ("return;", ast.ReturnStmt),
        ("throw 1;", ast.ThrowStmt),
        ("try {} catch (e) {}", ast.TryStmt),
        ("try {} finally {}", ast.TryStmt),
        ("switch (x) {}", ast.SwitchStmt),
        ("with (o) ;", ast.WithStmt),
        ("debugger;", ast.DebuggerStmt),
        ("function f() {}", ast.FunctionDecl),
    ],
)
def test_statement_forms(text, node_type):
    assert isinstance(first_stmt(text), node_type)


def test_var_decl_multiple():
    decl = first_stmt("var a = 1, b, c = 3;")
    assert [name for name, _ in decl.declarations] == ["a", "b", "c"]
    assert decl.declarations[1][1] is None


def test_if_else_binding():
    statement = first_stmt("if (a) ; else if (b) ; else ;")
    assert isinstance(statement.alternate, ast.IfStmt)


def test_for_in_vs_binary_in():
    loop = first_stmt("for (k in o) ;")
    assert loop.kind == "in"
    expr = first_expr("k in o")
    assert isinstance(expr, ast.BinaryExpr)
    assert expr.op == "in"


def test_switch_cases_and_default():
    switch = first_stmt("switch (x) { case 1: a; break; default: b; case 2: c; }")
    tests = [case.test for case in switch.cases]
    assert tests[0] is not None and tests[1] is None and tests[2] is not None


def test_duplicate_default_rejected():
    with pytest.raises(ParseError):
        parse("switch (x) { default: ; default: ; }")


def test_try_requires_catch_or_finally():
    with pytest.raises(ParseError):
        parse("try {}")


# ---------------------------------------------------------------------- #
# ASI
# ---------------------------------------------------------------------- #


def test_asi_on_newline():
    program = parse("a = 1\nb = 2")
    assert len(program.body) == 2


def test_asi_before_closing_brace():
    parse("{ a = 1 }")


def test_missing_separator_rejected():
    with pytest.raises(ParseError):
        parse("a = 1 b = 2")


def test_return_restricted_production():
    # "return\nx" parses as return; then expression statement x.
    program = parse("function f() { return\n1 }")
    body = program.body[0].body
    assert isinstance(body[0], ast.ReturnStmt)
    assert body[0].value is None
    assert isinstance(body[1], ast.ExpressionStmt)


def test_throw_newline_rejected():
    with pytest.raises(ParseError):
        parse("throw\n1")


def test_postfix_increment_not_across_newline():
    program = parse("a\n++b")
    assert len(program.body) == 2
    assert isinstance(program.body[1].expr, ast.UpdateExpr)


# ---------------------------------------------------------------------- #
# Expressions
# ---------------------------------------------------------------------- #


def test_precedence_multiplication_over_addition():
    expr = first_expr("1 + 2 * 3")
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_precedence_comparison_over_logical():
    expr = first_expr("a < b && c > d")
    assert isinstance(expr, ast.LogicalExpr)
    assert expr.op == "&&"


def test_assignment_right_associative():
    expr = first_expr("a = b = 1")
    assert isinstance(expr.value, ast.AssignExpr)


def test_compound_assignment_ops():
    for op in ("+=", "-=", "*=", "/=", "%=", "<<=", ">>=", ">>>=", "&=", "|=", "^=", "&&=", "||="):
        expr = first_expr(f"a {op} 1")
        assert isinstance(expr, ast.AssignExpr)
        assert expr.op == op


def test_invalid_assignment_target_rejected():
    with pytest.raises(ParseError):
        parse("1 = 2")
    with pytest.raises(ParseError):
        parse("a + b = 2")


def test_conditional_expression():
    expr = first_expr("a ? b : c")
    assert isinstance(expr, ast.ConditionalExpr)


def test_sequence_expression():
    expr = first_expr("1, 2, 3")
    assert isinstance(expr, ast.SequenceExpr)
    assert len(expr.items) == 3


def test_member_index_call_chain():
    expr = first_expr("a.b[0](1).c")
    assert isinstance(expr, ast.MemberExpr)
    assert isinstance(expr.obj, ast.CallExpr)


def test_new_expression():
    expr = first_expr("new Object(1)")
    assert isinstance(expr, ast.NewExpr)
    assert len(expr.args) == 1


def test_new_without_arguments():
    expr = first_expr("new Object")
    assert isinstance(expr, ast.NewExpr)
    assert expr.args == []


def test_unary_operators():
    for op in ("!", "~", "+", "-", "typeof", "void", "delete"):
        expr = first_expr(f"{op} a")
        assert isinstance(expr, ast.UnaryExpr)
        assert expr.op == op


def test_prefix_and_postfix_update():
    assert first_expr("++a").prefix
    assert not first_expr("a++").prefix


def test_invalid_update_target_rejected():
    with pytest.raises(ParseError):
        parse("++1")


def test_array_and_object_literals():
    array = first_expr("[1, 2, 3,]")
    assert isinstance(array, ast.ArrayLit)
    assert len(array.items) == 3
    obj = first_expr("({a: 1, 'b': 2, 3: 4, if: 5})")
    assert isinstance(obj, ast.ObjectLit)
    assert [key for key, _ in obj.members] == ["a", "b", "3", "if"]


def test_function_expression_and_arrow():
    func = first_expr("(function named(a, b) { return a })")
    assert isinstance(func, ast.FunctionExpr)
    assert func.name == "named"
    arrow = first_expr("x => x + 1")
    assert isinstance(arrow, ast.ArrowExpr)
    assert arrow.param == "x"
    arrow_block = first_expr("x => { return x }")
    assert arrow_block.block_body is not None


def test_depth_guard():
    with pytest.raises(ParseError):
        parse("(" * 400 + "1" + ")" * 400)


@pytest.mark.parametrize(
    "text",
    ["var;", "let 1;", "if", "while (", "for (;;", "a.", "a[1", "f(", "{,}", "case 1:"],
)
def test_malformed_rejected(text):
    with pytest.raises(ParseError):
        parse(text)
