"""mjs interpreter: semantics of the executed subset."""

import math

import pytest

from repro.runtime.errors import HangError
from repro.runtime.stream import InputStream
from repro.subjects.mjs.interp import Interpreter
from repro.subjects.mjs.parser import parse_mjs


def run(text, max_steps=100_000):
    program = parse_mjs(InputStream(text))
    interpreter = Interpreter(max_steps=max_steps)
    return interpreter.run(program)


@pytest.mark.parametrize(
    "text,expected",
    [
        ("print(1 + 2)", "3"),
        ("print('a' + 1)", "a1"),
        ("print(1 + '2')", "12"),
        ("print(10 / 4)", "2.5"),
        ("print(7 % 3)", "1"),
        ("print(2 * 3 - 1)", "5"),
        ("print(1 / 0)", "Infinity"),
        ("print(-1 / 0)", "-Infinity"),
        ("print(0 / 0)", "NaN"),
        ("print('x' * 2)", "NaN"),
    ],
)
def test_arithmetic(text, expected):
    assert run(text) == [expected]


@pytest.mark.parametrize(
    "text,expected",
    [
        ("print(1 < 2, 2 <= 2, 3 > 4, 4 >= 4)", "true true false true"),
        ("print('a' < 'b')", "true"),
        ("print(1 == '1', 1 === '1')", "true false"),
        ("print(null == undefined, null === undefined)", "true false"),
        ("print(NaN == NaN)", "false"),
        ("print(true == 1, true === 1)", "true false"),
        ("print(1 != 2, 1 !== '1')", "true true"),
    ],
)
def test_comparisons(text, expected):
    assert run(text) == [expected]


@pytest.mark.parametrize(
    "text,expected",
    [
        ("print(5 & 3, 5 | 2, 5 ^ 1)", "1 7 4"),
        ("print(1 << 4, 256 >> 4)", "16 16"),
        ("print(-1 >>> 28)", "15"),
        ("print(~0)", "-1"),
    ],
)
def test_bitwise(text, expected):
    assert run(text) == [expected]


def test_variables_and_scoping():
    assert run("var x = 1; { let x = 2; print(x) } print(x)") == ["2", "1"]


def test_undeclared_read_is_undefined():
    assert run("print(neverDeclared)") == ["undefined"]


def test_sloppy_global_assignment():
    assert run("function f() { g = 7 } f(); print(g)") == ["7"]


def test_functions_and_closures():
    script = """
    function adder(n) { return function(x) { return x + n } }
    var add2 = adder(2);
    print(add2(40));
    """
    assert run(script) == ["42"]


def test_arrow_functions():
    assert run("var f = x => x * 2; print(f(21))") == ["42"]
    assert run("var g = x => { return x + 1 }; print(g(1))") == ["2"]


def test_recursion_named_function_expression():
    script = "var f = function fact(n) { return n < 2 ? 1 : n * fact(n - 1) }; print(f(5))"
    assert run(script) == ["120"]


def test_deep_recursion_throws_not_crashes():
    # The RangeError aborts execution like any uncaught throw (no Python
    # crash, and the input still counts as valid — parse succeeded).
    assert run("function f() { return f() } f(); print('after')") == []
    # A caught RangeError lets the program continue.
    assert run(
        "function f() { return f() } try { f() } catch (e) { print('caught') }"
    ) == ["caught"]


def test_control_flow_loops():
    assert run("var s = 0; for (var i = 1; i <= 4; i++) s += i; print(s)") == ["10"]
    assert run("var i = 0; while (i < 3) i++; print(i)") == ["3"]
    assert run("var i = 10; do i++; while (false); print(i)") == ["11"]


def test_break_continue():
    script = """
    var s = 0;
    for (var i = 0; i < 10; i++) {
        if (i == 2) continue;
        if (i == 5) break;
        s += i;
    }
    print(s);
    """
    assert run(script) == ["8"]  # 0 + 1 + 3 + 4


def test_for_in_and_for_of():
    assert run("for (k in {a: 1, b: 2}) print(k)") == ["a", "b"]
    assert run("for (v of [10, 20]) print(v)") == ["10", "20"]
    assert run("for (c of 'ab') print(c)") == ["a", "b"]


def test_try_catch_finally_order():
    script = """
    try { throw 'boom' } catch (e) { print('caught', e) } finally { print('finally') }
    print('after');
    """
    assert run(script) == ["caught boom", "finally", "after"]


def test_uncaught_throw_does_not_reject():
    assert run("print('a'); throw 1; print('never')") == ["a"]


def test_finally_runs_on_throw():
    assert run("try { try { throw 1 } finally { print('f') } } catch (e) { print('c') }") == [
        "f",
        "c",
    ]


def test_switch_fallthrough_and_default():
    script = """
    function pick(x) {
        switch (x) {
            case 1: print('one');
            case 2: print('two'); break;
            default: print('other');
        }
    }
    pick(1); pick(2); pick(9);
    """
    assert run(script) == ["one", "two", "two", "other"]


def test_objects_and_arrays():
    assert run("var o = {a: 1}; o.b = 2; print(o.a + o.b)") == ["3"]
    assert run("var a = [1, 2]; a[3] = 9; print(a.length, a[2])") == ["4 undefined"]
    assert run("var a = []; a.push(5); print(a.indexOf(5))") == ["0"]


def test_string_methods():
    assert run("var s = 'hello'; print(s.length, s.indexOf('l'), s.slice(1, 3), s.substr(1, 2))") == [
        "5 2 el el"
    ]


def test_member_access_on_undefined_is_undefined():
    assert run("print(undef.prop)") == ["undefined"]


def test_calling_non_function_is_noop():
    assert run("var x = 1; print(x())") == ["undefined"]


def test_typeof():
    assert run(
        "print(typeof 1, typeof 'a', typeof true, typeof undefined, typeof null, typeof print, typeof {})"
    ) == ["number string boolean undefined object function object"]


def test_typeof_undeclared_no_error():
    assert run("print(typeof nope)") == ["undefined"]


def test_delete():
    assert run("var o = {a: 1}; delete o.a; print(o.a)") == ["undefined"]
    assert run("var o = {a: 1}; print(delete o['a'], 'a' in o)") == ["true false"]


def test_in_and_instanceof():
    assert run("print('a' in {a: 1}, 0 in [5], 2 in [5])") == ["true true false"]
    assert run("print({} instanceof Object, 1 instanceof Object)") == ["true false"]


def test_void_and_sequence():
    assert run("print(void 1, (1, 2, 3))") == ["undefined 3"]


def test_ternary_and_logical_short_circuit():
    assert run("print(1 ? 'y' : 'n', 0 && boom(), 0 || 'dflt')") == ["y 0 dflt"]


def test_update_expressions():
    assert run("var i = 5; print(i++, i, ++i, i--, --i)") == ["5 6 7 7 5"]


def test_with_statement():
    assert run("var o = {a: 7}; with (o) { print(a); a = 8 } print(o.a)") == ["7", "8"]


def test_this_and_new():
    script = """
    function Point(x) { this.x = x }
    var p = new Point(4);
    print(p.x);
    """
    assert run(script) == ["4"]


def test_json_stringify():
    assert run("print(JSON.stringify({a: [1, 'x', true, null], b: 1.5}))") == [
        '{"a":[1,"x",true,null],"b":1.5}'
    ]


def test_json_stringify_escapes():
    assert run("print(JSON.stringify('a\"b'))") == ['"a\\"b"']


def test_builtins_isnan_object_load():
    assert run("print(isNaN(NaN), isNaN(1))") == ["true false"]
    assert run("var o = new Object(); o.k = 1; print(o.k)") == ["1"]
    assert run("print(load('x.js'))") == ["undefined"]


def test_hang_on_infinite_loop():
    with pytest.raises(HangError):
        run("while (true) ;", max_steps=500)


def test_number_formatting():
    assert run("print(1.0, 2.5, 1e21)") == ["1 2.5 1e+21"]
