"""Every Table 4 operator/punctuator token is reachable in a valid program."""

import pytest

from repro.eval.extract import extract_tokens
from repro.eval.tokens import TOKEN_INVENTORIES

#: One witness program per punctuator-ish inventory token.
WITNESSES = {
    "(": "(1)",
    ")": "(1)",
    "{": "{ }",
    "}": "{ }",
    "[": "[1]",
    "]": "[1]",
    ";": ";",
    ",": "1, 2",
    ".": "JSON.stringify",
    "+": "1 + 1",
    "-": "1 - 1",
    "*": "1 * 1",
    "/": "1 / 1",
    "%": "1 % 1",
    "<": "1 < 1",
    ">": "1 > 1",
    "=": "x = 1",
    "&": "1 & 1",
    "|": "1 | 1",
    "^": "1 ^ 1",
    "!": "!1",
    "~": "~1",
    "?": "1 ? 2 : 3",
    ":": "1 ? 2 : 3",
    "identifier": "someName",
    "number": "42",
    "newline": "1\n2",
    "+=": "x += 1",
    "-=": "x -= 1",
    "*=": "x *= 1",
    "/=": "x /= 1",
    "%=": "x %= 1",
    "&=": "x &= 1",
    "|=": "x |= 1",
    "^=": "x ^= 1",
    "==": "1 == 1",
    "!=": "1 != 1",
    "<=": "1 <= 1",
    ">=": "1 >= 1",
    "&&": "1 && 1",
    "||": "1 || 1",
    "++": "x++",
    "--": "x--",
    "<<": "1 << 1",
    ">>": "1 >> 1",
    "=>": "f = x => x",
    "string": "'s'",
    "===": "1 === 1",
    "!==": "1 !== 1",
    "<<=": "x <<= 1",
    ">>=": "x >>= 1",
    ">>>": "1 >>> 1",
    "&&=": "x &&= 1",
    "||=": "x ||= 1",
    ">>>=": "x >>>= 1",
}

def test_witness_table_covers_every_non_keyword_token():
    from repro.eval.tokens import MJS_BUILTIN_NAME_TOKENS
    from repro.subjects.mjs.tokens import KEYWORDS

    inventory = {token.name for token in TOKEN_INVENTORIES["mjs"]}
    covered_elsewhere = set(KEYWORDS) | MJS_BUILTIN_NAME_TOKENS
    assert set(WITNESSES) == inventory - covered_elsewhere


@pytest.mark.parametrize("token", sorted(WITNESSES))
def test_operator_witness_accepted_and_extracted(mjs_subject, token):
    program = WITNESSES[token]
    assert mjs_subject.accepts(program), program
    assert token in extract_tokens("mjs", program), (token, program)
