"""Subject registry and Table 1 size accounting."""

import pytest

from repro.subjects.base import Subject
from repro.subjects.registry import (
    PAPER_LOC,
    SUBJECT_NAMES,
    load_subject,
    subject_sloc,
)


def test_all_paper_subjects_registered():
    assert SUBJECT_NAMES == ("ini", "csv", "json", "tinyc", "mjs")
    for name in SUBJECT_NAMES:
        subject = load_subject(name)
        assert isinstance(subject, Subject)
        assert subject.name == name


def test_demo_subject_available():
    assert load_subject("expr").name == "expr"


def test_unknown_subject_raises_with_known_names():
    with pytest.raises(KeyError, match="tinyc"):
        load_subject("nope")


def test_fresh_instances():
    assert load_subject("ini") is not load_subject("ini")


def test_paper_loc_table():
    assert PAPER_LOC["mjs"] == 10920
    assert set(PAPER_LOC) == set(SUBJECT_NAMES)


def test_subject_sloc_positive_and_ordered():
    sizes = {name: subject_sloc(load_subject(name)) for name in SUBJECT_NAMES}
    assert all(size > 30 for size in sizes.values())
    # mjs is by far the largest subject here, as in the paper.
    assert sizes["mjs"] == max(sizes.values())


def test_every_subject_accepts_space():
    """§5.1: a single space character is valid for all subjects (AFL seed)."""
    for name in SUBJECT_NAMES:
        assert load_subject(name).accepts(" "), name
