"""inih-style INI subject."""

import pytest

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.subjects.ini import IniSubject


@pytest.fixture
def subject():
    return IniSubject()


def parse(subject, text):
    return subject.parse(InputStream(text))


def test_empty_input_valid(subject):
    assert parse(subject, "") == []


def test_blank_lines_and_whitespace(subject):
    assert parse(subject, "\n  \n\t\n") == []


def test_simple_pair(subject):
    assert parse(subject, "key=value") == [("", "key", "value")]


def test_colon_separator(subject):
    assert parse(subject, "key: value") == [("", "key", "value")]


def test_whitespace_stripped(subject):
    assert parse(subject, "  key  =  value  \n") == [("", "key", "value")]


def test_section_assignment(subject):
    entries = parse(subject, "[sec]\na=1\n[other]\nb=2\n")
    assert entries == [("sec", "a", "1"), ("other", "b", "2")]


def test_section_name_stripped(subject):
    assert parse(subject, "[ s ]\nx=1") == [("s", "x", "1")]


def test_comments_skipped(subject):
    assert parse(subject, "; comment\n# also comment\na=1") == [("", "a", "1")]


def test_inline_comment_stripped(subject):
    assert parse(subject, "a=1 ; trailing") == [("", "a", "1")]


def test_empty_name_and_value_allowed(subject):
    assert parse(subject, "=") == [("", "", "")]


def test_section_without_closing_bracket_rejected(subject):
    with pytest.raises(ParseError):
        parse(subject, "[section\n")
    with pytest.raises(ParseError):
        parse(subject, "[section")


def test_line_without_separator_rejected(subject):
    with pytest.raises(ParseError):
        parse(subject, "just some text\n")


def test_comment_before_separator_rejected(subject):
    with pytest.raises(ParseError):
        parse(subject, "name;=value\n")


def test_error_reports_index(subject):
    try:
        parse(subject, "bad\n")
    except ParseError as error:
        assert error.index == 3
    else:
        raise AssertionError("expected ParseError")


def test_value_after_section_junk_ignored(subject):
    # inih ignores trailing characters after "]".
    assert parse(subject, "[s] trailing\na=1") == [("s", "a", "1")]


def test_multiple_pairs_same_section(subject):
    entries = parse(subject, "[s]\na=1\nb=2")
    assert entries == [("s", "a", "1"), ("s", "b", "2")]


def test_last_line_without_newline(subject):
    assert parse(subject, "a=1") == [("", "a", "1")]
