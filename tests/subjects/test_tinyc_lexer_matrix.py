"""Exhaustive tiny-c lexer matrix."""

import pytest

from repro.runtime.stream import InputStream
from repro.subjects.tinyc import KEYWORDS, Sym, TinyCLexer

PUNCT = {
    "{": Sym.LBRA,
    "}": Sym.RBRA,
    "(": Sym.LPAR,
    ")": Sym.RPAR,
    "+": Sym.PLUS,
    "-": Sym.MINUS,
    "<": Sym.LESS,
    ";": Sym.SEMI,
    "=": Sym.EQUAL,
}


@pytest.mark.parametrize("text,sym", sorted(PUNCT.items()))
def test_every_punctuator(text, sym):
    lexer = TinyCLexer(InputStream(text))
    assert lexer.token.sym is sym
    lexer.next_sym()
    assert lexer.token.sym is Sym.EOI


@pytest.mark.parametrize("keyword", KEYWORDS)
def test_every_keyword(keyword):
    lexer = TinyCLexer(InputStream(keyword))
    assert lexer.token.sym is Sym(keyword)


@pytest.mark.parametrize("letter", "abcmz")
def test_single_letters_are_identifiers(letter):
    lexer = TinyCLexer(InputStream(letter))
    assert lexer.token.sym is Sym.ID
    assert lexer.token.id_name == letter


@pytest.mark.parametrize("text,value", [("0", 0), ("7", 7), ("42", 42), ("007", 7)])
def test_integers(text, value):
    lexer = TinyCLexer(InputStream(text))
    assert lexer.token.sym is Sym.INT
    assert lexer.token.int_val == value


def test_whitespace_between_tokens():
    lexer = TinyCLexer(InputStream("  a \n  = \t 1  "))
    symbols = []
    while lexer.token.sym is not Sym.EOI:
        symbols.append(lexer.token.sym)
        lexer.next_sym()
    assert symbols == [Sym.ID, Sym.EQUAL, Sym.INT]


def test_token_indices_point_into_input():
    lexer = TinyCLexer(InputStream("  while"))
    assert lexer.token.sym is Sym.WHILE
    assert lexer.token.index == 2
