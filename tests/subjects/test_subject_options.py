"""Upstream configuration options mirrored by the subjects."""

import pytest

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.subjects.csvp import CsvSubject
from repro.subjects.ini import IniSubject


# ---------------------------------------------------------------------- #
# inih INI_ALLOW_MULTILINE
# ---------------------------------------------------------------------- #


def test_multiline_continuation_joins_values():
    subject = IniSubject(multiline=True)
    entries = subject.parse(InputStream("key=first\n  second\n"))
    assert entries == [("", "key", "first\nsecond")]


def test_multiline_multiple_continuations():
    subject = IniSubject(multiline=True)
    entries = subject.parse(InputStream("k=a\n b\n c"))
    assert entries == [("", "k", "a\nb\nc")]


def test_multiline_off_by_default():
    subject = IniSubject()
    with pytest.raises(ParseError):
        subject.parse(InputStream("key=first\n  second\n"))


def test_multiline_needs_previous_entry():
    subject = IniSubject(multiline=True)
    with pytest.raises(ParseError):
        subject.parse(InputStream("  orphan continuation\n"))


def test_multiline_blank_line_is_not_continuation():
    subject = IniSubject(multiline=True)
    entries = subject.parse(InputStream("k=v\n   \nx=1"))
    assert entries == [("", "k", "v"), ("", "x", "1")]


# ---------------------------------------------------------------------- #
# csv_parser custom delimiter
# ---------------------------------------------------------------------- #


def test_semicolon_delimiter():
    subject = CsvSubject(delimiter=";")
    rows = subject.parse(InputStream("a;b\nc;d"))
    assert rows == [["a", "b"], ["c", "d"]]


def test_custom_delimiter_frees_comma():
    subject = CsvSubject(delimiter="|")
    rows = subject.parse(InputStream("a,b|c"))
    assert rows == [["a,b", "c"]]


def test_tab_delimiter():
    subject = CsvSubject(delimiter="\t")
    rows = subject.parse(InputStream("a\tb"))
    assert rows == [["a", "b"]]


@pytest.mark.parametrize("bad", ["", ",,", '"', "\n", "\r"])
def test_invalid_delimiters_rejected(bad):
    with pytest.raises(ValueError):
        CsvSubject(delimiter=bad)
