"""cJSON string-escape matrix and number-grammar corners."""

import pytest

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.subjects.cjson import CJsonSubject


@pytest.fixture
def subject():
    return CJsonSubject()


def parse(subject, text):
    return subject.parse(InputStream(text))


@pytest.mark.parametrize(
    "escape,decoded",
    [("b", "\b"), ("f", "\f"), ("n", "\n"), ("r", "\r"), ("t", "\t"),
     ('"', '"'), ("\\", "\\"), ("/", "/")],
)
def test_simple_escape_matrix(subject, escape, decoded):
    assert parse(subject, f'"\\{escape}"') == decoded


@pytest.mark.parametrize("bad", ["a", "q", "0", " ", "x"])
def test_unknown_escapes_rejected(subject, bad):
    with pytest.raises(ParseError):
        parse(subject, f'"\\{bad}"')


@pytest.mark.parametrize(
    "literal,codepoint",
    [("0041", 0x41), ("00e9", 0xE9), ("20AC", 0x20AC), ("ffff", 0xFFFF)],
)
def test_unicode_escape_matrix(subject, literal, codepoint):
    assert parse(subject, f'"\\u{literal}"') == chr(codepoint)


@pytest.mark.parametrize("truncated", ['"\\u"', '"\\u1"', '"\\u12"', '"\\u123"'])
def test_truncated_unicode_rejected(subject, truncated):
    with pytest.raises(ParseError):
        parse(subject, truncated)


@pytest.mark.parametrize(
    "text,value",
    [
        ("0", 0.0),
        ("-0", -0.0),
        ("00", 0.0),          # strtod leniency (stricter stdlib rejects)
        ("1.", 1.0),          # ditto
        ("0.5", 0.5),
        ("1e0", 1.0),
        ("1E+2", 100.0),
        ("1e-2", 0.01),
        ("123456789", 123456789.0),
    ],
)
def test_number_grammar(subject, text, value):
    assert parse(subject, text) == value


@pytest.mark.parametrize("bad", ["-", "+1", ".5", "e1", "1e", "1e+", "--1", "1..2"])
def test_malformed_numbers_rejected(subject, bad):
    with pytest.raises(ParseError):
        parse(subject, bad)


def test_deep_but_legal_nesting(subject):
    depth = 50
    text = "[" * depth + "1" + "]" * depth
    value = parse(subject, text)
    for _ in range(depth):
        assert isinstance(value, list) and len(value) == 1
        value = value[0]
    assert value == 1.0
