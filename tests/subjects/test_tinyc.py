"""tiny-c subject: lexer, parser, compiler and VM."""

import pytest

from repro.runtime.errors import HangError, ParseError
from repro.runtime.harness import run_subject
from repro.runtime.stream import InputStream
from repro.subjects.tinyc import (
    Sym,
    TinyCCompiler,
    TinyCLexer,
    TinyCParser,
    TinyCSubject,
    TinyCVM,
)
from repro.taint.events import ComparisonKind


@pytest.fixture
def subject():
    return TinyCSubject()


def run_program(subject, text):
    return subject.parse(InputStream(text))


# ---------------------------------------------------------------------- #
# Lexer
# ---------------------------------------------------------------------- #


def lex_all(text):
    lexer = TinyCLexer(InputStream(text))
    symbols = []
    while lexer.token.sym is not Sym.EOI:
        symbols.append(lexer.token.sym)
        lexer.next_sym()
    return symbols


def test_lexer_punctuation():
    assert lex_all("{}()+-<;=") == [
        Sym.LBRA,
        Sym.RBRA,
        Sym.LPAR,
        Sym.RPAR,
        Sym.PLUS,
        Sym.MINUS,
        Sym.LESS,
        Sym.SEMI,
        Sym.EQUAL,
    ]


def test_lexer_keywords_and_ids():
    assert lex_all("if a while do else b") == [
        Sym.IF,
        Sym.ID,
        Sym.WHILE,
        Sym.DO,
        Sym.ELSE,
        Sym.ID,
    ]


def test_lexer_numbers():
    lexer = TinyCLexer(InputStream("123"))
    assert lexer.token.sym is Sym.INT
    assert lexer.token.int_val == 123


def test_lexer_multichar_identifier_rejected():
    with pytest.raises(ParseError):
        lex_all("ab")


def test_lexer_uppercase_rejected():
    with pytest.raises(ParseError):
        lex_all("A")


def test_lexer_unknown_char_rejected():
    with pytest.raises(ParseError):
        lex_all("!")


def test_keyword_strcmp_recorded(subject):
    """The keyword table scan is visible as strcmp events."""
    result = run_subject(subject, "wh")
    expected = {
        event.other_value
        for event in result.recorder.comparisons
        if event.kind is ComparisonKind.STRCMP
    }
    assert "while" in expected
    assert "do" in expected


# ---------------------------------------------------------------------- #
# Parser
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "text",
    [
        ";",
        "a=1;",
        "{}",
        "{a=1; b=2;}",
        "if (a<b) a=b;",
        "if (1) ; else ;",
        "while (a<10) a=a+1;",
        "do a=a+1; while (a<5);",
        "a=b=c=3;",
        "(1+2);",
        "a=1-2+3;",
        "if (a) if (b) ; else ;",
    ],
)
def test_parses(subject, text):
    run_program(subject, text)


def test_whitespace_only_valid(subject):
    # §5.1 driver setup: the single-space AFL seed is valid everywhere.
    run_program(subject, "")
    run_program(subject, "  \n")


@pytest.mark.parametrize(
    "text",
    [
        "a=1",
        "a=;",
        "if a<b ;",
        "while () ;",
        "do ; while (1)",
        "{",
        "} ",
    ],
)
def test_rejects(subject, text):
    with pytest.raises(ParseError):
        run_program(subject, text)


def test_program_is_one_statement(subject):
    # <program> ::= <statement>; a second statement is trailing input.
    with pytest.raises(ParseError):
        run_program(subject, "a=1; b=2;")
    # ... unless wrapped in a block.
    run_program(subject, "{a=1; b=2;}")


# ---------------------------------------------------------------------- #
# Compiler + VM semantics
# ---------------------------------------------------------------------- #


def test_assignment_executes(subject):
    globals_ = run_program(subject, "a=42;")
    assert globals_["a"] == 42


def test_arithmetic(subject):
    globals_ = run_program(subject, "{a=2+3-1; b=a+a;}")
    assert globals_["a"] == 4
    assert globals_["b"] == 8


def test_less_than(subject):
    globals_ = run_program(subject, "{a=1<2; b=2<1;}")
    assert globals_["a"] == 1
    assert globals_["b"] == 0


def test_if_else(subject):
    globals_ = run_program(subject, "if (0) a=1; else a=2;")
    assert globals_["a"] == 2


def test_while_loop(subject):
    globals_ = run_program(subject, "{i=0; while (i<10) i=i+1;}")
    assert globals_["i"] == 10


def test_do_while(subject):
    globals_ = run_program(subject, "{i=9; do i=i+1; while (i<5);}")
    assert globals_["i"] == 10


def test_paper_gcd_style_program(subject):
    # The classic tiny-c demo: compute something with nested control flow.
    globals_ = run_program(
        subject, "{a=17; b=5; while (b<a) a=a-b; }"
    )
    assert globals_["a"] == 2


def test_infinite_loop_hangs():
    subject = TinyCSubject(max_steps=1_000)
    with pytest.raises(HangError):
        run_program(subject, "while(9);")


def test_vm_step_budget_configurable():
    fast = TinyCSubject(max_steps=50)
    with pytest.raises(HangError):
        run_program(fast, "{i=0; while (i<1000) i=i+1;}")


def test_compiler_emits_halt():
    from repro.subjects.tinyc import HALT

    lexer = TinyCLexer(InputStream(";"))
    ast = TinyCParser(lexer).program()
    code = TinyCCompiler().compile(ast)
    assert code[-1] == HALT


def test_nesting_guard(subject):
    with pytest.raises(ParseError):
        run_program(subject, "(" * 1000 + "1;")
