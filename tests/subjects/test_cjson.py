"""cJSON-style JSON subject."""

import pytest

from repro.runtime.errors import ParseError
from repro.runtime.harness import run_subject
from repro.runtime.stream import InputStream
from repro.subjects.cjson import CJsonSubject
from repro.taint.events import ComparisonKind


@pytest.fixture
def subject():
    return CJsonSubject()


def parse(subject, text):
    return subject.parse(InputStream(text))


@pytest.mark.parametrize(
    "text,expected",
    [
        ("null", None),
        ("true", True),
        ("false", False),
        ("0", 0.0),
        ("-12.5", -12.5),
        ("1e3", 1000.0),
        ("2.5E-1", 0.25),
        ('""', ""),
        ('"abc"', "abc"),
        ("[]", []),
        ("[1,2]", [1.0, 2.0]),
        ("{}", {}),
        ('{"a":1}', {"a": 1.0}),
        ('  {"a" : [true, null] } ', {"a": [True, None]}),
        ('[{"x":"y"},-3]', [{"x": "y"}, -3.0]),
    ],
)
def test_accepts(subject, text, expected):
    assert parse(subject, text) == expected


def test_whitespace_only_valid(subject):
    # §5.1 driver setup: the single-space AFL seed is valid everywhere.
    assert parse(subject, "") is None
    assert parse(subject, "  \n ") is None


@pytest.mark.parametrize(
    "text",
    [
        "nul",
        "tru",
        "falsy",
        "{",
        "[",
        "[1,]",
        '{"a"}',
        '{"a":}',
        '{a:1}',
        '"unterminated',
        '"bad \\q escape"',
        "01x",  # trailing junk after strtod prefix
        "--1",
        "[1 2]",
        "{} {}",
        '"\x01"',  # raw control character
    ],
)
def test_rejects(subject, text):
    with pytest.raises(ParseError):
        parse(subject, text)


def test_number_strtod_prefix_behaviour(subject):
    # cJSON consumes only what strtod accepts; '1e+' leaves 'e+' behind and
    # the trailing junk is rejected at top level.
    with pytest.raises(ParseError):
        parse(subject, "1e+")


@pytest.mark.parametrize(
    "text,expected",
    [
        ('"\\n\\t\\r\\b\\f"', "\n\t\r\b\f"),
        ('"\\""', '"'),
        ('"\\\\"', "\\"),
        ('"\\/"', "/"),
        ('"\\u0041"', "A"),
        ('"\\u00e9"', "é"),
    ],
)
def test_escapes(subject, text, expected):
    assert parse(subject, text) == expected


def test_utf16_surrogate_pair(subject):
    assert parse(subject, '"\\ud83d\\ude00"') == "\U0001f600"


@pytest.mark.parametrize(
    "text",
    [
        '"\\ud800"',        # lone high surrogate
        '"\\udc00"',        # lone low surrogate
        '"\\ud800\\u0041"', # high surrogate followed by non-surrogate
        '"\\ud800\\ud800"', # two high surrogates
        '"\\uZZZZ"',
    ],
)
def test_invalid_utf16_rejected(subject, text):
    with pytest.raises(ParseError):
        parse(subject, text)


def test_keyword_strncmp_recorded(subject):
    """The 'nu' prefix comparison against 'null' is visible to the fuzzer."""
    result = run_subject(subject, "nu")
    strcmps = [
        event
        for event in result.recorder.comparisons
        if event.kind is ComparisonKind.STRCMP
    ]
    assert any(event.other_value == "null" for event in strcmps)


def test_utf16_range_checks_invisible(subject):
    """§5.2 limitation: surrogate-range comparisons happen on untainted ints.

    No recorded comparison mentions the 0xD800 boundary, so pFuzzer cannot
    learn the surrogate structure — reproduced, not fixed.
    """
    result = run_subject(subject, '"\\ud800"')
    assert not result.valid
    for event in result.recorder.comparisons:
        assert "\ud800" not in event.other_value


def test_nesting_limit(subject):
    deep = "[" * 200
    with pytest.raises(ParseError):
        parse(subject, deep)


def test_control_chars_before_value_skipped(subject):
    # cJSON treats all bytes <= 32 as skippable whitespace.
    assert parse(subject, "\x0b\x0c 7 \x1f") == 7.0
