"""Subject base-class behaviour."""

from repro.runtime.stream import InputStream
from repro.subjects.base import Subject
from repro.subjects.expr import ExprSubject


def test_accepts_true_false():
    subject = ExprSubject()
    assert subject.accepts("1")
    assert not subject.accepts("A")


def test_accepts_does_not_leak_exceptions():
    # accepts() is the exit-code oracle: all SubjectErrors become False.
    from repro.subjects.tinyc import TinyCSubject

    assert not TinyCSubject(max_steps=100).accepts("while(9);")  # hang
    assert not TinyCSubject().accepts("!")  # lex error


def test_default_files_is_defining_module():
    subject = ExprSubject()
    (filename,) = subject.files
    assert filename.endswith("subjects/expr.py")


def test_default_modules_is_defining_module():
    subject = ExprSubject()
    (module,) = subject.modules()
    assert module.__name__ == "repro.subjects.expr"


def test_repr_names_subject():
    assert "expr" in repr(ExprSubject())


def test_custom_subject_minimal_surface():
    class Echo(Subject):
        name = "echo"

        def parse(self, stream: InputStream):
            return stream.read_while(lambda c: True).text

    subject = Echo()
    assert subject.accepts("anything")
    assert subject.parse(InputStream("ab")) == "ab"
