"""csvparser-style CSV subject."""

import pytest

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.subjects.csvp import CsvSubject


@pytest.fixture
def subject():
    return CsvSubject()


def parse(subject, text):
    return subject.parse(InputStream(text))


def test_empty_input(subject):
    assert parse(subject, "") == []


def test_single_row(subject):
    assert parse(subject, "a,b,c") == [["a", "b", "c"]]


def test_rows_split_on_newline(subject):
    assert parse(subject, "a,b\nc,d\n") == [["a", "b"], ["c", "d"]]


def test_crlf_line_endings(subject):
    assert parse(subject, "a,b\r\nc,d") == [["a", "b"], ["c", "d"]]


def test_bare_cr_ends_record(subject):
    assert parse(subject, "a\rb") == [["a"], ["b"]]


def test_empty_fields(subject):
    assert parse(subject, ",,") == [["", "", ""]]


def test_quoted_field_with_comma(subject):
    assert parse(subject, '"x,y",z') == [["x,y", "z"]]


def test_quoted_field_with_newline(subject):
    assert parse(subject, '"line1\nline2",b') == [["line1\nline2", "b"]]


def test_doubled_quote_escape(subject):
    assert parse(subject, '"say ""hi"""') == [['say "hi"']]


def test_empty_quoted_field(subject):
    assert parse(subject, '""') == [[""]]


def test_unterminated_quote_rejected(subject):
    with pytest.raises(ParseError):
        parse(subject, '"abc')


def test_bare_quote_in_field_rejected(subject):
    with pytest.raises(ParseError):
        parse(subject, 'ab"c')


def test_garbage_after_closed_quote_rejected(subject):
    with pytest.raises(ParseError):
        parse(subject, '"ab"x')


def test_quote_then_separator_ok(subject):
    assert parse(subject, '"ab",c\n"d"') == [["ab", "c"], ["d"]]


def test_trailing_newline_no_phantom_row(subject):
    assert parse(subject, "a\n") == [["a"]]


def test_whitespace_is_field_content(subject):
    assert parse(subject, " a , b ") == [[" a ", " b "]]
