"""Plugin subject API: registration, module loading, contrib subjects.

The registry's plugin surface (ISSUE: pluggable subject API) has three
onboarding paths — ``register_subject``, ``load_subject_module`` and
entry points — all resolving through the same ``load_subject`` /
``is_known_subject`` / ``available_subjects`` front.  These tests pin the
contracts: built-ins are never shadowed, re-registration needs an
explicit ``replace=True``, unknown-subject errors list every loadable
name, and the bundled contrib parsers behave like built-ins end to end.
"""

import sys
from pathlib import Path

import pytest

import repro.subjects.registry as registry
from repro.runtime.harness import ExitStatus, run_subject
from repro.subjects.base import Subject
from repro.subjects.function import FunctionSubject
from repro.subjects.registry import (
    ALL_SUBJECT_NAMES,
    SUBJECT_NAMES,
    SubjectRegistrationError,
    available_subjects,
    is_known_subject,
    load_subject,
    load_subject_module,
    register_subject,
)

HELPERS = str(Path(__file__).resolve().parent.parent / "helpers")


@pytest.fixture(autouse=True)
def _clean_plugins():
    """Snapshot and restore the plugin table around every test."""
    saved = dict(registry._PLUGIN_FACTORIES)
    saved_path = list(sys.path)
    yield
    registry._PLUGIN_FACTORIES.clear()
    registry._PLUGIN_FACTORIES.update(saved)
    sys.path[:] = saved_path


def _toy_factory():
    def parse_a(stream):
        char = stream.next_char()
        if char != "a":
            from repro.runtime.errors import ParseError

            raise ParseError("expected 'a'", char.index)
        return "a"

    return FunctionSubject(parse_a, name="toy")


# --------------------------------------------------------------------- #
# register_subject
# --------------------------------------------------------------------- #


def test_registered_subject_loads_and_is_known():
    register_subject("toy", _toy_factory)
    assert is_known_subject("toy")
    assert "toy" in available_subjects()
    subject = load_subject("toy")
    assert isinstance(subject, Subject)
    assert subject.name == "toy"
    # Fresh instance per load, like built-ins.
    assert load_subject("toy") is not load_subject("toy")


def test_builtin_names_can_never_be_replaced():
    for name in ALL_SUBJECT_NAMES:
        with pytest.raises(SubjectRegistrationError, match="built-in"):
            register_subject(name, _toy_factory)
        with pytest.raises(SubjectRegistrationError, match="built-in"):
            register_subject(name, _toy_factory, replace=True)


def test_duplicate_plugin_needs_replace():
    register_subject("toy", _toy_factory)
    with pytest.raises(SubjectRegistrationError, match="already registered"):
        register_subject("toy", _toy_factory)
    register_subject("toy", _toy_factory, replace=True)  # must not raise


@pytest.mark.parametrize("bad_name", ["", None, 7])
def test_bad_names_rejected(bad_name):
    with pytest.raises(SubjectRegistrationError, match="non-empty string"):
        register_subject(bad_name, _toy_factory)


def test_non_callable_factory_rejected():
    with pytest.raises(SubjectRegistrationError, match="callable"):
        register_subject("toy", "not-a-factory")


# --------------------------------------------------------------------- #
# load_subject_module
# --------------------------------------------------------------------- #


def test_load_subject_module_reports_registered_names():
    sys.path.insert(0, HELPERS)
    registry._PLUGIN_FACTORIES.pop("crashy", None)
    sys.modules.pop("crashy_plugin", None)
    assert load_subject_module("crashy_plugin") == ("crashy",)
    assert is_known_subject("crashy")
    # Re-import of a loaded module falls back to its register() hook.
    registry._PLUGIN_FACTORIES.pop("crashy", None)
    assert load_subject_module("crashy_plugin") == ("crashy",)


def test_load_subject_module_import_failure_is_wrapped():
    with pytest.raises(SubjectRegistrationError, match="cannot import"):
        load_subject_module("no_such_plugin_module")


# --------------------------------------------------------------------- #
# Unknown-subject diagnostics
# --------------------------------------------------------------------- #


def test_unknown_subject_error_lists_plugins_too():
    register_subject("toy", _toy_factory)
    with pytest.raises(KeyError) as excinfo:
        load_subject("nope")
    message = str(excinfo.value)
    assert "available subjects" in message
    for name in ALL_SUBJECT_NAMES + ("toy", "url", "httpreq", "isodate"):
        assert name in message


def test_available_subjects_orders_builtins_first():
    names = available_subjects()
    assert names[: len(ALL_SUBJECT_NAMES)] == ALL_SUBJECT_NAMES
    assert set(("url", "httpreq", "isodate")) <= set(names)


# --------------------------------------------------------------------- #
# Bundled contrib subjects behave like built-ins
# --------------------------------------------------------------------- #


CONTRIB_CASES = [
    ("url", "http://a.b/c?d=e", "http//"),
    ("httpreq", "GET / HTTP/1.1\r\n", "PUNCH / HTTP/1.1\r\n"),
    ("isodate", "2024-02-29", "2023-02-29"),
]


@pytest.mark.parametrize("name,good,bad", CONTRIB_CASES)
def test_contrib_subject_accepts_and_rejects(name, good, bad):
    subject = load_subject(name)
    assert run_subject(subject, good).status is ExitStatus.VALID
    assert run_subject(subject, bad).status is ExitStatus.REJECTED


@pytest.mark.parametrize("name,good,bad", CONTRIB_CASES)
def test_contrib_subject_backend_equivalence(name, good, bad):
    """settrace and ast tracers agree on contrib subjects' signatures."""
    from repro.runtime.arcs import arc_table_for

    for text in (good, bad):
        results = {
            backend: run_subject(
                load_subject(name), text, coverage_backend=backend
            )
            for backend in ("settrace", "ast")
        }
        table = arc_table_for(load_subject(name))
        signatures = {
            backend: table.signature(result.arcs)
            for backend, result in results.items()
        }
        assert signatures["settrace"] == signatures["ast"]


# --------------------------------------------------------------------- #
# FunctionSubject adapter
# --------------------------------------------------------------------- #


def test_function_subject_defaults_from_function():
    def parse_noop(stream):
        """Accept anything."""
        return None

    subject = FunctionSubject(parse_noop)
    assert subject.name == "parse_noop"
    assert subject.description == "Accept anything."
    assert subject.arc_table_key == ("function-subject", "parse_noop")


def test_function_subjects_get_distinct_arc_tables():
    from repro.runtime.arcs import arc_table_for

    def parse_one(stream):
        return 1

    def parse_two(stream):
        return 2

    one = FunctionSubject(parse_one, name="one")
    two = FunctionSubject(parse_two, name="two")
    assert arc_table_for(one) is not arc_table_for(two)
    assert arc_table_for(one) is arc_table_for(
        FunctionSubject(parse_one, name="one")
    )
