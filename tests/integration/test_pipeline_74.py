"""The full §7.4 pipeline as an integration test: fuzz → mine → export →
generate → revalidate."""

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.miner.export import keyword_terminals, to_ebnf
from repro.miner.generate import GrammarFuzzer
from repro.miner.mine import mine_grammar
from repro.subjects.expr import ExprSubject
from repro.subjects.registry import load_subject


def test_expr_pipeline_end_to_end():
    subject = ExprSubject()
    # Phase 1: parser-directed exploration.
    campaign = PFuzzer(subject, FuzzerConfig(seed=1, max_executions=500)).run()
    corpus = sorted(set(campaign.all_valid), key=len)[-25:]
    assert corpus

    # Phase 2: mine.
    grammar = mine_grammar(subject, corpus)
    rendered = to_ebnf(grammar)
    assert "::=" in rendered
    assert grammar.is_recursive("_expression") or grammar.is_recursive("_atom")

    # Phase 3: generate deep inputs; all must be valid.
    generator = GrammarFuzzer(grammar, seed=2, max_depth=9)
    generated = generator.generate_many(25)
    assert all(subject.accepts(text) for text in generated)

    # The generated corpus reaches nesting depth beyond the mined corpus.
    mined_depth = max(text.count("(") for text in corpus)
    generated_depth = max(text.count("(") for text in generated)
    assert generated_depth >= mined_depth


def test_tinyc_mining_recovers_keywords_but_not_structure():
    """Tokenized parsers limit the miner, like they limit the fuzzer (§7.2).

    Keyword spellings are recovered (the lexer consumed them in one frame),
    but the one-token lookahead attributes characters to the *previous*
    grammar frame, so the mined structure over-generalises badly: its
    generated sentences rarely parse.  This pins the limitation the same
    way the cJSON UTF-16 test pins that one — AutoGram has the same
    scannerless-vs-tokenized divide.
    """
    subject = load_subject("tinyc")
    corpus = ["a=1;", "while (1<a) a=a-1;", "if (a<b) ; else ;", "{b=2; c=3;}"]
    grammar = mine_grammar(subject, corpus)
    keywords = keyword_terminals(grammar)
    assert {"while", "if", "else"} <= keywords

    generator = GrammarFuzzer(grammar, seed=3, max_depth=8)
    generated = generator.generate_many(20)
    accepted = sum(subject.accepts(text) for text in generated)
    assert accepted < len(generated)  # the limitation, observed
