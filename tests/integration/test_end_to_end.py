"""End-to-end pipeline: campaigns -> token coverage -> reports.

Miniature versions of the Figure 2 / Figure 3 pipelines, with budgets small
enough for CI but large enough to show the paper's qualitative shape.
"""

import pytest

from repro.eval.campaign import run_campaign
from repro.eval.code_cov import coverage_of_inputs
from repro.eval.report import render_figure2, render_figure3
from repro.eval.token_cov import figure3, token_coverage

pytestmark = pytest.mark.slow  # campaign-grid integration tests


@pytest.fixture(scope="module")
def json_campaigns():
    return {
        ("json", "pfuzzer"): run_campaign("pfuzzer", "json", 2000, seed=3).valid_inputs,
        ("json", "afl"): run_campaign("afl", "json", 2000, seed=3).valid_inputs,
        ("json", "klee"): run_campaign("klee", "json", 2000, seed=3).valid_inputs,
    }


def test_pfuzzer_beats_afl_on_json_keywords(json_campaigns):
    """Figure 3's json row: pFuzzer covers the keywords, AFL does not."""
    pf = token_coverage("json", json_campaigns[("json", "pfuzzer")])
    afl = token_coverage("json", json_campaigns[("json", "afl")])
    assert {"true", "false", "null"} <= pf.found
    assert not ({"true", "false", "null"} & afl.found)
    assert pf.total_found > afl.total_found


def test_klee_finds_json_keywords(json_campaigns):
    """Paper: 'KLEE ... is still able to cover most of the tokens'."""
    klee = token_coverage("json", json_campaigns[("json", "klee")])
    assert "null" in klee.found
    assert klee.total_found >= 6


def test_figure3_pipeline_renders(json_campaigns):
    coverages = figure3(json_campaigns, subjects=["json"], tools=["pfuzzer", "afl", "klee"])
    text = render_figure3(coverages, ["json"], ["pfuzzer", "afl", "klee"])
    assert "json" in text and "pfuzzer" in text


def test_figure2_pipeline_renders(json_campaigns):
    grid = {
        key: coverage_of_inputs("json", inputs)
        for key, inputs in json_campaigns.items()
    }
    text = render_figure2(grid, ["json"], ["pfuzzer", "afl", "klee"])
    assert "pfuzzer" in text
    assert grid[("json", "pfuzzer")] > 0.0


def test_pfuzzer_needs_orders_of_magnitude_fewer_tests():
    """§5.2: AFL generates ~1000x more inputs for its coverage; here we
    check the direction — pFuzzer reaches keyword tokens within a budget
    where the random baseline reaches none."""
    pf = run_campaign("pfuzzer", "json", 1500, seed=3)
    rand = run_campaign("random", "json", 1500, seed=3)
    pf_tokens = token_coverage("json", pf.valid_inputs)
    rand_tokens = token_coverage("json", rand.valid_inputs)
    long_pf = sum(f for length, (f, _) in pf_tokens.by_length.items() if length > 3)
    long_rand = sum(f for length, (f, _) in rand_tokens.by_length.items() if length > 3)
    assert long_pf > long_rand
