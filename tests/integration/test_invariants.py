"""Cross-cutting invariants of the whole pipeline, per subject."""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.eval.extract import extract_tokens
from repro.eval.tokens import TOKEN_INVENTORIES
from repro.runtime.harness import run_subject
from repro.subjects.registry import SUBJECT_NAMES, load_subject

pytestmark = pytest.mark.slow  # campaign-grid integration tests

BUDGETS = {"ini": 300, "csv": 300, "json": 500, "tinyc": 500, "mjs": 600}


@pytest.fixture(scope="module", params=SUBJECT_NAMES)
def campaign(request):
    name = request.param
    subject = load_subject(name)
    result = PFuzzer(
        subject, FuzzerConfig(seed=3, max_executions=BUDGETS[name])
    ).run()
    return name, subject, result


def test_every_emitted_input_is_valid(campaign):
    name, subject, result = campaign
    for text in result.valid_inputs:
        assert subject.accepts(text), (name, text)


def test_extracted_tokens_come_from_inventory(campaign):
    name, _, result = campaign
    inventory = {token.name for token in TOKEN_INVENTORIES[name]}
    for text in result.valid_inputs:
        assert extract_tokens(name, text) <= inventory, (name, text)


def test_valid_branch_union_matches_reruns(campaign):
    """vBr is exactly the union of the emitted inputs' branches: the
    tracer must be deterministic for the claim to hold."""
    name, subject, result = campaign
    rerun_union = frozenset()
    for text in result.valid_inputs:
        rerun_union |= run_subject(subject, text).branches
    assert rerun_union == result.valid_branches, name


def test_execution_accounting(campaign):
    _, _, result = campaign
    assert result.executions <= max(BUDGETS.values())
    assert result.rejected + result.hangs <= result.executions


def test_emitted_inputs_have_increasing_coverage(campaign):
    """Each emission covered something new at its time: replaying the
    emission order must grow the union strictly at every step."""
    name, subject, result = campaign
    union = frozenset()
    for text in result.valid_inputs:
        branches = run_subject(subject, text).branches
        assert branches - union, (name, text)
        union |= branches
