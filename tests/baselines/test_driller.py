"""Driller-style hybrid: stagnation-triggered symbolic stints."""

from repro.baselines.afl import AFLConfig, AFLFuzzer
from repro.baselines.driller import DrillerConfig, DrillerFuzzer


def test_budget_respected(ini_subject):
    result = DrillerFuzzer(
        ini_subject, DrillerConfig(seed=1, max_executions=300)
    ).run()
    assert result.executions <= 300


def test_outputs_are_valid(json_subject):
    result = DrillerFuzzer(
        json_subject, DrillerConfig(seed=1, max_executions=800)
    ).run()
    assert result.valid_inputs
    for text in result.valid_inputs:
        assert json_subject.accepts(text), repr(text)


def test_stints_fire_on_stagnation(json_subject):
    fuzzer = DrillerFuzzer(
        json_subject,
        DrillerConfig(seed=1, max_executions=3_000, stagnation_threshold=200),
    )
    fuzzer.run()
    assert fuzzer.stints > 0


def test_no_stints_before_threshold(ini_subject):
    fuzzer = DrillerFuzzer(
        ini_subject,
        DrillerConfig(seed=1, max_executions=150, stagnation_threshold=10_000),
    )
    fuzzer.run()
    assert fuzzer.stints == 0


def test_drilling_finds_json_keywords(json_subject):
    """The Driller pitch: symbolic stints get past keyword roadblocks the
    havoc stage cannot guess."""
    driller = DrillerFuzzer(
        json_subject,
        DrillerConfig(seed=1, max_executions=4_000, stagnation_threshold=300),
    ).run()
    afl = AFLFuzzer(json_subject, AFLConfig(seed=1, max_executions=4_000)).run()
    driller_corpus = " ".join(driller.valid_inputs)
    afl_corpus = " ".join(afl.valid_inputs)
    found_by_driller = sum(
        keyword in driller_corpus for keyword in ("true", "false", "null")
    )
    found_by_afl = sum(keyword in afl_corpus for keyword in ("true", "false", "null"))
    assert found_by_driller > found_by_afl


def test_deterministic_with_seed(json_subject):
    first = DrillerFuzzer(
        json_subject, DrillerConfig(seed=4, max_executions=400)
    ).run()
    second = DrillerFuzzer(
        json_subject, DrillerConfig(seed=4, max_executions=400)
    ).run()
    assert first.valid_inputs == second.valid_inputs
