"""Steelix-style baseline: comparison-progress feedback."""

from repro.baselines.afl import AFLConfig, AFLFuzzer
from repro.baselines.steelix import SteelixConfig, SteelixFuzzer
from repro.runtime.harness import run_subject


def test_harvest_progress_advances_one_byte(json_subject):
    fuzzer = SteelixFuzzer(json_subject, SteelixConfig(seed=1, max_executions=10))
    run = run_subject(json_subject, "trXX")
    fuzzer._harvest_progress(run)
    mutants = {bytes(m).decode("latin-1") for m in fuzzer._magic_worklist}
    # "tr" matched two bytes of "true": the next byte gets fixed, the rest
    # stays (no truncation — Steelix mutates in place).
    assert "truX" in mutants


def test_no_progress_no_mutants(json_subject):
    fuzzer = SteelixFuzzer(json_subject, SteelixConfig(seed=1, max_executions=10))
    run = run_subject(json_subject, "XX")
    fuzzer._harvest_progress(run)
    assert not any(
        bytes(m).decode("latin-1").startswith(("t", "f", "n"))
        for m in fuzzer._magic_worklist
    )


def test_worklist_deduplicates(json_subject):
    fuzzer = SteelixFuzzer(json_subject, SteelixConfig(seed=1, max_executions=10))
    run = run_subject(json_subject, "trXX")
    fuzzer._harvest_progress(run)
    size = len(fuzzer._magic_worklist)
    fuzzer._harvest_progress(run)
    assert len(fuzzer._magic_worklist) == size


def test_worklist_bounded(json_subject):
    config = SteelixConfig(seed=1, max_executions=10, magic_worklist_limit=3)
    fuzzer = SteelixFuzzer(json_subject, config)
    for text in ("trAA", "trBB", "trCC", "trDD", "trEE"):
        fuzzer._harvest_progress(run_subject(json_subject, text))
    assert len(fuzzer._magic_worklist) <= 3


def test_finds_json_keywords_where_afl_does_not(json_subject):
    """The §6.2 comparison, made measurable."""
    steelix = SteelixFuzzer(
        json_subject, SteelixConfig(seed=1, max_executions=2_500)
    ).run()
    afl = AFLFuzzer(json_subject, AFLConfig(seed=1, max_executions=2_500)).run()
    steelix_corpus = " ".join(steelix.valid_inputs)
    afl_corpus = " ".join(afl.valid_inputs)
    assert "true" in steelix_corpus or "null" in steelix_corpus
    assert "true" not in afl_corpus and "null" not in afl_corpus


def test_outputs_are_valid(json_subject):
    result = SteelixFuzzer(
        json_subject, SteelixConfig(seed=2, max_executions=800)
    ).run()
    for text in result.valid_inputs:
        assert json_subject.accepts(text), repr(text)


def test_budget_respected(ini_subject):
    result = SteelixFuzzer(
        ini_subject, SteelixConfig(seed=1, max_executions=200)
    ).run()
    assert result.executions <= 200


def test_campaign_dispatch():
    from repro.eval.campaign import run_campaign

    output = run_campaign("steelix", "json", budget=150, seed=1)
    assert output.tool == "steelix"
    assert output.executions <= 150
