"""AFL-style baseline: bitmap semantics and campaign behaviour."""

from repro.baselines.afl import (
    AFLConfig,
    AFLFuzzer,
    MAP_SIZE,
    bitmap_of,
    classify_count,
)


def test_classify_count_buckets():
    assert classify_count(0) == 0
    assert classify_count(1) == 1
    assert classify_count(2) == 2
    assert classify_count(3) == 3
    assert classify_count(4) == 4
    assert classify_count(7) == 4
    assert classify_count(8) == 5
    assert classify_count(16) == 6
    assert classify_count(32) == 7
    assert classify_count(128) == 8
    assert classify_count(10_000) == 8


def test_bitmap_indexes_within_map():
    arcs = {("f", 1, 2): 1, ("f", 2, 3): 2, ("g", 1, 5): 3}
    bitmap = bitmap_of(arcs)
    assert all(0 <= index < MAP_SIZE for index in bitmap)
    assert all(bucket >= 1 for bucket in bitmap.values())


def test_seeded_with_space(ini_subject):
    fuzzer = AFLFuzzer(ini_subject, AFLConfig(seed=1, max_executions=10))
    result = fuzzer.run()
    assert " " in result.valid_inputs  # the §5.1 seed is valid and kept


def test_budget_respected(ini_subject):
    result = AFLFuzzer(ini_subject, AFLConfig(seed=1, max_executions=150)).run()
    assert result.executions <= 150


def test_valid_outputs_are_valid(ini_subject):
    result = AFLFuzzer(ini_subject, AFLConfig(seed=1, max_executions=600)).run()
    assert result.valid_inputs
    for text in result.valid_inputs:
        assert ini_subject.accepts(text), repr(text)


def test_queue_grows_beyond_seed(ini_subject):
    fuzzer = AFLFuzzer(ini_subject, AFLConfig(seed=1, max_executions=800))
    fuzzer.run()
    assert len(fuzzer._queue) > 1


def test_deterministic_with_seed(ini_subject):
    first = AFLFuzzer(ini_subject, AFLConfig(seed=5, max_executions=300)).run()
    second = AFLFuzzer(ini_subject, AFLConfig(seed=5, max_executions=300)).run()
    assert first.valid_inputs == second.valid_inputs


def test_havoc_respects_max_length(ini_subject):
    config = AFLConfig(seed=1, max_executions=400, max_length=10)
    fuzzer = AFLFuzzer(ini_subject, config)
    result = fuzzer.run()
    for entry in fuzzer._queue:
        assert len(entry.data) <= config.max_length
    for text in result.valid_inputs:
        assert len(text) <= config.max_length


def test_rarely_finds_keywords_on_json(json_subject):
    """The paper's core AFL observation: no json keywords at modest budgets."""
    result = AFLFuzzer(json_subject, AFLConfig(seed=1, max_executions=2000)).run()
    corpus = " ".join(result.valid_inputs)
    assert "true" not in corpus
    assert "false" not in corpus
    assert "null" not in corpus
