"""KLEE-style baseline: decision flipping and exploration shape."""

from repro.baselines.klee import KleeConfig, KleeExplorer
from repro.taint.events import ComparisonEvent, ComparisonKind


def explorer(subject, **kwargs):
    defaults = dict(seed=1, max_executions=500)
    defaults.update(kwargs)
    return KleeExplorer(subject, KleeConfig(**defaults))


def event(kind, index, other, result):
    return ComparisonEvent(kind, index, "x", other, result)


def test_flip_failed_eq_splices_value(json_subject):
    klee = explorer(json_subject)
    flipped = klee._flip("xyz", event(ComparisonKind.EQ, 1, "(", False))
    assert flipped == "x(z"


def test_flip_succeeded_eq_breaks_value(json_subject):
    klee = explorer(json_subject)
    flipped = klee._flip("x(z", event(ComparisonKind.EQ, 1, "(", True))
    assert flipped is not None
    assert flipped[1] != "("


def strcmp_event(index, concrete, expected, result):
    return ComparisonEvent(ComparisonKind.STRCMP, index, concrete, expected, result)


def test_flip_strcmp_advances_one_character(json_subject):
    # Symbolic execution forks per character of strcmp's loop: flipping the
    # "nuXY" vs "null" decision fixes only the first mismatching character.
    klee = explorer(json_subject)
    flipped = klee._flip("nuXY", strcmp_event(0, "nuXY", "null", False))
    assert flipped == "nulY"
    # Next generation fixes the next character, and so on.
    flipped = klee._flip("nulY", strcmp_event(0, "nulY", "null", False))
    assert flipped == "null"


def test_flip_strcmp_succeeded_breaks_first_char(json_subject):
    klee = explorer(json_subject)
    flipped = klee._flip("null", strcmp_event(0, "null", "null", True))
    assert flipped is not None
    assert flipped[0] != "n"


def test_flip_class_membership(json_subject):
    klee = explorer(json_subject)
    flipped = klee._flip("x", event(ComparisonKind.IN, 0, "0123456789", False))
    assert flipped is not None
    assert flipped[0] in "0123456789"
    flipped_out = klee._flip("5", event(ComparisonKind.IN, 0, "0123456789", True))
    assert flipped_out is not None
    assert flipped_out[0] not in "0123456789"


def test_flip_relational_boundary(json_subject):
    klee = explorer(json_subject)
    # (c <= '9') was True; flipping wants c > '9'.
    flipped = klee._flip("5", event(ComparisonKind.LE, 0, "9", True))
    assert flipped is not None
    assert flipped[0] > "9"


def test_finds_json_keywords_quickly(json_subject):
    """Constraint solving makes keywords easy (paper: KLEE covers most
    json tokens)."""
    result = explorer(json_subject, max_executions=2000).run()
    corpus = set(result.valid_inputs)
    assert any("null" in text for text in corpus)
    assert any("true" in text for text in corpus)


def test_budget_respected(json_subject):
    result = explorer(json_subject, max_executions=120).run()
    assert result.executions <= 120


def test_valid_outputs_are_valid(ini_subject):
    result = explorer(ini_subject, max_executions=800).run()
    assert result.valid_inputs
    for text in result.valid_inputs:
        assert ini_subject.accepts(text), repr(text)


def test_path_explosion_on_mjs(mjs_subject):
    """§5.2: breadth-first exploration stays shallow on mjs."""
    result = explorer(mjs_subject, max_executions=600).run()
    # Almost all effort burns on short inputs; nothing beyond trivial
    # lengths is reached within the budget.
    assert all(len(text) <= 4 for text in result.valid_inputs)


def test_deterministic_with_seed(json_subject):
    first = explorer(json_subject, seed=2, max_executions=300).run()
    second = explorer(json_subject, seed=2, max_executions=300).run()
    assert first.valid_inputs == second.valid_inputs
