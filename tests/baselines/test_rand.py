"""Blind random fuzzer."""

from repro.baselines.rand import RandomConfig, RandomFuzzer


def test_budget_respected(ini_subject):
    result = RandomFuzzer(ini_subject, RandomConfig(seed=1, max_executions=100)).run()
    assert result.executions == 100


def test_valid_inputs_are_valid(ini_subject):
    result = RandomFuzzer(ini_subject, RandomConfig(seed=1, max_executions=300)).run()
    for text in result.valid_inputs:
        assert ini_subject.accepts(text)


def test_deterministic_with_seed(csv_subject):
    first = RandomFuzzer(csv_subject, RandomConfig(seed=3, max_executions=100)).run()
    second = RandomFuzzer(csv_subject, RandomConfig(seed=3, max_executions=100)).run()
    assert first.valid_inputs == second.valid_inputs


def test_finds_shallow_inputs_on_permissive_subject(csv_subject):
    # csv accepts most strings -> random fuzzing shines (paper §5.2).
    result = RandomFuzzer(csv_subject, RandomConfig(seed=1, max_executions=200)).run()
    assert len(result.valid_inputs) > 50


def test_mostly_rejected_on_strict_subject(json_subject):
    result = RandomFuzzer(json_subject, RandomConfig(seed=1, max_executions=200)).run()
    assert result.rejected > 150


def test_no_duplicate_valid_inputs(csv_subject):
    result = RandomFuzzer(csv_subject, RandomConfig(seed=2, max_executions=200)).run()
    assert len(result.valid_inputs) == len(set(result.valid_inputs))
