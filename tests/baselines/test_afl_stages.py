"""AFL deterministic stages and havoc mutation properties."""

import random

from repro.baselines.afl import AFLConfig, AFLFuzzer, QueueEntry


def make_fuzzer(ini_subject, **kwargs):
    defaults = dict(seed=1, max_executions=10_000)
    defaults.update(kwargs)
    return AFLFuzzer(ini_subject, AFLConfig(**defaults))


def test_deterministic_stage_covers_every_bit(ini_subject):
    """Walking bitflips alone produce 8 mutants per byte."""
    fuzzer = make_fuzzer(ini_subject, max_executions=10_000)
    seen = []
    original_run = fuzzer._run_and_consider

    def spy(data):
        seen.append(bytes(data))
        return original_run(data)

    fuzzer._run_and_consider = spy
    entry = QueueEntry(bytearray(b"ab"), valid=True)
    fuzzer._deterministic(entry)
    # bitflips: 16, byteflip: 2, arith: 20, interesting: 18
    assert len(seen) == 16 + 2 + 20 + 18
    # Every single-bit flip of both bytes appears.
    for position in range(2):
        for bit in range(8):
            expected = bytearray(b"ab")
            expected[position] ^= 1 << bit
            assert bytes(expected) in seen


def test_deterministic_stage_stops_on_budget(ini_subject):
    fuzzer = make_fuzzer(ini_subject, max_executions=5)
    alive = fuzzer._deterministic(QueueEntry(bytearray(b"abcdef"), valid=True))
    assert not alive
    assert fuzzer._result.executions == 5


def test_havoc_respects_length_bound(ini_subject):
    fuzzer = make_fuzzer(ini_subject, max_length=16)
    data = bytearray(b"0123456789")
    for _ in range(300):
        mutant = fuzzer._havoc_once(data)
        assert len(mutant) <= 16


def test_havoc_never_mutates_in_place(ini_subject):
    fuzzer = make_fuzzer(ini_subject)
    data = bytearray(b"stable")
    for _ in range(100):
        fuzzer._havoc_once(data)
    assert data == bytearray(b"stable")


def test_splice_uses_queue_material(ini_subject):
    fuzzer = make_fuzzer(ini_subject, seed=3)
    fuzzer._queue.append(QueueEntry(bytearray(b"[section]"), valid=True))
    produced = set()
    for _ in range(400):
        produced.add(bytes(fuzzer._havoc_once(bytearray(b"a=1"))))
    # At least one splice pulled bytes from the queued entry.
    assert any(b"]" in mutant or b"[" in mutant for mutant in produced)
