"""Grammar mining from instrumented runs."""

from repro.miner.grammar import NONTERM, TERM
from repro.miner.mine import GrammarMiner, mine_grammar


def test_mined_grammar_has_parser_function_nonterminals(expr_subject):
    grammar = mine_grammar(expr_subject, ["1+1", "(2)"])
    names = grammar.nonterminals()
    assert "_expression" in names
    assert "_factor" in names
    assert "_number" in names


def test_mined_terminals_are_clean(expr_subject):
    # Number rules must contain digits only — peeked delimiters belong to
    # the consuming frame, not the peeking one.
    grammar = mine_grammar(expr_subject, ["1+1", "(2-94)"])
    for expansion in grammar.rules["_number"]:
        for kind, value in expansion:
            assert kind == TERM
            assert value.isdigit(), value


def test_mined_grammar_is_recursive(expr_subject):
    grammar = mine_grammar(expr_subject, ["(1)", "((2))"])
    assert grammar.is_recursive("_expression")


def test_rejected_inputs_skipped(expr_subject):
    miner = GrammarMiner(expr_subject)
    assert miner.add_input("1")
    assert not miner.add_input("A")
    grammar = miner.finish()
    assert "_number" in grammar.nonterminals()


def test_alternatives_accumulate_across_inputs(expr_subject):
    grammar = mine_grammar(expr_subject, ["1", "1+1", "1-1"])
    expansions = grammar.rules["_expression"]
    assert len(expansions) >= 3  # plain, plus, minus


def test_mining_tinyc_keywords(tinyc_subject):
    grammar = mine_grammar(tinyc_subject, ["while (1<a) ;", "a=1;"])
    rendered = str(grammar)
    assert "while" in rendered
    assert "statement" in rendered or "_statement" in rendered


def test_start_rule_links_to_root(expr_subject):
    grammar = mine_grammar(expr_subject, ["1"], start="S")
    assert grammar.start == "S"
    assert grammar.rules["S"]
