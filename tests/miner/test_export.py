"""Mined-grammar export: EBNF, CFG conversion, keyword recovery."""

from repro.miner.export import keyword_terminals, terminal_alphabet, to_cfg, to_ebnf
from repro.miner.grammar import Grammar, NONTERM, TERM
from repro.miner.mine import mine_grammar


def sample_grammar():
    grammar = Grammar("s")
    grammar.add_rule("s", ((TERM, "while"), (NONTERM, "p")))
    grammar.add_rule("p", ((TERM, "("), (NONTERM, "p"), (TERM, ")")))
    grammar.add_rule("p", ((TERM, "x"),))
    return grammar


def test_to_ebnf_renders_rules():
    text = to_ebnf(sample_grammar())
    assert '<s> ::= "while" <p>' in text
    assert '"("' in text
    # Start symbol renders first.
    assert text.splitlines()[0].startswith("<s>")


def test_to_ebnf_epsilon():
    grammar = Grammar("s")
    grammar.add_rule("s", ())
    assert "ε" in to_ebnf(grammar)


def test_to_cfg_splits_multichar_terminals():
    cfg = to_cfg(sample_grammar())
    (rule,) = cfg.productions_of("s")
    assert rule.body == ("w", "h", "i", "l", "e", "p")
    assert cfg.start == "s"


def test_terminal_alphabet():
    alphabet = terminal_alphabet(sample_grammar())
    assert {"w", "h", "i", "l", "e", "(", ")", "x"} == alphabet


def test_keyword_terminals():
    assert keyword_terminals(sample_grammar()) == {"while"}


def test_mined_expr_round_trips_through_table_engine(expr_subject):
    """§7.4 meets §7.1: mine -> convert -> build LL(1) table -> parse."""
    from repro.runtime.stream import InputStream
    from repro.tables.engine import TableParser
    from repro.tables.grammar import LL1Conflict, build_table

    mined = mine_grammar(expr_subject, ["1", "2"])  # digits only: trivially LL(1)
    cfg = to_cfg(mined)
    try:
        table = build_table(cfg)
    except LL1Conflict:
        return  # acceptable: mined grammars need not be LL(1)
    parser = TableParser(table)
    assert parser.parse(InputStream("1")) >= 1


def test_mined_tinyc_keywords_recovered(tinyc_subject):
    mined = mine_grammar(tinyc_subject, ["while (1<a) ;", "if (a) b=2;"])
    keywords = keyword_terminals(mined)
    assert "while" in keywords
    assert "if" in keywords
