"""Grammar-based generation from mined grammars."""

from repro.miner.generate import GrammarFuzzer
from repro.miner.grammar import Grammar, NONTERM, TERM
from repro.miner.mine import mine_grammar


def paren_grammar():
    grammar = Grammar("s")
    grammar.add_rule("s", ((TERM, "x"),))
    grammar.add_rule("s", ((TERM, "("), (NONTERM, "s"), (TERM, ")")))
    return grammar


def test_generation_terminates_on_recursive_grammar():
    fuzzer = GrammarFuzzer(paren_grammar(), seed=1, max_depth=5)
    for _ in range(50):
        sentence = fuzzer.generate()
        assert sentence.count("(") == sentence.count(")")
        assert sentence.endswith("x") or "x" in sentence


def test_depth_budget_bounds_nesting():
    fuzzer = GrammarFuzzer(paren_grammar(), seed=2, max_depth=4)
    assert all(s.count("(") <= 5 for s in fuzzer.generate_many(100))


def test_terminates_without_terminal_only_alternative():
    grammar = Grammar("a")
    grammar.add_rule("a", ((TERM, "x"), (NONTERM, "b")))
    grammar.add_rule("a", ((NONTERM, "a"),))
    grammar.add_rule("b", ((TERM, "y"),))
    fuzzer = GrammarFuzzer(grammar, seed=3, max_depth=3)
    assert fuzzer.generate() in ("xy",)


def test_deterministic_with_seed():
    first = GrammarFuzzer(paren_grammar(), seed=7).generate_many(10)
    second = GrammarFuzzer(paren_grammar(), seed=7).generate_many(10)
    assert first == second


def test_mine_then_generate_round_trip(expr_subject):
    """The §7.4 pipeline: pFuzzer corpus -> grammar -> deep valid inputs."""
    corpus = ["1", "1+1", "(2-94)", "-1", "(1)", "12"]
    grammar = mine_grammar(expr_subject, corpus)
    fuzzer = GrammarFuzzer(grammar, seed=5, max_depth=8)
    generated = fuzzer.generate_many(30)
    accepted = sum(expr_subject.accepts(text) for text in generated)
    assert accepted == len(generated)
    # And the generated corpus reaches deeper nesting than the mined one.
    assert max(text.count("(") for text in generated) > max(
        text.count("(") for text in corpus
    )


def test_unknown_start_yields_empty():
    fuzzer = GrammarFuzzer(paren_grammar(), seed=1)
    assert fuzzer.generate("missing") == ""
