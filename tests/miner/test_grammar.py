"""Grammar representation."""

from repro.miner.grammar import Grammar, NONTERM, TERM


def make():
    grammar = Grammar("start")
    grammar.add_rule("start", ((NONTERM, "expr"),))
    grammar.add_rule("expr", ((TERM, "1"),))
    grammar.add_rule("expr", ((TERM, "("), (NONTERM, "expr"), (TERM, ")")))
    return grammar


def test_add_rule_dedupes():
    grammar = make()
    grammar.add_rule("expr", ((TERM, "1"),))
    assert len(grammar.rules["expr"]) == 2


def test_nonterminals():
    assert make().nonterminals() == {"start", "expr"}


def test_is_recursive():
    grammar = make()
    assert grammar.is_recursive("expr")
    assert not grammar.is_recursive("start")


def test_prune_drops_dangling_references():
    grammar = make()
    grammar.add_rule("expr", ((NONTERM, "ghost"), (TERM, "x")))
    grammar.prune()
    for expansion in grammar.rules["expr"]:
        for kind, value in expansion:
            assert kind == TERM or value in grammar.rules


def test_str_rendering():
    text = str(make())
    assert "<expr> ::=" in text
    assert "'('" in text
