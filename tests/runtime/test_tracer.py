"""Coverage tracer: arcs, clock, depth and call stack."""

import sys

from repro.runtime.tracer import CoverageTracer

THIS_FILE = __file__


def helper_a(n):
    if n > 0:
        return helper_b(n)
    return 0


def helper_b(n):
    return n + 1


def test_traces_only_listed_files():
    tracer = CoverageTracer([THIS_FILE])
    with tracer:
        helper_a(1)
        sorted([3, 1])  # stdlib frames must not be traced
    files = {arc[0] for arc in tracer.arcs}
    assert files == {THIS_FILE}


def test_arcs_capture_branching():
    tracer_true = CoverageTracer([THIS_FILE])
    with tracer_true:
        helper_a(1)
    tracer_false = CoverageTracer([THIS_FILE])
    with tracer_false:
        helper_a(0)
    assert tracer_true.arc_set() != tracer_false.arc_set()


def test_clock_monotone_and_arc_stamps():
    tracer = CoverageTracer([THIS_FILE])
    with tracer:
        helper_a(1)
    assert tracer.clock > 0
    stamps = sorted(tracer.arcs.values())
    assert stamps[0] >= 1
    assert stamps[-1] <= tracer.clock


def test_arcs_until_cutoff():
    tracer = CoverageTracer([THIS_FILE])
    with tracer:
        helper_a(1)
        helper_a(0)
    full = tracer.arc_set()
    assert tracer.arcs_until(None) == full
    early = tracer.arcs_until(1)
    assert early < full
    assert tracer.arcs_until(tracer.clock) == full


def test_depth_tracking():
    depths = []
    tracer = CoverageTracer([THIS_FILE])

    def probe():
        depths.append(tracer.current_depth())

    with tracer:
        helper_with_probe(probe)
    assert max(depths) >= 2  # helper_with_probe -> inner
    assert tracer.current_depth() == 0  # reset on exit


def helper_with_probe(probe):
    def inner():
        probe()

    inner()


def test_call_stack_names_and_serials():
    stacks = []
    tracer = CoverageTracer([THIS_FILE])

    def probe():
        stacks.append(tracer.current_stack())

    with tracer:
        helper_with_probe(probe)
    names = [name for name, _ in stacks[-1]]
    assert names[0] == "helper_with_probe"
    assert "inner" in names  # probe itself is also traced (same file)
    serials = [serial for _, serial in stacks[-1]]
    assert serials == sorted(serials)


def test_depth_resets_after_exception():
    tracer = CoverageTracer([THIS_FILE])

    def boom():
        raise RuntimeError("x")

    try:
        with tracer:
            boom()
    except RuntimeError:
        pass
    assert tracer.current_depth() == 0
    assert tracer.current_stack() == ()


def test_line_set_derives_from_arcs():
    tracer = CoverageTracer([THIS_FILE])
    with tracer:
        helper_b(1)
    lines = tracer.line_set()
    assert all(filename == THIS_FILE for filename, _ in lines)
    assert lines


def test_previous_trace_restored():
    sentinel = sys.gettrace()
    tracer = CoverageTracer([THIS_FILE])
    with tracer:
        pass
    assert sys.gettrace() is sentinel
