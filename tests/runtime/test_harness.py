"""Run harness: exit statuses and heuristic coverage cutoff."""

from repro.runtime.harness import ExitStatus, run_subject
from repro.subjects.registry import load_subject


def test_valid_run(expr_subject):
    result = run_subject(expr_subject, "1+1")
    assert result.status is ExitStatus.VALID
    assert result.valid
    assert result.value == 2
    assert result.error is None
    assert result.branches


def test_rejected_run(expr_subject):
    result = run_subject(expr_subject, "A")
    assert result.status is ExitStatus.REJECTED
    assert not result.valid
    assert result.error is not None


def test_hang_run():
    subject = load_subject("tinyc")
    result = run_subject(subject, "while(9);")
    assert result.status is ExitStatus.HANG


def test_comparisons_collected(expr_subject):
    result = run_subject(expr_subject, "A")
    assert result.recorder.comparisons
    assert result.recorder.last_compared_index() == 0


def test_eof_accessed_flag(expr_subject):
    assert run_subject(expr_subject, "(").eof_accessed
    assert run_subject(expr_subject, "A").recorder.comparisons


def test_branches_for_heuristic_cuts_error_handling(expr_subject):
    # "1A" is rejected at index 1; branches after the first comparison of
    # index 1 (including rejection plumbing) must not count.
    rejected = run_subject(expr_subject, "1A")
    assert rejected.branches_for_heuristic() <= rejected.branches
    assert len(rejected.branches_for_heuristic()) < len(rejected.branches)


def test_branches_for_heuristic_full_for_valid(expr_subject):
    valid = run_subject(expr_subject, "1")
    assert valid.branches_for_heuristic() == valid.branches


def test_trace_coverage_disabled(expr_subject):
    result = run_subject(expr_subject, "1", trace_coverage=False)
    assert result.valid
    assert result.arcs == {}
    assert result.branches == frozenset()
    # Comparisons are still recorded without the tracer.
    assert result.recorder.comparisons


def test_average_stack_size_nonzero_during_parse(expr_subject):
    result = run_subject(expr_subject, "((1))")
    assert result.average_stack_size() > 0


def test_deeper_nesting_raises_stack_metric(expr_subject):
    shallow = run_subject(expr_subject, "(1")
    deep = run_subject(expr_subject, "((((1")
    assert deep.average_stack_size() > shallow.average_stack_size()
