"""Timeout and rlimit plumbing for campaign workers."""

import time

import pytest

from repro.runtime.limits import (
    RunLimits,
    RunTimeout,
    apply_rlimits,
    peak_rss_bytes,
    time_limit,
)


def test_time_limit_raises_on_overrun():
    with pytest.raises(RunTimeout, match="wall-clock"):
        with time_limit(0.05):
            time.sleep(5.0)


def test_time_limit_noop_when_fast_enough():
    with time_limit(5.0):
        value = 1 + 1
    assert value == 2


@pytest.mark.parametrize("seconds", [None, 0, -1.0])
def test_time_limit_disabled(seconds):
    with time_limit(seconds):
        time.sleep(0.01)


def test_time_limit_restores_previous_timer():
    import signal

    with time_limit(5.0):
        pass
    # The itimer is disarmed afterwards: no residual alarm pending.
    remaining, _ = signal.getitimer(signal.ITIMER_REAL)
    assert remaining == 0.0


def test_time_limit_nested_body_exception_propagates():
    with pytest.raises(KeyError):
        with time_limit(5.0):
            raise KeyError("inner")


def test_peak_rss_is_plausible():
    peak = peak_rss_bytes()
    assert 1_000_000 < peak < 1_000_000_000_000  # >1 MB, <1 TB


def test_apply_rlimits_noop_without_cap():
    apply_rlimits(RunLimits())  # must not raise


def test_apply_rlimits_with_generous_cap():
    import resource

    before = resource.getrlimit(resource.RLIMIT_AS)
    try:
        apply_rlimits(RunLimits(address_space_bytes=1 << 40))  # 1 TB: harmless
        soft, _ = resource.getrlimit(resource.RLIMIT_AS)
        assert soft in (1 << 40, before[0])  # applied, or clamped to hard cap
    finally:
        resource.setrlimit(resource.RLIMIT_AS, before)


def test_peak_rss_kb_is_the_byte_figure_in_kilobytes():
    from repro.runtime.limits import peak_rss_kb

    kb = peak_rss_kb()
    assert kb > 0
    assert abs(kb - peak_rss_bytes() // 1024) <= 1024  # RSS may grow between calls
