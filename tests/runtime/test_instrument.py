"""Backend equivalence: the AST instrumentation backend vs the settrace tracer.

The AST backend (:mod:`repro.runtime.instrument`) must be observationally
identical to the reference settrace tracer — same arcs *with the same
first-traversal clocks*, same exit status, same heuristic branch sets, same
stack-size averages — on every registered subject, for valid, rejected and
EOF-truncated inputs alike.  The fuzzer's behaviour (scores, queue order,
emitted inputs) is a pure function of these observations, so equality here
is what makes campaigns byte-identical across backends.
"""

from __future__ import annotations

import pytest

from repro.runtime.harness import COVERAGE_BACKENDS, run_subject
from repro.runtime.instrument import (
    UnsupportedConstruct,
    instrumented_subject,
)
from repro.subjects.registry import ALL_SUBJECT_NAMES, load_subject

# Per-subject corpora mixing accepted inputs, rejected inputs and inputs
# failing with an incomplete-input (EOF) error, so every tracer code path —
# returns, raises, loop back-edges, handler dispatch — is exercised.
CORPUS = {
    "expr": ["", "1+2", "(3*4)-5", "1A", "((", "7/0", "1+"],
    "ini": ["", "[s]\nk=v\n", "[sec", "k=v\n", "[a]\nx", "[a]\n;c\nk=v\n"],
    "csv": ["", "a,b\n", "a,b\nc,d\n", '"x,y",z\n', '"unterminated', "a\n\n"],
    "json": ["", "1", "[1, 2]", '{"a": true}', "[1,", '"str"', "nul", "tru",
             "-1.5e3", "[[[1]]]", '{"a": {"b": []}}'],
    "tinyc": ["", "1;", "{ i=1; while (i<5) i=i+2; }", "if (1) ; else ;",
              "do ; while (0);", "{ x", "a=b=2;", "while (1) ;"],
    "mjs": ["", "1;", "var x = 1; print(x);", "if (true) { 1; } else { 2; }",
            "function f(a) { return a + 1; } f(2);",
            'var s = "a" + 1;', "[1,2,3];", "({a: 1});",
            "while (false) { 1; }", "var x = ", "throw 1;",
            "for (var i = 0; i < 3; i = i + 1) { print(i); }",
            "undefined_var;", "1 === 1;", "print(1, 2);",
            "var a = [1]; a[0];", "JSON.stringify([1, {a: 2}]);"],
}

CASES = [
    (name, text) for name in ALL_SUBJECT_NAMES for text in CORPUS[name]
]


@pytest.mark.parametrize(
    "subject_name,text",
    CASES,
    ids=[f"{name}-{text!r}" for name, text in CASES],
)
def test_backends_equivalent(subject_name, text):
    subject = load_subject(subject_name)
    traced = run_subject(subject, text, coverage_backend="settrace")
    compiled = run_subject(subject, text, coverage_backend="ast")

    assert traced.status == compiled.status
    # Same arc table instance (per subject class), so ids are comparable
    # directly — but compare decoded arcs for a readable diff on failure.
    table = traced.arc_table
    assert compiled.arc_table is table
    traced_arcs = {table.arc(a): clock for a, clock in traced.arcs.items()}
    compiled_arcs = {table.arc(a): clock for a, clock in compiled.arcs.items()}
    assert traced_arcs == compiled_arcs
    assert traced.branches == compiled.branches
    assert traced.branches_for_heuristic() == compiled.branches_for_heuristic()
    assert traced.average_stack_size() == pytest.approx(
        compiled.average_stack_size()
    )
    assert traced.path_signature() == compiled.path_signature()


def test_backend_names_exported():
    assert COVERAGE_BACKENDS == ("settrace", "ast")


def test_unknown_backend_rejected(expr_subject):
    with pytest.raises(ValueError, match="backend"):
        run_subject(expr_subject, "1", coverage_backend="gcov")


def test_instrumented_clone_is_cached(expr_subject):
    clone_a, collector_a = instrumented_subject(expr_subject)
    clone_b, collector_b = instrumented_subject(expr_subject)
    # The expensive parse/instrument/compile work is keyed on the subject
    # class; only the cheap per-instance state is rebuilt.
    assert collector_a is collector_b
    assert type(clone_a) is type(clone_b)


def test_collector_reset_preserves_closure_bindings(expr_subject):
    """reset() must mutate state in place — closures bind the containers."""
    clone, collector = instrumented_subject(expr_subject)
    run_subject(expr_subject, "1+2", coverage_backend="ast")
    assert collector.arcs  # left over from the run above
    arcs_container = collector.arcs
    collector.reset()
    assert collector.arcs is arcs_container
    assert not collector.arcs
    assert collector.clock == 0
    assert collector.depth == 0


def test_unsupported_construct_reports_location():
    """Guarded constructs fail loudly at instrument time, not silently."""
    import ast as ast_module

    from repro.runtime.instrument import _check_supported

    tree = ast_module.parse("async def f():\n    pass\n")
    with pytest.raises(UnsupportedConstruct):
        _check_supported(tree, "<test>")
