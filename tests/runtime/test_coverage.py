"""Static line universes and coverage percentages."""

import repro.subjects.expr as expr_module
from repro.runtime.coverage import (
    code_lines,
    line_coverage_percent,
    module_lines,
)


def test_code_lines_of_function():
    def sample(x):
        if x:
            return 1
        return 2

    lines = code_lines(sample.__code__)
    assert len(lines) >= 3
    assert all(filename == __file__ for filename, _ in lines)


def test_code_lines_recurses_into_nested():
    def outer():
        def inner():
            return 1

        return inner

    lines = code_lines(outer.__code__)
    source_lines = {line for _, line in lines}
    assert len(source_lines) >= 3


def test_module_lines_covers_subject_methods():
    lines = module_lines(expr_module)
    assert len(lines) > 20
    filenames = {filename for filename, _ in lines}
    assert len(filenames) == 1


def test_module_lines_excludes_other_modules():
    lines = module_lines(expr_module)
    import repro.subjects.base as base_module

    base_file = base_module.__file__
    assert all(filename != base_file for filename, _ in lines)


def test_line_coverage_percent():
    universe = frozenset({("f", 1), ("f", 2), ("f", 3), ("f", 4)})
    assert line_coverage_percent([("f", 1), ("f", 2)], universe) == 50.0
    assert line_coverage_percent([], universe) == 0.0
    assert line_coverage_percent([("f", 9)], universe) == 0.0
    assert line_coverage_percent([("f", 1)], frozenset()) == 0.0
