"""Error hierarchy used by subjects."""

import pytest

from repro.runtime.errors import HangError, ParseError, SemanticError, SubjectError


def test_parse_error_is_subject_error():
    error = ParseError("bad", index=4)
    assert isinstance(error, SubjectError)
    assert error.message == "bad"
    assert error.index == 4


def test_parse_error_default_index():
    assert ParseError("x").index == -1


def test_semantic_error_is_parse_error():
    # Semantic rejections count as rejections (non-zero exit), §7.3.
    assert isinstance(SemanticError("undeclared"), ParseError)


def test_hang_error_carries_steps():
    error = HangError(500)
    assert error.steps == 500
    assert "500" in str(error)
    assert isinstance(error, SubjectError)
    assert not isinstance(error, ParseError)  # hangs are not rejections


def test_harness_distinguishes_semantic_rejection():
    from repro.runtime.harness import ExitStatus, run_subject
    from repro.subjects.mjs import MjsSubject

    strict = MjsSubject(semantic_checks=True)
    result = run_subject(strict, "undeclaredName + 1")
    assert result.status is ExitStatus.REJECTED
