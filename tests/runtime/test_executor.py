"""Unit tests of the persistent forked-worker execution engine.

Covers the executor layer in isolation (campaign-level fingerprint
equivalence lives in ``tests/eval/test_executor_equivalence.py``):
wire-format round-trips, single-run field equivalence against the inline
path, batch ordering, worker-death respawn, isolation modes, lifecycle,
and the ``__slots__`` audit of the hot-loop dataclasses.
"""

import pytest

import repro.runtime.executor as executor_module
from repro.core.candidate import Candidate
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.core.substitute import Substitution
from repro.runtime.executor import (
    EXECUTOR_MODES,
    ExecutorError,
    InlineExecutor,
    PooledExecutor,
    _resolve_isolation,
    create_executor,
    rehydrate_run_result,
    serialize_run_result,
)
from repro.runtime.harness import run_subject
from repro.subjects.registry import load_subject

#: Inputs spanning the interesting outcomes on the expr subject: valid,
#: rejected-at-EOF, rejected mid-input, empty.
EXPR_TEXTS = ["1+2", "(3*4)", "(1", "1+", "", "x", "((2))"]


@pytest.fixture
def pooled_expr():
    executor = PooledExecutor(load_subject("expr"), isolation="none")
    yield executor
    executor.close()


def _assert_results_match(inline, pooled):
    assert pooled.text == inline.text
    assert pooled.status is inline.status
    assert pooled.error == inline.error
    assert pooled.arcs == inline.arcs
    assert pooled.branches == inline.branches
    assert pooled.recorder.comparisons == inline.recorder.comparisons
    assert pooled.recorder.eof_events == inline.recorder.eof_events
    assert (
        pooled.recorder.last_compared_index()
        == inline.recorder.last_compared_index()
    )
    assert (
        pooled.recorder.average_stack_size()
        == inline.recorder.average_stack_size()
    )


# --------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------- #


def test_serialize_rehydrate_round_trip():
    subject = load_subject("expr")
    for text in EXPR_TEXTS:
        inline = run_subject(subject, text)
        back = rehydrate_run_result(subject, text, serialize_run_result(inline))
        _assert_results_match(inline, back)


def test_wire_payload_is_pickleable():
    import pickle

    subject = load_subject("ini")
    payload = serialize_run_result(run_subject(subject, "[a]\nk=v"))
    assert pickle.loads(pickle.dumps(payload)) == payload


# --------------------------------------------------------------------- #
# Single-run equivalence, both isolation modes
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("isolation", ["fork", "none"])
def test_pooled_matches_inline_per_run(isolation):
    subject = load_subject("expr")
    with PooledExecutor(subject, isolation=isolation) as executor:
        for text in EXPR_TEXTS:
            _assert_results_match(run_subject(subject, text), executor.execute(text))


def test_pooled_matches_inline_on_ast_backend():
    subject = load_subject("ini")
    texts = ["[s]\na=1", "[s", "", "x=y"]
    with PooledExecutor(
        subject, coverage_backend="ast", isolation="none"
    ) as executor:
        for text in texts:
            _assert_results_match(
                run_subject(subject, text, coverage_backend="ast"),
                executor.execute(text),
            )


# --------------------------------------------------------------------- #
# Batching
# --------------------------------------------------------------------- #


def test_run_batch_preserves_order(pooled_expr):
    results = pooled_expr.run_batch(EXPR_TEXTS)
    assert [result.text for result in results] == EXPR_TEXTS


def test_prefetch_then_execute_consumes_cache(pooled_expr):
    pooled_expr.prefetch(EXPR_TEXTS)
    subject = load_subject("expr")
    for text in EXPR_TEXTS:
        _assert_results_match(run_subject(subject, text), pooled_expr.execute(text))
    assert not pooled_expr._ready
    assert not pooled_expr._pending


def test_duplicate_prefetch_is_free(pooled_expr):
    pooled_expr.prefetch(["1+2", "1+2", "1+2"])
    pooled_expr.prefetch(["1+2"])
    assert pooled_expr.execute("1+2").text == "1+2"
    # One submission total: batch ids advanced once.
    assert pooled_expr._next_batch == 1


def test_ready_cache_eviction_reruns_transparently():
    subject = load_subject("expr")
    with PooledExecutor(subject, isolation="none", max_ready=2) as executor:
        executor.prefetch(EXPR_TEXTS)  # 7 results into a 2-slot cache
        for text in EXPR_TEXTS:  # evicted ones silently re-run
            _assert_results_match(run_subject(subject, text), executor.execute(text))


def test_multi_worker_batches_land_correctly():
    subject = load_subject("expr")
    with PooledExecutor(subject, workers=2, isolation="none") as executor:
        results = executor.run_batch(EXPR_TEXTS * 2)
        assert [result.text for result in results] == EXPR_TEXTS * 2


# --------------------------------------------------------------------- #
# Fault tolerance
# --------------------------------------------------------------------- #


def test_worker_death_respawns_and_resubmits():
    subject = load_subject("expr")
    executor_module._TEST_WORKER_KILL_AFTER = 3
    try:
        with PooledExecutor(subject, isolation="none") as executor:
            results = executor.run_batch(EXPR_TEXTS)
            assert [result.text for result in results] == EXPR_TEXTS
            assert executor.respawns >= 1
            for inline, pooled in zip(
                (run_subject(subject, text) for text in EXPR_TEXTS), results
            ):
                _assert_results_match(inline, pooled)
    finally:
        executor_module._TEST_WORKER_KILL_AFTER = None


def test_kill_hook_is_consumed_by_spawn():
    executor_module._TEST_WORKER_KILL_AFTER = 1
    try:
        with PooledExecutor(load_subject("expr"), isolation="none") as executor:
            assert executor_module._TEST_WORKER_KILL_AFTER is None
            # The respawned replacement runs clean: the whole batch lands.
            assert len(executor.run_batch(EXPR_TEXTS)) == len(EXPR_TEXTS)
    finally:
        executor_module._TEST_WORKER_KILL_AFTER = None


# --------------------------------------------------------------------- #
# Lifecycle and factories
# --------------------------------------------------------------------- #


def test_close_is_idempotent_and_execute_after_close_raises(pooled_expr):
    pooled_expr.close()
    pooled_expr.close()
    with pytest.raises(ExecutorError):
        pooled_expr.execute("1")


def test_create_executor_modes():
    subject = load_subject("expr")
    assert isinstance(create_executor("inline", subject), InlineExecutor)
    pooled = create_executor("pooled", subject, isolation="none")
    try:
        assert isinstance(pooled, PooledExecutor)
    finally:
        pooled.close()
    with pytest.raises(ValueError, match="unknown executor mode"):
        create_executor("warp", subject)


def test_inline_executor_matches_run_subject():
    subject = load_subject("expr")
    executor = InlineExecutor(subject)
    executor.prefetch(EXPR_TEXTS)  # no-op
    for text in EXPR_TEXTS:
        _assert_results_match(run_subject(subject, text), executor.execute(text))
    executor.close()


def test_resolve_isolation():
    import os

    assert _resolve_isolation("none") == "none"
    expected = "fork" if hasattr(os, "fork") else "none"
    assert _resolve_isolation("auto") == expected
    assert _resolve_isolation("fork") == expected
    with pytest.raises(ValueError, match="unknown executor isolation"):
        _resolve_isolation("container")


def test_fuzzer_rejects_bad_engine_config():
    subject = load_subject("expr")
    with pytest.raises(ValueError, match="unknown executor"):
        PFuzzer(subject, FuzzerConfig(executor="warp"))
    with pytest.raises(ValueError, match="unknown executor isolation"):
        PFuzzer(subject, FuzzerConfig(executor_isolation="container"))
    with pytest.raises(ValueError, match="batch_size"):
        PFuzzer(subject, FuzzerConfig(batch_size=0))
    with pytest.raises(ValueError, match="executor_workers"):
        PFuzzer(subject, FuzzerConfig(executor_workers=0))
    assert "inline" in EXECUTOR_MODES and "pooled" in EXECUTOR_MODES


# --------------------------------------------------------------------- #
# __slots__ audit of the hot-loop dataclasses
# --------------------------------------------------------------------- #


def test_hot_loop_dataclasses_reject_stray_attributes():
    candidate = Candidate("x")
    with pytest.raises(AttributeError):
        candidate.stray = 1
    result = run_subject(load_subject("expr"), "1")
    with pytest.raises(AttributeError):
        result.stray = 1
    substitution = Substitution("a", "a", 0)
    with pytest.raises(AttributeError):  # FrozenInstanceError
        substitution.text = "b"
    # Stray assignment on a frozen+slots dataclass raises TypeError on
    # 3.11 (the generated __setattr__'s super(cls, self) quirk) and
    # AttributeError elsewhere; either way the attribute never lands.
    with pytest.raises((AttributeError, TypeError)):
        substitution.stray = 1
    for instance in (candidate, result, substitution):
        assert not hasattr(instance, "__dict__")
        assert hasattr(type(instance), "__slots__")
