"""Input stream: sequential access, EOF events, putback."""

from repro.runtime.stream import InputStream
from repro.taint.recorder import Recorder, recording


def test_next_char_sequence():
    stream = InputStream("ab")
    first = stream.next_char()
    second = stream.next_char()
    assert (first.value, first.index) == ("a", 0)
    assert (second.value, second.index) == ("b", 1)


def test_next_past_end_returns_eof_repeatedly():
    stream = InputStream("a")
    stream.next_char()
    assert stream.next_char().is_eof
    assert stream.next_char().is_eof
    assert stream.pos == 1


def test_eof_access_recorded():
    stream = InputStream("a")
    recorder = Recorder()
    with recording(recorder):
        stream.next_char()
        stream.next_char()
    assert recorder.eof_accessed
    assert recorder.eof_events[0].index == 1


def test_peek_does_not_consume():
    stream = InputStream("xy")
    assert stream.peek().value == "x"
    assert stream.peek(1).value == "y"
    assert stream.pos == 0
    assert stream.peek(2).is_eof


def test_unread():
    stream = InputStream("abc")
    stream.next_char()
    stream.next_char()
    stream.unread()
    assert stream.peek().value == "b"
    stream.unread(1)
    assert stream.peek().value == "a"


def test_unread_beyond_start_rejected():
    stream = InputStream("a")
    try:
        stream.unread(1)
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError")


def test_read_while():
    stream = InputStream("123ab")
    digits = stream.read_while(lambda c: c.isdigit())
    assert digits.text == "123"
    assert digits.taints == (0, 1, 2)
    assert stream.peek().value == "a"


def test_read_while_stops_at_eof():
    stream = InputStream("12")
    assert stream.read_while(lambda c: c.isdigit()).text == "12"


def test_at_end_and_remaining():
    stream = InputStream("ab")
    assert not stream.at_end
    assert stream.remaining() == "ab"
    stream.next_char()
    stream.next_char()
    assert stream.at_end
    assert stream.remaining() == ""


def test_max_accessed_tracks_peeks_and_eof():
    stream = InputStream("abc")
    assert stream.max_accessed == -1
    stream.peek(1)
    assert stream.max_accessed == 1
    stream.peek(5)
    assert stream.max_accessed == 3  # clamped to len(text) for EOF


def test_consumption_logged_for_miner():
    stream = InputStream("ab")
    recorder = Recorder()
    with recording(recorder):
        stream.peek()       # peeks are not consumption
        stream.next_char()
        stream.read_while(lambda c: c == "b")
    assert [index for index, _ in recorder.accesses] == [0, 1]


def test_len_and_repr():
    stream = InputStream("abc")
    assert len(stream) == 3
    assert "abc" in repr(stream)
