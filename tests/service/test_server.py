"""HTTP control plane: endpoints, event stream, Prometheus metrics."""

import threading

import pytest

from repro.eval.metrics import CampaignMetrics
from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import SchedulerConfig
from repro.service.server import CampaignService, make_server


@pytest.fixture
def service(tmp_path):
    svc = CampaignService(
        tmp_path / "state",
        SchedulerConfig(workers=2, slice_executions=60),
    )
    httpd = make_server(svc)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    try:
        yield svc, client
    finally:
        httpd.shutdown()
        httpd.server_close()
        svc.scheduler.shutdown()


def test_healthz_reports_states(service):
    svc, client = service
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["jobs"] == 0
    assert set(health["states"]) == {
        "queued", "running", "paused", "done", "failed", "cancelled",
    }


def test_submit_returns_created_record(service):
    svc, client = service
    record = client.submit({"subject": "expr", "budget": 100, "seed": 3})
    assert record["job_id"] == "job-0000"
    assert record["state"] == "queued"
    assert record["spec"]["subject"] == "expr"
    assert [r["job_id"] for r in client.jobs()] == ["job-0000"]
    assert client.job("job-0000")["spec"]["seed"] == 3


@pytest.mark.parametrize(
    "payload,fragment",
    [
        ({"subject": "nope"}, "unknown subject"),
        ({"subject": "expr", "budget": 0}, "budget"),
        ({"subject": "expr", "frobnicate": 1}, "unknown job spec fields"),
        ({}, "subject"),
    ],
)
def test_invalid_specs_are_rejected_with_400(service, payload, fragment):
    svc, client = service
    with pytest.raises(ServiceError) as excinfo:
        client.submit(payload)
    assert excinfo.value.status == 400
    assert fragment in excinfo.value.message


def test_unknown_job_and_endpoint_are_404(service):
    svc, client = service
    with pytest.raises(ServiceError) as excinfo:
        client.job("job-9999")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", "/nope")
    assert excinfo.value.status == 404


def test_cancel_queued_job_and_conflict_on_terminal(service):
    svc, client = service
    record = client.submit({"subject": "expr", "budget": 100})
    cancelled = client.cancel(record["job_id"])
    assert cancelled["state"] == "cancelled"
    with pytest.raises(ServiceError) as excinfo:
        client.cancel(record["job_id"])
    assert excinfo.value.status == 409
    with pytest.raises(ServiceError) as excinfo:
        client.cancel("job-9999")
    assert excinfo.value.status == 404


def test_events_stream_roundtrips_through_the_schema_reader(service):
    svc, client = service
    client.submit({"subject": "expr", "budget": 150, "checkpoint_every": 50})
    client.submit({"subject": "ini", "budget": 120, "checkpoint_every": 50})
    svc.run(until_idle=True)

    events = list(client.events())
    assert events, "completed slices must publish metrics events"
    assert all(isinstance(event, CampaignMetrics) for event in events)
    # Slice records: preempted slices stream as "paused", the final slice
    # of each job as "ok", with campaign-cumulative executions.
    assert {event.status for event in events} <= {"ok", "paused"}
    final = {
        event.subject: event
        for event in events
        if event.status == "ok"
    }
    assert final["expr"].executions == 150
    assert final["ini"].executions == 120
    assert all(event.hostname for event in events)
    assert all(event.peak_rss_kb > 0 for event in events)


def test_metrics_exposition_covers_the_documented_series(service):
    svc, client = service
    record = client.submit(
        {"subject": "expr", "budget": 150, "checkpoint_every": 50}
    )
    svc.run(until_idle=True)
    text = client.metrics()
    for series in (
        'repro_service_jobs{state="done"} 1',
        "repro_service_queue_depth 0",
        "repro_service_running_jobs 0",
        "repro_service_executions_total 150",
        "repro_service_resumes_total",
        "repro_service_slices_total 3",
        "repro_service_executions_per_second",
        "repro_service_phase_seconds",
        "repro_service_peak_rss_kb",
    ):
        assert series in text, series
    # Prometheus text format: every non-comment line is "name[{labels}] value".
    for line in text.strip().splitlines():
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        assert name.startswith("repro_service_")
        float(value)
    assert client.job(record["job_id"])["state"] == "done"


def test_queue_depth_counts_queued_and_paused(service):
    svc, client = service
    client.submit({"subject": "expr", "budget": 100})
    client.submit({"subject": "ini", "budget": 100})
    text = client.metrics()
    assert "repro_service_queue_depth 2" in text


def test_traced_job_streams_events_and_counts(service):
    """A --trace job leaves an NDJSON artifact the service tails into
    /events?trace=1 and the repro_service_trace_events_total counters."""
    from repro.obs.lineage import LineageLog
    from repro.obs.trace import read_trace

    svc, client = service
    record = client.submit(
        {"subject": "expr", "budget": 150, "checkpoint_every": 50,
         "trace": True}
    )
    untraced = client.submit({"subject": "ini", "budget": 100})
    svc.run(until_idle=True)

    # The artifact sits next to the job's checkpoints and is valid NDJSON
    # whose lineage replays every emitted input — even though the job ran
    # as several preempted slices.
    path = svc.state_dir / "jobs" / record["job_id"] / "trace.ndjson"
    events = read_trace(path)
    assert any(e["type"] == "preempted" for e in events)
    lineage = LineageLog.from_trace_events(events)
    emitted = [e for e in events if e["type"] == "input_emitted"]
    assert emitted
    for event in emitted:
        assert lineage.replay(event["lineage"]) == event["text"]
    untraced_dir = svc.state_dir / "jobs" / untraced["job_id"]
    assert not (untraced_dir / "trace.ndjson").exists()

    # The service tailed the file at slice boundaries: counters and the
    # buffered event stream agree with the artifact.
    text = client.metrics()
    assert (
        'repro_service_trace_events_total{type="input_emitted"} '
        f"{len(emitted)}" in text
    )
    streamed = list(client.trace_events())
    assert len(streamed) == len(events)
    assert {e["job_id"] for e in streamed} == {record["job_id"]}
    assert [e["type"] for e in streamed] == [e["type"] for e in events]


@pytest.fixture
def adaptive_service(tmp_path):
    from repro.service.gain import GainConfig

    svc = CampaignService(
        tmp_path / "state",
        SchedulerConfig(
            workers=1,
            slice_executions=60,
            adaptive=True,
            # Park aggressively so one short job exercises the lifecycle.
            gain=GainConfig(
                decay=0.99, min_evidence=30.0, pause_threshold=0.5,
                probe_every=60,
            ),
        ),
    )
    httpd = make_server(svc)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    try:
        yield svc, client
    finally:
        httpd.shutdown()
        httpd.server_close()
        svc.scheduler.shutdown()


def test_adaptive_service_exposes_gain_gauges_and_events(adaptive_service):
    """Adaptive mode surfaces per-account gain posteriors as Prometheus
    gauges and interleaves synthesized gain_update events (one per
    completed slice) into the trace stream."""
    svc, client = adaptive_service
    record = client.submit(
        {"subject": "expr", "budget": 180, "checkpoint_every": 60}
    )
    svc.run(until_idle=True)

    text = client.metrics()
    account = record["job_id"]
    for series in (
        f'repro_service_gain_posterior{{account="{account}"}}',
        f'repro_service_gain_weight{{account="{account}"}}',
        f'repro_service_gain_parked{{account="{account}"}}',
        'repro_service_trace_events_total{type="gain_update"} 3',
    ):
        assert series in text, series

    updates = [
        event
        for event in client.trace_events()
        if event["type"] == "gain_update"
    ]
    assert len(updates) == 3  # one per completed 60-execution slice
    assert [event["executions"] for event in updates] == [60, 120, 180]
    for event in updates:
        assert event["job_id"] == account
        assert 0.0 < event["posterior"] < 1.0
        assert event["weight"] > 0.0
        assert isinstance(event["parked"], bool)


def test_cli_submit_status_cancel_round_trip(service, capsys):
    """The repro submit/status/cancel subcommands against a live server."""
    import json

    from repro.cli import main

    svc, client = service
    url = client.base_url
    assert main(["submit", "expr", "--url", url, "--budget", "150",
                 "--seed", "1", "--checkpoint-every", "50"]) == 0
    submitted = json.loads(capsys.readouterr().out)
    assert submitted["state"] == "queued"

    assert main(["submit", "ini", "--url", url, "--budget", "100"]) == 0
    capsys.readouterr()
    assert main(["cancel", "job-0001", "--url", url]) == 0
    assert json.loads(capsys.readouterr().out)["state"] == "cancelled"

    svc.run(until_idle=True)
    assert main(["status", "--url", url]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("job-0000\tdone\tpfuzzer:expr\t150/150")
    assert lines[1].startswith("job-0001\tcancelled")

    assert main(["status", "job-0000", "--url", url]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["result_fingerprint"]

    assert main(["cancel", "job-0000", "--url", url]) == 1  # terminal: 409
    assert "illegal job transition" in capsys.readouterr().err
