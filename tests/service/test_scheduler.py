"""Preemptive fair-share scheduler: fairness, retries, fault isolation.

The fairness contract asserted here is timing-robust: stride scheduling
gives a never-run job virtual time zero, so *every* queued job must be
dispatched once before any job is dispatched twice — no job waits more
than one round of slices for its first slice, regardless of how slow
individual workers are.
"""

import os

import pytest

from repro.service.jobs import JobSpec, JobState, JobStore
from repro.service.scheduler import (
    CampaignScheduler,
    SchedulerConfig,
    _run_slice,
)


def _scheduler(tmp_path, specs, **config):
    store = JobStore(tmp_path / "journal.jsonl")
    records = [store.submit(spec) for spec in specs]
    scheduler = CampaignScheduler(
        store, tmp_path, SchedulerConfig(**config)
    )
    return store, records, scheduler


# --------------------------------------------------------------------- #
# Fairness: 4 queued jobs, 2 workers
# --------------------------------------------------------------------- #


def test_four_jobs_two_workers_every_job_progresses_each_round(tmp_path):
    specs = [
        JobSpec(subject="expr", budget=240, seed=seed, checkpoint_every=60)
        for seed in range(4)
    ]
    store, records, scheduler = _scheduler(
        tmp_path, specs, workers=2, slice_executions=60
    )
    scheduler.run_until_idle()

    job_ids = [record.job_id for record in records]
    # No starvation: before any job gets its second slice, every job got
    # its first — i.e. the first four dispatches are the four jobs.
    assert set(scheduler.dispatch_log[:4]) == set(job_ids)
    # And the invariant holds round by round for equal-priority jobs:
    # between two consecutive dispatches of one job, every other job is
    # dispatched at least once.
    for job_id in job_ids:
        positions = [
            index
            for index, dispatched in enumerate(scheduler.dispatch_log)
            if dispatched == job_id
        ]
        for start, stop in zip(positions, positions[1:]):
            between = set(scheduler.dispatch_log[start + 1 : stop])
            others = {
                other
                for other in job_ids
                if other != job_id
                and store.get(other).state is not JobState.DONE
            }
            # At the end of the run finished jobs drop out; only require
            # the full interleaving while all four were still active.
            if stop < 4 * 2:
                assert between == set(job_ids) - {job_id}

    for record in store.list():
        assert record.state is JobState.DONE
        assert record.executions == 240
        assert record.result_fingerprint is not None
    # Equal budgets, equal priorities: equal slice counts.
    slice_counts = {record.slices for record in store.list()}
    assert len(slice_counts) == 1


def test_higher_priority_job_gets_proportionally_more_slices(tmp_path):
    specs = [
        JobSpec(subject="expr", budget=300, seed=1, priority=2,
                checkpoint_every=50),
        JobSpec(subject="expr", budget=300, seed=2, priority=1,
                checkpoint_every=50),
    ]
    store, (high, low), scheduler = _scheduler(
        tmp_path, specs, workers=1, slice_executions=50
    )
    scheduler.run_until_idle()
    assert all(r.state is JobState.DONE for r in store.list())
    # While both jobs were live, the priority-2 job received about twice
    # the slices: among the first six dispatches it appears at least four
    # times (a strict alternation would give it exactly three).
    first_six = scheduler.dispatch_log[:6]
    assert first_six.count(high.job_id) >= 4


def test_virtual_time_carries_across_scheduler_restarts(tmp_path):
    """A restarted scheduler must not let an almost-done job starve fresh
    ones: virtual time is rebuilt from journalled executions."""
    specs = [JobSpec(subject="expr", budget=200, seed=1, checkpoint_every=50)]
    store, (veteran,), scheduler = _scheduler(
        tmp_path, specs, workers=1, slice_executions=50
    )
    for _ in range(60):
        scheduler.step(drain_timeout=0.05)
        if store.get(veteran.job_id).executions >= 50:
            break
    scheduler.shutdown()

    reloaded = JobStore(store.journal_path)
    newcomer = reloaded.submit(
        JobSpec(subject="expr", budget=200, seed=9, checkpoint_every=50)
    )
    fresh = CampaignScheduler(
        reloaded, tmp_path, SchedulerConfig(workers=1, slice_executions=50)
    )
    fresh.run_until_idle()
    # The newcomer (virtual time 0) ran before the veteran's next slice.
    assert fresh.dispatch_log[0] == newcomer.job_id
    assert all(r.state is JobState.DONE for r in reloaded.list())


# --------------------------------------------------------------------- #
# Fault isolation: crashes, dead workers, bounded retries
# --------------------------------------------------------------------- #


def _failing_run_slice(tmp_path, mode, fail_times=1):
    """A ``_run_slice`` wrapper that fails its first ``fail_times`` calls.

    The marker directory counts attempts across worker processes (the
    pool forks, so a monkeypatched module function propagates).
    """
    marker_dir = tmp_path / "attempts"
    marker_dir.mkdir(exist_ok=True)

    def flaky(task):
        attempt = len(list(marker_dir.iterdir()))
        (marker_dir / f"attempt-{attempt:03d}-{os.getpid()}").touch()
        if attempt < fail_times:
            if mode == "crash":
                raise RuntimeError("injected slice crash")
            os._exit(13)  # dead worker: EOF on the pipe, reaped by exitcode
        return _run_slice(task)

    return flaky


@pytest.mark.parametrize("mode", ["crash", "die"])
def test_failed_slice_retries_and_still_finishes(tmp_path, monkeypatch, mode):
    import repro.service.scheduler as scheduler_module

    monkeypatch.setattr(
        scheduler_module, "_run_slice", _failing_run_slice(tmp_path, mode)
    )
    specs = [JobSpec(subject="expr", budget=120, seed=1, checkpoint_every=40)]
    store, (record,), scheduler = _scheduler(
        tmp_path, specs, workers=1, slice_executions=60,
        retries=2, backoff=0.01,
    )
    scheduler.run_until_idle()
    final = store.get(record.job_id)
    assert final.state is JobState.DONE
    assert final.executions == 120
    assert final.failures == 0  # reset by the successful slice


def test_exhausted_retries_fail_the_job_with_the_error(tmp_path, monkeypatch):
    import repro.service.scheduler as scheduler_module

    monkeypatch.setattr(
        scheduler_module,
        "_run_slice",
        _failing_run_slice(tmp_path, "crash", fail_times=100),
    )
    specs = [JobSpec(subject="expr", budget=120, seed=1)]
    store, (record,), scheduler = _scheduler(
        tmp_path, specs, workers=1, slice_executions=60,
        retries=1, backoff=0.01,
    )
    scheduler.run_until_idle()
    final = store.get(record.job_id)
    assert final.state is JobState.FAILED
    assert "injected slice crash" in final.error


def test_one_crashing_job_does_not_disturb_its_neighbour(tmp_path, monkeypatch):
    import repro.service.scheduler as scheduler_module

    original = scheduler_module._run_slice

    def poisoned(task):
        if task["seed"] == 666:
            raise RuntimeError("injected slice crash")
        return original(task)

    monkeypatch.setattr(scheduler_module, "_run_slice", poisoned)
    specs = [
        JobSpec(subject="expr", budget=120, seed=666),
        JobSpec(subject="expr", budget=120, seed=1, checkpoint_every=40),
    ]
    store, (doomed, healthy), scheduler = _scheduler(
        tmp_path, specs, workers=2, slice_executions=60,
        retries=0, backoff=0.01,
    )
    scheduler.run_until_idle()
    assert store.get(doomed.job_id).state is JobState.FAILED
    survivor = store.get(healthy.job_id)
    assert survivor.state is JobState.DONE
    assert survivor.executions == 120


# --------------------------------------------------------------------- #
# Cancellation
# --------------------------------------------------------------------- #


def test_cancelled_queued_job_never_runs_but_neighbours_do(tmp_path):
    specs = [
        JobSpec(subject="expr", budget=100, seed=1),
        JobSpec(subject="expr", budget=100, seed=2),
    ]
    store, (victim, survivor), scheduler = _scheduler(
        tmp_path, specs, workers=1, slice_executions=200
    )
    store.transition(victim.job_id, JobState.CANCELLED)
    scheduler.run_until_idle()
    assert store.get(victim.job_id).state is JobState.CANCELLED
    assert store.get(victim.job_id).executions == 0
    assert victim.job_id not in scheduler.dispatch_log
    assert store.get(survivor.job_id).state is JobState.DONE


def test_baseline_tools_run_whole_budget_in_one_slice(tmp_path):
    specs = [JobSpec(subject="ini", tool="random", budget=80, seed=1)]
    store, (record,), scheduler = _scheduler(
        tmp_path, specs, workers=1, slice_executions=10
    )
    scheduler.run_until_idle()
    final = store.get(record.job_id)
    assert final.state is JobState.DONE
    assert final.slices == 1
    assert final.executions == 80
    assert final.result_fingerprint is None  # pFuzzer-only
