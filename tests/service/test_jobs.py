"""Job model: state machine, spec validation, crash-safe journal."""

import json

import pytest

from repro.service.jobs import (
    TERMINAL_STATES,
    JobError,
    JobRecord,
    JobSpec,
    JobState,
    JobStateError,
    JobStore,
    check_transition,
)


# --------------------------------------------------------------------- #
# State machine
# --------------------------------------------------------------------- #


LEGAL_EDGES = [
    (JobState.QUEUED, JobState.RUNNING),
    (JobState.QUEUED, JobState.CANCELLED),
    (JobState.RUNNING, JobState.PAUSED),
    (JobState.RUNNING, JobState.QUEUED),
    (JobState.RUNNING, JobState.DONE),
    (JobState.RUNNING, JobState.FAILED),
    (JobState.RUNNING, JobState.CANCELLED),
    (JobState.PAUSED, JobState.RUNNING),
    (JobState.PAUSED, JobState.CANCELLED),
]


@pytest.mark.parametrize("old,new", LEGAL_EDGES)
def test_legal_transitions_pass(old, new):
    check_transition(old, new)  # must not raise


def test_every_other_transition_is_rejected():
    legal = set(LEGAL_EDGES)
    for old in JobState:
        for new in JobState:
            if (old, new) in legal:
                continue
            with pytest.raises(JobStateError, match="illegal job transition"):
                check_transition(old, new)


def test_terminal_states_have_no_outgoing_edges():
    for terminal in TERMINAL_STATES:
        for new in JobState:
            with pytest.raises(JobStateError):
                check_transition(terminal, new)


# --------------------------------------------------------------------- #
# Spec validation
# --------------------------------------------------------------------- #


def test_valid_spec_passes():
    JobSpec(subject="expr", budget=100, seed=3, priority=2).validate()


def test_invalid_spec_reports_every_problem_at_once():
    spec = JobSpec(
        subject="nope",
        budget=0,
        priority=0,
        coverage_backend="magic",
        checkpoint_every=-5,
    )
    with pytest.raises(JobError) as excinfo:
        spec.validate()
    message = str(excinfo.value)
    for fragment in ("nope", "budget", "priority", "magic", "checkpoint_every"):
        assert fragment in message


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(JobError, match="unknown job spec fields: frobnicate"):
        JobSpec.from_dict({"subject": "expr", "frobnicate": 1})


def test_from_dict_requires_subject():
    with pytest.raises(JobError, match="subject"):
        JobSpec.from_dict({"budget": 100})


def test_from_dict_rejects_non_objects():
    with pytest.raises(JobError, match="JSON object"):
        JobSpec.from_dict(["expr"])


def test_record_roundtrips_through_dict():
    record = JobRecord(
        job_id="job-0007",
        spec=JobSpec(subject="ini", budget=50),
        state=JobState.PAUSED,
        seq=7,
        executions=25,
        slices=1,
    )
    assert JobRecord.from_dict(record.to_dict()) == record


# --------------------------------------------------------------------- #
# Journal: replay, recovery, torn tails, compaction
# --------------------------------------------------------------------- #


def _store(tmp_path):
    return JobStore(tmp_path / "journal.jsonl")


def test_submit_assigns_sequential_ids(tmp_path):
    store = _store(tmp_path)
    first = store.submit(JobSpec(subject="expr", budget=10))
    second = store.submit(JobSpec(subject="ini", budget=10))
    assert [first.job_id, second.job_id] == ["job-0000", "job-0001"]
    assert [r.job_id for r in store.list()] == ["job-0000", "job-0001"]


def test_invalid_spec_is_not_journalled(tmp_path):
    store = _store(tmp_path)
    with pytest.raises(JobError):
        store.submit(JobSpec(subject="nope"))
    assert not (tmp_path / "journal.jsonl").exists()


def test_replay_restores_states_progress_and_next_seq(tmp_path):
    store = _store(tmp_path)
    done = store.submit(JobSpec(subject="expr", budget=10))
    store.transition(done.job_id, JobState.RUNNING)
    store.update_progress(
        done.job_id,
        executions=10,
        valid_inputs=3,
        resumes=1,
        slices=2,
        wall_time=0.5,
    )
    store.transition(done.job_id, JobState.DONE, fingerprint="abc123")
    failed = store.submit(JobSpec(subject="ini", budget=10))
    store.transition(failed.job_id, JobState.RUNNING)
    store.transition(failed.job_id, JobState.FAILED, error="boom")

    reloaded = JobStore(store.journal_path)
    first, second = reloaded.list()
    assert first.state is JobState.DONE
    assert first.result_fingerprint == "abc123"
    assert (first.executions, first.valid_inputs, first.resumes) == (10, 3, 1)
    assert (first.slices, first.wall_time) == (2, 0.5)
    assert second.state is JobState.FAILED
    assert second.error == "boom"
    # Ids keep increasing after a reload, never reusing one.
    third = reloaded.submit(JobSpec(subject="csv", budget=10))
    assert third.job_id == "job-0002"


@pytest.mark.parametrize("interrupted", [JobState.RUNNING, JobState.PAUSED])
def test_replay_requeues_jobs_a_dead_process_left_behind(tmp_path, interrupted):
    store = _store(tmp_path)
    record = store.submit(JobSpec(subject="expr", budget=10))
    store.transition(record.job_id, JobState.RUNNING)
    if interrupted is JobState.PAUSED:
        store.transition(record.job_id, JobState.PAUSED)

    reloaded = JobStore(store.journal_path)
    assert reloaded.get(record.job_id).state is JobState.QUEUED
    # The recovery is itself journalled: a second replay needs no repair.
    again = JobStore(store.journal_path)
    assert again.get(record.job_id).state is JobState.QUEUED


def test_replay_skips_torn_tail_and_garbage_lines(tmp_path):
    store = _store(tmp_path)
    record = store.submit(JobSpec(subject="expr", budget=10))
    with open(store.journal_path, "a", encoding="ascii") as handle:
        handle.write('{"event":"state","job_id":"job-0000","sta')  # torn
    reloaded = JobStore(store.journal_path)
    assert reloaded.get(record.job_id).state is JobState.QUEUED
    assert len(reloaded.list()) == 1


def test_compact_shrinks_journal_and_preserves_records(tmp_path):
    store = _store(tmp_path)
    record = store.submit(JobSpec(subject="expr", budget=10))
    store.transition(record.job_id, JobState.RUNNING)
    for slice_index in range(20):
        store.update_progress(
            record.job_id,
            executions=slice_index,
            valid_inputs=0,
            resumes=0,
            slices=slice_index,
            wall_time=0.0,
        )
    store.transition(record.job_id, JobState.DONE, fingerprint="ff")
    before = store.journal_path.stat().st_size
    assert store.compact() == 1
    after = store.journal_path.stat().st_size
    assert after < before
    reloaded = JobStore(store.journal_path)
    final = reloaded.get(record.job_id)
    assert final.state is JobState.DONE
    assert final.result_fingerprint == "ff"
    assert final.executions == 19
    # Compacted journal is pure JSONL.
    for line in store.journal_path.read_text().splitlines():
        json.loads(line)


def test_transition_on_unknown_job_raises(tmp_path):
    store = _store(tmp_path)
    with pytest.raises(JobError, match="unknown job"):
        store.transition("job-9999", JobState.CANCELLED)


def test_active_excludes_terminal_jobs(tmp_path):
    store = _store(tmp_path)
    keep = store.submit(JobSpec(subject="expr", budget=10))
    gone = store.submit(JobSpec(subject="ini", budget=10))
    store.transition(gone.job_id, JobState.CANCELLED)
    assert [r.job_id for r in store.active()] == [keep.job_id]
