"""Adaptive scheduling: gain estimator, fairness properties, determinism.

Three layers:

* unit tests of :class:`~repro.service.gain.GainEstimator` — the decayed
  Laplace posterior, the weight normalisation, the pause/resume
  hysteresis, and the pure-state determinism contract;
* property tests of :class:`~repro.service.scheduler.CampaignScheduler`
  in adaptive mode over a deterministic in-process fake worker pool —
  under random fleets (arrivals, priorities, gain profiles) and injected
  worker deaths, no runnable job is ever starved (every job finishes its
  whole budget), allocation converges toward observed gain, and the
  whole schedule is a pure function of the scenario;
* a real-workers fingerprint test — a campaign scheduled adaptively
  finishes with exactly the result fingerprint the blind stride
  scheduler produces, because scheduling order never changes campaign
  results.
"""

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.eval.campaign import ToolOutput
from repro.service.gain import GainConfig, GainEstimator
from repro.service.jobs import JobSpec, JobState, JobStore
from repro.service.scheduler import (
    CampaignScheduler,
    SchedulerConfig,
    SliceResult,
)

# --------------------------------------------------------------------- #
# GainConfig validation
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "kwargs,fragment",
    [
        ({"alpha": 0.0}, "alpha"),
        ({"beta": -1.0}, "alpha"),
        ({"decay": 0.0}, "decay"),
        ({"decay": 1.5}, "decay"),
        ({"pause_threshold": 1.0}, "pause_threshold"),
        ({"resume_margin": 0.5}, "resume_margin"),
        ({"min_evidence": -1.0}, "min_evidence"),
        ({"probe_every": 0}, "probe_every"),
        ({"weight_floor": 0.0}, "weight_floor"),
        ({"weight_floor": 2.0}, "weight_floor"),
    ],
)
def test_gain_config_rejects_invalid_knobs(kwargs, fragment):
    with pytest.raises(ValueError, match=fragment):
        GainConfig(**kwargs).validate()


def test_gain_config_defaults_validate():
    GainConfig().validate()


# --------------------------------------------------------------------- #
# GainEstimator: posterior, weight, pause/resume
# --------------------------------------------------------------------- #


def test_fresh_estimator_is_neutral():
    estimator = GainEstimator(GainConfig())
    assert estimator.posterior() == pytest.approx(GainConfig().prior_mean)
    assert estimator.weight() == pytest.approx(1.0)
    assert not estimator.should_pause()  # never parked on the prior alone


def test_productive_history_raises_weight_above_one():
    estimator = GainEstimator(GainConfig(decay=1.0))
    estimator.observe(10, 8)  # 0.8 discovery rate >> prior mean 0.5
    assert estimator.posterior() > GainConfig().prior_mean
    assert estimator.weight() > 1.0


def test_plateau_pauses_only_after_min_evidence():
    config = GainConfig(decay=1.0, min_evidence=200.0, pause_threshold=0.005)
    estimator = GainEstimator(config)
    estimator.observe(100, 0)
    assert not estimator.should_pause()  # evidence below the bar
    estimator.observe(300, 0)
    assert estimator.posterior() < 0.005
    assert estimator.should_pause()


def test_decay_forgets_a_rich_early_history():
    config = GainConfig(decay=0.99, min_evidence=100.0, pause_threshold=0.01)
    estimator = GainEstimator(config)
    estimator.observe(100, 50)  # early gold rush
    early = estimator.posterior()
    for _ in range(20):
        estimator.observe(100, 0)  # long plateau
    assert estimator.posterior() < early
    assert estimator.should_pause()


def test_no_decay_weights_all_history_equally():
    a = GainEstimator(GainConfig(decay=1.0))
    a.observe(100, 10)
    a.observe(100, 0)
    b = GainEstimator(GainConfig(decay=1.0))
    b.observe(100, 0)
    b.observe(100, 10)
    assert a.posterior() == pytest.approx(b.posterior())


def test_weight_floor_bounds_the_penalty():
    config = GainConfig(decay=1.0, weight_floor=0.25)
    estimator = GainEstimator(config)
    estimator.observe(100_000, 0)
    assert estimator.weight() == pytest.approx(0.25)


def test_discoveries_capped_at_executions():
    estimator = GainEstimator(GainConfig(decay=1.0))
    estimator.observe(5, 50)  # corrupt input: more hits than trials
    assert estimator.posterior() <= 1.0
    assert estimator.discoveries == pytest.approx(5.0)


def test_resume_margin_is_hysteresis():
    config = GainConfig(
        decay=1.0, pause_threshold=0.1, resume_margin=2.0, min_evidence=10.0
    )
    estimator = GainEstimator(config)
    estimator.observe(100, 15)  # posterior ~0.157: above threshold...
    assert estimator.posterior() > config.pause_threshold
    assert not estimator.should_resume()  # ...but below threshold * margin


@given(
    observations=st.lists(
        st.tuples(st.integers(1, 500), st.integers(0, 500)), max_size=30
    ),
    decay=st.floats(0.9, 1.0),
)
def test_estimator_is_a_pure_function_of_its_observations(observations, decay):
    config = GainConfig(decay=decay)
    a, b = GainEstimator(config), GainEstimator(config)
    for executions, discoveries in observations:
        a.observe(executions, discoveries)
        b.observe(executions, discoveries)
    assert a.snapshot() == b.snapshot()
    assert a.should_pause() == b.should_pause()
    assert 0.0 < a.posterior() < 1.0
    assert a.weight() >= config.weight_floor


# --------------------------------------------------------------------- #
# Deterministic fake fleet: the scheduler over synthetic campaigns
# --------------------------------------------------------------------- #


@dataclass
class JobSim:
    """Synthetic campaign: a profile dictates discoveries per slice."""

    profile: Callable[[int, int], int]  # (slice_index, executions) -> hits
    executions: int = 0
    slices: int = 0
    valid: List[str] = field(default_factory=list)


class FakePool:
    """Deterministic in-process stand-in for ``WorkerPool``.

    Slices run synchronously at :meth:`drain` against :class:`JobSim`
    state keyed by job seed, so the scheduler sees exactly the message
    protocol of the real pool — ok results, worker corpses — with zero
    wall-clock or process nondeterminism.  ``die_on`` holds global slice
    sequence numbers whose dispatched slice is lost mid-flight (the
    worker dies; :meth:`reap` reports the corpse), exercising the
    retry-and-resume path.
    """

    def __init__(self, sims: Dict[int, JobSim], die_on=()) -> None:
        self.sims = sims
        self.die_on = set(die_on)
        self.slice_seq = 0
        self.workers: Dict[int, dict] = {}
        self.next_id = 0
        self.corpses: List[tuple] = []

    def __len__(self) -> int:
        return len(self.workers)

    def spawn(self) -> int:
        worker_id = self.next_id
        self.next_id += 1
        self.workers[worker_id] = None
        return worker_id

    def worker_ids(self) -> List[int]:
        return sorted(self.workers)

    def send(self, worker_id: int, task: dict) -> None:
        self.workers[worker_id] = task

    def drain(self, timeout: float = 0.0) -> List[tuple]:
        messages = []
        for worker_id in sorted(self.workers):
            task = self.workers[worker_id]
            if task is None:
                continue
            self.workers[worker_id] = None
            self.slice_seq += 1
            if self.slice_seq in self.die_on:
                del self.workers[worker_id]  # the worker took the task down
                self.corpses.append((worker_id, 9))
                continue
            messages.append(
                ("ok", worker_id, task["job_id"], self._run(task))
            )
        return messages

    def _run(self, task: dict) -> SliceResult:
        sim = self.sims[task["seed"]]
        delta = min(
            task["slice_executions"], task["budget"] - sim.executions
        )
        hits = min(delta, max(0, sim.profile(sim.slices, sim.executions)))
        sim.slices += 1
        sim.executions += delta
        sim.valid.extend(
            f"s{task['seed']}-{index}"
            for index in range(len(sim.valid), len(sim.valid) + hits)
        )
        done = sim.executions >= task["budget"]
        output = ToolOutput(
            tool="pfuzzer",
            subject=task["subject"],
            seed=task["seed"],
            valid_inputs=list(sim.valid),
            executions=sim.executions,
            wall_time=0.0,
            queue_depth=1,
        )
        return SliceResult(
            job_id=task["job_id"],
            done=done,
            output=output,
            fingerprint=f"fp-{task['seed']}" if done else None,
            peak_rss_bytes=0,
            slice_wall=0.0,
        )

    def reap(self) -> List[tuple]:
        corpses, self.corpses = self.corpses, []
        return corpses

    def remove(self, worker_id: int, terminate: bool = False) -> None:
        self.workers.pop(worker_id, None)

    def shutdown(self) -> None:
        self.workers.clear()


SLICE = 100


def _run_fleet(
    root: Path,
    jobs: List[dict],
    *,
    adaptive: bool,
    workers: int = 1,
    die_on=(),
    gain: GainConfig = GainConfig(),
    name: str = "fleet",
):
    """Drive a synthetic fleet to completion; returns (store, scheduler).

    ``jobs`` entries: ``{"seed", "budget", "profile"[, "priority"]}``.
    """
    store = JobStore(root / f"{name}.jsonl")
    sims = {}
    for job in jobs:
        sims[job["seed"]] = JobSim(profile=job["profile"])
        store.submit(
            JobSpec(
                subject="expr",
                budget=job["budget"],
                seed=job["seed"],
                priority=job.get("priority", 1),
                checkpoint_every=SLICE,
            )
        )
    scheduler = CampaignScheduler(
        store,
        root / name,
        SchedulerConfig(
            workers=workers,
            slice_executions=SLICE,
            retries=5,
            backoff=0.0,
            adaptive=adaptive,
            gain=gain,
        ),
    )
    scheduler.pool = FakePool(sims, die_on=die_on)
    scheduler.run_until_idle()
    return store, scheduler


def _productive(rate: int) -> Callable[[int, int], int]:
    return lambda slice_index, executions: rate


def _plateau(burst: int) -> Callable[[int, int], int]:
    """Discoveries on the first slice only, then a dead flat line."""
    return lambda slice_index, executions: burst if slice_index == 0 else 0


#: Gain knobs tuned so a 100-execution-slice plateau parks within a few
#: slices — what the convergence and benchmark scenarios use.
FAST_GAIN = GainConfig(
    decay=0.99,
    min_evidence=100.0,
    pause_threshold=0.02,
    probe_every=2_000,
)


def _fleet_state(store, scheduler):
    """Everything the determinism property compares between two runs."""
    return {
        "dispatch_log": list(scheduler.dispatch_log),
        "gain": scheduler.gain_snapshot(),
        "parked": sorted(scheduler._parked),
        "fleet_executions": scheduler._fleet_executions,
        "jobs": [
            (r.job_id, r.state.value, r.executions, r.valid_inputs, r.slices)
            for r in store.list()
        ],
    }


# -- no starvation / convergence / determinism / fault injection ------- #

_JOB_STRATEGY = st.fixed_dictionaries(
    {
        "budget_slices": st.integers(1, 5),
        "priority": st.integers(1, 3),
        "kind": st.sampled_from(["productive", "plateau"]),
        "rate": st.integers(0, 20),
    }
)

_SCENARIO = st.fixed_dictionaries(
    {
        "jobs": st.lists(_JOB_STRATEGY, min_size=2, max_size=4),
        "workers": st.integers(1, 3),
        "deaths": st.lists(
            st.integers(1, 30), max_size=3, unique=True
        ),
        "adaptive": st.booleans(),
    }
)


def _materialise(scenario):
    jobs = []
    for index, job in enumerate(scenario["jobs"]):
        profile = (
            _productive(job["rate"])
            if job["kind"] == "productive"
            else _plateau(job["rate"])
        )
        jobs.append(
            {
                "seed": index,
                "budget": job["budget_slices"] * SLICE,
                "priority": job["priority"],
                "profile": profile,
            }
        )
    return jobs


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(scenario=_SCENARIO)
def test_no_runnable_job_ever_starves(scenario):
    """Whatever the fleet mix, priorities, parking decisions and worker
    deaths, every job runs its whole budget to DONE — parked jobs are
    probed, never abandoned, and lost slices are retried."""
    jobs = _materialise(scenario)
    with tempfile.TemporaryDirectory() as tmp:
        store, scheduler = _run_fleet(
            Path(tmp),
            jobs,
            adaptive=scenario["adaptive"],
            workers=scenario["workers"],
            die_on=scenario["deaths"],
            gain=FAST_GAIN,
        )
        sims = scheduler.pool.sims
        for job, record in zip(jobs, store.list()):
            assert record.state is JobState.DONE
            assert record.executions == job["budget"]
            assert record.valid_inputs == len(sims[job["seed"]].valid)
            assert record.result_fingerprint == f"fp-{job['seed']}"
        # Fair-share first round survives adaptivity: with every gain
        # account fresh (weight 1.0), the first dispatches cover every
        # job before any job repeats.  (A worker death re-queues its job
        # at unchanged virtual time, which legitimately repeats it.)
        if not scenario["deaths"]:
            first_round = scheduler.dispatch_log[: len(jobs)]
            assert len(set(first_round)) == len(jobs)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(scenario=_SCENARIO)
def test_schedule_is_a_pure_function_of_the_scenario(scenario):
    """Same fleet, same event history => byte-identical dispatch log,
    gain posteriors, park decisions and job outcomes."""
    jobs = _materialise(scenario)
    states = []
    for attempt in ("a", "b"):
        with tempfile.TemporaryDirectory() as tmp:
            store, scheduler = _run_fleet(
                Path(tmp),
                _materialise(scenario),
                adaptive=scenario["adaptive"],
                workers=scenario["workers"],
                die_on=scenario["deaths"],
                gain=FAST_GAIN,
                name=f"fleet-{attempt}",
            )
            states.append(_fleet_state(store, scheduler))
    del jobs
    assert states[0] == states[1]


def test_adaptive_converges_allocation_toward_observed_gain(tmp_path):
    """One productive + one plateaued job: blind stride splits slices
    evenly, the adaptive scheduler parks the plateau and spends the
    worker on the job where coverage is arriving."""
    jobs = [
        {"seed": 0, "budget": 30 * SLICE, "profile": _productive(5)},
        {"seed": 1, "budget": 30 * SLICE, "profile": _plateau(5)},
    ]

    def plateau_share(scheduler):
        """Plateau dispatches before the productive job's final slice."""
        log = scheduler.dispatch_log
        last_productive = max(
            index for index, job_id in enumerate(log) if job_id == "job-0000"
        )
        return log[:last_productive].count("job-0001")

    _, blind = _run_fleet(tmp_path, jobs, adaptive=False, name="blind")
    _, adaptive = _run_fleet(
        tmp_path, jobs, adaptive=True, gain=FAST_GAIN, name="adaptive"
    )
    # Blind stride: equal budgets, equal priorities => even split.
    assert plateau_share(blind) >= 25
    # Adaptive: the plateau is parked after a handful of slices and only
    # probed afterwards.
    assert plateau_share(adaptive) <= 8
    # The plateau account really went through the park lifecycle.
    snapshot = adaptive.gain_snapshot()
    assert snapshot["job-0001"]["parked"] is True
    assert snapshot["job-0001"]["posterior"] < FAST_GAIN.pause_threshold
    assert not snapshot["job-0000"]["parked"]
    # ...but was never starved: it still finished its whole budget.
    assert all(
        record.executions == 30 * SLICE for record in adaptive.store.list()
    )


def test_parked_job_resurrects_when_a_probe_finds_gain(tmp_path):
    """A probe slice that discovers again unparks the account."""

    def sleeper(slice_index, executions):
        # Quiet long enough to get parked, then a late hot streak.
        return 0 if slice_index < 4 else 20

    jobs = [
        {"seed": 0, "budget": 40 * SLICE, "profile": _productive(5)},
        {"seed": 1, "budget": 10 * SLICE, "profile": sleeper},
    ]
    gain = GainConfig(
        decay=0.99,
        min_evidence=100.0,
        pause_threshold=0.02,
        probe_every=500,
        resume_margin=1.0,
    )
    store, scheduler = _run_fleet(
        tmp_path, jobs, adaptive=True, gain=gain, name="resurrect"
    )
    assert all(record.state is JobState.DONE for record in store.list())
    # The sleeper ended unparked: its probe found gain and resurrected it.
    assert "job-0001" not in scheduler._parked
    assert scheduler.gain_snapshot()["job-0001"]["posterior"] > 0.02


def test_blind_mode_keeps_no_gain_state(tmp_path):
    jobs = [{"seed": 0, "budget": 2 * SLICE, "profile": _productive(1)}]
    _, scheduler = _run_fleet(tmp_path, jobs, adaptive=False, name="plain")
    assert scheduler.gain_snapshot() == {}
    assert scheduler._parked == {}


# --------------------------------------------------------------------- #
# Real workers: adaptive scheduling never changes a campaign's result
# --------------------------------------------------------------------- #


def _real_fingerprints(tmp_path, mode, adaptive, seeds):
    store = JobStore(tmp_path / f"{mode}.jsonl")
    records = [
        store.submit(
            JobSpec(subject="expr", budget=180, seed=seed, checkpoint_every=60)
        )
        for seed in seeds
    ]
    scheduler = CampaignScheduler(
        store,
        tmp_path / mode,
        SchedulerConfig(
            workers=1,
            slice_executions=60,
            adaptive=adaptive,
            # Aggressive knobs so the real campaign actually gets parked
            # and probed — the fingerprint must survive even that.
            gain=GainConfig(
                decay=0.99,
                min_evidence=30.0,
                pause_threshold=0.5,
                probe_every=60,
            ),
        ),
    )
    scheduler.run_until_idle()
    assert all(store.get(r.job_id).state is JobState.DONE for r in records)
    return [store.get(r.job_id).result_fingerprint for r in records]


def test_adaptive_fingerprints_match_blind_fingerprints(tmp_path):
    """Single-job and two-job fleets: per-job result fingerprints are
    identical under blind and adaptive scheduling — adaptivity moves
    compute, never results."""
    seeds = (3, 4)
    blind = _real_fingerprints(tmp_path, "blind", False, seeds)
    adaptive = _real_fingerprints(tmp_path, "adaptive", True, seeds)
    assert all(fingerprint is not None for fingerprint in blind)
    assert adaptive == blind
    single_blind = _real_fingerprints(tmp_path / "one", "blind", False, (3,))
    single_adaptive = _real_fingerprints(
        tmp_path / "one", "adaptive", True, (3,)
    )
    assert single_adaptive == single_blind == [blind[0]]
