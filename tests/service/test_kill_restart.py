"""The headline durability property of the campaign service.

A server SIGKILLed mid-flight — worker processes and all — and restarted
on the same state directory must finish every in-flight job with exactly
the ``result_fingerprint`` an uninterrupted server produces.  Nothing the
kill destroys matters: job state is in the append-only journal, campaign
state is in the per-job checkpoint directories, and both are written
crash-safely.

Covers two subjects on both coverage backends (the acceptance grid).
"""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.service.client import ServiceClient
from repro.service.jobs import JobState
from repro.service.scheduler import SchedulerConfig
from repro.service.server import CampaignService

SPECS = [
    {"subject": "expr", "budget": 360, "seed": 3,
     "coverage_backend": "settrace", "checkpoint_every": 40},
    {"subject": "ini", "budget": 360, "seed": 3,
     "coverage_backend": "settrace", "checkpoint_every": 40},
    {"subject": "expr", "budget": 360, "seed": 5,
     "coverage_backend": "ast", "checkpoint_every": 40},
    {"subject": "ini", "budget": 360, "seed": 5,
     "coverage_backend": "ast", "checkpoint_every": 40},
]

_CONFIG = SchedulerConfig(workers=2, slice_executions=60)


def _spec_key(spec):
    return (spec["subject"], spec["seed"], spec["coverage_backend"])


def _start_server(state_dir):
    """Run ``repro serve`` in its own process group (workers included)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--state-dir", str(state_dir),
            "--port", "0",
            "--workers", str(_CONFIG.workers),
            "--slice-executions", str(_CONFIG.slice_executions),
        ],
        stderr=subprocess.PIPE,
        env=env,
        start_new_session=True,
        text=True,
    )
    line = proc.stderr.readline()
    match = re.search(r"http://[\d.]+:\d+", line)
    assert match, f"server did not announce its address: {line!r}"
    return proc, match.group(0)


def _reference_fingerprints(tmp_path):
    """Fingerprints from a service that is never interrupted."""
    service = CampaignService(tmp_path / "reference", _CONFIG)
    for spec in SPECS:
        service.submit(dict(spec))
    service.run(until_idle=True)
    records = service.store.list()
    assert all(r.state is JobState.DONE for r in records)
    return {_spec_key(r.spec.to_dict()): r.result_fingerprint for r in records}


def test_sigkilled_server_restart_is_byte_identical(tmp_path):
    state_dir = tmp_path / "state"
    proc, url = _start_server(state_dir)
    try:
        client = ServiceClient(url)
        client.wait_until_ready()
        submitted = [client.submit(dict(spec)) for spec in SPECS]

        # Let every job make real progress (at least one completed slice),
        # then SIGKILL the whole process group: the server, its HTTP
        # threads and every worker die without any chance to clean up.
        deadline = time.monotonic() + 60
        while True:
            jobs = client.jobs()
            if jobs and min(job["executions"] for job in jobs) >= 60:
                break
            assert time.monotonic() < deadline, "jobs made no progress"
            time.sleep(0.02)
        pre_kill = {job["job_id"]: job["state"] for job in client.jobs()}
        assert any(
            state not in ("done", "failed", "cancelled")
            for state in pre_kill.values()
        ), "every job already finished; the kill would prove nothing"
    finally:
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait()
        proc.stderr.close()

    # Restart on the same state directory: the journal replay recovers
    # every job (interrupted ones re-queued), and finishing them is a
    # resume from their newest snapshots.
    restarted = CampaignService(state_dir, _CONFIG)
    records = restarted.store.list()
    assert [r.job_id for r in records] == [r["job_id"] for r in submitted]
    assert all(
        r.state in (JobState.QUEUED, JobState.DONE) for r in records
    )
    restarted.run(until_idle=True)

    finished = restarted.store.list()
    assert all(r.state is JobState.DONE for r in finished)
    reference = _reference_fingerprints(tmp_path)
    for record in finished:
        key = _spec_key(record.spec.to_dict())
        assert record.result_fingerprint == reference[key], key
        assert record.executions == record.spec.budget


def test_restart_with_nothing_in_flight_is_a_quiet_no_op(tmp_path):
    """A journal of finished jobs reloads without re-running anything."""
    service = CampaignService(tmp_path / "state", _CONFIG)
    service.submit({"subject": "expr", "budget": 100, "checkpoint_every": 50})
    service.run(until_idle=True)
    (before,) = service.store.list()

    reloaded = CampaignService(tmp_path / "state", _CONFIG)
    (after,) = reloaded.store.list()
    assert after.state is JobState.DONE
    assert after.result_fingerprint == before.result_fingerprint
    assert not reloaded.scheduler.has_work()
