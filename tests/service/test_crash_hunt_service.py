"""Crash hunting through the service: specs, scheduling, /metrics.

End-to-end path of the ISSUE's service slice: a submitted job can name a
plugin subject (``subject_module`` imported spec-side and worker-side),
opt into crash hunting, have its crash count journalled across slices,
and surface in the Prometheus exposition as
``repro_service_crashes_total`` / ``repro_service_crash_hunting_jobs``.
"""

import sys
import threading
from pathlib import Path

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobError, JobSpec
from repro.service.scheduler import SchedulerConfig
from repro.service.server import CampaignService, make_server

HELPERS = str(Path(__file__).resolve().parent.parent / "helpers")
if HELPERS not in sys.path:
    sys.path.insert(0, HELPERS)


@pytest.fixture
def service(tmp_path):
    svc = CampaignService(
        tmp_path / "state",
        SchedulerConfig(workers=2, slice_executions=150),
    )
    httpd = make_server(svc)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    try:
        yield svc, client
    finally:
        httpd.shutdown()
        httpd.server_close()
        svc.scheduler.shutdown()


# --------------------------------------------------------------------- #
# Spec validation
# --------------------------------------------------------------------- #


def test_hunt_crashes_must_be_boolean():
    with pytest.raises(JobError, match="hunt_crashes must be a boolean"):
        JobSpec(subject="expr", hunt_crashes="yes").validate()


def test_hunt_crashes_is_pfuzzer_only():
    with pytest.raises(JobError, match="requires the pfuzzer tool"):
        JobSpec(subject="expr", tool="afl", hunt_crashes=True).validate()


def test_unimportable_subject_module_is_a_spec_problem():
    with pytest.raises(JobError, match="failed to import"):
        JobSpec(
            subject="expr", subject_module="no_such_plugin_module"
        ).validate()


def test_subject_module_makes_plugin_subject_valid():
    spec = JobSpec(
        subject="crashy",
        subject_module="crashy_plugin",
        hunt_crashes=True,
        budget=200,
    )
    spec.validate()  # must not raise
    # Round-trips through the journal dict form.
    restored = JobSpec.from_dict(spec.to_dict())
    assert restored.hunt_crashes is True
    assert restored.subject_module == "crashy_plugin"


def test_plugin_subject_without_module_is_rejected_with_names():
    import repro.subjects.registry as registry

    saved = dict(registry._PLUGIN_FACTORIES)
    registry._PLUGIN_FACTORIES.pop("notloaded", None)
    try:
        with pytest.raises(JobError, match="valid subjects"):
            JobSpec(subject="notloaded").validate()
    finally:
        registry._PLUGIN_FACTORIES.clear()
        registry._PLUGIN_FACTORIES.update(saved)


# --------------------------------------------------------------------- #
# End to end: hunted plugin job through the scheduler and /metrics
# --------------------------------------------------------------------- #


def test_hunted_plugin_job_counts_crashes_in_metrics(service):
    svc, client = service
    record = client.submit(
        {
            "subject": "crashy",
            "subject_module": "crashy_plugin",
            "hunt_crashes": True,
            "budget": 400,
            "seed": 7,
        }
    )
    svc.run(until_idle=True)
    finished = client.job(record["job_id"])
    assert finished["state"] == "done"
    assert finished["crashes"] >= 1
    text = client.metrics()
    assert "repro_service_crash_hunting_jobs 1" in text
    crashes_line = next(
        line
        for line in text.splitlines()
        if line.startswith("repro_service_crashes_total ")
    )
    assert float(crashes_line.split()[-1]) >= 1


def test_unhunted_jobs_report_zero_crash_metrics(service):
    svc, client = service
    client.submit({"subject": "expr", "budget": 100})
    svc.run(until_idle=True)
    text = client.metrics()
    assert "repro_service_crash_hunting_jobs 0" in text
    assert "repro_service_crashes_total 0" in text
    assert "repro_service_crash_sites_total 0" in text


def test_rejected_hunt_spec_is_a_400(service):
    svc, client = service
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"subject": "expr", "tool": "afl", "hunt_crashes": True})
    assert excinfo.value.status == 400
    assert "pfuzzer" in excinfo.value.message
