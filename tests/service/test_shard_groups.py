"""Sharded job groups: submit expansion, gang scheduling, lockstep parity.

The strongest assertion here is fingerprint parity: a single-worker
service runs a 2-shard group on exactly the reference orchestrator's
lockstep schedule (gang rotation dispatches the least-progressed member
first), so every member's journalled fingerprint must equal the digest
of :func:`repro.eval.shards.run_sharded`'s outcome for the same plan.
"""

import hashlib
import threading

import pytest

from repro.service.jobs import JobError, JobSpec, JobState, JobStore
from repro.service.scheduler import CampaignScheduler, SchedulerConfig


def _group_store(tmp_path, spec):
    store = JobStore(tmp_path / "journal.jsonl")
    return store, store.submit_sharded(spec)


# --------------------------------------------------------------------- #
# submit_sharded: expansion and validation
# --------------------------------------------------------------------- #


def test_submit_sharded_expands_into_a_member_group(tmp_path):
    store, records = _group_store(
        tmp_path,
        JobSpec(subject="expr", budget=400, seed=7, shards=3),
    )
    assert len(records) == 3
    groups = {record.spec.shard_group for record in records}
    assert len(groups) == 1 and None not in groups
    assert [record.spec.shard_id for record in records] == [0, 1, 2]
    assert [record.spec.seed for record in records] == [7, 8, 9]
    assert all(record.spec.shards == 3 for record in records)
    assert all(record.state is JobState.QUEUED for record in records)


def test_submit_sharded_single_shard_degenerates_to_submit(tmp_path):
    store, records = _group_store(
        tmp_path, JobSpec(subject="expr", budget=100)
    )
    assert len(records) == 1
    assert records[0].spec.shard_group is None
    assert records[0].spec.shard_id is None


def test_client_supplied_shard_group_is_rejected(tmp_path):
    store = JobStore(tmp_path / "journal.jsonl")
    with pytest.raises(JobError, match="assigned by the service"):
        store.submit_sharded(
            JobSpec(subject="expr", budget=100, shards=2,
                    shard_id=0, shard_group="mine")
        )


@pytest.mark.parametrize(
    "spec_kwargs, fragment",
    [
        ({"shards": 0}, "shards"),
        ({"shards": 2, "tool": "afl"}, "pfuzzer"),
        ({"shard_id": 0}, "shard_group"),
        ({"shard_id": 5, "shards": 2, "shard_group": "g"}, "shard_id"),
        ({"sync_every": 0}, "sync_every"),
    ],
)
def test_invalid_shard_specs_raise(tmp_path, spec_kwargs, fragment):
    with pytest.raises(JobError, match=fragment):
        JobSpec(subject="expr", budget=100, **spec_kwargs).validate()


def test_journal_replay_reconstructs_the_group(tmp_path):
    store, records = _group_store(
        tmp_path,
        JobSpec(subject="expr", budget=400, seed=7, shards=2),
    )
    group = records[0].spec.shard_group
    reloaded = JobStore(tmp_path / "journal.jsonl")
    members = [
        record for record in reloaded.list()
        if record.spec.shard_group == group
    ]
    assert [record.spec.shard_id for record in members] == [0, 1]
    assert [record.spec.seed for record in members] == [7, 8]


# --------------------------------------------------------------------- #
# Gang scheduling: members rotate round-robin, share one stride account
# --------------------------------------------------------------------- #


def test_gang_members_alternate_on_a_single_worker(tmp_path):
    store = JobStore(tmp_path / "journal.jsonl")
    records = store.submit_sharded(
        JobSpec(subject="expr", budget=300, seed=11, shards=2,
                sync_every=100, checkpoint_every=50)
    )
    scheduler = CampaignScheduler(
        store, tmp_path, SchedulerConfig(workers=1, slice_executions=100)
    )
    scheduler.run_until_idle()
    member_ids = [record.job_id for record in records]
    group_dispatches = [
        job_id for job_id in scheduler.dispatch_log if job_id in member_ids
    ]
    # Round-robin rotation: the least-progressed member goes next, so at
    # every point of the schedule the members' slice counts differ by at
    # most one.  (Strict alternation can break when a slice overshoots
    # its cap by one iteration — the rotation then compensates, which is
    # exactly the least-progressed-first behaviour.)
    assert len(group_dispatches) >= 4
    counts = dict.fromkeys(member_ids, 0)
    for job_id in group_dispatches:
        counts[job_id] += 1
        assert max(counts.values()) - min(counts.values()) <= 1
    for record in store.list():
        assert record.state is JobState.DONE
        assert record.executions == 300


def test_group_shares_fairly_with_an_ordinary_job(tmp_path):
    """A 2-member group charges one stride account: the neighbour job is
    not crowded out 2:1 — before the group gets its second *round*, the
    neighbour has run at least one slice."""
    store = JobStore(tmp_path / "journal.jsonl")
    members = store.submit_sharded(
        JobSpec(subject="expr", budget=200, seed=1, shards=2,
                checkpoint_every=50)
    )
    lone = store.submit(JobSpec(subject="expr", budget=200, seed=9,
                                checkpoint_every=50))
    scheduler = CampaignScheduler(
        store, tmp_path, SchedulerConfig(workers=1, slice_executions=100)
    )
    scheduler.run_until_idle()
    member_ids = {record.job_id for record in members}
    log = scheduler.dispatch_log
    first_lone = log.index(lone.job_id)
    # The lone job's first slice lands before any group member's second.
    seen = set()
    for job_id in log[:first_lone]:
        assert job_id not in seen, "a member ran twice before the lone job"
        seen.add(job_id)
    assert seen <= member_ids


# --------------------------------------------------------------------- #
# Lockstep parity with the reference orchestrator
# --------------------------------------------------------------------- #


def test_single_worker_group_matches_reference_fingerprints(tmp_path):
    from repro.eval.shards import ShardPlan, run_sharded

    budget, slice_executions = 300, 150
    plan = ShardPlan(
        subject="expr", budget=budget, shards=2, base_seed=11,
        slice_executions=slice_executions,
    )
    reference = run_sharded(plan, tmp_path / "reference")

    store = JobStore(tmp_path / "journal.jsonl")
    records = store.submit_sharded(
        JobSpec(subject="expr", budget=budget, seed=11, shards=2,
                sync_every=slice_executions, checkpoint_every=100)
    )
    scheduler = CampaignScheduler(
        store, tmp_path,
        SchedulerConfig(workers=1, slice_executions=slice_executions),
    )
    scheduler.run_until_idle()
    for record, outcome in zip(records, reference.shards):
        final = store.get(record.job_id)
        assert final.state is JobState.DONE
        assert final.executions == outcome.executions
        expected = hashlib.sha256(
            outcome.fingerprint.encode("ascii")
        ).hexdigest()
        assert final.result_fingerprint == expected


# --------------------------------------------------------------------- #
# HTTP control plane: POST /jobs with shards
# --------------------------------------------------------------------- #


@pytest.fixture
def service(tmp_path):
    from repro.service.client import ServiceClient
    from repro.service.server import CampaignService, make_server

    svc = CampaignService(
        tmp_path / "state",
        SchedulerConfig(workers=2, slice_executions=100),
    )
    httpd = make_server(svc)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    try:
        yield svc, client
    finally:
        httpd.shutdown()
        httpd.server_close()
        svc.scheduler.shutdown()


def test_post_jobs_with_shards_returns_the_group(service):
    svc, client = service
    response = client.submit(
        {"subject": "expr", "budget": 200, "seed": 3, "shards": 2,
         "sync_every": 100, "checkpoint_every": 50}
    )
    assert set(response) == {"shard_group", "jobs"}
    jobs = response["jobs"]
    assert len(jobs) == 2
    assert [job["spec"]["shard_id"] for job in jobs] == [0, 1]
    assert [job["spec"]["seed"] for job in jobs] == [3, 4]
    assert all(
        job["spec"]["shard_group"] == response["shard_group"]
        for job in jobs
    )
    # Members are ordinary jobs to the rest of the control plane.
    svc.run(until_idle=True)
    for job in jobs:
        record = client.job(job["job_id"])
        assert record["state"] == "done"
        assert record["executions"] == 200
    # The group's shared corpus store materialised under the state dir.
    group_store = (
        svc.scheduler.state_dir / "groups" / response["shard_group"]
        / "corpus.jsonl"
    )
    assert group_store.exists()


def test_post_jobs_without_shards_keeps_the_old_response_shape(service):
    svc, client = service
    record = client.submit({"subject": "expr", "budget": 100})
    assert "job_id" in record and "jobs" not in record


def test_post_jobs_rejects_invalid_shard_specs(service):
    from repro.service.client import ServiceError

    svc, client = service
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"subject": "expr", "budget": 100, "shards": 2,
                       "tool": "afl"})
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"subject": "expr", "budget": 100,
                       "shard_group": "mine", "shard_id": 0, "shards": 2})
    assert excinfo.value.status == 400
