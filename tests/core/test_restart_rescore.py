"""Regressions: queue-restart behaviour and rescore cache consistency.

Two latent defects in the restart / rescore interaction, pinned here:

* ``_restart_candidate`` used to give up after 64 colliding RNG draws and
  end the campaign even though the character pool still held unseen
  characters — the deterministic pool-scan fallback fixes that;
* the incremental ``new_count`` cache maintained by
  :meth:`CandidateQueue.rescore` must stay equal to the reference
  ``len(parent_branches - vBr)`` across emits, restarts and compactions,
  or cached scores silently diverge from
  :func:`repro.core.heuristic.heuristic_score`.
"""

from repro.core.candidate import Candidate
from repro.core.config import FuzzerConfig, HeuristicWeights
from repro.core.fuzzer import PFuzzer
from repro.core.heuristic import heuristic_score
from repro.core.queue import CandidateQueue
from repro.subjects.registry import load_subject


# --------------------------------------------------------------------- #
# _restart_candidate fallback
# --------------------------------------------------------------------- #


def test_restart_falls_back_to_pool_scan_when_rng_draws_collide(monkeypatch):
    fuzzer = PFuzzer(load_subject("expr"), FuzzerConfig(seed=0))
    pool = fuzzer.config.character_pool
    # Everything except one pool character has been executed already...
    unseen = pool[len(pool) // 2]
    fuzzer._seen = {char for char in pool if char != unseen}
    # ...and the RNG insists on drawing an already-seen character forever.
    monkeypatch.setattr(fuzzer, "_random_char", lambda: pool[0])
    candidate = fuzzer._restart_candidate()
    assert candidate is not None
    assert candidate.text == unseen


def test_restart_returns_none_only_when_pool_is_exhausted():
    fuzzer = PFuzzer(load_subject("expr"), FuzzerConfig(seed=0))
    fuzzer._seen = set(fuzzer.config.character_pool)
    assert fuzzer._restart_candidate() is None


def test_campaign_ends_early_only_when_search_space_is_exhausted():
    """A tiny max_input_length forces many restarts.  The campaign may end
    with budget left only once the queue is empty AND every pool character
    has been seen — never because 64 RNG draws happened to collide (the
    old fallback-less behaviour)."""
    config = FuzzerConfig(seed=11, max_executions=400, max_input_length=2)
    fuzzer = PFuzzer(load_subject("expr"), config)
    result = fuzzer.run()
    if result.executions < config.max_executions:
        assert len(fuzzer._queue) == 0
        unseen = [c for c in config.character_pool if c not in fuzzer._seen]
        assert unseen == []


# --------------------------------------------------------------------- #
# rescore cache consistency
# --------------------------------------------------------------------- #


def _assert_cache_consistent(queue, vbr, path_counts, weights):
    vbr_frozen = frozenset(vbr)
    for candidate in queue:
        reference = heuristic_score(candidate, vbr_frozen, path_counts, weights)
        cached_count = candidate.new_count
        assert cached_count is None or cached_count == len(
            candidate.branch_set() - vbr_frozen
        ), (
            f"cached new_count {cached_count} != reference "
            f"{len(candidate.branch_set() - vbr_frozen)} "
            f"for {candidate.text!r}"
        )
        if cached_count is not None and candidate.static_score is not None:
            cached_score = (
                weights.new_branches * cached_count
                + candidate.static_score
                - weights.path_repetition
                * path_counts.get(candidate.path_signature, 0)
            )
            assert abs(cached_score - reference) < 1e-9


def test_rescore_keeps_new_count_consistent_after_restarts():
    """Restart-heavy campaign: after every emit-triggered rescore (and the
    restarts in between), every queued candidate's cached ``new_count``
    matches the reference set difference against the current vBr."""
    config = FuzzerConfig(seed=3, max_executions=500, max_input_length=3)
    fuzzer = PFuzzer(load_subject("expr"), config)

    checks = []

    def on_emit(executions, text):
        _assert_cache_consistent(
            fuzzer._queue,
            fuzzer._valid_branches,
            fuzzer._path_counts,
            config.weights,
        )
        checks.append(executions)

    fuzzer.on_emit = on_emit
    fuzzer.run()
    assert checks, "campaign emitted nothing; test exercised no rescans"
    _assert_cache_consistent(
        fuzzer._queue, fuzzer._valid_branches, fuzzer._path_counts, config.weights
    )


def test_rescore_does_not_resurrect_zero_counts():
    """A candidate whose cached count already hit 0 must stay at 0 even
    when later-added branches overlap its parents again (the None/0 guard
    in CandidateQueue.rescore)."""
    weights = HeuristicWeights()
    vbr = set()

    def score(candidate):
        count = candidate.new_count
        if count is None:
            count = len(candidate.branch_set() - frozenset(vbr))
            candidate.new_count = count
        return float(count)

    queue = CandidateQueue(score, limit=100)
    branches = frozenset({1, 2})
    queue.push(Candidate("x", parent_branches=branches))
    # First emit covers both parent arcs: cached count drops 2 -> 0.
    vbr.update({1, 2})
    queue.rescore(frozenset({1, 2}))
    (candidate,) = list(queue)
    assert candidate.new_count == 0
    # A second rescore whose added arcs overlap the same parents must not
    # drive the count negative (or worse, treat 0 as "unscored").
    queue.rescore(frozenset({1, 3}))
    assert candidate.new_count == 0


def test_unscored_candidates_score_fresh_against_current_vbr():
    """new_count is None until first scored; rescore must leave None alone
    so the next scoring computes against the *current* vBr."""
    scored_with = []

    def score(candidate):
        count = candidate.new_count
        if count is None:
            count = len(candidate.branch_set() - frozenset(vbr))
            candidate.new_count = count
            scored_with.append(set(vbr))
        return float(count)

    vbr = set()
    queue = CandidateQueue(score, limit=100)
    candidate = Candidate("y", parent_branches=frozenset({5, 6}))
    candidate.new_count = None  # simulate a never-scored cache
    queue._heap.append((0.0, 0, candidate))  # bypass push's scoring
    queue._note_arcs(candidate)  # ...but keep the rescore bitmap sized
    vbr.update({5})
    queue.rescore(frozenset({5}))
    assert candidate.new_count == 1  # scored fresh against vBr={5}
