"""Priority queue: ordering, re-scoring, capping."""

import random

from repro.core.candidate import Candidate
from repro.core.config import HeuristicWeights
from repro.core.heuristic import heuristic_score
from repro.core.queue import CandidateQueue


def test_pop_highest_score():
    queue = CandidateQueue(lambda c: float(len(c.text)))
    queue.push(Candidate("a"))
    queue.push(Candidate("abc"))
    queue.push(Candidate("ab"))
    assert queue.pop().text == "abc"
    assert queue.pop().text == "ab"
    assert queue.pop().text == "a"
    assert queue.pop() is None


def test_fifo_tiebreak_on_equal_scores():
    queue = CandidateQueue(lambda c: 0.0)
    queue.push(Candidate("first"))
    queue.push(Candidate("second"))
    assert queue.pop().text == "first"


def test_len_and_iter():
    queue = CandidateQueue(lambda c: 0.0)
    queue.push(Candidate("a"))
    queue.push(Candidate("b"))
    assert len(queue) == 2
    assert {c.text for c in queue} == {"a", "b"}


def test_rescore_changes_order():
    bias = {"value": 1.0}

    def score(candidate):
        return bias["value"] * len(candidate.text)

    queue = CandidateQueue(score)
    queue.push(Candidate("a"))
    queue.push(Candidate("abc"))
    bias["value"] = -1.0
    queue.rescore()
    assert queue.pop().text == "a"


def test_limit_drops_lowest_on_overflow():
    # Capacity is enforced lazily: once the queue exceeds 2x its limit it
    # is compacted down to the best `limit` candidates.
    queue = CandidateQueue(lambda c: float(len(c.text)), limit=1)
    queue.push(Candidate("a"))
    queue.push(Candidate("ab"))
    queue.push(Candidate("abc"))  # 3 > 2*1 -> compact to best 1
    assert queue.pop().text == "abc"
    assert queue.pop() is None


def test_limit_enforced_on_rescore():
    queue = CandidateQueue(lambda c: float(len(c.text)), limit=2)
    for text in ("a", "ab", "abc", "abcd"):
        queue.push(Candidate(text))
    queue.rescore()
    assert len(queue) == 2
    assert queue.pop().text == "abcd"
    assert queue.pop().text == "abc"


def test_incremental_rescore_matches_reference_scoring():
    """The new_count cache updated via rescore(added) must track the exact
    |parent_branches \\ vBr| that heuristic_score computes from scratch."""
    rng = random.Random(7)
    weights = HeuristicWeights()
    valid = set()

    def cached_score(candidate):
        # Mirrors PFuzzer._score: use the cache, fall back to a fresh diff.
        if candidate.new_count is None:
            candidate.new_count = len(candidate.branch_set() - valid)
        return (
            weights.new_branches * candidate.new_count
            + weights.replacement_length * len(candidate.replacement)
            - weights.input_length * len(candidate.text)
            - weights.stack_size * candidate.avg_stack
            + weights.parents * candidate.parents
        )

    queue = CandidateQueue(cached_score)
    candidates = []
    for index in range(60):
        branches = frozenset(rng.sample(range(40), rng.randint(0, 12)))
        candidate = Candidate(
            text="x" * rng.randint(0, 5),
            replacement="y" * rng.randint(0, 3),
            parents=rng.randint(0, 4),
            parent_branches=branches,
            avg_stack=float(rng.randint(0, 6)),
        )
        candidates.append(candidate)
        queue.push(candidate)

    for _ in range(5):
        added = frozenset(rng.sample(range(40), rng.randint(1, 8))) - valid
        valid |= added
        queue.rescore(frozenset(added))
        for candidate in candidates:
            expected = heuristic_score(
                candidate, frozenset(valid), {}, weights
            )
            assert cached_score(candidate) == expected


def test_rescore_without_arguments_still_rebuilds():
    """rescore() with no added branches stays a full re-sort (legacy API)."""
    bias = {"value": 1.0}
    queue = CandidateQueue(lambda c: bias["value"] * len(c.text))
    queue.push(Candidate("a"))
    queue.push(Candidate("abcd"))
    bias["value"] = -1.0
    queue.rescore()
    assert queue.pop().text == "a"


def test_interleaved_push_pop():
    queue = CandidateQueue(lambda c: float(len(c.text)))
    queue.push(Candidate("ab"))
    assert queue.pop().text == "ab"
    queue.push(Candidate("a"))
    queue.push(Candidate("abcd"))
    assert queue.pop().text == "abcd"


# --------------------------------------------------------------------- #
# Queue hygiene: cull() and live_depth() (DESIGN.md §10)
# --------------------------------------------------------------------- #


def test_cull_drops_dead_entries():
    queue = CandidateQueue(lambda c: float(len(c.text)))
    queue.push(Candidate("seen"))
    queue.push(Candidate("fresh"))
    stats = queue.cull({"seen"})
    assert (stats.dead, stats.dominated, stats.kept) == (1, 0, 1)
    assert [c.text for c in queue] == ["fresh"]


def test_cull_keeps_earliest_of_identical_metadata_duplicates():
    queue = CandidateQueue(lambda c: 0.0)
    first = Candidate("dup", replacement="r", parent_branches={1, 2})
    second = Candidate("dup", replacement="r", parent_branches={1, 2})
    queue.push(first)
    queue.push(second)
    stats = queue.cull(set())
    assert (stats.dead, stats.dominated, stats.kept) == (0, 1, 1)
    assert queue.pop() is first


def test_cull_keeps_same_text_with_distinct_metadata():
    # Same text but different replacement/branches: distinct work items
    # until one of them executes — neither dominates the other.
    queue = CandidateQueue(lambda c: 0.0)
    queue.push(Candidate("x", replacement="a", parent_branches={1}))
    queue.push(Candidate("x", replacement="b", parent_branches={2}))
    stats = queue.cull(set())
    assert (stats.dead, stats.dominated, stats.kept) == (0, 0, 2)


def test_live_depth_counts_without_mutating():
    queue = CandidateQueue(lambda c: 0.0)
    queue.push(Candidate("seen"))
    queue.push(Candidate("dup"))
    queue.push(Candidate("dup"))
    queue.push(Candidate("fresh"))
    assert queue.live_depth({"seen"}) == 2  # dup (once) + fresh
    assert len(queue) == 4  # untouched
    stats = queue.cull({"seen"})
    assert stats.kept == 2
    assert queue.live_depth({"seen"}) == len(queue) == 2


def test_cull_on_clean_queue_is_a_noop():
    queue = CandidateQueue(lambda c: float(len(c.text)))
    for text in ("a", "ab", "abc"):
        queue.push(Candidate(text))
    entries_before, counter_before = queue.dump_entries()
    stats = queue.cull(set())
    assert (stats.dead, stats.dominated, stats.kept) == (0, 0, 3)
    entries_after, counter_after = queue.dump_entries()
    assert entries_after == entries_before
    assert counter_after == counter_before


def test_cull_preserves_returned_pop_sequence():
    """The safety contract: the sequence of pops the fuzzer *executes* is
    identical with and without a cull.  Models the real pop loop — an
    executed text joins the seen set, so later entries for it are skipped
    whether or not a cull already removed them."""
    rng = random.Random(13)
    params = []
    for i in range(24):
        params.append(
            (
                f"t{i % 12}",
                "r" * rng.randint(0, 2),
                rng.randint(0, 3),
                frozenset(rng.sample(range(8), 2)),
            )
        )
    # Guarantee identical-metadata duplicates (dominated entries).
    params.extend(params[::4])
    seen = {f"t{i}" for i in range(0, 12, 3)}

    def build():
        queue = CandidateQueue(lambda c: float(c.parents))
        for text, replacement, parents, branches in params:
            queue.push(
                Candidate(
                    text,
                    replacement=replacement,
                    parents=parents,
                    parent_branches=branches,
                )
            )
        return queue

    plain = build()
    culled = build()
    stats = culled.cull(seen)
    assert stats.dominated > 0 and stats.dead > 0

    def executed_pops(queue):
        executed = set(seen)
        pops = []
        while True:
            candidate = queue.pop()
            if candidate is None:
                return pops
            if candidate.text in executed:
                continue  # what the fuzzer's pop loop discards
            executed.add(candidate.text)
            pops.append(
                (candidate.text, candidate.replacement, candidate.parents)
            )
        return pops

    assert executed_pops(culled) == executed_pops(plain)
