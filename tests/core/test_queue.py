"""Priority queue: ordering, re-scoring, capping."""

from repro.core.candidate import Candidate
from repro.core.queue import CandidateQueue


def test_pop_highest_score():
    queue = CandidateQueue(lambda c: float(len(c.text)))
    queue.push(Candidate("a"))
    queue.push(Candidate("abc"))
    queue.push(Candidate("ab"))
    assert queue.pop().text == "abc"
    assert queue.pop().text == "ab"
    assert queue.pop().text == "a"
    assert queue.pop() is None


def test_fifo_tiebreak_on_equal_scores():
    queue = CandidateQueue(lambda c: 0.0)
    queue.push(Candidate("first"))
    queue.push(Candidate("second"))
    assert queue.pop().text == "first"


def test_len_and_iter():
    queue = CandidateQueue(lambda c: 0.0)
    queue.push(Candidate("a"))
    queue.push(Candidate("b"))
    assert len(queue) == 2
    assert {c.text for c in queue} == {"a", "b"}


def test_rescore_changes_order():
    bias = {"value": 1.0}

    def score(candidate):
        return bias["value"] * len(candidate.text)

    queue = CandidateQueue(score)
    queue.push(Candidate("a"))
    queue.push(Candidate("abc"))
    bias["value"] = -1.0
    queue.rescore()
    assert queue.pop().text == "a"


def test_limit_drops_lowest_on_overflow():
    # Capacity is enforced lazily: once the queue exceeds 2x its limit it
    # is compacted down to the best `limit` candidates.
    queue = CandidateQueue(lambda c: float(len(c.text)), limit=1)
    queue.push(Candidate("a"))
    queue.push(Candidate("ab"))
    queue.push(Candidate("abc"))  # 3 > 2*1 -> compact to best 1
    assert queue.pop().text == "abc"
    assert queue.pop() is None


def test_limit_enforced_on_rescore():
    queue = CandidateQueue(lambda c: float(len(c.text)), limit=2)
    for text in ("a", "ab", "abc", "abcd"):
        queue.push(Candidate(text))
    queue.rescore()
    assert len(queue) == 2
    assert queue.pop().text == "abcd"
    assert queue.pop().text == "abc"


def test_interleaved_push_pop():
    queue = CandidateQueue(lambda c: float(len(c.text)))
    queue.push(Candidate("ab"))
    assert queue.pop().text == "ab"
    queue.push(Candidate("a"))
    queue.push(Candidate("abcd"))
    assert queue.pop().text == "abcd"
