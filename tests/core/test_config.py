"""Fuzzer configuration defaults and weight plumbing."""

from repro.core.config import (
    DEFAULT_CHARACTER_POOL,
    FuzzerConfig,
    HeuristicWeights,
)


def test_default_pool_contents():
    for char in "az09(){}<>;=+-\"'[] \t\n":
        assert char in DEFAULT_CHARACTER_POOL, repr(char)
    # Non-printable controls are not in the default pool.
    assert "\x00" not in DEFAULT_CHARACTER_POOL


def test_default_weights_match_paper_formula():
    weights = HeuristicWeights()
    assert weights.new_branches == 1.0
    assert weights.input_length == 1.0
    assert weights.replacement_length == 2.0  # the paper's 2x bonus
    assert weights.stack_size == 1.0
    assert weights.parents == -1.0  # prose reading (DESIGN.md §6)
    assert weights.path_repetition == 1.0


def test_config_defaults():
    config = FuzzerConfig()
    assert config.seed is None
    assert config.max_executions == 2_000
    assert config.max_valid_inputs is None
    assert config.trace_coverage
    assert config.initial_inputs == ()


def test_configs_do_not_share_weights():
    first = FuzzerConfig()
    second = FuzzerConfig()
    first.weights.parents = 99.0
    assert second.weights.parents == -1.0
