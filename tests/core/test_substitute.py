"""Substitution derivation from comparison traces."""

from repro.core.substitute import substitutions_for
from repro.runtime.harness import run_subject


def subs_texts(subject, text):
    return {s.text for s in substitutions_for(run_subject(subject, text))}


def test_first_char_substitutions_match_figure1(expr_subject):
    texts = subs_texts(expr_subject, "A")
    assert "(" in texts
    assert "+" in texts and "-" in texts
    assert {"0", "5", "9"} <= texts  # digit-class members


def test_substitution_truncates_tail(expr_subject):
    # "1A9": rejection at index 1; the '9' was never compared -> dropped.
    texts = subs_texts(expr_subject, "1A9")
    assert all(not t.startswith("1A") for t in texts)
    assert "1+" in texts


def test_eof_comparisons_append(expr_subject):
    # "(2" runs out of input; substitutions extend the prefix.
    texts = subs_texts(expr_subject, "(2")
    assert "(2)" in texts
    assert "(2+" in texts and "(2-" in texts


def test_string_comparison_substitutes_whole_keyword(tinyc_subject):
    texts = subs_texts(tinyc_subject, "wq")
    assert "while" in texts
    assert "do" in texts  # the whole keyword table was scanned


def test_no_comparisons_no_substitutions(ini_subject):
    # Valid empty input: ini never compares anything.
    result = run_subject(ini_subject, "")
    assert substitutions_for(result) == []


def test_no_duplicate_texts(expr_subject):
    result = run_subject(expr_subject, "A")
    texts = [s.text for s in substitutions_for(result)]
    assert len(texts) == len(set(texts))


def test_substitution_records_metadata(expr_subject):
    result = run_subject(expr_subject, "A")
    substitutions = substitutions_for(result)
    paren = next(s for s in substitutions if s.text == "(")
    assert paren.replacement == "("
    assert paren.at_index == 0


def test_valid_input_substitutions_extend(expr_subject):
    # A valid "1" still yields extension candidates from its EOF checks.
    texts = subs_texts(expr_subject, "1")
    assert "1+" in texts and "1-" in texts
