"""Cross-backend and cross-process determinism of whole campaigns.

Two guarantees are pinned here:

* **Backend equivalence at campaign scale** — for the same seed, the
  settrace and AST coverage backends must emit byte-identical campaigns
  (same inputs, same emit order, same execution numbers).  Per-run arc
  equality is covered by ``tests/runtime/test_instrument.py``; this is the
  end-to-end corollary the acceptance criteria demand.

* **Hash-seed independence** — path signatures are content-derived
  (blake2b over interned arcs, see :meth:`ArcTable.signature`), never
  ``hash()`` of a frozenset.  A campaign must therefore not change when
  ``PYTHONHASHSEED`` changes, which the regression test checks in fresh
  subprocesses.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.subjects.registry import load_subject

_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")

_CAMPAIGN_SNIPPET = """\
import json, sys
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.subjects.registry import load_subject

result = PFuzzer(
    load_subject("expr"),
    FuzzerConfig(seed=3, max_executions=250, coverage_backend="settrace"),
).run()
print(json.dumps({
    "valid_inputs": result.valid_inputs,
    "emit_log": result.emit_log,
    "executions": result.executions,
    "rejected": result.rejected,
}))
"""


def _campaign(subject_name: str, backend: str, seed: int, budget: int):
    config = FuzzerConfig(
        seed=seed, max_executions=budget, coverage_backend=backend
    )
    return PFuzzer(load_subject(subject_name), config).run()


@pytest.mark.parametrize("subject_name,seed,budget", [
    ("expr", 0, 400),
    ("expr", 3, 400),
    ("json", 3, 400),
    ("ini", 1, 300),
])
def test_campaigns_identical_across_backends(subject_name, seed, budget):
    traced = _campaign(subject_name, "settrace", seed, budget)
    compiled = _campaign(subject_name, "ast", seed, budget)
    assert traced.valid_inputs == compiled.valid_inputs
    assert traced.emit_log == compiled.emit_log
    assert traced.all_valid == compiled.all_valid
    assert traced.executions == compiled.executions
    assert traced.rejected == compiled.rejected
    assert traced.hangs == compiled.hangs
    assert traced.queue_depth == compiled.queue_depth
    assert traced.valid_branches == compiled.valid_branches


def _run_with_hashseed(hashseed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=_SRC)
    proc = subprocess.run(
        [sys.executable, "-c", _CAMPAIGN_SNIPPET],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return proc.stdout


def test_campaign_independent_of_hash_seed():
    """Same campaign under PYTHONHASHSEED=1 and =2 — byte-identical output.

    Before path signatures became content-derived, ``hash(frozenset)`` of
    the branch set leaked the interpreter's string-hash randomisation into
    ``_path_counts`` and hence into scores and emit order.
    """
    assert _run_with_hashseed("1") == _run_with_hashseed("2")
