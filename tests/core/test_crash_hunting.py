"""Crash hunting: CRASH results as findings, not campaign killers.

The headline bugfix (ISSUE: unexpected subject exceptions kill
campaigns): a subject raising something other than ParseError/HangError
used to propagate out of ``run_subject`` and abort the whole campaign.
Now it is classified as ``ExitStatus.CRASH`` with a deterministic
failure-site signature, the campaign completes its budget, and with
``hunt_crashes`` the crashing inputs are recorded as deduplicated
findings (corpus records, ``crash_found`` trace events, counters).
"""

import sys
from pathlib import Path

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.obs.trace import InMemoryTraceRecorder
from repro.runtime.harness import ExitStatus, failure_site, run_subject
from repro.subjects.registry import load_subject, load_subject_module

HELPERS = str(Path(__file__).resolve().parent.parent / "helpers")
if HELPERS not in sys.path:
    sys.path.insert(0, HELPERS)
load_subject_module("crashy_plugin")

import crashy_plugin  # noqa: E402  (needs sys.path above)

CRASHING_INPUT = "(" * (crashy_plugin.CRASH_DEPTH + 1)


def _campaign(tracer=None, **overrides):
    defaults = dict(seed=7, max_executions=400, hunt_crashes=True)
    defaults.update(overrides)
    return PFuzzer(
        load_subject("crashy"), FuzzerConfig(**defaults), tracer=tracer
    ).run()


# --------------------------------------------------------------------- #
# Harness level: classification and failure sites
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ("settrace", "ast"))
def test_unexpected_exception_becomes_crash_status(backend):
    result = run_subject(
        load_subject("crashy"), CRASHING_INPUT, coverage_backend=backend
    )
    assert result.status is ExitStatus.CRASH
    assert not result.valid
    assert result.crashed
    exc_type, filename, line = result.crash_signature
    assert exc_type == "RecursionError"
    assert filename.endswith("crashy_plugin.py")
    assert line > 0
    assert result.error.startswith("RecursionError")


def test_failure_site_picks_deepest_subject_frame():
    from repro.runtime.stream import InputStream

    subject = load_subject("crashy")
    try:
        subject.parse(InputStream(CRASHING_INPUT))
    except RecursionError as exc:
        site = failure_site(exc, subject.files)
    assert site[0] == "RecursionError"
    assert site[1].endswith("crashy_plugin.py")


@pytest.mark.parametrize("backend", ("settrace", "ast"))
def test_crash_signatures_identical_across_backends(backend):
    reference = run_subject(load_subject("crashy"), CRASHING_INPUT)
    other = run_subject(
        load_subject("crashy"), CRASHING_INPUT, coverage_backend=backend
    )
    assert other.crash_signature == reference.crash_signature


def test_parse_and_hang_errors_are_not_crashes():
    rejected = run_subject(load_subject("crashy"), "x")
    assert rejected.status is ExitStatus.REJECTED
    assert rejected.crash_signature is None
    hang = run_subject(load_subject("tinyc"), "while(9);")
    assert hang.status is ExitStatus.HANG
    assert hang.crash_signature is None


# --------------------------------------------------------------------- #
# Campaign level: the budget survives the crash
# --------------------------------------------------------------------- #


def test_campaign_survives_crashes_and_completes_budget():
    recorder = InMemoryTraceRecorder()
    result = _campaign(tracer=recorder)
    assert result.crashes >= 1
    # The campaign ran on well past the first crash (it used to die on
    # the spot); it ends only at its budget or queue exhaustion.
    first_crash = next(
        e["executions"]
        for e in recorder.events
        if e["type"] == "crash_found"
    )
    assert result.executions > first_crash
    # Dedupe: many crashing executions, one recorded finding per site.
    assert len(result.crash_signatures) == len(set(result.crash_signatures))
    assert len(result.crash_signatures) >= 1
    assert len(result.crash_inputs) == len(result.crash_signatures)
    assert len(result.crash_path_signatures) == len(result.crash_signatures)
    exc_type, filename, _ = result.crash_signatures[0]
    assert exc_type == "RecursionError"
    assert filename.endswith("crashy_plugin.py")


def test_crashes_counted_but_not_recorded_without_hunting():
    result = _campaign(hunt_crashes=False)
    assert result.crashes >= 1
    assert result.crash_inputs == []
    assert result.crash_signatures == []


def test_crash_found_trace_events_are_deduplicated():
    recorder = InMemoryTraceRecorder()
    result = _campaign(tracer=recorder)
    found = [e for e in recorder.events if e["type"] == "crash_found"]
    assert len(found) == len(result.crash_signatures)
    for event, signature in zip(found, result.crash_signatures):
        assert tuple(event["signature"]) == signature
        assert event["text"] in result.crash_inputs


def test_hunting_does_not_change_the_campaign_itself():
    """Hunting only adds recording; the fuzzing trajectory is identical."""
    hunting = _campaign()
    plain = _campaign(hunt_crashes=False)
    assert hunting.valid_inputs == plain.valid_inputs
    assert hunting.executions == plain.executions
    assert hunting.crashes == plain.crashes


# --------------------------------------------------------------------- #
# Durability: snapshots carry the crash findings
# --------------------------------------------------------------------- #


def test_resume_preserves_crash_findings(tmp_path):
    reference = _campaign(
        checkpoint_dir=str(tmp_path / "ck"),
        checkpoint_every=100,
        checkpoint_keep=1_000,
    )
    assert reference.crash_signatures
    resumed = _campaign(
        checkpoint_dir=str(tmp_path / "ck"),
        checkpoint_every=100,
        resume=True,
        max_executions=500,
    )
    assert resumed.resumes == 1
    # The resumed leg starts from the reference's findings and keeps
    # deduplicating against them: no site is recorded twice.
    assert set(reference.crash_signatures) <= set(resumed.crash_signatures)
    assert len(resumed.crash_signatures) == len(
        set(resumed.crash_signatures)
    )
    assert resumed.crashes >= reference.crashes
