"""PFuzzer integration: Algorithm 1 end to end on small budgets."""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.subjects.registry import load_subject


def fuzz(subject, **kwargs):
    defaults = dict(seed=1, max_executions=300)
    defaults.update(kwargs)
    return PFuzzer(subject, FuzzerConfig(**defaults)).run()


def test_emits_only_valid_inputs(expr_subject):
    """The paper's by-construction invariant: every output is accepted."""
    result = fuzz(expr_subject)
    assert result.valid_inputs
    for text in result.valid_inputs:
        assert expr_subject.accepts(text), text


def test_all_valid_superset_of_emitted(expr_subject):
    result = fuzz(expr_subject)
    assert set(result.valid_inputs) <= set(result.all_valid)


def test_emitted_inputs_unique(expr_subject):
    result = fuzz(expr_subject)
    assert len(result.valid_inputs) == len(set(result.valid_inputs))


def test_respects_execution_budget(expr_subject):
    result = fuzz(expr_subject, max_executions=50)
    assert result.executions <= 50


def test_max_valid_inputs_stops_early(expr_subject):
    result = fuzz(expr_subject, max_executions=10_000, max_valid_inputs=2)
    assert len(result.valid_inputs) == 2
    assert result.executions < 10_000


def test_deterministic_with_seed(expr_subject):
    first = fuzz(expr_subject, seed=7)
    second = fuzz(expr_subject, seed=7)
    assert first.valid_inputs == second.valid_inputs
    assert first.executions == second.executions


def test_different_seeds_differ(expr_subject):
    # Not guaranteed in principle, but with this budget the search paths
    # diverge immediately.
    first = fuzz(expr_subject, seed=1, max_executions=200)
    second = fuzz(expr_subject, seed=2, max_executions=200)
    assert first.valid_inputs != second.valid_inputs


def test_discovers_expression_features(expr_subject):
    """§2: the walkthrough token set — digits, signs, operators, parens."""
    result = fuzz(expr_subject, max_executions=600)
    corpus = " ".join(result.all_valid)
    assert any(c.isdigit() for c in corpus)
    assert "+" in corpus and "-" in corpus
    assert "(" in corpus and ")" in corpus


def test_discovers_json_keywords():
    result = PFuzzer(
        load_subject("json"), FuzzerConfig(seed=3, max_executions=2000)
    ).run()
    corpus = set(result.valid_inputs)
    assert any("true" in t for t in corpus)
    assert any("null" in t for t in corpus)
    assert any("false" in t for t in corpus)


def test_discovers_tinyc_while():
    """The headline behaviour: a full while-loop synthesised from nothing.

    Keyword discovery on tinyc is budget- and seed-sensitive because
    tokenization breaks taint flow after the keyword (the paper's §7.2
    limitation): progress past ``while`` relies on random extensions.  The
    seed here is a known-good one at this budget; the campaign benchmarks
    run best-of-N with larger budgets, like the paper's 48-hour runs.
    """
    result = PFuzzer(
        load_subject("tinyc"), FuzzerConfig(seed=3, max_executions=3000)
    ).run()
    assert any("while" in t for t in result.all_valid)


def test_stats_accounting(expr_subject):
    result = fuzz(expr_subject)
    assert result.rejected > 0
    assert result.executions >= result.rejected
    assert result.valid_branches
    assert result.wall_time >= 0.0


def test_emit_log_matches_valid_inputs(expr_subject):
    result = fuzz(expr_subject)
    assert [text for _, text in result.emit_log] == result.valid_inputs
    counts = [execution for execution, _ in result.emit_log]
    assert counts == sorted(counts)


def test_max_input_length_respected(expr_subject):
    result = fuzz(expr_subject, max_executions=400, max_input_length=5)
    assert all(len(text) <= 6 for text in result.all_valid)


def test_coverage_gating(expr_subject):
    """Emitted inputs each covered new branches at emission time."""
    result = fuzz(expr_subject)
    # Emitted list is far smaller than all accepted inputs.
    assert len(result.valid_inputs) < len(result.all_valid)


def test_on_emit_callback_streams_outputs(expr_subject):
    events = []
    PFuzzer(
        expr_subject,
        FuzzerConfig(seed=1, max_executions=300),
        on_emit=lambda executions, text: events.append((executions, text)),
    ).run()
    assert events
    fresh = fuzz(expr_subject, max_executions=300)
    assert events == fresh.emit_log


def test_seed_corpus_bootstraps_search(expr_subject):
    """Resuming from a previous corpus: seeds are explored first."""
    seeded = fuzz(
        expr_subject,
        max_executions=100,
        initial_inputs=("(1", "1+"),
    )
    # The seeds' comparison traces immediately suggest the closings.
    assert any(text.startswith("(1") for text in seeded.all_valid) or any(
        text.startswith("1+") for text in seeded.all_valid
    )


def test_seed_corpus_valid_inputs_emitted(expr_subject):
    seeded = fuzz(expr_subject, max_executions=50, initial_inputs=("12",))
    assert "12" in seeded.valid_inputs


def test_runs_without_coverage_tracing(expr_subject):
    result = fuzz(expr_subject, trace_coverage=False, max_executions=200)
    assert result.valid_inputs  # gate degrades to first-seen, still emits
    for text in result.valid_inputs:
        assert expr_subject.accepts(text)


# --------------------------------------------------------------------- #
# Preemption hook (campaign service time slices)
# --------------------------------------------------------------------- #


def test_preemption_hook_stops_at_iteration_boundary(expr_subject):
    result = PFuzzer(
        expr_subject,
        FuzzerConfig(seed=1, max_executions=300),
        should_preempt=lambda run_execs, total: run_execs >= 60,
    ).run()
    assert result.preempted
    assert 60 <= result.executions < 300


def test_unpreempted_run_reports_preempted_false(expr_subject):
    result = fuzz(expr_subject, max_executions=100)
    assert not result.preempted


def test_sliced_run_reassembles_uninterrupted_result(expr_subject, tmp_path):
    """Run in preempt/resume slices; final result matches one whole run."""
    from repro.eval.checkpoint import result_fingerprint
    from repro.runtime.arcs import arc_table_for

    reference = fuzz(expr_subject, max_executions=300)

    config = FuzzerConfig(
        seed=1,
        max_executions=300,
        checkpoint_dir=str(tmp_path / "ck"),
        checkpoint_every=60,
        resume=True,
    )
    slices = 0
    while True:
        result = PFuzzer(
            expr_subject,
            config,
            should_preempt=lambda run_execs, total: run_execs >= 60,
        ).run()
        slices += 1
        if not result.preempted:
            break
        assert slices < 20, "slicing made no progress"
    assert slices > 1
    assert result.resumes == slices - 1
    table = arc_table_for(expr_subject)
    assert result_fingerprint(result, table) == result_fingerprint(
        reference, table
    )
