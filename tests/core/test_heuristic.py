"""The §3.1 heuristic: every term pulls in the documented direction."""

from repro.core.candidate import Candidate
from repro.core.config import HeuristicWeights
from repro.core.heuristic import heuristic_score

WEIGHTS = HeuristicWeights()


def score(candidate, valid=frozenset(), paths=None):
    return heuristic_score(candidate, valid, paths or {}, WEIGHTS)


def arcs(*ids):
    # Candidates carry interned arc *ids* (small ints), not raw arc tuples.
    return frozenset(ids)


def test_new_branches_raise_score():
    poor = Candidate("x", parent_branches=arcs(1))
    rich = Candidate("x", parent_branches=arcs(1, 2, 3))
    assert score(rich) > score(poor)


def test_already_valid_branches_do_not_count():
    candidate = Candidate("x", parent_branches=arcs(1, 2))
    fresh = score(candidate, valid=frozenset())
    stale = score(candidate, valid=arcs(1, 2))
    assert fresh > stale


def test_longer_input_penalised():
    short = Candidate("ab")
    long_ = Candidate("ab" * 10)
    assert score(short) > score(long_)


def test_longer_replacement_favoured():
    char = Candidate("x", replacement=")")
    keyword = Candidate("x", replacement="while")
    assert score(keyword) > score(char)


def test_replacement_bonus_is_twice_per_character():
    base = Candidate("x", replacement="")
    plus_two = Candidate("x", replacement="ab")
    assert score(plus_two) - score(base) == 2 * WEIGHTS.replacement_length


def test_stack_size_penalised():
    shallow = Candidate("x", avg_stack=1.0)
    deep = Candidate("x", avg_stack=9.0)
    assert score(shallow) > score(deep)


def test_fewer_parents_rank_higher_by_default():
    young = Candidate("x", parents=1)
    old = Candidate("x", parents=9)
    assert score(young) > score(old)


def test_paper_literal_parents_sign_configurable():
    weights = HeuristicWeights(parents=1.0)  # Algorithm 1 Line 50 literal
    young = Candidate("x", parents=1)
    old = Candidate("x", parents=9)
    assert heuristic_score(old, frozenset(), {}, weights) > heuristic_score(
        young, frozenset(), {}, weights
    )


def test_repeated_paths_penalised():
    candidate = Candidate("x", path_signature=42)
    fresh = score(candidate, paths={})
    repeated = score(candidate, paths={42: 5})
    assert fresh > repeated


def test_weights_zeroed_disable_terms():
    weights = HeuristicWeights(
        new_branches=0, input_length=0, replacement_length=0, stack_size=0,
        parents=0, path_repetition=0,
    )
    a = Candidate("abc", replacement="xy", parents=3, avg_stack=9.0)
    assert heuristic_score(a, frozenset(), {7: 3}, weights) == 0.0
