"""Dyck-path analysis (§3 footnote 2)."""

import pytest

from repro.analysis.dyck import catalan, closed_path_probability, simulate_random_walk


def test_catalan_numbers():
    assert [catalan(n) for n in range(8)] == [1, 1, 2, 5, 14, 42, 132, 429]


def test_catalan_rejects_negative():
    with pytest.raises(ValueError):
        catalan(-1)


def test_closed_probability_formula():
    assert closed_path_probability(0) == 1.0
    assert closed_path_probability(1) == 0.5
    assert closed_path_probability(100) == pytest.approx(1 / 101)


def test_paper_claim_one_percent_after_100():
    """§3: 'After 100 characters, this probability is about 1%'."""
    assert closed_path_probability(100) == pytest.approx(0.0099, abs=1e-4)


def test_simulation_decreases_with_length():
    short = simulate_random_walk(4, trials=20_000, seed=1)
    long_ = simulate_random_walk(40, trials=20_000, seed=1)
    assert short > long_


def test_simulation_matches_catalan_fraction_roughly():
    # For 2n steps, P(never negative AND ends at 0) = C_n / 2^(2n).
    n = 3
    expected = catalan(n) / 2 ** (2 * n)
    observed = simulate_random_walk(2 * n, trials=60_000, seed=2)
    assert observed == pytest.approx(expected, rel=0.1)


def test_simulation_validates_input():
    with pytest.raises(ValueError):
        simulate_random_walk(3, trials=10)
    with pytest.raises(ValueError):
        simulate_random_walk(0, trials=10)
