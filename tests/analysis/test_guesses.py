"""§2 cost analysis: guesses per generated character."""

from repro.analysis.guesses import best_cost_per_length, measure_guess_costs
from repro.subjects.expr import ExprSubject


def test_costs_are_cumulative_and_ordered():
    costs = measure_guess_costs(ExprSubject(), budget=400, seed=1)
    assert costs
    executions = [cost.executions for cost in costs]
    assert executions == sorted(executions)


def test_first_valid_input_is_cheap():
    """A first one-character valid input within a handful of guesses."""
    costs = measure_guess_costs(ExprSubject(), budget=400, seed=1)
    assert costs[0].executions <= 20


def test_guesses_per_char_metric():
    costs = measure_guess_costs(ExprSubject(), budget=400, seed=1)
    for cost in costs:
        if cost.text:
            assert cost.guesses_per_char == cost.executions / len(cost.text)


def test_best_cost_per_length_picks_minimum():
    costs = measure_guess_costs(ExprSubject(), budget=400, seed=1)
    best = best_cost_per_length(costs)
    for length, cost in best.items():
        assert cost.length == length
        rivals = [c for c in costs if c.length == length]
        assert cost.executions == min(r.executions for r in rivals)
