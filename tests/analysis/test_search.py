"""Naive DFS/BFS substitution searches (§3 motivations)."""

from repro.analysis.search import bfs_search, dfs_search


def test_both_find_trivial_valid_inputs(expr_subject):
    for search in (dfs_search, bfs_search):
        result = search(expr_subject, budget=200, seed=1)
        assert result.valid_inputs
        for text in result.valid_inputs:
            assert expr_subject.accepts(text)


def test_budget_respected(expr_subject):
    result = bfs_search(expr_subject, budget=50, seed=1)
    assert result.executions <= 50


def test_dfs_goes_deep_bfs_stays_shallow(expr_subject):
    dfs = dfs_search(expr_subject, budget=300, seed=1)
    bfs = bfs_search(expr_subject, budget=300, seed=1)
    assert dfs.max_depth_reached > bfs.max_depth_reached


def test_max_length_respected(expr_subject):
    result = dfs_search(expr_subject, budget=200, seed=1, max_length=10)
    assert all(len(text) <= 10 for text in result.valid_inputs)
