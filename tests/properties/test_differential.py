"""Differential property tests: subjects vs reference implementations."""

import json as json_module

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.stream import InputStream
from repro.subjects.cjson import CJsonSubject
from repro.subjects.expr import ExprSubject
from repro.tables.subjects import TableExprSubject

# ---------------------------------------------------------------------- #
# Random expression ASTs rendered to text
# ---------------------------------------------------------------------- #

expr_asts = st.recursive(
    st.integers(min_value=0, max_value=999).map(str),
    lambda children: st.one_of(
        st.tuples(children, st.sampled_from("+-"), children).map(
            lambda t: f"{t[0]}{t[1]}{t[2]}"
        ),
        children.map(lambda e: f"({e})"),
        st.tuples(st.sampled_from("+-"), children).map(lambda t: f"({t[0]}{t[1]})"),
    ),
    max_leaves=8,
)


@given(expr_asts)
@settings(max_examples=80, deadline=None)
def test_expr_value_matches_python_eval(text):
    subject = ExprSubject()
    value = subject.parse(InputStream(text))
    # Python evaluates the same surface syntax identically (no leading-zero
    # literals: our renderer emits plain decimal integers).
    expected = eval(text.replace("(", "( ").replace(")", " )"))  # noqa: S307
    assert value == expected


@given(expr_asts)
@settings(max_examples=60, deadline=None)
def test_table_parser_accepts_expr_language(text):
    """The LL(1) table grammar accepts everything the recursive-descent
    expr subject accepts (it is a superset: extra unary signs allowed)."""
    recursive = ExprSubject()
    table = TableExprSubject()
    assert recursive.accepts(text)
    assert table.accepts(text)


# ---------------------------------------------------------------------- #
# JSON acceptance agrees with the stdlib on its common surface
# ---------------------------------------------------------------------- #

json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(10**9), max_value=10**9),
        st.text(alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E), max_size=8),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=4), children, max_size=3),
    ),
    max_leaves=8,
)


@given(json_values)
@settings(max_examples=60, deadline=None)
def test_json_accepts_everything_stdlib_emits(value):
    subject = CJsonSubject()
    encoded = json_module.dumps(value)
    assert subject.accepts(encoded), encoded


@given(st.text(alphabet="{}[],:truefalsn01-. \"", max_size=12))
@settings(max_examples=120, deadline=None)
def test_json_rejection_agrees_with_stdlib(text):
    """Near-JSON garbage: whenever the stdlib rejects, so do we.

    (The converse is not asserted: cJSON is stricter in a few corners,
    e.g. strtod number prefixes and nesting limits.)
    """
    subject = CJsonSubject()
    try:
        json_module.loads(text)
        stdlib_accepts = True
    except (ValueError, RecursionError):
        stdlib_accepts = False
    if not stdlib_accepts and subject.accepts(text):
        stripped = text.strip()
        # Documented divergences where cJSON is *more* lenient:
        #   - whitespace-only input (§5.1 driver setup);
        #   - strtod-style numbers the stdlib rejects ("00", "1.", "-0.").
        if stripped and not all(ord(c) <= 0x20 for c in text):
            try:
                float(stripped)
            except ValueError:
                raise AssertionError(
                    f"accepted non-number input the stdlib rejects: {text!r}"
                )