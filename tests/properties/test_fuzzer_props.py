"""Property tests on the fuzzer and its data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidate import Candidate
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.core.queue import CandidateQueue
from repro.subjects.expr import ExprSubject
from repro.subjects.registry import load_subject


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_pfuzzer_outputs_always_valid_expr(seed):
    """The paper's by-construction guarantee, for arbitrary seeds."""
    subject = ExprSubject()
    result = PFuzzer(subject, FuzzerConfig(seed=seed, max_executions=120)).run()
    for text in result.valid_inputs:
        assert subject.accepts(text), (seed, text)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=4, deadline=None)
def test_pfuzzer_outputs_always_valid_ini(seed):
    subject = load_subject("ini")
    result = PFuzzer(subject, FuzzerConfig(seed=seed, max_executions=80)).run()
    for text in result.valid_inputs:
        assert subject.accepts(text), (seed, text)


@given(
    scores=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=16), max_size=40
    )
)
def test_queue_pops_in_score_order(scores):
    table = {f"c{i}": score for i, score in enumerate(scores)}
    queue = CandidateQueue(lambda c: table[c.text])
    for name in table:
        queue.push(Candidate(name))
    popped = []
    while True:
        candidate = queue.pop()
        if candidate is None:
            break
        popped.append(table[candidate.text])
    assert popped == sorted(popped, reverse=True)


@given(
    scores=st.lists(st.integers(min_value=-100, max_value=100), max_size=30),
    limit=st.integers(min_value=1, max_value=10),
)
def test_queue_limit_keeps_best(scores, limit):
    table = {f"c{i}": float(score) for i, score in enumerate(scores)}
    queue = CandidateQueue(lambda c: table[c.text], limit=limit)
    for name in table:
        queue.push(Candidate(name))
    first = queue.pop()
    if table:
        assert first is not None
        assert table[first.text] == max(table.values())
