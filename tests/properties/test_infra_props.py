"""Property tests on infrastructure: AFL bitmap, substitutions, miner."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.afl import MAP_SIZE, bitmap_of, classify_count
from repro.core.substitute import substitutions_for
from repro.miner.generate import GrammarFuzzer
from repro.miner.mine import mine_grammar
from repro.runtime.harness import run_subject
from repro.subjects.expr import ExprSubject

# ---------------------------------------------------------------------- #
# AFL bitmap
# ---------------------------------------------------------------------- #


@given(st.integers(min_value=0, max_value=10**6))
def test_classify_count_monotone_and_bounded(count):
    bucket = classify_count(count)
    assert 0 <= bucket <= 8
    if count > 0:
        assert bucket >= 1
        assert classify_count(count + 1) >= bucket or count in (3, 7, 15, 31, 127)


arcs_strategy = st.dictionaries(
    st.tuples(
        st.sampled_from(["f", "g"]),
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=0, max_value=400),
    ),
    st.integers(min_value=1, max_value=10),
    max_size=60,
)


@given(arcs_strategy)
def test_bitmap_within_map_and_deterministic(arcs):
    first = bitmap_of(arcs)
    second = bitmap_of(arcs)
    assert first == second
    assert all(0 <= index < MAP_SIZE for index in first)
    assert len(first) <= len(arcs)


# ---------------------------------------------------------------------- #
# Substitutions
# ---------------------------------------------------------------------- #

short_inputs = st.text(alphabet=string.printable[:70], max_size=8)


@given(short_inputs)
@settings(max_examples=60, deadline=None)
def test_substitutions_are_unique_and_differ_from_input(text):
    subject = ExprSubject()
    result = run_subject(subject, text)
    substitutions = substitutions_for(result)
    texts = [s.text for s in substitutions]
    assert len(texts) == len(set(texts))
    assert text not in texts


@given(short_inputs)
@settings(max_examples=60, deadline=None)
def test_substitutions_splice_claimed_replacement(text):
    subject = ExprSubject()
    result = run_subject(subject, text)
    for substitution in substitutions_for(result):
        assert substitution.text.endswith(substitution.replacement)
        assert substitution.text[: substitution.at_index] == text[: substitution.at_index]


# ---------------------------------------------------------------------- #
# Miner round trip
# ---------------------------------------------------------------------- #

expr_corpora = st.lists(
    st.sampled_from(["1", "12", "1+1", "2-3", "(4)", "(1+2)", "-5", "+6", "((7))"]),
    min_size=1,
    max_size=6,
    unique=True,
)


@given(expr_corpora, st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_mined_grammar_generates_only_valid_inputs(corpus, seed):
    subject = ExprSubject()
    grammar = mine_grammar(subject, corpus)
    fuzzer = GrammarFuzzer(grammar, seed=seed, max_depth=6)
    for text in fuzzer.generate_many(5):
        assert subject.accepts(text), (corpus, text)
