"""Differential property tests: the tiny-c VM vs a Python reference."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.stream import InputStream
from repro.subjects.tinyc import TinyCSubject

# ---------------------------------------------------------------------- #
# Straight-line programs: sequences of assignments over +, -, <
# ---------------------------------------------------------------------- #

names = st.sampled_from("abcde")
constants = st.integers(min_value=0, max_value=99)


@st.composite
def straight_line_program(draw):
    """A block of assignments whose effect is computable in Python."""
    statements = []
    env = {name: 0 for name in "abcdefghijklmnopqrstuvwxyz"}
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        target = draw(names)
        left_is_var = draw(st.booleans())
        left_name = draw(names)
        left = left_name if left_is_var else str(draw(constants))
        operator = draw(st.sampled_from(["+", "-", "<", ""]))
        if operator:
            right_is_var = draw(st.booleans())
            right_name = draw(names)
            right = right_name if right_is_var else str(draw(constants))
            expression = f"{left}{operator}{right}"
            left_value = env[left] if left_is_var else int(left)
            right_value = env[right] if right_is_var else int(right)
            if operator == "+":
                value = left_value + right_value
            elif operator == "-":
                value = left_value - right_value
            else:
                value = 1 if left_value < right_value else 0
        else:
            expression = left
            value = env[left] if left_is_var else int(left)
        statements.append(f"{target}={expression};")
        env[target] = value
    return "{" + " ".join(statements) + "}", env


@given(straight_line_program())
@settings(max_examples=60, deadline=None)
def test_vm_matches_python_semantics(program_and_env):
    source, expected = program_and_env
    subject = TinyCSubject()
    globals_ = subject.parse(InputStream(source))
    for name in "abcde":
        assert globals_[name] == expected[name], (source, name)


@given(straight_line_program())
@settings(max_examples=30, deadline=None)
def test_bridged_subject_same_semantics(program_and_env):
    source, expected = program_and_env
    subject = TinyCSubject(token_bridge=True)
    globals_ = subject.parse(InputStream(source))
    for name in "abcde":
        assert globals_[name] == expected[name]


@given(st.text(alphabet="abcz={}()<+-;0123456789 \n", max_size=14))
@settings(max_examples=80, deadline=None)
def test_tinyc_never_crashes_on_near_misses(text):
    subject = TinyCSubject(max_steps=5_000)
    subject.accepts(text)  # must terminate without internal errors
