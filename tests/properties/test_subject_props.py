"""Property tests on the subjects: generated-valid round trips and
no-crash guarantees."""

import json as json_module
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.errors import SubjectError
from repro.runtime.harness import run_subject
from repro.runtime.stream import InputStream
from repro.subjects.registry import SUBJECT_NAMES, load_subject

# ---------------------------------------------------------------------- #
# Generators
# ---------------------------------------------------------------------- #

plain_field = st.text(
    alphabet=string.ascii_letters + string.digits + " ._-", max_size=8
)

json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-10**6, max_value=10**6),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(alphabet=string.ascii_letters + string.digits + " ", max_size=6),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(alphabet=string.ascii_lowercase, max_size=4), children, max_size=4
        ),
    ),
    max_leaves=10,
)

arbitrary_short = st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=0x7F), max_size=12
)


# ---------------------------------------------------------------------- #
# Round trips: anything we serialise must be accepted and parse back
# ---------------------------------------------------------------------- #


@given(json_values)
@settings(max_examples=60, deadline=None)
def test_json_round_trip(value):
    subject = load_subject("json")
    encoded = json_module.dumps(value)
    parsed = subject.parse(InputStream(encoded))
    assert json_module.loads(json_module.dumps(parsed)) == json_module.loads(encoded)


@given(st.lists(st.lists(plain_field, min_size=2, max_size=4), min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_csv_round_trip(rows):
    subject = load_subject("csv")
    encoded = "\n".join(",".join(row) for row in rows)
    parsed = subject.parse(InputStream(encoded))
    assert parsed == rows


@given(
    st.lists(
        st.tuples(
            st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
            st.text(alphabet=string.ascii_letters + string.digits, max_size=6),
        ),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=60, deadline=None)
def test_ini_round_trip(pairs):
    subject = load_subject("ini")
    encoded = "\n".join(f"{name}={value}" for name, value in pairs)
    parsed = subject.parse(InputStream(encoded))
    assert [(name, value) for _, name, value in parsed] == pairs


# ---------------------------------------------------------------------- #
# Robustness: arbitrary input never crashes the harness
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("name", SUBJECT_NAMES + ("expr",))
@given(text=arbitrary_short)
@settings(max_examples=40, deadline=None)
def test_subjects_never_crash(name, text):
    subject = load_subject(name)
    result = run_subject(subject, text)
    assert result.status is not None


@given(text=arbitrary_short)
@settings(max_examples=40, deadline=None)
def test_acceptance_is_deterministic(text):
    subject = load_subject("json")
    assert subject.accepts(text) == subject.accepts(text)
