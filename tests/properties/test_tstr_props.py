"""Property tests: tainted proxies behave exactly like plain strings."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taint.tchar import TChar
from repro.taint.tstr import TaintedStr

chars = st.text(alphabet=string.printable, min_size=1, max_size=1)
texts = st.text(alphabet=string.printable, max_size=30)


def tainted(text, start=0):
    return TaintedStr(text, range(start, start + len(text)))


@given(chars, chars)
def test_tchar_relations_match_str(a, b):
    left = TChar(a, 0)
    assert (left == b) == (a == b)
    assert (left != b) == (a != b)
    assert (left < b) == (a < b)
    assert (left <= b) == (a <= b)
    assert (left > b) == (a > b)
    assert (left >= b) == (a >= b)


@given(chars)
def test_tchar_classes_match_ascii_ctype(c):
    char = TChar(c, 0)
    assert char.isdigit() == (c in string.digits)
    assert char.isalpha() == (c in string.ascii_letters)
    assert char.isalnum() == (c in string.ascii_letters + string.digits)
    assert char.isspace() == (c in " \t\n\r\v\f")


@given(texts, texts)
def test_concat_matches_str(a, b):
    assert (tainted(a) + tainted(b, len(a))).text == a + b


@given(texts, texts)
def test_equality_matches_str(a, b):
    assert (tainted(a) == b) == (a == b)
    assert (tainted(a) != b) == (a != b)


@given(texts, st.integers(min_value=-35, max_value=35), st.integers(min_value=-35, max_value=35))
def test_slicing_matches_str(text, start, stop):
    sliced = tainted(text)[start:stop]
    assert sliced.text == text[start:stop]
    assert len(sliced.taints) == len(sliced.text)


@given(texts)
def test_taints_track_positions_through_slicing(text):
    buffer = tainted(text)
    for position, char in enumerate(buffer):
        assert char.index == position
        assert char.value == text[position]


@given(texts)
def test_strip_matches_str(text):
    assert tainted(text).strip().text == text.strip(" \t\n\r\v\f")
    assert tainted(text).lstrip().text == text.lstrip(" \t\n\r\v\f")
    assert tainted(text).rstrip().text == text.rstrip(" \t\n\r\v\f")


@given(texts)
def test_strip_taints_are_original_positions(text):
    stripped = tainted(text).strip()
    for char in stripped:
        assert text[char.index] == char.value


@given(texts)
def test_case_transforms_match_str(text):
    assert tainted(text).lower().text == text.lower()
    assert tainted(text).upper().text == text.upper()


@given(texts, texts)
def test_startswith_matches_str(text, prefix):
    assert tainted(text).startswith(prefix) == text.startswith(prefix)
