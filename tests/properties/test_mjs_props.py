"""Property tests on the mjs engine: no-crash lexing/parsing, and
interpreter arithmetic agrees with Python float semantics."""

import math
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.errors import SubjectError
from repro.runtime.stream import InputStream
from repro.subjects.mjs import MjsSubject
from repro.subjects.mjs.interp import Interpreter
from repro.subjects.mjs.lexer import MjsLexer
from repro.subjects.mjs.parser import parse_mjs
from repro.subjects.mjs.tokens import TokKind
from repro.subjects.mjs.values import to_int32, to_number, to_uint32


@given(st.text(alphabet=st.characters(min_codepoint=1, max_codepoint=0x7F), max_size=16))
@settings(max_examples=80, deadline=None)
def test_lexer_never_crashes(text):
    lexer = MjsLexer(InputStream(text))
    try:
        for _ in range(40):
            if lexer.next_token().kind is TokKind.EOF:
                break
    except SubjectError:
        pass


@given(st.text(alphabet=string.printable, max_size=16))
@settings(max_examples=80, deadline=None)
def test_parser_never_crashes(text):
    try:
        parse_mjs(InputStream(text))
    except SubjectError:
        pass


@given(st.text(alphabet=string.printable, max_size=12))
@settings(max_examples=40, deadline=None)
def test_subject_never_crashes(text):
    MjsSubject(max_steps=2_000).accepts(text)


numbers = st.floats(allow_nan=False, allow_infinity=False, width=32)


@given(numbers, numbers)
@settings(max_examples=60, deadline=None)
def test_interpreter_addition_matches_python(a, b):
    interpreter = Interpreter()
    program = parse_mjs(InputStream(f"r = ({a!r}) + ({b!r})"))
    interpreter.run(program)
    result = interpreter.globals.get("r")
    assert result == a + b or (math.isnan(result) and math.isnan(a + b))


@given(st.integers(min_value=-(2**40), max_value=2**40))
def test_to_int32_wraps_like_js(value):
    wrapped = to_int32(float(value))
    assert -(2**31) <= wrapped < 2**31
    assert (wrapped - value) % (2**32) == 0


@given(st.integers(min_value=-(2**40), max_value=2**40))
def test_to_uint32_wraps_like_js(value):
    wrapped = to_uint32(float(value))
    assert 0 <= wrapped < 2**32
    assert (wrapped - value) % (2**32) == 0


@given(numbers)
def test_to_number_identity_on_floats(value):
    assert to_number(value) == value
