"""CLI: every subcommand runs and produces the documented output."""

import pytest

from repro.cli import main


def test_subjects(capsys):
    assert main(["subjects"]) == 0
    out = capsys.readouterr().out
    for name in ("ini", "csv", "json", "tinyc", "mjs"):
        assert name in out


def test_tokens(capsys):
    assert main(["tokens", "mjs"]) == 0
    out = capsys.readouterr().out
    assert "instanceof" in out
    assert "Length" in out


def test_fuzz(capsys):
    assert main(["fuzz", "expr", "--budget", "150", "--seed", "1"]) == 0
    captured = capsys.readouterr()
    assert "executions" in captured.err
    assert captured.out.strip()


def test_fuzz_all_valid_prints_more(capsys):
    main(["fuzz", "expr", "--budget", "150", "--seed", "1"])
    emitted = capsys.readouterr().out.strip().splitlines()
    main(["fuzz", "expr", "--budget", "150", "--seed", "1", "--all-valid"])
    all_valid = capsys.readouterr().out.strip().splitlines()
    assert len(all_valid) >= len(emitted)


def test_compare(capsys):
    assert main(
        ["compare", "ini", "--budget", "120", "--tools", "random", "pfuzzer"]
    ) == 0
    out = capsys.readouterr().out
    assert "pfuzzer" in out
    assert "Coverage by each tool" in out


def test_mine(capsys):
    assert main(["mine", "expr", "--budget", "200", "--generate", "3"]) == 0
    out = capsys.readouterr().out
    assert "::=" in out
    assert out.count("# ok") + out.count("# BAD") == 3


def test_report(capsys):
    assert main(
        [
            "report",
            "--budget", "80",
            "--subjects", "ini",
            "--tools", "random",
            "--seeds", "1",
            "--no-code-coverage",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "# Evaluation report" in out
    assert "Figure 3" in out


def test_unknown_subject_rejected():
    with pytest.raises(SystemExit):
        main(["fuzz", "nope"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
