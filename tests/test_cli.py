"""CLI: every subcommand runs and produces the documented output."""

import pytest

from repro.cli import main


def test_subjects(capsys):
    assert main(["subjects"]) == 0
    out = capsys.readouterr().out
    for name in ("ini", "csv", "json", "tinyc", "mjs"):
        assert name in out


def test_tokens(capsys):
    assert main(["tokens", "mjs"]) == 0
    out = capsys.readouterr().out
    assert "instanceof" in out
    assert "Length" in out


def test_fuzz(capsys):
    assert main(["fuzz", "expr", "--budget", "150", "--seed", "1"]) == 0
    captured = capsys.readouterr()
    assert "executions" in captured.err
    assert captured.out.strip()


def test_fuzz_all_valid_prints_more(capsys):
    main(["fuzz", "expr", "--budget", "150", "--seed", "1"])
    emitted = capsys.readouterr().out.strip().splitlines()
    main(["fuzz", "expr", "--budget", "150", "--seed", "1", "--all-valid"])
    all_valid = capsys.readouterr().out.strip().splitlines()
    assert len(all_valid) >= len(emitted)


def test_compare(capsys):
    assert main(
        ["compare", "ini", "--budget", "120", "--tools", "random", "pfuzzer"]
    ) == 0
    out = capsys.readouterr().out
    assert "pfuzzer" in out
    assert "Coverage by each tool" in out


def test_mine(capsys):
    assert main(["mine", "expr", "--budget", "200", "--generate", "3"]) == 0
    out = capsys.readouterr().out
    assert "::=" in out
    assert out.count("# ok") + out.count("# BAD") == 3


def test_report(capsys):
    assert main(
        [
            "report",
            "--budget", "80",
            "--subjects", "ini",
            "--tools", "random",
            "--seeds", "1",
            "--no-code-coverage",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "# Evaluation report" in out
    assert "Figure 3" in out


def test_unknown_subject_rejected(capsys):
    # No longer an argparse SystemExit: the subject argument is an open
    # string (plugin subjects), validated after --subject-module imports.
    assert main(["fuzz", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown subject 'nope'" in err
    assert "available subjects" in err


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


# --------------------------------------------------------------------- #
# Exit codes and --jobs / --metrics regression coverage
# --------------------------------------------------------------------- #


def test_fuzz_success_exit_code_is_zero():
    assert main(["fuzz", "expr", "--budget", "100", "--seed", "1"]) == 0


def test_compare_success_exit_code_is_zero():
    assert (
        main(["compare", "ini", "--budget", "80", "--tools", "random"]) == 0
    )


def test_usage_errors_exit_with_code_two():
    for argv in (
        ["compare", "ini", "--jobs", "0"],        # jobs must be >= 1
        ["compare", "ini", "--jobs", "two"],      # jobs must be an int
        ["compare", "ini", "--tools", "nope"],    # unknown tool
        ["fuzz"],                                 # missing subject
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2, argv


def test_compare_parallel_jobs_and_metrics(tmp_path, capsys):
    from repro.eval.metrics import read_jsonl

    metrics_path = tmp_path / "metrics.jsonl"
    code = main(
        [
            "compare", "ini",
            "--budget", "100",
            "--tools", "random", "pfuzzer",
            "--jobs", "2",
            "--metrics", str(metrics_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Coverage by each tool" in out
    records = read_jsonl(metrics_path)
    assert [record.tool for record in records] == ["random", "pfuzzer"]
    assert all(record.status == "ok" for record in records)


def test_compare_parallel_matches_sequential_report(capsys):
    argv = ["compare", "ini", "--budget", "100", "--tools", "random", "pfuzzer"]
    assert main(argv) == 0
    sequential = capsys.readouterr().out
    assert main(argv + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == sequential


def test_compare_timeout_reports_failure_and_exits_nonzero(capsys):
    code = main(
        [
            "compare", "ini",
            "--budget", "100000",
            "--tools", "pfuzzer",
            "--jobs", "1",
            "--timeout", "0.05",
        ]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "timeout" in captured.err


def test_report_accepts_jobs_and_metrics(tmp_path, capsys):
    from repro.eval.metrics import read_jsonl

    metrics_path = tmp_path / "report.jsonl"
    code = main(
        [
            "report",
            "--budget", "60",
            "--subjects", "ini",
            "--tools", "random",
            "--seeds", "1", "2",
            "--no-code-coverage",
            "--jobs", "2",
            "--metrics", str(metrics_path),
        ]
    )
    assert code == 0
    assert "# Evaluation report" in capsys.readouterr().out
    assert [record.seed for record in read_jsonl(metrics_path)] == [1, 2]


# --------------------------------------------------------------------- #
# Durable campaigns: --checkpoint-dir / --resume / --corpus
# --------------------------------------------------------------------- #


def test_fuzz_checkpoint_and_resume_extends_budget(tmp_path, capsys):
    ck = str(tmp_path / "ck")
    assert main(
        ["fuzz", "expr", "--budget", "200", "--seed", "1",
         "--checkpoint-dir", ck]
    ) == 0
    capsys.readouterr()
    assert main(
        ["fuzz", "expr", "--budget", "300", "--seed", "1",
         "--checkpoint-dir", ck, "--resume"]
    ) == 0
    err = capsys.readouterr().err
    assert "300 executions" in err
    assert "1 resumes" in err


def test_fuzz_resumed_output_matches_uninterrupted(tmp_path, capsys):
    argv = ["fuzz", "expr", "--budget", "300", "--seed", "1"]
    assert main(argv) == 0
    uninterrupted = capsys.readouterr().out
    ck = str(tmp_path / "ck")
    assert main(
        ["fuzz", "expr", "--budget", "150", "--seed", "1",
         "--checkpoint-dir", ck]
    ) == 0
    capsys.readouterr()
    assert main(
        ["fuzz", "expr", "--budget", "300", "--seed", "1",
         "--checkpoint-dir", ck, "--resume"]
    ) == 0
    assert capsys.readouterr().out == uninterrupted


def test_fuzz_resume_without_checkpoint_dir_is_a_usage_error(capsys):
    assert main(["fuzz", "expr", "--budget", "50", "--resume"]) == 2
    assert "--checkpoint-dir" in capsys.readouterr().err


def test_fuzz_writes_corpus_store(tmp_path, capsys):
    from repro.eval.corpus_store import CorpusStore

    path = tmp_path / "corpus.jsonl"
    assert main(
        ["fuzz", "expr", "--budget", "200", "--seed", "1",
         "--corpus", str(path)]
    ) == 0
    import ast

    emitted = [
        ast.literal_eval(line)
        for line in capsys.readouterr().out.strip().splitlines()
    ]
    store = CorpusStore(path)
    assert store.inputs(subject="expr", tool="pfuzzer") == emitted
    assert all(r.path_signature is not None for r in store.records())


def test_compare_checkpoint_dir_and_corpus(tmp_path, capsys):
    from repro.eval.corpus_store import CorpusStore

    code = main(
        [
            "compare", "ini",
            "--budget", "100",
            "--tools", "random", "pfuzzer",
            "--checkpoint-dir", str(tmp_path / "ck"),
            "--corpus", str(tmp_path / "corpus.jsonl"),
        ]
    )
    assert code == 0
    assert "Coverage by each tool" in capsys.readouterr().out
    # The pfuzzer cell checkpointed into its own subdirectory...
    assert (tmp_path / "ck" / "pfuzzer-ini-s3").is_dir()
    # ...and both tools' valid inputs landed in the shared store.
    store = CorpusStore(tmp_path / "corpus.jsonl")
    assert set(r.tool for r in store.records()) <= {"random", "pfuzzer"}


# --------------------------------------------------------------------- #
# Numeric flag validation: every bad value is a usage error (exit 2)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "argv",
    [
        ["fuzz", "expr", "--budget", "0"],
        ["fuzz", "expr", "--budget", "-5"],
        ["fuzz", "expr", "--budget", "many"],
        ["fuzz", "expr", "--checkpoint-every", "0"],
        ["compare", "ini", "--budget", "0"],
        ["compare", "ini", "--jobs", "0"],
        ["compare", "ini", "--jobs", "-1"],
        ["compare", "ini", "--timeout", "0"],
        ["compare", "ini", "--timeout", "-1.5"],
        ["compare", "ini", "--timeout", "soon"],
        ["compare", "ini", "--checkpoint-every", "-1"],
        ["compare", "ini", "--resume-retries", "-1"],
        ["compare", "ini", "--resume-retries", "never"],
        ["mine", "expr", "--budget", "0"],
        ["report", "--budget", "0"],
        ["submit", "expr", "--budget", "0"],
        ["submit", "expr", "--priority", "0"],
        ["submit", "expr", "--shards", "0"],
        ["submit", "expr", "--sync-every", "0"],
        ["fuzz", "expr", "--shards", "-1"],
        ["fuzz", "expr", "--sync-every", "0"],
        ["fuzz", "expr", "--slice-executions", "0"],
        ["serve", "--state-dir", "x", "--workers", "0"],
        ["serve", "--state-dir", "x", "--slice-executions", "0"],
    ],
)
def test_numeric_flag_validation_exits_two(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2, argv
    err = capsys.readouterr().err
    assert "expected a" in err, argv


@pytest.mark.parametrize(
    "argv",
    [
        ["compare", "ini", "--budget", "80", "--tools", "random",
         "--resume-retries", "0"],
        ["compare", "ini", "--budget", "80", "--tools", "random",
         "--timeout", "30"],
    ],
)
def test_boundary_values_are_accepted(argv):
    assert main(argv) == 0


# --------------------------------------------------------------------- #
# repro corpus: stats / list / compact / distill
# --------------------------------------------------------------------- #


def _populated_corpus(tmp_path, capsys):
    path = tmp_path / "corpus.jsonl"
    for _ in range(2):  # duplicate runs -> duplicate records
        main(["fuzz", "expr", "--budget", "150", "--seed", "1",
              "--corpus", str(path)])
    capsys.readouterr()
    return path


def _stats_totals(out):
    """Parse the summary lines of ``repro corpus stats`` output."""
    return dict(
        (key.strip(), value.strip())
        for key, value in (
            line.split(":", 1)
            for line in out.strip().splitlines()
            if ":" in line
        )
    )


def test_corpus_stats_counts_records_and_distinct_signatures(tmp_path, capsys):
    path = _populated_corpus(tmp_path, capsys)
    assert main(["corpus", "stats", str(path)]) == 0
    out = capsys.readouterr().out
    totals = _stats_totals(out)
    total = int(totals["records"])
    distinct = int(totals["distinct inputs"])
    distinct_sigs = int(totals["distinct signatures"])
    assert total == 2 * distinct  # two identical runs
    assert distinct_sigs == distinct  # pfuzzer signs every input
    assert totals["subjects"] == "expr"
    # The per-subject breakdown reports the same numbers.
    assert f"expr\trecords={total}\tinputs={distinct}" in out


def test_corpus_list_prints_one_line_per_record(tmp_path, capsys):
    path = _populated_corpus(tmp_path, capsys)
    assert main(["corpus", "list", str(path)]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    from repro.eval.corpus_store import CorpusStore

    assert len(lines) == len(list(CorpusStore(path).records()))
    assert all(line.startswith("expr\tpfuzzer\t1\t0x") for line in lines)


def test_corpus_compact_deduplicates(tmp_path, capsys):
    path = _populated_corpus(tmp_path, capsys)
    assert main(["corpus", "compact", str(path)]) == 0
    captured = capsys.readouterr()
    assert "kept" in captured.err and "dropped" in captured.err
    totals = _stats_totals(captured.out)
    assert int(totals["records"]) == int(totals["distinct inputs"])


def test_corpus_compact_collapse_signatures_flag(tmp_path, capsys):
    path = _populated_corpus(tmp_path, capsys)
    assert main(
        ["corpus", "compact", str(path), "--collapse-signatures"]
    ) == 0
    totals = _stats_totals(capsys.readouterr().out)
    # One record per distinct signature survives.
    assert int(totals["records"]) == int(totals["distinct signatures"])


def test_corpus_distill_preserves_arc_union(tmp_path, capsys):
    from repro.eval.code_cov import coverage_of_inputs
    from repro.eval.corpus_store import CorpusStore

    path = _populated_corpus(tmp_path, capsys)
    before = coverage_of_inputs("expr", CorpusStore(path).inputs("expr"))
    assert main(["corpus", "distill", str(path), "--subject", "expr"]) == 0
    captured = capsys.readouterr()
    assert "arcs preserved" in captured.err
    after_inputs = CorpusStore(path).inputs("expr")
    assert coverage_of_inputs("expr", after_inputs) == before
    assert len(after_inputs) == len(set(after_inputs))  # deduplicated


def test_corpus_stats_on_missing_file_reports_empty(tmp_path, capsys):
    assert main(["corpus", "stats", str(tmp_path / "nope.jsonl")]) == 0
    totals = _stats_totals(capsys.readouterr().out)
    assert totals["records"] == "0"
    assert totals["subjects"] == "-"


# --------------------------------------------------------------------- #
# repro fuzz --shards: lockstep sharded groups from the CLI
# --------------------------------------------------------------------- #


def test_fuzz_shards_runs_group_and_shares_store(tmp_path, capsys):
    import ast

    from repro.eval.corpus_store import CorpusStore

    root = tmp_path / "group"
    code = main(
        ["fuzz", "expr", "--budget", "300", "--seed", "1", "--shards", "2",
         "--slice-executions", "150", "--checkpoint-dir", str(root)]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "# shard 0: seed 1" in captured.err
    assert "# shard 1: seed 2" in captured.err
    assert "group fingerprint" in captured.err
    emitted = [
        ast.literal_eval(line)
        for line in captured.out.strip().splitlines()
        if line
    ]
    # The shared store holds every shard's emitted inputs.
    store = CorpusStore(root / "corpus.jsonl")
    assert set(emitted) <= set(store.inputs(subject="expr"))


# --------------------------------------------------------------------- #
# Service subcommands: error paths that need no running server
# --------------------------------------------------------------------- #


def test_status_against_unreachable_service_exits_one(capsys):
    assert main(["status", "--url", "http://127.0.0.1:9"]) == 1
    assert "cannot reach service" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Tracing: fuzz --trace and the trace query subcommands
# --------------------------------------------------------------------- #


@pytest.fixture
def traced_campaign(tmp_path, capsys):
    path = tmp_path / "trace.ndjson"
    assert main(
        ["fuzz", "expr", "--budget", "200", "--seed", "1",
         "--trace", str(path)]
    ) == 0
    import ast

    # fuzz prints each emitted input repr-quoted, one per line
    emitted = [
        ast.literal_eval(line)
        for line in capsys.readouterr().out.strip().splitlines()
    ]
    return path, emitted


def test_trace_validate_counts_events(traced_campaign, capsys):
    path, _ = traced_campaign
    assert main(["trace", "validate", str(path)]) == 0
    captured = capsys.readouterr()
    assert "schema ok" in captured.err
    counts = dict(
        line.split("\t") for line in captured.out.strip().splitlines()
    )
    assert counts["campaign_start"] == "1"
    assert counts["candidate_executed"] == "200"


def test_trace_lineage_covers_every_emitted_input(traced_campaign, capsys):
    path, emitted = traced_campaign
    assert main(["trace", "lineage", str(path)]) == 0
    out = capsys.readouterr().out
    for text in emitted:
        assert f"# input {text!r}" in out
    assert "MISMATCH" not in out
    assert out.count("replay: ok") == len(emitted)


def test_trace_lineage_single_input_and_formats(traced_campaign, capsys):
    import json

    path, emitted = traced_campaign
    target = emitted[-1]
    assert main(["trace", "lineage", str(path), target]) == 0
    assert "replay: ok" in capsys.readouterr().out
    assert main(["trace", "lineage", str(path), target, "--dot"]) == 0
    assert capsys.readouterr().out.startswith("digraph lineage {")
    assert main(["trace", "lineage", str(path), target, "--json"]) == 0
    (chain,) = json.loads(capsys.readouterr().out)["chains"]
    assert chain[-1]["text"] == target


def test_trace_lineage_unknown_input_exits_one(traced_campaign, capsys):
    path, _ = traced_campaign
    assert main(["trace", "lineage", str(path), "no such input"]) == 1
    assert "no lineage" in capsys.readouterr().err


def test_trace_chrome_export(traced_campaign, tmp_path, capsys):
    import json

    path, _ = traced_campaign
    out_path = tmp_path / "spans.json"
    assert main(["trace", "chrome", str(path), "-o", str(out_path)]) == 0
    document = json.loads(out_path.read_text())
    assert document["traceEvents"]
    capsys.readouterr()
    assert main(["trace", "chrome", str(path)]) == 0
    assert json.loads(capsys.readouterr().out)["traceEvents"]


def test_trace_on_missing_file_exits_one(tmp_path, capsys):
    assert main(["trace", "validate", str(tmp_path / "nope.ndjson")]) == 1
    assert "cannot read" in capsys.readouterr().err


def test_cancel_against_unreachable_service_exits_one(capsys):
    assert main(["cancel", "job-0000", "--url", "http://127.0.0.1:9"]) == 1
    assert "cannot reach service" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Plugin subjects and crash hunting
# --------------------------------------------------------------------- #


def test_fuzz_contrib_subject_by_name(capsys):
    assert main(["fuzz", "url", "--budget", "100", "--seed", "2"]) == 0
    assert "executions" in capsys.readouterr().err


def test_fuzz_hunt_crashes_records_findings(tmp_path, capsys):
    import sys
    from pathlib import Path

    helpers = str(Path(__file__).resolve().parent / "helpers")
    if helpers not in sys.path:
        sys.path.insert(0, helpers)
    corpus = tmp_path / "corpus.jsonl"
    assert main([
        "fuzz", "crashy",
        "--subject-module", "crashy_plugin",
        "--hunt-crashes",
        "--budget", "400", "--seed", "7",
        "--corpus", str(corpus),
    ]) == 0
    err = capsys.readouterr().err
    assert "crashes" in err

    assert main(["corpus", "list", str(corpus), "--crashes"]) == 0
    listing = capsys.readouterr().out
    assert "RecursionError" in listing
    assert "crash" in listing

    assert main(["corpus", "stats", str(corpus)]) == 0
    stats = capsys.readouterr().out
    assert "crashes=1" in stats
    assert "distinct crash sites: 1" in stats

    # Distilling the hunted corpus needs the plugin for re-executions and
    # must pass the crash finding through untouched.
    assert main([
        "corpus", "distill", str(corpus),
        "--subject", "crashy", "--subject-module", "crashy_plugin",
    ]) == 0
    assert main(["corpus", "list", str(corpus), "--crashes"]) == 0
    assert "RecursionError" in capsys.readouterr().out


def test_corpus_distill_unknown_subject_exits_2(tmp_path, capsys):
    from repro.eval.corpus_store import CorpusRecord, CorpusStore

    corpus = tmp_path / "corpus.jsonl"
    CorpusStore(corpus).add_records(
        [CorpusRecord("notloaded", "pfuzzer", 0, "x")]
    )
    assert main(["corpus", "distill", str(corpus)]) == 2
    assert "unknown subject" in capsys.readouterr().err
