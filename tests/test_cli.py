"""CLI: every subcommand runs and produces the documented output."""

import pytest

from repro.cli import main


def test_subjects(capsys):
    assert main(["subjects"]) == 0
    out = capsys.readouterr().out
    for name in ("ini", "csv", "json", "tinyc", "mjs"):
        assert name in out


def test_tokens(capsys):
    assert main(["tokens", "mjs"]) == 0
    out = capsys.readouterr().out
    assert "instanceof" in out
    assert "Length" in out


def test_fuzz(capsys):
    assert main(["fuzz", "expr", "--budget", "150", "--seed", "1"]) == 0
    captured = capsys.readouterr()
    assert "executions" in captured.err
    assert captured.out.strip()


def test_fuzz_all_valid_prints_more(capsys):
    main(["fuzz", "expr", "--budget", "150", "--seed", "1"])
    emitted = capsys.readouterr().out.strip().splitlines()
    main(["fuzz", "expr", "--budget", "150", "--seed", "1", "--all-valid"])
    all_valid = capsys.readouterr().out.strip().splitlines()
    assert len(all_valid) >= len(emitted)


def test_compare(capsys):
    assert main(
        ["compare", "ini", "--budget", "120", "--tools", "random", "pfuzzer"]
    ) == 0
    out = capsys.readouterr().out
    assert "pfuzzer" in out
    assert "Coverage by each tool" in out


def test_mine(capsys):
    assert main(["mine", "expr", "--budget", "200", "--generate", "3"]) == 0
    out = capsys.readouterr().out
    assert "::=" in out
    assert out.count("# ok") + out.count("# BAD") == 3


def test_report(capsys):
    assert main(
        [
            "report",
            "--budget", "80",
            "--subjects", "ini",
            "--tools", "random",
            "--seeds", "1",
            "--no-code-coverage",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "# Evaluation report" in out
    assert "Figure 3" in out


def test_unknown_subject_rejected():
    with pytest.raises(SystemExit):
        main(["fuzz", "nope"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


# --------------------------------------------------------------------- #
# Exit codes and --jobs / --metrics regression coverage
# --------------------------------------------------------------------- #


def test_fuzz_success_exit_code_is_zero():
    assert main(["fuzz", "expr", "--budget", "100", "--seed", "1"]) == 0


def test_compare_success_exit_code_is_zero():
    assert (
        main(["compare", "ini", "--budget", "80", "--tools", "random"]) == 0
    )


def test_usage_errors_exit_with_code_two():
    for argv in (
        ["compare", "ini", "--jobs", "0"],        # jobs must be >= 1
        ["compare", "ini", "--jobs", "two"],      # jobs must be an int
        ["compare", "ini", "--tools", "nope"],    # unknown tool
        ["fuzz"],                                 # missing subject
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2, argv


def test_compare_parallel_jobs_and_metrics(tmp_path, capsys):
    from repro.eval.metrics import read_jsonl

    metrics_path = tmp_path / "metrics.jsonl"
    code = main(
        [
            "compare", "ini",
            "--budget", "100",
            "--tools", "random", "pfuzzer",
            "--jobs", "2",
            "--metrics", str(metrics_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Coverage by each tool" in out
    records = read_jsonl(metrics_path)
    assert [record.tool for record in records] == ["random", "pfuzzer"]
    assert all(record.status == "ok" for record in records)


def test_compare_parallel_matches_sequential_report(capsys):
    argv = ["compare", "ini", "--budget", "100", "--tools", "random", "pfuzzer"]
    assert main(argv) == 0
    sequential = capsys.readouterr().out
    assert main(argv + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == sequential


def test_compare_timeout_reports_failure_and_exits_nonzero(capsys):
    code = main(
        [
            "compare", "ini",
            "--budget", "100000",
            "--tools", "pfuzzer",
            "--jobs", "1",
            "--timeout", "0.05",
        ]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "timeout" in captured.err


def test_report_accepts_jobs_and_metrics(tmp_path, capsys):
    from repro.eval.metrics import read_jsonl

    metrics_path = tmp_path / "report.jsonl"
    code = main(
        [
            "report",
            "--budget", "60",
            "--subjects", "ini",
            "--tools", "random",
            "--seeds", "1", "2",
            "--no-code-coverage",
            "--jobs", "2",
            "--metrics", str(metrics_path),
        ]
    )
    assert code == 0
    assert "# Evaluation report" in capsys.readouterr().out
    assert [record.seed for record in read_jsonl(metrics_path)] == [1, 2]
