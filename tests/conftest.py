"""Shared fixtures for the test suite."""

import pytest

from repro.subjects.registry import load_subject


@pytest.fixture
def expr_subject():
    from repro.subjects.expr import ExprSubject

    return ExprSubject()


@pytest.fixture
def ini_subject():
    return load_subject("ini")


@pytest.fixture
def csv_subject():
    return load_subject("csv")


@pytest.fixture
def json_subject():
    return load_subject("json")


@pytest.fixture
def tinyc_subject():
    return load_subject("tinyc")


@pytest.fixture
def mjs_subject():
    return load_subject("mjs")
