"""Wrapped runtime functions: C-style semantics plus recording."""

import pytest

from repro.taint.events import ComparisonKind
from repro.taint.recorder import Recorder, recording
from repro.taint.tchar import TChar
from repro.taint.tstr import TaintedStr
from repro.taint.wrappers import (
    atof,
    atoi,
    memcmp,
    strchr,
    strcmp,
    strcpy,
    strncmp,
    switch_on,
)


def tainted(text, start=0):
    return TaintedStr(text, range(start, start + len(text)))


def test_strcmp_sign():
    assert strcmp(tainted("abc"), "abc") == 0
    assert strcmp(tainted("abb"), "abc") == -1
    assert strcmp(tainted("abd"), "abc") == 1


def test_strcmp_records_full_expected_string():
    recorder = Recorder()
    with recording(recorder):
        strcmp(tainted("wh", 2), "while")
    (event,) = recorder.comparisons
    assert event.kind is ComparisonKind.STRCMP
    assert event.other_value == "while"
    assert event.index == 2


def test_strcmp_accepts_tchar_and_plain_str():
    assert strcmp(TChar("a", 0), "a") == 0
    assert strcmp("plain", "plain") == 0


def test_strncmp_prefix_only():
    assert strncmp(tainted("while loop"), "while", 5) == 0
    assert strncmp(tainted("whale"), "while", 2) == 0
    assert strncmp(tainted("whale"), "while", 3) == -1


def test_memcmp_matches_strncmp():
    assert memcmp(tainted("abc"), "abd", 2) == 0
    assert memcmp(tainted("abc"), "abd", 3) == -1


def test_strchr():
    assert strchr("()", TChar("(", 0))
    assert not strchr("()", TChar("x", 0))
    assert strchr("()", "(")


def test_switch_on_records_all_cases():
    recorder = Recorder()
    with recording(recorder):
        assert switch_on(TChar("3", 1), "0123456789")
        assert not switch_on(TChar("x", 2), "0123456789")
    kinds = {event.kind for event in recorder.comparisons}
    assert kinds == {ComparisonKind.SWITCH}
    assert recorder.comparisons[0].other_value == "0123456789"


def test_switch_on_eof():
    assert not switch_on(TChar.eof(0), "abc")


def test_switch_on_plain_char():
    assert switch_on("a", "abc")


@pytest.mark.parametrize(
    "text,expected",
    [
        ("42", 42),
        ("  -17", -17),
        ("+3x", 3),
        ("x", 0),
        ("", 0),
        ("12.9", 12),
    ],
)
def test_atoi(text, expected):
    assert atoi(text) == expected
    assert atoi(tainted(text)) == expected


@pytest.mark.parametrize(
    "text,expected",
    [
        ("1.5", 1.5),
        ("-2e2", -200.0),
        ("3abc", 3.0),
        ("abc", 0.0),
    ],
)
def test_atof(text, expected):
    assert atof(text) == expected


def test_strcpy_preserves_taints():
    copy = strcpy(tainted("ab", 4))
    assert copy.taints == (4, 5)
    assert strcpy(TChar("x", 1)).taints == (1,)
    assert strcpy("plain").taints == (None,) * 5
