"""Tainted character proxy: comparisons behave like chars and are recorded."""

import pytest

from repro.taint.events import ComparisonKind
from repro.taint.recorder import Recorder, recording
from repro.taint.tchar import EOF_CHAR, TChar


def test_value_and_index():
    char = TChar("a", 3)
    assert char.value == "a"
    assert char.index == 3
    assert not char.is_eof
    assert char.code == ord("a")


def test_rejects_multichar_value():
    with pytest.raises(ValueError):
        TChar("ab", 0)


def test_eof_sentinel():
    eof = TChar.eof(5)
    assert eof.is_eof
    assert eof.value == ""
    assert eof.index == 5
    assert eof.code == -1
    assert not eof  # falsy, like C's EOF idiom


def test_equality_semantics():
    assert TChar("x", 0) == "x"
    assert not (TChar("x", 0) == "y")
    assert TChar("x", 0) != "y"
    assert TChar("x", 0) == TChar("x", 9)


def test_equality_with_non_string_is_not_implemented():
    assert (TChar("x", 0) == 42) is False
    assert (TChar("x", 0) != 42) is True


def test_eof_equals_only_eof():
    assert TChar.eof(0) == EOF_CHAR
    assert not (TChar("a", 0) == EOF_CHAR)


def test_ordering_semantics():
    char = TChar("5", 0)
    assert char >= "0"
    assert char <= "9"
    assert char < "6"
    assert char > "4"


def test_eof_orders_below_everything():
    eof = TChar.eof(0)
    assert eof < "\x00"
    assert not (eof >= "a")


def test_comparison_recorded():
    recorder = Recorder()
    with recording(recorder):
        TChar("A", 7) == "("
    (event,) = recorder.comparisons
    assert event.kind is ComparisonKind.EQ
    assert event.index == 7
    assert event.tainted_value == "A"
    assert event.other_value == "("
    assert event.result is False
    assert event.indices == (7,)


def test_ordering_recorded_with_kind():
    recorder = Recorder()
    with recording(recorder):
        TChar("5", 2) <= "9"
        TChar("5", 2) > "9"
    kinds = [event.kind for event in recorder.comparisons]
    assert kinds == [ComparisonKind.LE, ComparisonKind.GT]


def test_no_recorder_no_crash():
    # Comparisons outside a recording context still work.
    assert TChar("a", 0) == "a"


def test_eq_against_longer_string_records_strcmp():
    recorder = Recorder()
    with recording(recorder):
        result = TChar("w", 4) == "while"
    assert result is False
    (event,) = recorder.comparisons
    assert event.kind is ComparisonKind.STRCMP
    assert event.other_value == "while"


@pytest.mark.parametrize(
    "char,method,expected",
    [
        ("5", "isdigit", True),
        ("a", "isdigit", False),
        ("f", "isxdigit", True),
        ("g", "isxdigit", False),
        ("Z", "isalpha", True),
        ("1", "isalpha", False),
        ("z", "isalnum", True),
        ("_", "isalnum", False),
        (" ", "isspace", True),
        ("\t", "isspace", True),
        ("x", "isspace", False),
        ("a", "islower", True),
        ("A", "isupper", True),
        ("~", "isprint", True),
        ("\x01", "isprint", False),
    ],
)
def test_char_class_predicates(char, method, expected):
    assert getattr(TChar(char, 0), method)() is expected


def test_char_class_recorded_as_in():
    recorder = Recorder()
    with recording(recorder):
        TChar("a", 1).isdigit()
    (event,) = recorder.comparisons
    assert event.kind is ComparisonKind.IN
    assert "0" in event.other_value and "9" in event.other_value


def test_eof_char_classes_false():
    eof = TChar.eof(3)
    assert not eof.isdigit()
    assert not eof.isalpha()
    assert not eof.isspace()


def test_in_set():
    assert TChar("(", 0).in_set("()")
    assert not TChar("x", 0).in_set("()")


def test_eof_comparisons_marked():
    recorder = Recorder()
    with recording(recorder):
        TChar.eof(4) == ")"
    (event,) = recorder.comparisons
    assert event.at_eof
    assert event.index == 4
    assert event.indices == ()


def test_case_transforms_preserve_taint():
    char = TChar("a", 9)
    upper = char.upper()
    assert upper.value == "A"
    assert upper.index == 9
    assert upper.lower().value == "a"
    assert TChar.eof(1).upper().is_eof


def test_digit_value():
    assert TChar("7", 0).digit_value() == 7
    with pytest.raises(ValueError):
        TChar("a", 0).digit_value()
    with pytest.raises(ValueError):
        TChar.eof(0).digit_value()


def test_hex_value():
    assert TChar("f", 0).hex_value() == 15
    assert TChar("A", 0).hex_value() == 10
    with pytest.raises(ValueError):
        TChar("g", 0).hex_value()


def test_str_and_repr():
    assert str(TChar("q", 0)) == "q"
    assert "q" in repr(TChar("q", 0))
    assert "eof" in repr(TChar.eof(2))


def test_hashable_by_value():
    assert hash(TChar("a", 0)) == hash(TChar("a", 5))
