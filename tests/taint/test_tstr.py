"""Tainted string proxy: taints track through buffer operations."""

import pytest

from repro.taint.events import ComparisonKind
from repro.taint.recorder import Recorder, recording
from repro.taint.tchar import TChar
from repro.taint.tstr import TaintedStr


def tainted(text, start=0):
    """A fully tainted buffer whose chars come from consecutive indices."""
    return TaintedStr(text, range(start, start + len(text)))


def test_empty():
    buffer = TaintedStr.empty()
    assert len(buffer) == 0
    assert not buffer
    assert buffer.first_index() is None


def test_from_char():
    buffer = TaintedStr.from_char(TChar("x", 4))
    assert buffer.text == "x"
    assert buffer.taints == (4,)


def test_from_eof_char_is_empty():
    assert TaintedStr.from_char(TChar.eof(3)).text == ""


def test_append_accumulates_taints():
    buffer = TaintedStr.empty().append(TChar("a", 0)).append(TChar("b", 5))
    assert buffer.text == "ab"
    assert buffer.taints == (0, 5)


def test_append_plain_string_untainted():
    buffer = tainted("ab").append("cd")
    assert buffer.text == "abcd"
    assert buffer.taints == (0, 1, None, None)


def test_add_operators():
    left = tainted("ab")
    combined = left + "c"
    assert combined.text == "abc"
    combined = "x" + left
    assert combined.text == "xab"
    assert combined.taints == (None, 0, 1)


def test_append_rejects_non_string():
    with pytest.raises(TypeError):
        tainted("a").append(3)


def test_mismatched_taints_rejected():
    with pytest.raises(ValueError):
        TaintedStr("ab", (1,))


def test_getitem_int_returns_tchar():
    char = tainted("abc", 10)[1]
    assert isinstance(char, TChar)
    assert char.value == "b"
    assert char.index == 11


def test_getitem_untainted_gives_pseudo_index():
    char = TaintedStr("ab")[0]
    assert char.index == -1


def test_getitem_slice_keeps_taints():
    piece = tainted("abcdef")[2:4]
    assert piece.text == "cd"
    assert piece.taints == (2, 3)


def test_iteration_yields_tchars():
    indices = [char.index for char in tainted("xyz", 5)]
    assert indices == [5, 6, 7]


def test_equality_records_strcmp():
    recorder = Recorder()
    with recording(recorder):
        result = tainted("wh", 3) == "while"
    assert result is False
    (event,) = recorder.comparisons
    assert event.kind is ComparisonKind.STRCMP
    assert event.index == 3
    assert event.other_value == "while"
    assert event.indices == (3, 4)


def test_equality_of_untainted_buffer_not_recorded():
    recorder = Recorder()
    with recording(recorder):
        TaintedStr("abc") == "abc"
    assert recorder.comparisons == []


def test_equality_with_tainted_str():
    assert tainted("ab") == tainted("ab", 7)
    assert tainted("ab") != tainted("ba")


def test_ne_returns_not_implemented_for_other_types():
    assert (tainted("a") == 5) is False


def test_startswith_recorded():
    recorder = Recorder()
    with recording(recorder):
        assert tainted("while", 2).startswith("wh")
    (event,) = recorder.comparisons
    assert event.kind is ComparisonKind.STRCMP
    assert event.other_value == "wh"


def test_strip_preserves_alignment():
    buffer = tainted("  ab\t")
    stripped = buffer.strip()
    assert stripped.text == "ab"
    assert stripped.taints == (2, 3)


def test_lstrip_rstrip():
    buffer = tainted(" ab ")
    assert buffer.lstrip().text == "ab "
    assert buffer.rstrip().text == " ab"


def test_case_transforms_keep_taints():
    buffer = tainted("Ab", 4)
    assert buffer.lower().text == "ab"
    assert buffer.lower().taints == (4, 5)
    assert buffer.upper().text == "AB"


def test_case_transform_unicode_expansion():
    """Regression: ``"ß".upper()`` is ``"SS"`` — case mapping must realign
    taints instead of crashing on the length change."""
    buffer = tainted("aß", 4)
    upper = buffer.upper()
    assert upper.text == "ASS"
    # both expansion characters inherit the source character's taint
    assert upper.taints == (4, 5, 5)
    # round trip back down stays aligned
    assert upper.lower().text == "ass"
    assert upper.lower().taints == (4, 5, 5)


def test_case_transform_unicode_lower_expansion():
    buffer = tainted("İ", 9)  # dotted capital I lowers to 'i' + combining dot
    lowered = buffer.lower()
    assert lowered.text == "i̇"
    assert lowered.taints == (9, 9)


def test_find_char_records_in_events():
    recorder = Recorder()
    with recording(recorder):
        position = tainted("key=value").find_char("=:")
    assert position == 3
    assert any(e.kind is ComparisonKind.IN for e in recorder.comparisons)


def test_find_char_missing():
    assert tainted("abc").find_char("=") == -1


def test_str_and_repr():
    assert str(tainted("ab")) == "ab"
    assert "ab" in repr(tainted("ab"))


def test_hash_by_text():
    assert hash(tainted("ab")) == hash(TaintedStr("ab"))
