"""Comparison events: replacement-candidate derivation per kind."""

import pytest

from repro.taint.events import ComparisonEvent, ComparisonKind, EOFEvent


def event(kind, other, result=False):
    return ComparisonEvent(kind, 0, "a", other, result)


def test_eq_candidate_is_the_compared_value():
    assert event(ComparisonKind.EQ, "(").replacement_candidates() == ("(",)


def test_ne_candidate():
    assert event(ComparisonKind.NE, ")").replacement_candidates() == (")",)


def test_in_candidates_are_class_members_deduped():
    candidates = event(ComparisonKind.IN, "aab").replacement_candidates()
    assert candidates == ("a", "b")


def test_switch_candidates():
    candidates = event(ComparisonKind.SWITCH, "xy").replacement_candidates()
    assert candidates == ("x", "y")


def test_strcmp_candidate_is_whole_string():
    assert event(ComparisonKind.STRCMP, "while").replacement_candidates() == ("while",)


def test_relational_candidate_is_boundary():
    assert event(ComparisonKind.LE, "9").replacement_candidates() == ("9",)
    assert event(ComparisonKind.GT, "a").replacement_candidates() == ("a",)


def test_empty_other_value_yields_nothing():
    assert event(ComparisonKind.EQ, "").replacement_candidates() == ()
    assert event(ComparisonKind.STRCMP, "").replacement_candidates() == ()


def test_is_string_comparison():
    assert event(ComparisonKind.STRCMP, "x").is_string_comparison
    assert not event(ComparisonKind.EQ, "x").is_string_comparison


def test_events_are_frozen():
    frozen = event(ComparisonKind.EQ, "x")
    with pytest.raises(AttributeError):
        frozen.index = 3


def test_eof_event_fields():
    eof = EOFEvent(index=7, stack_depth=2, clock=9)
    assert (eof.index, eof.stack_depth, eof.clock) == (7, 2, 9)
