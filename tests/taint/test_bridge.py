"""Token-taint bridging (§7.2 future work)."""

from repro.core.substitute import substitutions_for
from repro.runtime.harness import run_subject
from repro.subjects.mjs import MjsSubject
from repro.subjects.tinyc import TinyCSubject
from repro.taint.bridge import record_token_expectation
from repro.taint.events import ComparisonKind
from repro.taint.recorder import Recorder, recording


def test_record_token_expectation():
    recorder = Recorder()
    with recording(recorder):
        record_token_expectation(5, "}", "(", False)
    (event,) = recorder.comparisons
    assert event.kind is ComparisonKind.STRCMP
    assert event.index == 5
    assert event.other_value == "("
    assert not event.result


def test_eof_token_marked():
    recorder = Recorder()
    with recording(recorder):
        record_token_expectation(3, "", ")", False)
    (event,) = recorder.comparisons
    assert event.at_eof
    assert event.indices == ()


def test_no_recorder_no_crash():
    record_token_expectation(0, "x", "y", False)


def test_empty_expected_not_recorded():
    recorder = Recorder()
    with recording(recorder):
        record_token_expectation(0, "x", "", False)
    assert recorder.comparisons == []


def test_default_subjects_reproduce_the_limitation():
    """Without bridging, 'while' gives the fuzzer nothing to go on (§7.2)."""
    result = run_subject(TinyCSubject(), "while")
    texts = {s.text for s in substitutions_for(result)}
    assert "while(" not in texts


def test_bridged_tinyc_recovers_the_expectation():
    """With bridging, the '(' expectation after 'while' becomes a
    substitution candidate."""
    result = run_subject(TinyCSubject(token_bridge=True), "while")
    texts = {s.text for s in substitutions_for(result)}
    assert "while(" in texts


def test_bridged_tinyc_closes_paren_expr():
    result = run_subject(TinyCSubject(token_bridge=True), "while(1")
    texts = {s.text for s in substitutions_for(result)}
    assert "while(1)" in texts


def test_bridged_mjs_expectations():
    result = run_subject(MjsSubject(token_bridge=True), "if")
    texts = {s.text for s in substitutions_for(result)}
    assert "if(" in texts


def test_bridge_does_not_change_acceptance():
    plain = TinyCSubject()
    bridged = TinyCSubject(token_bridge=True)
    for text in ("a=1;", "while", "if (a) ; else ;", "{", ""):
        assert plain.accepts(text) == bridged.accepts(text), text
