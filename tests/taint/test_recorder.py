"""Recorder: trace collection, queries, and context isolation."""

from repro.taint.events import ComparisonKind
from repro.taint.recorder import Recorder, current_recorder, recording


def record(recorder, index, other="x", kind=ComparisonKind.EQ, result=False):
    recorder.record(kind, index, "a", other, result, indices=(index,))


def test_no_recorder_by_default():
    assert current_recorder() is None


def test_recording_installs_and_restores():
    with recording() as recorder:
        assert current_recorder() is recorder
    assert current_recorder() is None


def test_recording_nests():
    with recording() as outer:
        with recording() as inner:
            assert current_recorder() is inner
        assert current_recorder() is outer


def test_last_compared_index():
    recorder = Recorder()
    assert recorder.last_compared_index() is None
    record(recorder, 2)
    record(recorder, 5)
    record(recorder, 3)
    assert recorder.last_compared_index() == 5


def test_comparisons_at():
    recorder = Recorder()
    record(recorder, 1, "a")
    record(recorder, 1, "b")
    record(recorder, 2, "c")
    assert [e.other_value for e in recorder.comparisons_at(1)] == ["a", "b"]


def test_comparisons_touching_includes_string_spans():
    recorder = Recorder()
    # strcmp at index 3 comparing "wh" against "while": indices 3..7 touched.
    recorder.record(
        ComparisonKind.STRCMP, 3, "wh", "while", False, indices=(3, 4)
    )
    record(recorder, 6, "x")
    touching = recorder.comparisons_touching(6)
    assert len(touching) == 2
    assert any(e.kind is ComparisonKind.STRCMP for e in touching)


def test_eof_tracking():
    recorder = Recorder()
    assert not recorder.eof_accessed
    recorder.record_eof(4)
    assert recorder.eof_accessed
    assert recorder.eof_events[0].index == 4


def test_average_stack_size_of_last_two():
    recorder = Recorder(depth_provider=lambda: 0)
    depths = iter([2, 4, 6])
    recorder.depth_provider = lambda: next(depths)
    record(recorder, 0)
    record(recorder, 1)
    record(recorder, 2)
    assert recorder.average_stack_size() == 5.0  # (4 + 6) / 2


def test_average_stack_size_empty_and_single():
    recorder = Recorder()
    assert recorder.average_stack_size() == 0.0
    recorder.depth_provider = lambda: 8
    record(recorder, 0)
    assert recorder.average_stack_size() == 8.0


def test_clock_provider_stamps_events():
    clock = iter([10, 20])
    recorder = Recorder(clock_provider=lambda: next(clock))
    record(recorder, 0)
    record(recorder, 1)
    assert [e.clock for e in recorder.comparisons] == [10, 20]


def test_first_comparison_clock():
    clock = iter([5, 7, 9])
    recorder = Recorder(clock_provider=lambda: next(clock))
    record(recorder, 0)
    record(recorder, 1)
    record(recorder, 1)
    assert recorder.first_comparison_clock(1) == 7
    assert recorder.first_comparison_clock(99) is None


def test_by_index_groups():
    recorder = Recorder()
    record(recorder, 0)
    record(recorder, 1)
    record(recorder, 0)
    grouped = recorder.by_index()
    assert len(grouped[0]) == 2
    assert len(grouped[1]) == 1


def test_record_access_uses_stack_provider():
    recorder = Recorder(stack_provider=lambda: (("f", 1),))
    recorder.record_access(3)
    assert recorder.accesses == [(3, (("f", 1),))]
