"""A plugin subject with a planted crash, for the crash-hunting tests.

A recursive-descent parser for the Dyck-style language ``(^n a )^n`` that
raises :class:`RecursionError` once nesting exceeds a fixed depth — the
classic stack-exhaustion bug class, made deterministic by checking the
depth explicitly so the failure site is the same line on every engine
and backend.  pFuzzer reaches the bug on its own: each ``(`` appends a
valid prefix, so the campaign keeps nesting until the parser blows up.

Also the ``--subject-module`` smoke target in CI: importing this module
registers the ``crashy`` subject (the README walkthrough follows the
same recipe).
"""

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.subjects.function import FunctionSubject
from repro.subjects.registry import register_subject

#: Depth at which the planted RecursionError fires.
CRASH_DEPTH = 12


def parse_paren(stream: InputStream, depth: int) -> int:
    if depth > CRASH_DEPTH:
        raise RecursionError("paren nesting too deep")
    char = stream.next_char()
    if char == "(":
        inner = parse_paren(stream, depth + 1)
        closing = stream.next_char()
        if closing != ")":
            raise ParseError("expected ')'", closing.index)
        return inner + 1
    if char == "a":
        return 0
    raise ParseError("expected '(' or 'a'", char.index)


def parse_crashy(stream: InputStream) -> int:
    """Parse one paren tree; crashes past CRASH_DEPTH nesting levels."""
    value = parse_paren(stream, 0)
    trailing = stream.peek()
    if not trailing.is_eof:
        raise ParseError(f"trailing bytes at {trailing.index}", trailing.index)
    return value


def _make_subject() -> FunctionSubject:
    return FunctionSubject(parse_crashy, name="crashy")


def register() -> None:
    register_subject("crashy", _make_subject, replace=True)


if "__cov_line__" not in globals():
    register()
