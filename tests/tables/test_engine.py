"""Table-driven parser engine and the §7.1 instrumentation modes."""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.runtime.errors import ParseError
from repro.runtime.harness import run_subject
from repro.runtime.stream import InputStream
from repro.tables.subjects import TableExprSubject


@pytest.fixture
def plain():
    return TableExprSubject(instrumented=False)


@pytest.fixture
def instrumented():
    return TableExprSubject(instrumented=True)


@pytest.mark.parametrize(
    "text", ["1", "42", "1+1", "(2-94)", "+-3", "((7))", "1+2-3", "-(1)"]
)
def test_accepts(plain, instrumented, text):
    assert plain.accepts(text)
    assert instrumented.accepts(text)


@pytest.mark.parametrize("text", ["", "A", "(2", "1+", "()", "1)", "1 + 1"])
def test_rejects(plain, instrumented, text):
    assert not plain.accepts(text)
    assert not instrumented.accepts(text)


def test_stack_overflow_guard(plain):
    with pytest.raises(ParseError):
        plain.parse(InputStream("(" * 2000))


def test_plain_mode_records_no_cells(plain):
    result = run_subject(plain, "1+1")
    assert not result.recorder.aux_branches


def test_instrumented_mode_records_cells(instrumented):
    result = run_subject(instrumented, "1+1")
    cells = set(result.recorder.aux_branches)
    assert ("table:expr", "E", "digit") in cells
    assert ("table:expr", "E'", "+") in cells


def test_cells_merge_into_branches(instrumented):
    result = run_subject(instrumented, "1")
    assert any(arc[0] == "table:expr" for arc in result.decoded_branches())


def test_instrumented_row_scan_gives_substitutions(instrumented):
    from repro.core.substitute import substitutions_for

    result = run_subject(instrumented, "A")
    texts = {s.text for s in substitutions_for(result)}
    assert "(" in texts
    assert "+" in texts and "-" in texts
    assert "5" in texts  # digit class member


def test_plain_mode_blind_on_expansion(plain):
    """§7.1 limitation: the rejected lookahead was never compared."""
    from repro.core.substitute import substitutions_for

    result = run_subject(plain, "A")
    texts = {s.text for s in substitutions_for(result)}
    assert "(" not in texts


def test_ablation_instrumented_beats_plain():
    """The paper's proposed fix measurably helps the fuzzer."""
    plain_result = PFuzzer(
        TableExprSubject(False), FuzzerConfig(seed=0, max_executions=500)
    ).run()
    inst_result = PFuzzer(
        TableExprSubject(True), FuzzerConfig(seed=0, max_executions=500)
    ).run()
    assert len(inst_result.all_valid) > len(plain_result.all_valid)


def test_parse_returns_reduction_count(plain):
    assert plain.parse(InputStream("1")) >= 3  # E, T, N at minimum
