"""CFG sentence generation, and generator-vs-parser agreement."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tables.generate import SentenceGenerator
from repro.tables.subjects import (
    TableExprSubject,
    TableJsonSubject,
    expr_cfg,
    json_cfg,
)


def test_generation_terminates():
    generator = SentenceGenerator(expr_cfg(), seed=1, max_depth=6)
    sentences = generator.generate_many(50)
    assert all(len(sentence) < 10_000 for sentence in sentences)


def test_deterministic_with_seed():
    first = SentenceGenerator(json_cfg(), seed=9).generate_many(10)
    second = SentenceGenerator(json_cfg(), seed=9).generate_many(10)
    assert first == second


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_expr_grammar_sentences_accepted_by_table_parser(seed):
    """Everything the grammar derives, the LL(1) parser accepts."""
    generator = SentenceGenerator(expr_cfg(), seed=seed, max_depth=8)
    subject = TableExprSubject()
    for sentence in generator.generate_many(5):
        assert subject.accepts(sentence), sentence


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_json_grammar_sentences_accepted_by_table_parser(seed):
    generator = SentenceGenerator(json_cfg(), seed=seed, max_depth=8)
    subject = TableJsonSubject(instrumented=True)
    for sentence in generator.generate_many(5):
        assert subject.accepts(sentence), sentence


def test_expr_grammar_is_superset_of_recursive_descent():
    """The LL(1) expr grammar allows stacked unary signs (``T -> + T``);
    the recursive-descent subject allows at most one sign per factor —
    a deliberate, documented difference (see ``tables/subjects.py``)."""
    from repro.subjects.expr import ExprSubject

    table = TableExprSubject()
    recursive = ExprSubject()
    assert table.accepts("++1")
    assert not recursive.accepts("++1")
    # The other direction holds: see
    # tests/properties/test_differential.py::test_table_parser_accepts_expr_language.
