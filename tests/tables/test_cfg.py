"""CFG machinery: FIRST/FOLLOW and LL(1) table construction."""

import pytest

from repro.tables.grammar import (
    CFG,
    CharClass,
    END,
    EPSILON,
    LL1Conflict,
    build_table,
)
from repro.tables.subjects import DIGIT, expr_cfg


def toy_cfg():
    # S -> a S | b
    return CFG(name="toy", start="S").add("S", "a", "S").add("S", "b")


def test_nonterminals_and_productions():
    grammar = expr_cfg()
    assert {"E", "E'", "T", "N", "N'"} == grammar.nonterminals
    assert len(grammar.productions_of("T")) == 4


def test_first_sets():
    first = expr_cfg().first_sets()
    assert first["E'"] == {"+", "-", EPSILON}
    assert first["T"] == {"(", "+", "-", DIGIT}
    assert first["N"] == {DIGIT}
    assert EPSILON in first["N'"]


def test_follow_sets():
    follow = expr_cfg().follow_sets()
    assert follow["E"] == {END, ")"}
    assert follow["E'"] == {END, ")"}
    assert "+" in follow["N"] and "-" in follow["N"]


def test_build_table_cells():
    table = build_table(expr_cfg())
    production = table.cells[("T", "(")]
    assert production.body[0] == "("
    # Epsilon production lands in FOLLOW columns.
    assert ("E'", END) in table.cells
    assert ("E'", ")") in table.cells


def test_lookup_direct_class_and_end():
    table = build_table(expr_cfg())
    assert table.lookup("T", "(", at_end=False).body[0] == "("
    assert table.lookup("T", "7", at_end=False).body[0] == "N"
    assert table.lookup("N", "7", at_end=False).body[0] == DIGIT
    assert table.lookup("E'", "", at_end=True).body == ()
    assert table.lookup("T", "x", at_end=False) is None


def test_expected_terminals_excludes_end():
    table = build_table(expr_cfg())
    expected = table.expected_terminals("T")
    assert END not in expected
    assert "(" in expected and DIGIT in expected


def test_conflict_detection():
    # S -> a | a b is not LL(1).
    grammar = CFG(name="bad", start="S").add("S", "a").add("S", "a", "b")
    with pytest.raises(LL1Conflict):
        build_table(grammar)


def test_char_class_membership():
    assert "5" in DIGIT
    assert "x" not in DIGIT


def test_production_str():
    grammar = toy_cfg()
    assert str(grammar.productions[0]) == "S -> a S"
    empty = CFG(name="e", start="S").add("S")
    assert EPSILON in str(empty.productions[0])
