"""The LL(1) JSON-core table subject."""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.tables.grammar import build_table
from repro.tables.subjects import TableJsonSubject, json_cfg


@pytest.fixture
def subject():
    return TableJsonSubject(instrumented=True)


def test_grammar_is_ll1():
    build_table(json_cfg())  # raises LL1Conflict if not


@pytest.mark.parametrize(
    "text",
    [
        "1",
        "-42",
        '""',
        '"abc"',
        "[]",
        "[1,2]",
        "{}",
        '{"k":1}',
        '{"a":[true,false,null],"b":"x"}',
        "true",
        "false",
        "null",
        '[[["deep"]]]',
    ],
)
def test_accepts(subject, text):
    assert subject.accepts(text)


@pytest.mark.parametrize(
    "text",
    [
        "",
        "tru",
        "truex",
        "[1,]",
        '{"a"}',
        '{"a":}',
        "{1:2}",
        '"unterminated',
        "01x",
        " 1",  # whitespace is outside the LL(1) core
        "1 ",
    ],
)
def test_rejects(subject, text):
    assert not subject.accepts(text)


def test_plain_and_instrumented_agree_on_language():
    plain = TableJsonSubject(instrumented=False)
    instrumented = TableJsonSubject(instrumented=True)
    for text in ("1", "[]", '{"a":1}', "tru", "", "[1,"):
        assert plain.accepts(text) == instrumented.accepts(text), text


def test_instrumented_fuzzer_finds_structure():
    result = PFuzzer(
        TableJsonSubject(instrumented=True),
        FuzzerConfig(seed=1, max_executions=2_000),
    ).run()
    corpus = result.all_valid
    assert any("[" in text for text in corpus)
    assert any('"' in text for text in corpus)


def test_keywords_need_cell_by_cell_discovery():
    """Unlike cJSON's strcmp, the table spells keywords one char at a time:
    the fuzzer can still walk there, but no single substitution jumps to
    'true' (an honest structural property of table-driven parsing)."""
    from repro.core.substitute import substitutions_for
    from repro.runtime.harness import run_subject

    result = run_subject(TableJsonSubject(instrumented=True), "t")
    texts = {s.text for s in substitutions_for(result)}
    assert "true" not in texts
    assert "tr" in texts
