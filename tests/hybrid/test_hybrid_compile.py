"""The grammar compiler: lowering, codegen, and the determinism contract."""

import random

import pytest

from repro.hybrid.compile import (
    CompiledGenerator,
    GrammarCompileError,
    compile_grammar,
)
from repro.miner.grammar import Grammar, NONTERM, TERM


def finite_grammar():
    """start -> "a" | "b" "c": a two-sentence language."""
    grammar = Grammar("start")
    grammar.add_rule("start", ((TERM, "a"),))
    grammar.add_rule("start", ((TERM, "b"), (TERM, "c")))
    return grammar


def recursive_grammar():
    """Balanced parens around an atom: (^n x )^n for n >= 0."""
    grammar = Grammar("s")
    grammar.add_rule("s", ((TERM, "("), (NONTERM, "s"), (TERM, ")")))
    grammar.add_rule("s", ((TERM, "x"),))
    return grammar


def chain_grammar():
    """A single-alternative helper chain, as mined grammars produce."""
    grammar = Grammar("s")
    grammar.add_rule("s", ((NONTERM, "a"), (NONTERM, "b")))
    grammar.add_rule("a", ((TERM, "["), (NONTERM, "b"), (TERM, "]")))
    grammar.add_rule("b", ((TERM, "x"),))
    return grammar


def parens_language(max_nesting):
    return {"(" * n + "x" + ")" * n for n in range(max_nesting + 1)}


# --------------------------------------------------------------------- #
# Lowering
# --------------------------------------------------------------------- #


def test_compile_rejects_missing_start_rule():
    with pytest.raises(GrammarCompileError, match="start"):
        compile_grammar(Grammar("s"))


def test_compile_rejects_nonpositive_depth():
    with pytest.raises(GrammarCompileError, match="max_depth"):
        compile_grammar(finite_grammar(), max_depth=0)


def test_single_alternative_chains_are_inlined():
    compiled = compile_grammar(chain_grammar())
    # "a" and "b" contribute no choice; only the start rule survives.
    assert compiled.names == ["s"]
    assert compiled.inlined == 2
    (expansion,) = compiled.alts["s"]
    # Inlining re-merges the now-adjacent terminals into one run.
    assert expansion == ((TERM, "[x]x"),)


def test_adjacent_terminals_merge():
    grammar = Grammar("s")
    grammar.add_rule("s", ((TERM, "ab"), (TERM, "cd"), (NONTERM, "t")))
    grammar.add_rule("t", ((TERM, "!"),))
    grammar.add_rule("t", ((TERM, "?"),))
    compiled = compile_grammar(grammar)
    assert ((TERM, "abcd"), (NONTERM, "t")) in compiled.alts["s"]


def test_undefined_nonterminals_are_dropped():
    grammar = Grammar("s")
    grammar.add_rule("s", ((TERM, "a"), (NONTERM, "ghost")))
    compiled = compile_grammar(grammar)
    generator = CompiledGenerator(compiled, seed=0)
    assert generator.generate() == "a"


def test_min_costs_and_closings():
    compiled = compile_grammar(recursive_grammar())
    assert compiled.costs["s"] == 1.0
    # The canonical minimal closing of <s> is its terminal alternative.
    assert compiled.cheap_closings["s"] == ["x"]


# --------------------------------------------------------------------- #
# Generated output
# --------------------------------------------------------------------- #


def test_compiled_output_stays_inside_the_language():
    generator = CompiledGenerator(compile_grammar(finite_grammar()), seed=5)
    sentences = {generator.generate() for _ in range(200)}
    assert sentences == {"a", "bc"}


def test_recursive_output_is_balanced_and_depth_bounded():
    depth = 4
    generator = CompiledGenerator(
        compile_grammar(recursive_grammar(), max_depth=depth), seed=9
    )
    language = parens_language(depth + 1)
    sentences = {generator.generate() for _ in range(300)}
    assert sentences <= language
    assert len(sentences) > 1, "recursion never taken"


def test_compiled_language_matches_interpreter_language():
    """Compiled and interpreted generation agree on the language (the
    streams differ — draw layouts are different by design)."""
    from repro.miner.generate import GrammarFuzzer

    grammar = recursive_grammar()
    interpreted = {
        GrammarFuzzer(grammar, seed=seed, max_depth=3).generate()
        for seed in range(120)
    }
    generator = CompiledGenerator(compile_grammar(grammar, max_depth=3), seed=1)
    compiled = {generator.generate() for _ in range(300)}
    assert compiled <= parens_language(8)
    assert interpreted <= parens_language(8)
    # Both reach the same shallow core.
    assert {"x", "(x)"} <= compiled
    assert {"x", "(x)"} <= interpreted


def test_wide_grammar_dispatches_through_closure_table():
    grammar = Grammar("s")
    terminals = [chr(ord("a") + i) for i in range(20)]  # > _LADDER_LIMIT
    for terminal in terminals:
        grammar.add_rule("s", ((TERM, terminal), (NONTERM, "t")))
    grammar.add_rule("t", ((TERM, "!"),))
    grammar.add_rule("t", ((TERM, "?"),))
    compiled = compile_grammar(grammar)
    assert "_alts_" in compiled.source, "expected closure-table dispatch"
    generator = CompiledGenerator(compiled, seed=3)
    sentences = {generator.generate() for _ in range(400)}
    assert sentences <= {t + p for t in terminals for p in "!?"}
    assert len(sentences) > 20, "table dispatch should reach most alternatives"


def test_unclosable_grammar_terminates_via_hard_bail():
    """A rule with no finite closing (s -> "(" s) must still terminate."""
    grammar = Grammar("s")
    grammar.add_rule("s", ((TERM, "("), (NONTERM, "s")))
    compiled = compile_grammar(grammar, max_depth=3)
    assert compiled.costs["s"] == float("inf")
    generator = CompiledGenerator(compiled, seed=0)
    text = generator.generate()
    assert set(text) == {"("}
    assert len(text) < 200


# --------------------------------------------------------------------- #
# Determinism and RNG plumbing
# --------------------------------------------------------------------- #


def test_same_seed_same_stream():
    compiled = compile_grammar(recursive_grammar(), max_depth=6)
    first = CompiledGenerator(compiled, seed=11)
    second = CompiledGenerator(compiled, seed=11)
    assert [first.generate() for _ in range(50)] == [
        second.generate() for _ in range(50)
    ]


def test_state_round_trip_resumes_the_stream():
    generator = CompiledGenerator(
        compile_grammar(recursive_grammar(), max_depth=6), seed=4
    )
    generator.generate()
    state = generator.getstate()
    expected = [generator.generate() for _ in range(20)]
    generator.setstate(state)
    assert [generator.generate() for _ in range(20)] == expected


def test_generator_draws_from_a_shared_campaign_rng():
    """Passing ``rng`` makes output a pure function of that stream — the
    hybrid-campaign seeding path."""
    compiled = compile_grammar(recursive_grammar(), max_depth=6)
    rng = random.Random(99)
    state = rng.getstate()
    first = [CompiledGenerator(compiled, rng=rng).generate() for _ in range(10)]
    fresh = random.Random(0)
    fresh.setstate(state)
    second = [
        CompiledGenerator(compiled, rng=fresh).generate() for _ in range(10)
    ]
    assert first == second
    # ... and the seed argument is ignored when rng is given.
    fresh.setstate(state)
    third = CompiledGenerator(compiled, seed=123456, rng=fresh)
    assert [third.generate() for _ in range(10)] == first


def test_compiled_tables_are_hash_order_independent():
    """Insertion order must not leak into the compiled artifact."""
    forward = finite_grammar()
    backward = Grammar("start")
    backward.add_rule("start", ((TERM, "b"), (TERM, "c")))
    backward.add_rule("start", ((TERM, "a"),))
    assert compile_grammar(forward).source == compile_grammar(backward).source
    assert [
        CompiledGenerator(compile_grammar(forward), seed=2).generate()
        for _ in range(30)
    ] == [
        CompiledGenerator(compile_grammar(backward), seed=2).generate()
        for _ in range(30)
    ]


# --------------------------------------------------------------------- #
# generate_many
# --------------------------------------------------------------------- #


def test_generate_many_without_avoid_draws_exactly_count():
    generator = CompiledGenerator(compile_grammar(finite_grammar()), seed=1)
    assert len(generator.generate_many(25)) == 25


def test_generate_many_dedup_is_draw_bounded():
    """A two-sentence grammar cannot fill a large request; the bounded
    retry loop returns what exists instead of spinning."""
    generator = CompiledGenerator(compile_grammar(finite_grammar()), seed=1)
    out = generator.generate_many(50, avoid=set())
    assert sorted(out) == ["a", "bc"]
    avoided = generator.generate_many(50, avoid={"a"})
    assert avoided == ["bc"]
    assert generator.generate_many(50, avoid={"a", "bc"}) == []


def test_generate_many_respects_max_attempts():
    generator = CompiledGenerator(compile_grammar(finite_grammar()), seed=1)
    out = generator.generate_many(10, avoid=set(), max_attempts=1)
    assert len(out) == 1
