"""Miner -> tables -> compiled-generator bridge (§7.4 meets §7.1).

The hybrid loop only works if the artifacts compose: grammars mined from
campaign corpora must convert to the table engine's CFG form (round-trip
or a diagnosed :class:`LL1Conflict`), and what the compiled generator
produces must overwhelmingly re-parse valid on the subject the grammar
was mined from.  Not *always*: mining over-approximates — an input
truncated at EOF mines alternatives that are only valid in final
position, and generation may splice them mid-sentence.  That is safe
(floods are executed through the subject like any candidate, so a
rejected generation costs budget but never enters the corpus) but a
generator whose output mostly misses would waste the phase, so the
property here is a validity-rate floor.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.hybrid.campaign import enrich_grammar, lineage_keywords
from repro.hybrid.compile import CompiledGenerator, compile_grammar
from repro.miner.export import terminal_alphabet, to_cfg
from repro.miner.grammar import Grammar, TERM
from repro.miner.mine import mine_grammar
from repro.runtime.stream import InputStream
from repro.subjects.registry import load_subject
from repro.tables.engine import TableParser
from repro.tables.grammar import LL1Conflict, build_table


def _campaign_corpus(subject, seed, budget, keep=30):
    result = PFuzzer(
        subject,
        FuzzerConfig(seed=seed, max_executions=budget, coverage_backend="ast"),
    ).run()
    corpus = sorted(set(result.all_valid), key=lambda t: (len(t), t))[-keep:]
    return result, corpus


# --------------------------------------------------------------------- #
# Mined grammar -> CFG round-trip
# --------------------------------------------------------------------- #


def test_mined_ini_grammar_round_trips_through_to_cfg(ini_subject):
    _, corpus = _campaign_corpus(ini_subject, seed=3, budget=600)
    assert len(corpus) >= 2
    mined = mine_grammar(ini_subject, corpus)
    cfg = to_cfg(mined)
    assert cfg.start == mined.start
    # Character-splitting preserves the terminal alphabet exactly.
    cfg_terminals = {
        symbol
        for production in cfg.productions
        for symbol in production.body
        if symbol not in cfg.nonterminals
    }
    assert cfg_terminals == terminal_alphabet(mined)
    try:
        table = build_table(cfg)
    except LL1Conflict:
        return  # acceptable: mined grammars need not be LL(1)
    for text in corpus:
        assert table is not None
        TableParser(table).parse(InputStream(text))


def test_common_prefix_alternatives_surface_as_ll1_conflict():
    """A mined grammar whose alternatives share a first character is not
    LL(1); the bridge reports that as a diagnosis, not a crash."""
    grammar = Grammar("start")
    grammar.add_rule("start", ((TERM, "ab"),))
    grammar.add_rule("start", ((TERM, "ac"),))
    cfg = to_cfg(grammar)
    try:
        build_table(cfg)
    except LL1Conflict as conflict:
        assert "start" in str(conflict) or "a" in str(conflict)
    else:
        raise AssertionError("expected an LL1Conflict diagnosis")


# --------------------------------------------------------------------- #
# Property: compiled-generator output re-parses valid at a high rate
# --------------------------------------------------------------------- #

#: Worst observed rate across ini mining seeds is ~0.87 (EOF-truncated
#: alternatives spliced mid-sentence); most seeds generate 100% valid.
MIN_VALID_RATE = 0.8


def _assert_generated_reparse_valid(subject, grammar, draws=60):
    for depth in (3, 6):
        generator = CompiledGenerator(
            compile_grammar(grammar, max_depth=depth), seed=1
        )
        texts = generator.generate_many(draws)
        valid = sum(1 for text in texts if subject.accepts(text))
        assert valid >= MIN_VALID_RATE * len(texts), (
            f"only {valid}/{len(texts)} generated inputs re-parse on "
            f"{subject.name} (depth {depth}; floor {MIN_VALID_RATE:.0%})"
        )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=4, deadline=None)
def test_generated_expr_inputs_reparse_valid(seed):
    subject = load_subject("expr")
    _, corpus = _campaign_corpus(subject, seed=seed, budget=300)
    if len(corpus) < 2:
        return
    _assert_generated_reparse_valid(subject, mine_grammar(subject, corpus))


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=3, deadline=None)
def test_generated_ini_inputs_reparse_valid(seed):
    subject = load_subject("ini")
    _, corpus = _campaign_corpus(subject, seed=seed, budget=400)
    if len(corpus) < 2:
        return
    _assert_generated_reparse_valid(subject, mine_grammar(subject, corpus))


def test_enriched_json_grammar_generates_valid_inputs(json_subject):
    """The full learn-phase pipeline — mine, label keywords from lineage,
    enrich, compile — still clears the validity-rate floor."""
    result, corpus = _campaign_corpus(json_subject, seed=1, budget=1_000)
    assert len(corpus) >= 2
    grammar = mine_grammar(json_subject, corpus)
    keywords = lineage_keywords(result.lineage, result.valid_lineage)
    enriched = enrich_grammar(grammar, keywords)
    _assert_generated_reparse_valid(json_subject, enriched, draws=100)
