"""The hybrid engine: plateau detection, enrichment, floods, snapshots."""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.hybrid.campaign import (
    HybridConfig,
    HybridEngine,
    enrich_grammar,
    lineage_keywords,
)
from repro.miner.grammar import Grammar, NONTERM, TERM
from repro.obs.lineage import LineageLog
from repro.obs.trace import read_trace


def small_config(**overrides):
    base = dict(mine_after=50, gen_batch=8, mine_corpus=10, gen_depth=3)
    base.update(overrides)
    return HybridConfig(**base)


def parens_grammar():
    grammar = Grammar("s")
    grammar.add_rule("s", ((TERM, "("), (NONTERM, "s"), (TERM, ")")))
    grammar.add_rule("s", ((TERM, "x"),))
    return grammar


# --------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "overrides,match",
    [
        (dict(mine_after=0), "mine_after"),
        (dict(gen_batch=0), "gen_batch"),
        (dict(mine_corpus=0), "mine_corpus"),
        (dict(gen_depth=0), "gen_depth"),
        (dict(pause_threshold=0.0), "pause_threshold"),
        (dict(pause_threshold=1.0), "pause_threshold"),
        (dict(decay=0.0), "decay"),
        (dict(decay=1.5), "decay"),
    ],
)
def test_config_validation_names_the_bad_knob(overrides, match):
    with pytest.raises(ValueError, match=match):
        HybridConfig(**overrides).validate()


def test_gain_evidence_floor_is_capped_below_the_decay_horizon():
    """Decayed execution counts saturate at 1 / (1 - decay); an evidence
    floor above the horizon would never be met and the plateau would
    never fire.  The estimator's bar caps at half the horizon; the full
    undecayed floor is enforced by the engine's inter-phase clock."""
    config = HybridConfig(mine_after=600, decay=0.995)  # horizon = 200
    assert config.gain_config().min_evidence == pytest.approx(100.0)
    # Small floors below the horizon pass through unchanged.
    assert HybridConfig(mine_after=50, decay=0.995).gain_config().min_evidence == 50.0
    # decay=1.0 disables decay: no horizon, the floor passes through.
    assert (
        HybridConfig(mine_after=600, decay=1.0).gain_config().min_evidence
        == 600.0
    )


def test_from_fuzzer_takes_the_exposed_knobs():
    fuzzer_config = FuzzerConfig(
        hybrid=True, mine_after=123, gen_batch=9, gen_depth=7
    )
    config = HybridConfig.from_fuzzer(fuzzer_config)
    assert config.mine_after == 123
    assert config.gen_batch == 9
    assert config.gen_depth == 7
    assert config.mine_corpus == HybridConfig.mine_corpus


# --------------------------------------------------------------------- #
# Lineage-derived keywords and grammar enrichment
# --------------------------------------------------------------------- #


def test_lineage_keywords_collects_multichar_substitutions():
    log = LineageLog()
    root = log.new_node(None, "seed", "")
    grown = log.new_node(root, "append", "t")
    spliced = log.new_node(
        grown, "substitute", "true", replacement="true", cmp_kind="strcmp"
    )
    tweaked = log.new_node(
        spliced, "substitute", "truex", replacement="x", at_index=4
    )
    leaf = log.new_node(tweaked, "append", "truex!")
    # Multi-character replacements along the chain surface; the
    # single-character splice does not.
    assert lineage_keywords(log, [leaf]) == ["true"]


def test_lineage_keywords_strips_and_sorts():
    log = LineageLog()
    root = log.new_node(None, "seed", "")
    first = log.new_node(root, "substitute", "b", replacement=" while ")
    leaf = log.new_node(first, "substitute", "a", replacement="if")
    assert lineage_keywords(log, [leaf]) == ["if", "while"]


def test_lineage_keywords_tolerates_broken_chains():
    log = LineageLog()
    node = log.new_node(None, "substitute", "x", replacement="word")
    assert lineage_keywords(log, [node, 999]) == ["word"]


def test_enrich_splits_terminals_around_keywords():
    grammar = Grammar("s")
    grammar.add_rule("s", ((TERM, "x=true"), (NONTERM, "t")))
    grammar.add_rule("t", ((TERM, "!"),))
    enriched = enrich_grammar(grammar, ["true"])
    (expansion,) = enriched.rules["s"]
    assert expansion == (
        (TERM, "x"),
        (TERM, "="),
        (TERM, "true"),
        (NONTERM, "t"),
    )
    # Single-character terminals pass through untouched.
    assert enriched.rules["t"] == {((TERM, "!"),)}


def test_enrich_prefers_the_longest_keyword_on_overlap():
    grammar = Grammar("s")
    grammar.add_rule("s", ((TERM, "init"),))
    enriched = enrich_grammar(grammar, ["in", "init"])
    assert enriched.rules["s"] == {((TERM, "init"),)}


def test_enrich_ignores_single_character_keywords():
    grammar = Grammar("s")
    grammar.add_rule("s", ((TERM, "ab"),))
    enriched = enrich_grammar(grammar, ["a"])
    assert enriched.rules["s"] == {((TERM, "a"), (TERM, "b"))}


# --------------------------------------------------------------------- #
# Engine: plateau detection and phase lifecycle
# --------------------------------------------------------------------- #


def test_plateau_fires_only_with_evidence_floor_and_corpus():
    engine = HybridEngine(small_config(), seed=1)
    # Fresh engine: no evidence, never plateaued.
    assert not engine.plateaued(0, 10)
    executions = 0
    while executions < 60:
        executions += 20
        engine.observe_campaign(executions, 0)  # zero discoveries
    assert engine.plateaued(executions, 2)
    # ... but not with a degenerate (sub-2) valid corpus,
    assert not engine.plateaued(executions, 1)
    # ... and not before the inter-phase execution floor.
    assert not engine.plateaued(engine.mined_at + 10, 2)


def test_discoveries_hold_the_plateau_off():
    engine = HybridEngine(small_config(), seed=1)
    executions = 0
    for _ in range(10):
        executions += 20
        engine.observe_campaign(executions, executions // 2)
    assert not engine.plateaued(executions, 5)


def test_finish_phase_resets_the_plateau_clock():
    engine = HybridEngine(small_config(), seed=1)
    executions = 0
    while not engine.plateaued(executions, 2):
        executions += 20
        engine.observe_campaign(executions, 0)
    engine.finish_phase(executions, 0)
    assert engine.phase == 1
    assert engine.mined_at == executions
    # The gain estimator restarted empty: the same counters no longer
    # satisfy the evidence floor until a fresh window accumulates.
    assert not engine.plateaued(executions + engine.config.mine_after, 2)


def test_flood_is_deduplicated_and_length_capped():
    engine = HybridEngine(small_config(gen_depth=4), seed=3)
    assert engine.flood(5, set(), 100) == []  # nothing learned yet
    engine.learn(parens_grammar(), [])
    sentences = engine.flood(8, {"x"}, 5)
    assert sentences
    assert len(sentences) == len(set(sentences))
    assert "x" not in sentences
    assert all(len(text) <= 5 for text in sentences)


# --------------------------------------------------------------------- #
# Engine: snapshot round-trip
# --------------------------------------------------------------------- #


def test_payload_round_trip_resumes_the_generation_stream():
    first = HybridEngine(small_config(), seed=7)
    first.observe_campaign(120, 3)
    first.learn(parens_grammar(), ["true"])
    first.flood(4, set(), 200)
    first.finish_phase(120, 3)
    payload = first.to_payload()

    # A different seed: restore must overwrite every moving part.
    second = HybridEngine(small_config(), seed=99)
    second.restore_payload(payload)
    assert second.to_payload() == payload
    assert second.phase == 1
    assert second.keywords == ["true"]
    # The generation RNG continues exactly where the snapshot left it.
    assert first.flood(6, set(), 200) == second.flood(6, set(), 200)


def test_payload_round_trip_before_any_learning():
    engine = HybridEngine(small_config(), seed=5)
    payload = engine.to_payload()
    assert payload["grammar"] is None
    restored = HybridEngine(small_config(), seed=6)
    restored.restore_payload(payload)
    assert restored.to_payload() == payload
    assert restored.flood(3, set(), 100) == []


# --------------------------------------------------------------------- #
# Full campaigns: determinism, trace schema, gen lineage
# --------------------------------------------------------------------- #


def _hybrid_config(**overrides):
    base = dict(
        seed=1,
        max_executions=800,
        coverage_backend="ast",
        hybrid=True,
        mine_after=200,
        gen_batch=16,
    )
    base.update(overrides)
    return FuzzerConfig(**base)


def _fingerprint(result, subject):
    from repro.eval.checkpoint import result_fingerprint
    from repro.runtime.arcs import arc_table_for

    return result_fingerprint(result, arc_table_for(subject))


def test_hybrid_campaign_mines_floods_and_stays_deterministic(
    tmp_path, ini_subject
):
    path = tmp_path / "trace.ndjson"
    result = PFuzzer(
        ini_subject, _hybrid_config(trace_path=str(path))
    ).run()

    # The hybrid events are schema-valid on the NDJSON artifact.
    events = read_trace(path, strict=True)
    mined = [e for e in events if e["type"] == "grammar_mined"]
    floods = [e for e in events if e["type"] == "gen_phase"]
    assert mined and floods
    for event in mined:
        assert event["rules"] >= 1
        assert event["corpus"] >= 2
    for event in floods:
        assert 0 <= event["valid"] <= event["injected"] <= 16

    # Flood roots carry "gen" lineage and replay to their exact bytes.
    gen_nodes = [
        node for node in result.lineage.nodes.values() if node.op == "gen"
    ]
    assert gen_nodes
    for node in gen_nodes:
        assert node.parent_id is None
        assert result.lineage.replay(node.node_id) == node.text

    # Identical (seed, config) reruns are byte-identical.
    rerun = PFuzzer(ini_subject, _hybrid_config()).run()
    assert _fingerprint(rerun, ini_subject) == _fingerprint(
        result, ini_subject
    )
    # Mining replays charge the corpus against the execution budget.
    assert result.executions <= 800


def test_hybrid_flag_participates_in_the_config_fingerprint(ini_subject):
    plain = PFuzzer(ini_subject, FuzzerConfig(seed=1))._config_fingerprint()
    hybrid = PFuzzer(ini_subject, _hybrid_config())._config_fingerprint()
    # Non-hybrid fingerprints stay byte-identical to pre-hybrid
    # snapshots; hybrid campaigns key their phase-schedule knobs in.
    assert "hybrid" not in plain
    assert "gen_depth" not in plain
    assert hybrid["hybrid"] is True
    assert hybrid["mine_after"] == 200
    assert hybrid["gen_batch"] == 16
    assert hybrid["gen_depth"] == 3
