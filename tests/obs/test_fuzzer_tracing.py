"""Campaign tracing end to end: lineage replay, NDJSON artifacts, resume."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.obs.lineage import LineageLog
from repro.obs.trace import InMemoryTraceRecorder, read_trace
from repro.subjects.expr import ExprSubject
from repro.subjects.registry import load_subject


def _run(subject, tracer=None, **kwargs):
    defaults = dict(seed=1, max_executions=300)
    defaults.update(kwargs)
    return PFuzzer(subject, FuzzerConfig(**defaults), tracer=tracer).run()


def _assert_chains_replay(result):
    """Every emitted input's lineage chain re-derives its exact bytes."""
    assert len(result.valid_lineage) == len(result.valid_inputs)
    for node_id, text in zip(result.valid_lineage, result.valid_inputs):
        assert result.lineage.replay(node_id) == text
        assert result.lineage.get(node_id).text == text


def test_lineage_recorded_without_tracer(expr_subject):
    """The tree is always built; tracing only adds the NDJSON artifact."""
    result = _run(expr_subject)
    assert result.valid_inputs
    assert len(result.lineage) > 0
    _assert_chains_replay(result)


def test_tracing_does_not_change_campaign_results(expr_subject):
    plain = _run(expr_subject, seed=7)
    traced = _run(expr_subject, tracer=InMemoryTraceRecorder(), seed=7)
    assert traced.valid_inputs == plain.valid_inputs
    assert traced.executions == plain.executions
    assert traced.valid_lineage == plain.valid_lineage


def test_trace_events_cover_campaign_lifecycle(expr_subject):
    recorder = InMemoryTraceRecorder()
    result = _run(expr_subject, tracer=recorder)
    counts = recorder.counts
    assert counts["campaign_start"] == 1
    assert counts["campaign_end"] == 1
    assert counts["candidate_executed"] == result.executions
    assert counts["input_emitted"] == len(result.valid_inputs)
    assert counts["span"] > 0
    assert counts["candidate_scheduled"] == len(result.lineage)


def test_trace_file_validates_and_rebuilds_lineage(tmp_path, expr_subject):
    """The NDJSON file alone reconstructs every emitted input's chain."""
    path = tmp_path / "trace.ndjson"
    result = _run(expr_subject, trace_path=str(path))
    events = read_trace(path, strict=True)
    assert events, "trace file is empty"
    rebuilt = LineageLog.from_trace_events(events)
    emitted = [e for e in events if e["type"] == "input_emitted"]
    assert [e["text"] for e in emitted] == result.valid_inputs
    for event in emitted:
        assert rebuilt.replay(event["lineage"]) == event["text"]


def test_phase_times_survive_as_span_totals(expr_subject):
    result = _run(expr_subject)
    assert "execute" in result.phase_times
    assert result.phase_times["execute"] > 0


def test_lineage_survives_snapshot_restore(tmp_path):
    """A resumed campaign keeps ids, chains, and replayability."""

    def config(**kwargs):
        base = dict(
            seed=3,
            max_executions=400,
            checkpoint_dir=str(tmp_path / "ckpt"),
            checkpoint_every=100,
        )
        base.update(kwargs)
        return FuzzerConfig(**base)

    reference = PFuzzer(ExprSubject(), config()).run()

    # Interrupted leg: stop after 150 executions, then resume to the end.
    ckpt2 = str(tmp_path / "ckpt2")
    partial = PFuzzer(
        ExprSubject(), config(max_executions=150, checkpoint_dir=ckpt2)
    ).run()
    assert partial.executions == 150
    resumed = PFuzzer(
        ExprSubject(), config(checkpoint_dir=ckpt2, resume=True)
    ).run()
    assert resumed.valid_inputs == reference.valid_inputs
    assert resumed.valid_lineage == reference.valid_lineage
    _assert_chains_replay(resumed)


def test_resumed_trace_file_appends(tmp_path):
    """trace_path appends across legs: one artifact for the campaign."""
    path = tmp_path / "trace.ndjson"
    kwargs = dict(
        seed=3,
        checkpoint_dir=str(tmp_path / "ckpt"),
        checkpoint_every=100,
        trace_path=str(path),
    )
    PFuzzer(ExprSubject(), FuzzerConfig(max_executions=150, **kwargs)).run()
    result = PFuzzer(
        ExprSubject(),
        FuzzerConfig(max_executions=400, resume=True, **kwargs),
    ).run()
    events = read_trace(path)
    starts = [e for e in events if e["type"] == "campaign_start"]
    assert len(starts) == 2  # one per leg
    assert any(e["type"] == "resumed" for e in events)
    rebuilt = LineageLog.from_trace_events(events)
    emitted = [e for e in events if e["type"] == "input_emitted"]
    assert sorted({e["text"] for e in emitted}) == sorted(result.valid_inputs)
    for event in emitted:
        assert rebuilt.replay(event["lineage"]) == event["text"]


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_every_valid_input_chain_replays(seed):
    """Property: each emitted input's derivation chain folds back to its
    exact bytes, for arbitrary seeds."""
    subject = ExprSubject()
    result = PFuzzer(
        subject, FuzzerConfig(seed=seed, max_executions=120)
    ).run()
    _assert_chains_replay(result)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=3, deadline=None)
def test_every_valid_input_chain_replays_ini(seed):
    subject = load_subject("ini")
    result = PFuzzer(
        subject, FuzzerConfig(seed=seed, max_executions=80)
    ).run()
    _assert_chains_replay(result)


def test_corpus_sync_events_on_the_trace_bus(tmp_path, expr_subject):
    """A syncing shard emits schema-valid ``corpus_sync`` events carrying
    the executions counter and push/import counts, and every imported
    input appears as a ``sync``-op candidate_scheduled event."""
    from repro.eval.corpus_store import CorpusRecord, CorpusStore

    store = CorpusStore(tmp_path / "corpus.jsonl")
    store.add_records(
        [CorpusRecord("expr", "pfuzzer", 99, "1+2", path_signature=1)]
    )
    path = tmp_path / "trace.ndjson"
    result = _run(
        expr_subject,
        trace_path=str(path),
        sync_store=str(store.path),
        sync_every=100,
    )
    events = read_trace(path, strict=True)  # schema-valid, corpus_sync included
    syncs = [e for e in events if e["type"] == "corpus_sync"]
    assert syncs, "cadence syncs must appear on the trace bus"
    for event in syncs:
        assert set(event) >= {"executions", "pushed", "imported"}
        assert 0 <= event["executions"] <= result.executions
    assert sum(e["imported"] for e in syncs) >= 1
    sync_scheduled = [
        e
        for e in events
        if e["type"] == "candidate_scheduled" and e.get("op") == "sync"
    ]
    assert {e["text"] for e in sync_scheduled} >= {"1+2"}
    # The imported chain replays from the trace file alone.
    log = LineageLog.from_trace_events(events)
    for event in sync_scheduled:
        assert log.replay(event["lineage"]) == event["text"]
