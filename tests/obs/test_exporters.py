"""Exporters: Chrome trace JSON, lineage DOT/JSON dumps."""

import json

from repro.obs.export import chrome_trace, lineage_dot, lineage_json
from repro.obs.lineage import LineageLog


def _log():
    log = LineageLog()
    root = log.new_node(None, "seed", "", replacement="")
    ext = log.new_node(root, "append", "a", replacement="a")
    sub = log.new_node(
        ext, "substitute", "ab", replacement="b", at_index=1, cmp_kind="==",
    )
    other = log.new_node(root, "append", "z", replacement="z")
    return log, sub, other


def test_chrome_trace_spans_and_markers():
    events = [
        {"v": 1, "type": "span", "ts": 0.1, "phase": "execute",
         "start": 0.0, "dur": 0.1},
        {"v": 1, "type": "span", "ts": 0.3, "phase": "rescore",
         "start": 0.2, "dur": 0.1},
        {"v": 1, "type": "input_emitted", "ts": 0.4, "lineage": 2,
         "executions": 7, "text": "ab", "signature": 1},
        {"v": 1, "type": "campaign_start", "ts": 0.0, "subject": "x",
         "seed": 0, "budget": 1, "executions": 0},  # no chrome mapping
    ]
    document = chrome_trace(events)
    assert document["displayTimeUnit"] == "ms"
    kinds = [(e["ph"], e["name"]) for e in document["traceEvents"]]
    # one metadata row per phase thread, slices in order, one instant
    assert ("M", "thread_name") in kinds
    assert ("X", "execute") in kinds and ("X", "rescore") in kinds
    assert ("i", "input_emitted") in kinds
    slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert slices[0]["ts"] == 0.0 and slices[0]["dur"] == 100000.0
    # distinct phases land on distinct threads
    assert slices[0]["tid"] != slices[1]["tid"]
    instant = next(e for e in document["traceEvents"] if e["ph"] == "i")
    assert instant["args"]["text"] == "ab"
    json.dumps(document)  # must be serialisable as-is


def test_lineage_dot_whole_tree_and_subtree():
    log, sub, other = _log()
    whole = lineage_dot(log)
    assert whole.startswith("digraph lineage {")
    assert f"n{other}" in whole
    scoped = lineage_dot(log, [sub])
    # the subtree keeps sub's ancestors, drops the sibling branch
    assert f"n{sub}" in scoped and f"n{other}" not in scoped
    assert "n0 -> n1;" in scoped and "n1 -> n2;" in scoped


def test_lineage_json_modes():
    log, sub, _ = _log()
    everything = json.loads(lineage_json(log))
    assert [node["node_id"] for node in everything["nodes"]] == [0, 1, 2, 3]
    chains = json.loads(lineage_json(log, [sub]))
    (chain,) = chains["chains"]
    assert [node["node_id"] for node in chain] == [0, 1, sub]
    assert chain[-1]["text"] == "ab"
