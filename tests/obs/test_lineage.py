"""Lineage log: derivation chains, replay, snapshots, trace rebuild."""

import pytest

from repro.obs.lineage import LineageError, LineageLog, LineageNode


def _while_chain(log):
    """The paper's Figure 1 walkthrough: '' -> ... -> 'while'."""
    root = log.new_node(None, "seed", "", replacement="")
    ext = log.new_node(root, "append", "A", replacement="A")
    sub = log.new_node(
        ext, "substitute", "while", replacement="while",
        at_index=0, cmp_kind="strcmp",
    )
    return root, ext, sub


def test_chain_and_replay():
    log = LineageLog()
    root, ext, sub = _while_chain(log)
    chain = log.chain(sub)
    assert [node.node_id for node in chain] == [root, ext, sub]
    assert chain[0].op == "seed"
    assert log.replay(sub) == "while"
    assert log.replay(ext) == "A"
    assert log.replay(root) == ""


def test_derive_ops():
    assert LineageNode(0, None, "seed", "ab", replacement="ab").derive("") == "ab"
    assert LineageNode(1, 0, "append", "abc", replacement="c").derive("ab") == "abc"
    node = LineageNode(2, 1, "substitute", "aX", replacement="X", at_index=1)
    assert node.derive("abc") == "aX"
    with pytest.raises(LineageError):
        LineageNode(3, 2, "mutate", "x").derive("x")


def test_ids_are_monotonic_from_zero():
    log = LineageLog()
    assert [log.new_node(None, "seed", "a", replacement="a") for _ in range(3)] == [
        0, 1, 2,
    ]
    assert log.next_id == 3
    assert len(log) == 3


def test_unknown_node_and_broken_chain():
    log = LineageLog()
    with pytest.raises(LineageError):
        log.chain(7)
    # orphaned node: parent id never recorded
    log.nodes[5] = LineageNode(5, 4, "append", "xy", replacement="y")
    with pytest.raises(LineageError):
        log.chain(5)


def test_cycle_detection():
    log = LineageLog()
    log.nodes[0] = LineageNode(0, 1, "append", "a", replacement="a")
    log.nodes[1] = LineageNode(1, 0, "append", "b", replacement="b")
    with pytest.raises(LineageError):
        log.chain(0)


def test_find_by_text():
    log = LineageLog()
    _while_chain(log)
    assert log.find_by_text("while") == [2]
    assert log.find_by_text("nope") == []


def test_payload_round_trip():
    log = LineageLog()
    _, _, sub = _while_chain(log)
    rebuilt = LineageLog.from_payload(log.to_payload())
    assert rebuilt.nodes == log.nodes
    assert rebuilt.next_id == log.next_id
    assert rebuilt.replay(sub) == "while"
    # old snapshots without lineage restore as an empty log
    assert len(LineageLog.from_payload(None)) == 0
    assert LineageLog.from_payload(None).next_id == 0


def test_from_trace_events():
    v = 1
    events = [
        {"v": v, "type": "campaign_start", "subject": "x", "seed": 0,
         "budget": 1, "executions": 0},
        {"v": v, "type": "candidate_scheduled", "lineage": 0, "parent": None,
         "op": "seed", "text": "A"},
        {"v": v, "type": "candidate_scheduled", "lineage": 1, "parent": 0,
         "op": "append", "text": "Ab", "replacement": "b"},
        {"v": v, "type": "candidate_scheduled", "lineage": 2, "parent": 1,
         "op": "substitute", "text": "AZ", "replacement": "Z"},
        {"v": v, "type": "substitution_applied", "lineage": 2, "parent": 1,
         "at_index": 1, "replacement": "Z", "cmp_kind": "==",
         "cmp_expected": "Z"},
    ]
    log = LineageLog.from_trace_events(events)
    assert len(log) == 3
    assert log.next_id == 3
    # seed replacement falls back to the node text
    assert log.get(0).replacement == "A"
    assert log.get(2).at_index == 1
    assert log.get(2).cmp_kind == "=="
    assert log.replay(2) == "AZ"


# ---------------------------------------------------------------------- #
# Sync boundaries: imports from other shards are "sync"-rooted chains
# ---------------------------------------------------------------------- #


def test_sync_nodes_are_roots_and_replay_to_exact_bytes():
    log = LineageLog()
    node = log.new_node(
        None, "sync", "[s]\nk=v\n", replacement="[s]\nk=v\n",
        cmp_kind="pfuzzer",
    )
    chain = log.chain(node)
    assert [n.op for n in chain] == ["sync"]
    assert log.replay(node) == "[s]\nk=v\n"
    # derive ignores the parent text, like "seed": the imported input is
    # a fresh root, whatever preceded it.
    assert log.get(node).derive("unrelated") == "[s]\nk=v\n"


def test_sync_nodes_survive_payload_and_trace_round_trips():
    log = LineageLog()
    node = log.new_node(None, "sync", "1+2", replacement="1+2",
                        cmp_kind="pfuzzer")
    rebuilt = LineageLog.from_payload(log.to_payload())
    assert rebuilt.replay(node) == "1+2"
    assert rebuilt.get(node).op == "sync"
    events = [
        {"v": 1, "type": "candidate_scheduled", "lineage": 0, "parent": None,
         "op": "sync", "text": "1+2"},
    ]
    from_trace = LineageLog.from_trace_events(events)
    # replacement falls back to the node text for root ops
    assert from_trace.replay(0) == "1+2"


def _sync_import_log(seed, texts):
    """Run one pull against a store holding ``texts``; return the fuzzer."""
    import tempfile
    from pathlib import Path

    from repro.core.config import FuzzerConfig
    from repro.core.fuzzer import PFuzzer
    from repro.eval.corpus_store import CorpusRecord, CorpusStore
    from repro.subjects.expr import ExprSubject

    with tempfile.TemporaryDirectory() as root:
        store = CorpusStore(Path(root) / "corpus.jsonl")
        store.add_records(
            [
                CorpusRecord("expr", "pfuzzer", 99, text,
                             path_signature=index + 1)
                for index, text in enumerate(texts)
            ]
        )
        fuzzer = PFuzzer(
            ExprSubject(),
            FuzzerConfig(
                seed=seed, max_executions=10, sync_store=str(store.path)
            ),
        )
        fuzzer._sync_point(pull=True)
        return fuzzer


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        texts=st.lists(
            st.text(min_size=1, max_size=20), min_size=1, max_size=8,
            unique=True,
        ),
    )
    def test_imported_inputs_record_sync_op_and_replay_exactly(seed, texts):
        """Property (over seeds and imported corpora): every input pulled
        at a sync boundary gets a root ``sync`` lineage node whose chain
        replays to the imported bytes, byte-for-byte."""
        fuzzer = _sync_import_log(seed, texts)
        log = fuzzer._lineage
        sync_nodes = [
            node for node in log.nodes.values() if node.op == "sync"
        ]
        assert {node.text for node in sync_nodes} == set(texts)
        for node in sync_nodes:
            chain = log.chain(node.node_id)
            assert len(chain) == 1  # imports are roots
            assert log.replay(node.node_id) == node.text
        # Canonicalised import order: lineage ids follow sorted text order,
        # independent of store interleaving.
        ordered = sorted(sync_nodes, key=lambda node: node.node_id)
        assert [node.text for node in ordered] == sorted(texts)
except ImportError:  # pragma: no cover - hypothesis is in the image
    pass
