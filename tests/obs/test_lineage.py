"""Lineage log: derivation chains, replay, snapshots, trace rebuild."""

import pytest

from repro.obs.lineage import LineageError, LineageLog, LineageNode


def _while_chain(log):
    """The paper's Figure 1 walkthrough: '' -> ... -> 'while'."""
    root = log.new_node(None, "seed", "", replacement="")
    ext = log.new_node(root, "append", "A", replacement="A")
    sub = log.new_node(
        ext, "substitute", "while", replacement="while",
        at_index=0, cmp_kind="strcmp",
    )
    return root, ext, sub


def test_chain_and_replay():
    log = LineageLog()
    root, ext, sub = _while_chain(log)
    chain = log.chain(sub)
    assert [node.node_id for node in chain] == [root, ext, sub]
    assert chain[0].op == "seed"
    assert log.replay(sub) == "while"
    assert log.replay(ext) == "A"
    assert log.replay(root) == ""


def test_derive_ops():
    assert LineageNode(0, None, "seed", "ab", replacement="ab").derive("") == "ab"
    assert LineageNode(1, 0, "append", "abc", replacement="c").derive("ab") == "abc"
    node = LineageNode(2, 1, "substitute", "aX", replacement="X", at_index=1)
    assert node.derive("abc") == "aX"
    with pytest.raises(LineageError):
        LineageNode(3, 2, "mutate", "x").derive("x")


def test_ids_are_monotonic_from_zero():
    log = LineageLog()
    assert [log.new_node(None, "seed", "a", replacement="a") for _ in range(3)] == [
        0, 1, 2,
    ]
    assert log.next_id == 3
    assert len(log) == 3


def test_unknown_node_and_broken_chain():
    log = LineageLog()
    with pytest.raises(LineageError):
        log.chain(7)
    # orphaned node: parent id never recorded
    log.nodes[5] = LineageNode(5, 4, "append", "xy", replacement="y")
    with pytest.raises(LineageError):
        log.chain(5)


def test_cycle_detection():
    log = LineageLog()
    log.nodes[0] = LineageNode(0, 1, "append", "a", replacement="a")
    log.nodes[1] = LineageNode(1, 0, "append", "b", replacement="b")
    with pytest.raises(LineageError):
        log.chain(0)


def test_find_by_text():
    log = LineageLog()
    _while_chain(log)
    assert log.find_by_text("while") == [2]
    assert log.find_by_text("nope") == []


def test_payload_round_trip():
    log = LineageLog()
    _, _, sub = _while_chain(log)
    rebuilt = LineageLog.from_payload(log.to_payload())
    assert rebuilt.nodes == log.nodes
    assert rebuilt.next_id == log.next_id
    assert rebuilt.replay(sub) == "while"
    # old snapshots without lineage restore as an empty log
    assert len(LineageLog.from_payload(None)) == 0
    assert LineageLog.from_payload(None).next_id == 0


def test_from_trace_events():
    v = 1
    events = [
        {"v": v, "type": "campaign_start", "subject": "x", "seed": 0,
         "budget": 1, "executions": 0},
        {"v": v, "type": "candidate_scheduled", "lineage": 0, "parent": None,
         "op": "seed", "text": "A"},
        {"v": v, "type": "candidate_scheduled", "lineage": 1, "parent": 0,
         "op": "append", "text": "Ab", "replacement": "b"},
        {"v": v, "type": "candidate_scheduled", "lineage": 2, "parent": 1,
         "op": "substitute", "text": "AZ", "replacement": "Z"},
        {"v": v, "type": "substitution_applied", "lineage": 2, "parent": 1,
         "at_index": 1, "replacement": "Z", "cmp_kind": "==",
         "cmp_expected": "Z"},
    ]
    log = LineageLog.from_trace_events(events)
    assert len(log) == 3
    assert log.next_id == 3
    # seed replacement falls back to the node text
    assert log.get(0).replacement == "A"
    assert log.get(2).at_index == 1
    assert log.get(2).cmp_kind == "=="
    assert log.replay(2) == "AZ"
