"""Trace bus: schema validation, recorders, NDJSON round-trips."""

import json

import pytest

from repro.obs.trace import (
    NULL_RECORDER,
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    InMemoryTraceRecorder,
    JsonlTraceRecorder,
    PhaseTimer,
    TraceRecorder,
    read_trace,
    validate_event,
)

#: One representative payload per event type; keeps the schema tests in
#: lockstep with TRACE_SCHEMA (a new type without an example fails below).
EXAMPLES = {
    "campaign_start": dict(subject="json", seed=0, budget=100, executions=0),
    "candidate_scheduled": dict(lineage=1, parent=0, op="append", text="ab"),
    "substitution_applied": dict(
        lineage=2, parent=1, at_index=1, replacement="x",
        cmp_kind="==", cmp_expected="x",
    ),
    "candidate_rejected": dict(reason="duplicate", text="ab"),
    "candidate_executed": dict(lineage=1, executions=5, status="rejected"),
    "input_emitted": dict(lineage=1, executions=5, text="ab", signature=3),
    "span": dict(phase="execute", start=0.5, dur=0.001),
    "corpus_sync": dict(executions=200, pushed=3, imported=2),
    "queue_cull": dict(executions=300, dead=7, dominated=2, kept=41),
    "grammar_mined": dict(
        executions=400, phase=1, corpus=12, rules=5, keywords=2,
    ),
    "gen_phase": dict(executions=420, phase=1, injected=16, valid=9),
    "gain_update": dict(
        job_id="job-0000", executions=600, posterior=0.012,
        weight=1.4, parked=False,
    ),
    "crash_found": dict(
        lineage=1, executions=5, text="((",
        signature=["RecursionError", "parser.py", 12],
    ),
    "checkpoint_written": dict(executions=50),
    "resumed": dict(executions=50, resumes=1),
    "preempted": dict(executions=70),
    "campaign_end": dict(executions=100, valid_inputs=4, wall_time=1.25),
}


def test_examples_cover_schema():
    assert set(EXAMPLES) == set(TRACE_SCHEMA)


@pytest.mark.parametrize("kind", sorted(TRACE_SCHEMA))
def test_schema_round_trip(kind):
    """Every event type emits, serialises, and validates back."""
    recorder = InMemoryTraceRecorder()
    recorder.emit(kind, **EXAMPLES[kind])
    (event,) = recorder.events
    decoded = json.loads(json.dumps(event))
    assert validate_event(decoded) == decoded
    assert decoded["v"] == TRACE_SCHEMA_VERSION
    assert decoded["type"] == kind
    assert decoded["ts"] >= 0
    assert recorder.counts == {kind: 1}


@pytest.mark.parametrize(
    "event",
    [
        "not an object",
        {"type": "span"},  # no version
        {"v": 99, "type": "span", "phase": "x", "start": 0, "dur": 0},
        {"v": TRACE_SCHEMA_VERSION, "type": "no_such_event"},
        {"v": TRACE_SCHEMA_VERSION, "type": "span", "phase": "x"},  # missing
        {
            "v": TRACE_SCHEMA_VERSION,
            "type": "candidate_scheduled",
            "lineage": 1,
            "parent": 0,
            "op": "mutate",  # not a lineage op
            "text": "a",
        },
    ],
)
def test_validate_event_rejects(event):
    with pytest.raises(ValueError):
        validate_event(event)


def test_null_recorder_is_disabled_noop():
    assert NULL_RECORDER.enabled is False
    NULL_RECORDER.emit("span", phase="x", start=0, dur=0)
    NULL_RECORDER.close()
    assert isinstance(NULL_RECORDER, TraceRecorder)


def test_jsonl_recorder_writes_readable_ndjson(tmp_path):
    path = tmp_path / "trace.ndjson"
    recorder = JsonlTraceRecorder(path, flush_every=2)
    recorder.emit("campaign_start", **EXAMPLES["campaign_start"])
    recorder.emit("span", **EXAMPLES["span"])
    recorder.emit("campaign_end", **EXAMPLES["campaign_end"])
    recorder.close()
    events = read_trace(path)
    assert [e["type"] for e in events] == [
        "campaign_start", "span", "campaign_end",
    ]
    assert recorder.counts == {
        "campaign_start": 1, "span": 1, "campaign_end": 1,
    }


def test_jsonl_recorder_appends_across_legs(tmp_path):
    """A resumed campaign reuses the file; events accumulate."""
    path = tmp_path / "trace.ndjson"
    first = JsonlTraceRecorder(path)
    first.emit("campaign_start", **EXAMPLES["campaign_start"])
    first.close()
    second = JsonlTraceRecorder(path)
    second.emit("resumed", **EXAMPLES["resumed"])
    second.close()
    assert [e["type"] for e in read_trace(path)] == [
        "campaign_start", "resumed",
    ]


def test_read_trace_skips_torn_tail(tmp_path):
    path = tmp_path / "trace.ndjson"
    recorder = JsonlTraceRecorder(path)
    recorder.emit("campaign_start", **EXAMPLES["campaign_start"])
    recorder.emit("span", **EXAMPLES["span"])
    recorder.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "type": "camp')  # SIGKILL mid-append
    events = read_trace(path)
    assert [e["type"] for e in events] == ["campaign_start", "span"]
    with pytest.raises(ValueError):
        read_trace(path, strict=True)


def test_read_trace_interior_corruption_always_raises(tmp_path):
    path = tmp_path / "trace.ndjson"
    good = json.dumps(
        {"v": TRACE_SCHEMA_VERSION, "type": "span", "ts": 0.0,
         **EXAMPLES["span"]},
    )
    path.write_text("garbage\n" + good + "\n", encoding="utf-8")
    with pytest.raises(ValueError):
        read_trace(path)


def test_phase_timer_totals_without_recorder():
    timer = PhaseTimer()
    started = timer.start()
    duration = timer.stop("execute", started)
    assert duration >= 0
    timer.stop("execute", timer.start())
    assert set(timer.totals) == {"execute"}
    assert timer.totals["execute"] >= duration


def test_phase_timer_emits_spans_when_enabled():
    recorder = InMemoryTraceRecorder()
    timer = PhaseTimer(recorder, totals={"execute": 1.0})
    timer.stop("rescore", timer.start())
    (event,) = recorder.events
    assert event["type"] == "span"
    assert event["phase"] == "rescore"
    assert event["dur"] >= 0
    # pre-existing totals (a resumed leg) are preserved
    assert timer.totals["execute"] == 1.0
