"""Queue hygiene never changes campaign results (DESIGN.md §10).

The cull safety contract: ``CandidateQueue.cull`` removes only entries
that can never become a *returned* pop — dead entries (text already
executed; the pop loop discards them) and dominated duplicates
(identical-metadata entries beyond the earliest-pushed one).  A campaign
run with any ``cull_every`` cadence must therefore finish with exactly
the result fingerprint of a run without culling — inputs, emit order,
coverage, counters and the (live) queue depth.

Evidence layers, mirroring ``test_resume_equivalence``:

* quick: culled vs unculled fingerprints on two subjects x both
  coverage backends — one subject (tinyc) where culling provably
  removes entries, one (expr) where the pass is a no-op;
* liveness: the mechanism is not vacuous — on branch-heavy subjects the
  ``queue_cull`` trace events record real removals;
* durability: cull composes with checkpoint/resume — resuming an
  interrupted culled campaign (including SIGKILLed grid workers)
  converges to the unculled, uninterrupted reference;
* slow: the full six-subject x two-backend acceptance grid.
"""

import shutil

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.eval.campaign import run_campaign
from repro.eval.checkpoint import list_generations, result_fingerprint
from repro.eval.parallel import RunSpec, RunStatus, run_grid
from repro.obs.trace import JsonlTraceRecorder, read_trace
from repro.runtime.arcs import arc_table_for
from repro.subjects.registry import load_subject

#: Quick split: expr (cull is a no-op at this budget — the pass must
#: still be invisible) and tinyc (dead entries accumulate — the pass
#: must remove them without changing the result).
QUICK_SUBJECTS = ("expr", "tinyc")
ALL_SUBJECTS = ("expr", "ini", "csv", "json", "tinyc", "mjs")
BACKENDS = ("settrace", "ast")
BUDGETS = {"expr": 600, "ini": 600, "csv": 600, "json": 600,
           "tinyc": 400, "mjs": 400}


def _run(subject_name, backend, *, cull_every=None, tracer=None, **kwargs):
    config = FuzzerConfig(
        seed=7,
        max_executions=BUDGETS[subject_name],
        coverage_backend=backend,
        cull_every=cull_every,
        **kwargs,
    )
    return PFuzzer(load_subject(subject_name), config, tracer=tracer).run()


def _fingerprint(subject_name, result):
    return result_fingerprint(
        result, arc_table_for(load_subject(subject_name))
    )


# --------------------------------------------------------------------- #
# Culled == unculled, fingerprint-exact
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("subject_name", QUICK_SUBJECTS)
def test_cull_preserves_result_fingerprint(subject_name, backend):
    reference = _run(subject_name, backend)
    for cadence in (50, 173):  # aligned and deliberately odd cadences
        culled = _run(subject_name, backend, cull_every=cadence)
        assert _fingerprint(subject_name, culled) == _fingerprint(
            subject_name, reference
        )


@pytest.mark.slow
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("subject_name", ALL_SUBJECTS)
def test_cull_equivalence_all_subjects(subject_name, backend):
    """The full acceptance grid of the cull-safety criterion."""
    reference = _run(subject_name, backend)
    culled = _run(subject_name, backend, cull_every=50)
    assert _fingerprint(subject_name, culled) == _fingerprint(
        subject_name, reference
    )


def test_cull_actually_removes_entries_and_traces_them(tmp_path):
    """Liveness: on a branch-heavy subject the cadence fires, removes
    dead entries, and every pass lands in the trace as a ``queue_cull``
    event — while the result fingerprint still matches the unculled
    reference and the reported queue depth is the shared live frontier."""
    reference = _run("tinyc", "settrace")
    tracer = JsonlTraceRecorder(tmp_path / "trace.ndjson")
    try:
        culled = _run(
            "tinyc", "settrace", cull_every=100, tracer=tracer
        )
    finally:
        tracer.close()
    events = [
        event
        for event in read_trace(tmp_path / "trace.ndjson")
        if event["type"] == "queue_cull"
    ]
    assert len(events) >= 3  # cadence fired throughout the campaign
    assert sum(event["dead"] + event["dominated"] for event in events) > 0
    for event in events:
        assert event["executions"] > 0
        assert event["kept"] >= 0
    assert _fingerprint("tinyc", culled) == _fingerprint("tinyc", reference)
    assert culled.queue_depth == reference.queue_depth


def test_cull_every_validation():
    with pytest.raises(ValueError, match="cull_every"):
        PFuzzer(
            load_subject("expr"),
            FuzzerConfig(max_executions=10, cull_every=0),
        )


# --------------------------------------------------------------------- #
# Cull x durability: checkpoint, resume, SIGKILL
# --------------------------------------------------------------------- #


def test_culled_campaign_resumes_to_unculled_reference(tmp_path):
    """Kill-and-resume a culled campaign at every intermediate snapshot
    generation: each resume must converge to the *unculled*,
    uninterrupted reference.  Cull timing is not persisted (it is
    result-invariant), so the resumed cadence differs — and must not
    matter."""
    reference = _run("expr", "settrace")
    checkpoint_dir = tmp_path / "culled"
    culled = _run(
        "expr",
        "settrace",
        cull_every=70,
        checkpoint_dir=str(checkpoint_dir),
        checkpoint_every=100,
        checkpoint_keep=1_000,
    )
    assert _fingerprint("expr", culled) == _fingerprint("expr", reference)
    generations = list_generations(str(checkpoint_dir))
    assert len(generations) >= 3
    for generation in generations[:-1]:
        resume_dir = tmp_path / f"resume-{generation}"
        resume_dir.mkdir()
        name = f"ckpt-{generation:08d}.json"
        shutil.copy(checkpoint_dir / name, resume_dir / name)
        resumed = _run(
            "expr",
            "settrace",
            cull_every=70,
            checkpoint_dir=str(resume_dir),
            checkpoint_every=100,
            resume=True,
        )
        assert resumed.resumes == 1
        assert _fingerprint("expr", resumed) == _fingerprint(
            "expr", reference
        )


def test_sigkilled_culled_grid_resumes_to_uncull_sequential_result(tmp_path):
    """The full stack at once: grid workers running culled campaigns are
    SIGKILLed mid-flight, retried, and resumed — and still reproduce the
    plain sequential (uncull'd, unkilled) reference outputs."""
    budget = 500
    specs = [
        RunSpec("pfuzzer", "expr", budget, seed=3),
        RunSpec("pfuzzer", "ini", budget, seed=3),
    ]
    records = run_grid(
        specs,
        jobs=2,
        retries=3,
        checkpoint_dir=tmp_path / "grid",
        checkpoint_every=60,
        cull_every=40,
        _test_fail_on={
            ("pfuzzer", "expr", 3): "kill-at-150",
            ("pfuzzer", "ini", 3): "kill-at-150",
        },
    )
    for record in records:
        assert record.status is RunStatus.OK
        assert record.output.resumes == 2
        reference = run_campaign(
            record.spec.tool, record.spec.subject, budget, seed=record.spec.seed
        )
        assert record.output.valid_inputs == reference.valid_inputs
        assert record.output.valid_signatures == reference.valid_signatures
        assert record.output.executions == reference.executions
        assert record.output.queue_depth == reference.queue_depth
