"""Text plots."""

from repro.eval.plots import sparkline, step_curve


def test_sparkline_shape():
    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4
    assert line[0] < line[-1]


def test_sparkline_constant_and_empty():
    assert sparkline([]) == ""
    assert len(set(sparkline([5, 5, 5]))) == 1


def test_sparkline_monotone_mapping():
    line = sparkline([0, 10, 5])
    assert line[1] == max(line)


def test_step_curve_rows():
    text = step_curve([(10, 1), (50, 2), (100, 3)])
    lines = text.splitlines()
    assert len(lines) == 4  # header + 3 points
    assert "100" in lines[-1]
    # Bars grow with x.
    assert lines[-1].count("#") > lines[1].count("#")


def test_step_curve_empty():
    assert step_curve([]) == "(no data)"
