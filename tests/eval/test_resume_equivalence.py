"""Replay determinism: killed-and-resumed campaigns equal uninterrupted ones.

The correctness contract of the durability subsystem (ISSUE: durable
campaigns): a campaign killed at an arbitrary execution and resumed from
its last checkpoint must produce a byte-identical ``FuzzingResult`` —
inputs, emit log, coverage, counters — to a run that was never
interrupted.  Only wall time, per-phase timings and the resume counter may
differ.

Three layers of evidence:

* in-process: restore from an *intermediate* snapshot generation (exactly
  what a killed process leaves behind) and finish the campaign — the
  :func:`result_fingerprint` must match the uninterrupted reference, on
  both coverage backends;
* crash safety: corrupt the newest generation first — resume falls back to
  the previous one and still converges to the same result;
* out-of-process: SIGKILL grid workers mid-campaign at randomized
  execution counts (the ``kill-at`` fault mode fires inside ``_execute``,
  an uncatchable death) and compare the resumed grid's outputs against
  sequential references.
"""

import shutil

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.eval.campaign import run_campaign
from repro.eval.checkpoint import list_generations, result_fingerprint
from repro.eval.parallel import RunSpec, RunStatus, run_grid
from repro.runtime.arcs import arc_table_for
from repro.subjects.registry import load_subject

#: Subjects exercised by the quick split; the slow grid covers all six.
QUICK_SUBJECTS = ("expr", "ini")
ALL_SUBJECTS = ("expr", "ini", "csv", "json", "tinyc", "mjs")
BACKENDS = ("settrace", "ast")


def _reference_and_generations(subject_name, backend, tmp_path, budget=600):
    """Uninterrupted run, keeping every snapshot generation it wrote."""
    config = FuzzerConfig(
        seed=7,
        max_executions=budget,
        coverage_backend=backend,
        checkpoint_dir=str(tmp_path / "reference"),
        checkpoint_every=100,
        checkpoint_keep=1_000,
    )
    subject = load_subject(subject_name)
    result = PFuzzer(subject, config).run()
    generations = list_generations(config.checkpoint_dir)
    assert len(generations) >= 3, "budget too small to exercise checkpoints"
    return result, config, generations


def _resume_from_generation(subject_name, config, generation, tmp_path):
    """Start a campaign from one snapshot generation, as after a kill."""
    resume_dir = tmp_path / f"resume-{generation}"
    resume_dir.mkdir()
    name = f"ckpt-{generation:08d}.json"
    shutil.copy(f"{config.checkpoint_dir}/{name}", resume_dir / name)
    resumed_config = FuzzerConfig(
        seed=config.seed,
        max_executions=config.max_executions,
        coverage_backend=config.coverage_backend,
        checkpoint_dir=str(resume_dir),
        checkpoint_every=config.checkpoint_every,
        checkpoint_keep=config.checkpoint_keep,
        resume=True,
    )
    return PFuzzer(load_subject(subject_name), resumed_config).run()


def _assert_equivalent(subject_name, reference, resumed):
    table = arc_table_for(load_subject(subject_name))
    assert result_fingerprint(resumed, table) == result_fingerprint(
        reference, table
    )


# --------------------------------------------------------------------- #
# In-process: resume from every intermediate generation
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("subject_name", QUICK_SUBJECTS)
def test_resume_from_any_generation_matches_uninterrupted(
    subject_name, backend, tmp_path
):
    reference, config, generations = _reference_and_generations(
        subject_name, backend, tmp_path
    )
    # Every generation is a point the campaign could have been killed at.
    for generation in generations[:-1]:
        resumed = _resume_from_generation(
            subject_name, config, generation, tmp_path
        )
        assert resumed.resumes == 1
        _assert_equivalent(subject_name, reference, resumed)


@pytest.mark.slow
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("subject_name", ALL_SUBJECTS)
def test_resume_equivalence_all_subjects(subject_name, backend, tmp_path):
    """The full six-subject grid of the acceptance criterion."""
    reference, config, generations = _reference_and_generations(
        subject_name, backend, tmp_path
    )
    middle = generations[len(generations) // 2]
    resumed = _resume_from_generation(subject_name, config, middle, tmp_path)
    _assert_equivalent(subject_name, reference, resumed)


# --------------------------------------------------------------------- #
# Crash safety: corrupt newest generation falls back and still converges
# --------------------------------------------------------------------- #


def test_resume_survives_corrupt_newest_generation(tmp_path):
    reference, config, generations = _reference_and_generations(
        "expr", "settrace", tmp_path
    )
    resume_dir = tmp_path / "resume-corrupt"
    resume_dir.mkdir()
    keep_generation, torn_generation = generations[1], generations[2]
    for generation in (keep_generation, torn_generation):
        name = f"ckpt-{generation:08d}.json"
        shutil.copy(f"{config.checkpoint_dir}/{name}", resume_dir / name)
    torn = resume_dir / f"ckpt-{torn_generation:08d}.json"
    torn.write_text(torn.read_text()[: torn.stat().st_size // 2])
    resumed_config = FuzzerConfig(
        seed=config.seed,
        max_executions=config.max_executions,
        checkpoint_dir=str(resume_dir),
        checkpoint_every=config.checkpoint_every,
        resume=True,
    )
    resumed = PFuzzer(load_subject("expr"), resumed_config).run()
    assert resumed.resumes == 1
    _assert_equivalent("expr", reference, resumed)


# --------------------------------------------------------------------- #
# Out-of-process: SIGKILLed grid workers resume to the sequential result
# --------------------------------------------------------------------- #


def _assert_outputs_equal(output, reference):
    assert output is not None
    assert output.valid_inputs == reference.valid_inputs
    assert output.valid_signatures == reference.valid_signatures
    assert output.executions == reference.executions
    assert output.queue_depth == reference.queue_depth


def test_sigkilled_grid_cells_resume_to_sequential_result(tmp_path):
    budget = 500
    specs = [
        RunSpec("pfuzzer", "expr", budget, seed=3),
        RunSpec("pfuzzer", "ini", budget, seed=3),
    ]
    records = run_grid(
        specs,
        jobs=2,
        retries=3,
        checkpoint_dir=tmp_path / "grid",
        checkpoint_every=60,
        _test_fail_on={
            # Killed at 150 executions, resumed, killed again at 300,
            # resumed again, then allowed to finish: two kills per cell.
            ("pfuzzer", "expr", 3): "kill-at-150",
            ("pfuzzer", "ini", 3): "kill-at-150",
        },
    )
    for record in records:
        assert record.status is RunStatus.OK
        assert record.attempts == 3
        assert record.output.resumes == 2
        assert record.metrics.resumes == 2
        reference = run_campaign(
            record.spec.tool, record.spec.subject, budget, seed=record.spec.seed
        )
        _assert_outputs_equal(record.output, reference)


@pytest.mark.slow
def test_sigkilled_grid_randomized_kill_points(tmp_path):
    """Kill points vary per cell; every resumed cell matches its reference."""
    import random

    budget = 400
    rng = random.Random(20260806)
    specs = [
        RunSpec("pfuzzer", subject, budget, seed=5)
        for subject in ("expr", "ini", "csv")
    ]
    fail_on = {
        spec.fault_key(): f"kill-at-{rng.randrange(40, budget - 40)}"
        for spec in specs
    }
    records = run_grid(
        specs,
        jobs=3,
        retries=3,
        checkpoint_dir=tmp_path / "grid",
        checkpoint_every=50,
        _test_fail_on=fail_on,
    )
    for record in records:
        assert record.status is RunStatus.OK
        reference = run_campaign(
            record.spec.tool, record.spec.subject, budget, seed=record.spec.seed
        )
        _assert_outputs_equal(record.output, reference)


def test_timeouts_retry_only_when_checkpointing_makes_them_resumable(tmp_path):
    """Without durability a timeout is terminal (attempts == 1); with
    ``checkpoint_dir`` the cell is retried ``resume_retries`` extra times,
    each attempt resuming instead of re-burning the same budget."""
    spec = RunSpec("pfuzzer", "expr", 300, seed=2)
    fail_on = {spec.fault_key(): "hang"}

    (plain,) = run_grid(
        [spec], jobs=1, timeout=0.3, retries=0, _test_fail_on=fail_on
    )
    assert plain.status is RunStatus.TIMEOUT
    assert plain.attempts == 1

    (durable,) = run_grid(
        [spec],
        jobs=1,
        timeout=0.3,
        retries=0,
        resume_retries=2,
        checkpoint_dir=tmp_path / "grid",
        _test_fail_on=fail_on,
    )
    assert durable.status is RunStatus.TIMEOUT
    assert durable.attempts == 3


# --------------------------------------------------------------------- #
# Graceful shutdown: SIGTERM mid-grid leaves only valid checkpoints
# --------------------------------------------------------------------- #


_GRID_SCRIPT = """
import sys
from repro.eval.parallel import RunSpec, run_grid

run_grid(
    [
        RunSpec("pfuzzer", "expr", 1_000_000, seed=3),
        RunSpec("pfuzzer", "ini", 1_000_000, seed=3),
    ],
    jobs=2,
    checkpoint_dir=sys.argv[1],
    checkpoint_every=50,
)
"""


def test_sigterm_mid_grid_leaves_valid_checkpoints_and_resumes_equal(tmp_path):
    """SIGTERM a running grid (workers included): every cell's newest
    snapshot must load, and rerunning the grid with the same checkpoint
    directory must converge to the uninterrupted sequential result."""
    import os
    import signal
    import subprocess
    import sys
    import time
    from pathlib import Path

    import repro
    from repro.eval.checkpoint import load_snapshot

    checkpoint_root = tmp_path / "grid"
    cells = {
        "expr": checkpoint_root / "pfuzzer-expr-s3",
        "ini": checkpoint_root / "pfuzzer-ini-s3",
    }
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
    proc = subprocess.Popen(
        [sys.executable, "-c", _GRID_SCRIPT, str(checkpoint_root)],
        env=env,
        start_new_session=True,
    )
    try:
        deadline = time.monotonic() + 60
        while True:
            if all(len(list_generations(cell)) >= 2 for cell in cells.values()):
                break
            assert time.monotonic() < deadline, "grid produced no checkpoints"
            assert proc.poll() is None, "grid exited before the kill"
            time.sleep(0.02)
    finally:
        os.killpg(proc.pid, signal.SIGTERM)
        proc.wait()

    # Atomic snapshot writes: the newest generation in every cell is
    # complete and verifiable, SIGTERM or not.
    for cell in cells.values():
        generations = list_generations(cell)
        assert generations
        newest = generations[-1]
        generation, payload = load_snapshot(cell / f"ckpt-{newest:08d}.json")
        assert generation == newest
        assert payload["executions"] > 0

    # Rerun on the same checkpoint root with a finishable budget: each
    # cell resumes from its snapshot and matches the sequential reference.
    budget = 2_000
    specs = [
        RunSpec("pfuzzer", "expr", budget, seed=3),
        RunSpec("pfuzzer", "ini", budget, seed=3),
    ]
    records = run_grid(
        specs, jobs=2, checkpoint_dir=checkpoint_root, checkpoint_every=50
    )
    for record in records:
        assert record.status is RunStatus.OK
        assert record.output.resumes == 1
        reference = run_campaign(
            record.spec.tool, record.spec.subject, budget, seed=record.spec.seed
        )
        _assert_outputs_equal(record.output, reference)


# --------------------------------------------------------------------- #
# Cross-shard determinism harness (DESIGN.md §8)
# --------------------------------------------------------------------- #
#
# A sharded campaign group under a fixed sync schedule must be a pure
# function of (subject, seeds, schedule):
#
#   1. rerunning the same ShardPlan on a fresh root reproduces every
#      shard's result fingerprint (and therefore the group fingerprint);
#   2. SIGKILLing any shard mid-slice and resuming it from its checkpoint
#      leaves the group fingerprint unchanged — sync points fall on the
#      same execution counts, so every shard still imports the same
#      inputs in the same order.
#
# The quick split proves both on two subjects x both backends at N=2 and
# spot-checks N=4; the slow split runs all six subjects x both backends
# x N in {2, 4}.


def _shard_plan(subject_name, backend, shards=2, budget=400):
    from repro.eval.shards import ShardPlan

    return ShardPlan(
        subject=subject_name,
        budget=budget,
        shards=shards,
        base_seed=11,
        slice_executions=150,
        checkpoint_every=50,
        coverage_backend=backend,
    )


def _run_plan(plan, tmp_path, name, kill_at=None):
    from repro.eval.shards import run_sharded

    return run_sharded(plan, tmp_path / name, kill_at=kill_at)


def _assert_groups_equivalent(reference, other):
    assert [s.fingerprint for s in other.shards] == [
        s.fingerprint for s in reference.shards
    ]
    assert other.group_fingerprint == reference.group_fingerprint


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("subject_name", QUICK_SUBJECTS)
def test_sharded_group_is_deterministic_and_kill_stable(
    subject_name, backend, tmp_path
):
    plan = _shard_plan(subject_name, backend)
    reference = _run_plan(plan, tmp_path, "reference")
    assert [s.executions for s in reference.shards] == [plan.budget] * 2

    # (1) Same plan, fresh root: byte-identical group.
    rerun = _run_plan(plan, tmp_path, "rerun")
    _assert_groups_equivalent(reference, rerun)

    # (2) SIGKILL every shard once, at different mid-slice points; the
    # resumed group must still match the unkilled reference.
    killed = _run_plan(
        plan, tmp_path, "killed", kill_at={0: 180, 1: 320}
    )
    assert killed.kills == 2
    assert all(s.resumes >= 1 for s in killed.shards)
    _assert_groups_equivalent(reference, killed)


def test_four_shard_group_is_deterministic(tmp_path):
    """Acceptance spot-check: the harness holds at N=4 too."""
    plan = _shard_plan("expr", "settrace", shards=4)
    reference = _run_plan(plan, tmp_path, "reference")
    rerun = _run_plan(plan, tmp_path, "rerun")
    _assert_groups_equivalent(reference, rerun)
    killed = _run_plan(plan, tmp_path, "killed", kill_at={2: 250})
    assert killed.kills == 1
    _assert_groups_equivalent(reference, killed)


def test_shards_exchange_inputs_through_the_store(tmp_path):
    """The sync protocol is live, not vacuous: the shared store ends up
    holding inputs from more than one shard, and shards import them."""
    from repro.eval.corpus_store import CorpusStore

    plan = _shard_plan("expr", "settrace")
    result = _run_plan(plan, tmp_path, "group")
    store = CorpusStore(result.store_path)
    seeds = {record.seed for record in store.records()}
    assert len(seeds) == 2, "both shards should have pushed inputs"
    # Imported inputs surface as 'sync' ops on the trace/lineage layer;
    # here we check the cheap invariant: every shard saw the union.
    union = set(store.inputs(subject=plan.subject))
    for shard in result.shards:
        assert set(shard.valid_inputs) <= union


# --------------------------------------------------------------------- #
# Hybrid campaigns: kill/resume across mining-phase boundaries
# --------------------------------------------------------------------- #
#
# Hybrid mode adds campaign state a snapshot must carry faithfully — the
# engine's phase counter, gain evidence, mined grammar, and generation
# RNG — and phase boundaries a resumed run must re-schedule identically
# (a checkpoint can land between a plateau and the flood it triggered on
# the reference run's timeline).  Same contract, same evidence layers:
# in-process resume from every intermediate generation, and SIGKILLed
# grid workers, on json + ini across both coverage backends.

#: Hybrid knobs sized so a budget-900 campaign crosses at least one
#: learn->generate phase on json and ini under both backends.
HYBRID_KNOBS = dict(hybrid=True, mine_after=200, gen_batch=16)
HYBRID_SUBJECTS = ("json", "ini")


def _hybrid_config(backend, checkpoint_dir, budget=900, resume=False):
    return FuzzerConfig(
        seed=7,
        max_executions=budget,
        coverage_backend=backend,
        checkpoint_dir=str(checkpoint_dir),
        checkpoint_every=100,
        checkpoint_keep=1_000,
        resume=resume,
        **HYBRID_KNOBS,
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("subject_name", HYBRID_SUBJECTS)
def test_hybrid_resume_from_any_generation_matches_uninterrupted(
    subject_name, backend, tmp_path
):
    config = _hybrid_config(backend, tmp_path / "reference")
    reference = PFuzzer(load_subject(subject_name), config).run()
    assert any(
        node.op == "gen" for node in reference.lineage.nodes.values()
    ), "no mining phase fired; the harness would not cross a phase boundary"
    generations = list_generations(config.checkpoint_dir)
    assert len(generations) >= 3, "budget too small to exercise checkpoints"
    for generation in generations[:-1]:
        resume_dir = tmp_path / f"resume-{generation}"
        resume_dir.mkdir()
        name = f"ckpt-{generation:08d}.json"
        shutil.copy(f"{config.checkpoint_dir}/{name}", resume_dir / name)
        resumed = PFuzzer(
            load_subject(subject_name),
            _hybrid_config(backend, resume_dir, resume=True),
        ).run()
        assert resumed.resumes == 1
        _assert_equivalent(subject_name, reference, resumed)


def test_hybrid_snapshots_reject_mismatched_hybrid_config(tmp_path):
    """The hybrid knobs are campaign state, not environment: restoring a
    hybrid snapshot into a non-hybrid campaign (or with different phase
    knobs) is rejected like any other config mismatch, naming the keys."""
    from repro.eval.checkpoint import CheckpointError

    config = _hybrid_config("ast", tmp_path / "ckpt")
    PFuzzer(load_subject("ini"), config).run()

    plain_config = FuzzerConfig(
        seed=7,
        max_executions=900,
        coverage_backend="ast",
        checkpoint_dir=str(tmp_path / "ckpt"),
        checkpoint_every=100,
        resume=True,
    )
    with pytest.raises(CheckpointError, match="hybrid"):
        PFuzzer(load_subject("ini"), plain_config).run()

    import dataclasses

    retuned = dataclasses.replace(
        _hybrid_config("ast", tmp_path / "ckpt", resume=True), mine_after=300
    )
    with pytest.raises(CheckpointError, match="mine_after"):
        PFuzzer(load_subject("ini"), retuned).run()


def test_sigkilled_hybrid_grid_cells_resume_to_sequential_result(tmp_path):
    budget = 900
    specs = [
        RunSpec("pfuzzer", "json", budget, seed=7),
        RunSpec("pfuzzer", "ini", budget, seed=7),
    ]
    records = run_grid(
        specs,
        jobs=2,
        retries=3,
        checkpoint_dir=tmp_path / "grid",
        checkpoint_every=100,
        **HYBRID_KNOBS,
        _test_fail_on={
            # SIGKILLed at 300 executions, resumed, killed again at 600,
            # resumed again, then allowed to finish — both kill windows
            # bracket the first mining phase.
            ("pfuzzer", "json", 7): "kill-at-300",
            ("pfuzzer", "ini", 7): "kill-at-300",
        },
    )
    for record in records:
        assert record.status is RunStatus.OK
        assert record.attempts == 3
        assert record.output.resumes == 2
        reference = run_campaign(
            record.spec.tool,
            record.spec.subject,
            budget,
            seed=record.spec.seed,
            **HYBRID_KNOBS,
        )
        _assert_outputs_equal(record.output, reference)


@pytest.mark.slow
@pytest.mark.parametrize("shards", (2, 4))
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("subject_name", ALL_SUBJECTS)
def test_sharded_determinism_all_subjects(
    subject_name, backend, shards, tmp_path
):
    """The full acceptance grid: six subjects x two backends x N in
    {2, 4}, each rerun-deterministic and kill-stable."""
    plan = _shard_plan(subject_name, backend, shards=shards)
    reference = _run_plan(plan, tmp_path, "reference")
    rerun = _run_plan(plan, tmp_path, "rerun")
    _assert_groups_equivalent(reference, rerun)
    killed = _run_plan(
        plan, tmp_path, "killed", kill_at={shards - 1: 230}
    )
    assert killed.kills == 1
    _assert_groups_equivalent(reference, killed)
