"""Checkpoint envelope: atomic writes, retention, corruption fallback."""

import json
import os

import pytest

from repro.eval.checkpoint import (
    DEFAULT_KEEP,
    FORMAT_VERSION,
    MAGIC,
    ArcUnpacker,
    CheckpointError,
    list_generations,
    load_latest,
    load_snapshot,
    pack_arc_ids,
    purge,
    result_fingerprint,
    save_snapshot,
)
from repro.runtime.arcs import ArcTable


PAYLOAD = {"executions": 42, "queue": {"entries": [], "counter": 7}}


def _generation_path(directory, generation):
    return directory / f"ckpt-{generation:08d}.json"


# --------------------------------------------------------------------- #
# Envelope round-trip
# --------------------------------------------------------------------- #


def test_save_then_load_round_trips(tmp_path):
    path = save_snapshot(tmp_path, PAYLOAD)
    generation, payload = load_snapshot(path)
    assert generation == 1
    assert payload == PAYLOAD


def test_generations_increment_and_load_latest_wins(tmp_path):
    save_snapshot(tmp_path, {"n": 1}, keep=10)
    save_snapshot(tmp_path, {"n": 2}, keep=10)
    save_snapshot(tmp_path, {"n": 3}, keep=10)
    generation, payload = load_latest(tmp_path)
    assert generation == 3
    assert payload == {"n": 3}


def test_retention_deletes_old_generations(tmp_path):
    for n in range(5):
        save_snapshot(tmp_path, {"n": n}, keep=2)
    assert list_generations(tmp_path) == [4, 5]


def test_default_keep_retains_a_fallback_generation(tmp_path):
    assert DEFAULT_KEEP >= 2  # corruption fallback needs a predecessor
    for n in range(4):
        save_snapshot(tmp_path, {"n": n})
    assert len(list_generations(tmp_path)) == DEFAULT_KEEP


def test_no_temp_files_left_behind(tmp_path):
    save_snapshot(tmp_path, PAYLOAD)
    save_snapshot(tmp_path, PAYLOAD)
    names = os.listdir(tmp_path)
    assert all(name.startswith("ckpt-") for name in names)


def test_load_latest_empty_or_missing_directory(tmp_path):
    assert load_latest(tmp_path) is None
    assert load_latest(tmp_path / "never-created") is None


def test_purge_removes_all_generations(tmp_path):
    save_snapshot(tmp_path, PAYLOAD, keep=10)
    save_snapshot(tmp_path, PAYLOAD, keep=10)
    purge(tmp_path)
    assert list_generations(tmp_path) == []


# --------------------------------------------------------------------- #
# Corruption detection and fallback (crash safety)
# --------------------------------------------------------------------- #


def test_truncated_snapshot_is_rejected(tmp_path):
    path = save_snapshot(tmp_path, PAYLOAD)
    text = path.read_text()
    path.write_text(text[: len(text) // 2])
    with pytest.raises(CheckpointError):
        load_snapshot(path)


def test_tampered_payload_fails_checksum(tmp_path):
    path = save_snapshot(tmp_path, {"executions": 42})
    record = json.loads(path.read_text())
    record["payload"]["executions"] = 43
    path.write_text(json.dumps(record))
    with pytest.raises(CheckpointError, match="checksum"):
        load_snapshot(path)


def test_wrong_magic_and_version_rejected(tmp_path):
    path = save_snapshot(tmp_path, PAYLOAD)
    record = json.loads(path.read_text())
    for key, value in (("magic", "other-tool"), ("version", FORMAT_VERSION + 1)):
        broken = dict(record)
        broken[key] = value
        path.write_text(json.dumps(broken))
        with pytest.raises(CheckpointError):
            load_snapshot(path)
    assert MAGIC == "repro-checkpoint"


def test_load_latest_falls_back_to_previous_valid_generation(tmp_path):
    save_snapshot(tmp_path, {"n": 1}, keep=10)
    save_snapshot(tmp_path, {"n": 2}, keep=10)
    newest = _generation_path(tmp_path, 2)
    newest.write_text(newest.read_text()[:40])  # simulated torn write
    generation, payload = load_latest(tmp_path)
    assert generation == 1
    assert payload == {"n": 1}


def test_load_latest_none_when_every_generation_is_corrupt(tmp_path):
    save_snapshot(tmp_path, {"n": 1})
    _generation_path(tmp_path, 1).write_text("garbage")
    assert load_latest(tmp_path) is None


# --------------------------------------------------------------------- #
# Arc packing
# --------------------------------------------------------------------- #


def test_pack_then_unpack_preserves_arc_sets():
    table = ArcTable()
    first = frozenset(table.intern(("f.py", 1, n)) for n in range(5))
    second = frozenset(table.intern(("f.py", 2, n)) for n in range(3, 8))
    arcs, mapping = pack_arc_ids([first, second], table)
    # The packed form survives a JSON round trip into a *different* table
    # with a different intern order.
    arcs = json.loads(json.dumps(arcs))
    other = ArcTable()
    other.intern(("unrelated.py", 9, 9))
    unpacker = ArcUnpacker(arcs, other)
    restored_first = unpacker.ids(sorted(mapping[a] for a in first))
    restored_second = unpacker.ids(sorted(mapping[a] for a in second))
    assert other.decode(restored_first) == table.decode(first)
    assert other.decode(restored_second) == table.decode(second)


# --------------------------------------------------------------------- #
# Result fingerprint
# --------------------------------------------------------------------- #


def test_result_fingerprint_ignores_timings_and_resume_counter():
    from repro.core.fuzzer import FuzzingResult

    base = FuzzingResult(valid_inputs=["a"], executions=10)
    noisy = FuzzingResult(
        valid_inputs=["a"],
        executions=10,
        wall_time=99.0,
        phase_times={"execute": 1.0},
        resumes=3,
    )
    assert result_fingerprint(base) == result_fingerprint(noisy)
    different = FuzzingResult(valid_inputs=["b"], executions=10)
    assert result_fingerprint(base) != result_fingerprint(different)
