"""Engine equivalence: pooled/batched campaigns equal inline ones.

The correctness contract of the execution engine (ISSUE: hot-loop
execution engine): a campaign run through the persistent forked-worker
executor — any worker count, any batch size, either isolation mode —
must produce a :func:`result_fingerprint` identical to the inline
reference.  Speculative batching is safe because ``run_subject`` is a
pure function of the candidate text and all campaign bookkeeping happens
at consume time; these tests are the proof the design note points at.

Layers of evidence:

* quick split: inline vs pooled vs batched on two subjects x both
  coverage backends (the full six-subject matrix runs under ``slow``);
* fault injection: a worker SIGKILLed mid-campaign is respawned and the
  campaign still matches the uninterrupted fingerprint;
* engine-switching resume: a checkpoint written by an inline campaign is
  resumed by a pooled one (and vice versa) — the executor fields are
  excluded from the config fingerprint exactly so this works;
* out-of-process: grid cells running the pooled engine, including cells
  SIGKILLed mid-campaign and resumed, match sequential inline references.
"""

import hashlib
import shutil

import pytest

import repro.runtime.executor as executor_module
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.eval.checkpoint import list_generations, result_fingerprint
from repro.eval.parallel import RunSpec, RunStatus, run_grid
from repro.runtime.arcs import arc_table_for
from repro.subjects.registry import load_subject

QUICK_SUBJECTS = ("expr", "ini")
ALL_SUBJECTS = ("expr", "ini", "csv", "json", "tinyc", "mjs")
BACKENDS = ("settrace", "ast")


def _campaign(subject_name, backend, budget=300, **overrides):
    config = FuzzerConfig(
        seed=7, max_executions=budget, coverage_backend=backend, **overrides
    )
    return PFuzzer(load_subject(subject_name), config).run()


def _digest(subject_name, result):
    table = arc_table_for(load_subject(subject_name))
    return hashlib.sha256(
        result_fingerprint(result, table).encode("ascii")
    ).hexdigest()


def _assert_equivalent(subject_name, reference, other):
    table = arc_table_for(load_subject(subject_name))
    assert result_fingerprint(other, table) == result_fingerprint(
        reference, table
    )


# --------------------------------------------------------------------- #
# Inline vs pooled vs batched
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("subject_name", QUICK_SUBJECTS)
def test_engines_agree_quick(subject_name, backend):
    inline = _campaign(subject_name, backend)
    pooled = _campaign(
        subject_name, backend, executor="pooled", executor_isolation="none"
    )
    batched = _campaign(
        subject_name,
        backend,
        executor="pooled",
        batch_size=8,
        executor_isolation="none",
    )
    _assert_equivalent(subject_name, inline, pooled)
    _assert_equivalent(subject_name, inline, batched)


@pytest.mark.parametrize("subject_name", QUICK_SUBJECTS)
def test_fork_isolation_agrees(subject_name):
    if not hasattr(__import__("os"), "fork"):  # pragma: no cover - non-POSIX
        pytest.skip("fork isolation needs os.fork")
    inline = _campaign(subject_name, "settrace", budget=200)
    forked = _campaign(
        subject_name,
        "settrace",
        budget=200,
        executor="pooled",
        batch_size=4,
        executor_isolation="fork",
    )
    _assert_equivalent(subject_name, inline, forked)


@pytest.mark.slow
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("subject_name", ALL_SUBJECTS)
def test_engines_agree_full_matrix(subject_name, backend):
    inline = _campaign(subject_name, backend, budget=400)
    batched = _campaign(
        subject_name,
        backend,
        budget=400,
        executor="pooled",
        batch_size=8,
        executor_workers=2,
        executor_isolation="none",
    )
    _assert_equivalent(subject_name, inline, batched)


# --------------------------------------------------------------------- #
# Fault injection: worker killed mid-campaign
# --------------------------------------------------------------------- #


def test_worker_killed_mid_campaign_matches_uninterrupted():
    inline = _campaign("ini", "settrace", budget=400)
    executor_module._TEST_WORKER_KILL_AFTER = 60
    try:
        survived = _campaign(
            "ini",
            "settrace",
            budget=400,
            executor="pooled",
            batch_size=4,
            executor_isolation="none",
        )
        # The hook was armed and consumed by the campaign's worker spawn:
        # a worker really did die mid-campaign and was respawned.
        assert executor_module._TEST_WORKER_KILL_AFTER is None
    finally:
        executor_module._TEST_WORKER_KILL_AFTER = None
    _assert_equivalent("ini", inline, survived)


# --------------------------------------------------------------------- #
# Engine-switching resume
# --------------------------------------------------------------------- #


def _checkpointed_reference(subject_name, tmp_path, budget=600, **engine):
    config = FuzzerConfig(
        seed=7,
        max_executions=budget,
        checkpoint_dir=str(tmp_path / "reference"),
        checkpoint_every=100,
        checkpoint_keep=1_000,
        **engine,
    )
    result = PFuzzer(load_subject(subject_name), config).run()
    generations = list_generations(config.checkpoint_dir)
    assert len(generations) >= 3, "budget too small to exercise checkpoints"
    return result, config, generations


def _resume(subject_name, config, generation, tmp_path, **engine):
    resume_dir = tmp_path / f"resume-{generation}"
    resume_dir.mkdir()
    name = f"ckpt-{generation:08d}.json"
    shutil.copy(f"{config.checkpoint_dir}/{name}", resume_dir / name)
    resumed_config = FuzzerConfig(
        seed=config.seed,
        max_executions=config.max_executions,
        checkpoint_dir=str(resume_dir),
        checkpoint_every=config.checkpoint_every,
        checkpoint_keep=config.checkpoint_keep,
        resume=True,
        **engine,
    )
    return PFuzzer(load_subject(subject_name), resumed_config).run()


def test_inline_checkpoint_resumes_under_pooled_engine(tmp_path):
    reference, config, generations = _checkpointed_reference("expr", tmp_path)
    resumed = _resume(
        "expr",
        config,
        generations[len(generations) // 2],
        tmp_path,
        executor="pooled",
        batch_size=8,
        executor_isolation="none",
    )
    _assert_equivalent("expr", reference, resumed)
    assert resumed.resumes == 1


def test_pooled_checkpoint_resumes_under_inline_engine(tmp_path):
    reference, config, generations = _checkpointed_reference(
        "ini",
        tmp_path,
        executor="pooled",
        batch_size=4,
        executor_isolation="none",
    )
    resumed = _resume("ini", config, generations[len(generations) // 2], tmp_path)
    _assert_equivalent("ini", reference, resumed)
    assert resumed.resumes == 1


# --------------------------------------------------------------------- #
# Out-of-process: the grid running the pooled engine
# --------------------------------------------------------------------- #


def test_grid_cells_with_pooled_engine_match_inline_references(tmp_path):
    specs = [RunSpec("pfuzzer", subject, 300, 7) for subject in QUICK_SUBJECTS]
    records = run_grid(
        specs,
        jobs=1,
        executor="pooled",
        batch_size=8,
        checkpoint_dir=tmp_path / "grid",
    )
    assert [record.status for record in records] == [RunStatus.OK] * len(specs)
    for spec, record in zip(specs, records):
        inline = _campaign(spec.subject, "settrace", budget=spec.budget)
        assert record.output.valid_inputs == inline.valid_inputs
        assert record.output.executions == inline.executions
        assert record.output.valid_signatures == list(inline.valid_signatures)


@pytest.mark.slow
def test_grid_sigkill_resume_with_pooled_engine_matches_reference(tmp_path):
    """A grid cell on the pooled engine, SIGKILLed mid-campaign, resumes
    from its snapshot and still equals the sequential inline reference."""
    spec = RunSpec("pfuzzer", "ini", 600, 7)
    records = run_grid(
        [spec],
        jobs=1,
        retries=3,
        checkpoint_dir=tmp_path / "grid",
        checkpoint_every=100,
        executor="pooled",
        batch_size=4,
        _test_fail_on={spec.fault_key(): "kill-at-150"},
    )
    (record,) = records
    assert record.status is RunStatus.OK
    assert record.output.resumes >= 1
    inline = _campaign("ini", "settrace", budget=600)
    assert record.output.valid_inputs == inline.valid_inputs
    assert record.output.executions == inline.executions
    assert record.output.valid_signatures == list(inline.valid_signatures)
