"""Corpus distillation: greedy minimal sets that preserve arc coverage.

The headline property — required by the distillation contract — is
*arc-coverage equality*: re-executing the distilled corpus covers exactly
the union of arcs the full corpus covers.  The quick split proves it on
two subjects; the ``slow`` split proves it on all six.
"""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.eval.corpus_store import CorpusRecord, CorpusStore
from repro.eval.distill import (
    DistillStats,
    distill_store,
    distill_subject,
    minimal_cover,
)
from repro.runtime.harness import run_subject
from repro.subjects.registry import load_subject

QUICK_SUBJECTS = ("expr", "ini")
ALL_SUBJECTS = ("expr", "ini", "csv", "json", "tinyc", "mjs")
BUDGETS = {"expr": 300, "ini": 300, "csv": 300, "json": 400,
           "tinyc": 400, "mjs": 400}


# --------------------------------------------------------------------- #
# minimal_cover: the greedy set-cover kernel
# --------------------------------------------------------------------- #


def test_minimal_cover_empty():
    assert minimal_cover([]) == []


def test_minimal_cover_drops_redundant_sets():
    sets = [
        frozenset({1, 2, 3}),
        frozenset({2, 3}),  # subset of 0: redundant
        frozenset({4}),
        frozenset(),  # empty: never chosen
    ]
    assert minimal_cover(sets) == [0, 2]


def test_minimal_cover_ties_break_by_file_order():
    sets = [frozenset({1, 2}), frozenset({3, 4}), frozenset({1, 2, 3, 4})]
    # Index 2 covers everything in one pick.
    assert minimal_cover(sets) == [2]
    # With equal gains, the earliest index wins.
    assert minimal_cover([frozenset({1}), frozenset({1})]) == [0]


def test_minimal_cover_union_equality_is_invariant():
    sets = [
        frozenset({1, 2}),
        frozenset({2, 3}),
        frozenset({3, 4}),
        frozenset({9}),
    ]
    chosen = minimal_cover(sets)
    assert frozenset().union(*(sets[i] for i in chosen)) == frozenset(
        {1, 2, 3, 4, 9}
    )


# --------------------------------------------------------------------- #
# The arc-coverage-equality property, against real campaign corpora
# --------------------------------------------------------------------- #


def _campaign_inputs(subject_name, budget, seed=1):
    subject = load_subject(subject_name)
    result = PFuzzer(
        subject, FuzzerConfig(seed=seed, max_executions=budget)
    ).run()
    return sorted(set(result.all_valid) | set(result.valid_inputs))


def _arc_union(subject_name, inputs):
    subject = load_subject(subject_name)
    arcs = set()
    for text in inputs:
        arcs.update(run_subject(subject, text).decoded_branches())
    return arcs


def _assert_distilled_preserves_arcs(subject_name, budget):
    inputs = _campaign_inputs(subject_name, budget)
    assume_some = len(inputs) >= 1
    assert assume_some, f"campaign produced no inputs for {subject_name}"
    kept, arcs = distill_subject(subject_name, inputs)
    assert set(kept) <= set(inputs)
    # The property: identical decoded arc unions (decoded, so the check
    # does not depend on interning order).
    assert _arc_union(subject_name, kept) == _arc_union(subject_name, inputs)
    assert arcs == len(_arc_union(subject_name, inputs))


@pytest.mark.parametrize("subject_name", QUICK_SUBJECTS)
def test_distilled_corpus_covers_same_arcs_quick(subject_name):
    _assert_distilled_preserves_arcs(subject_name, BUDGETS[subject_name])


@pytest.mark.slow
@pytest.mark.parametrize(
    "subject_name", [s for s in ALL_SUBJECTS if s not in QUICK_SUBJECTS]
)
def test_distilled_corpus_covers_same_arcs_all_subjects(subject_name):
    _assert_distilled_preserves_arcs(subject_name, BUDGETS[subject_name])


# --------------------------------------------------------------------- #
# distill_store: in-place store rewrite
# --------------------------------------------------------------------- #


def test_distill_store_keeps_other_subjects_untouched(tmp_path):
    store = CorpusStore(tmp_path / "corpus.jsonl")
    expr_inputs = _campaign_inputs("expr", 200)
    store.add_records(
        [CorpusRecord("expr", "pfuzzer", 1, text) for text in expr_inputs]
        + [CorpusRecord("ini", "afl", 0, "[s]\nk=v\n")]
    )
    stats = distill_store(store, subject="expr")
    assert [s.subject for s in stats] == ["expr"]
    assert isinstance(stats[0], DistillStats)
    assert stats[0].kept + stats[0].dropped == len(expr_inputs)
    # The foreign subject's record survived verbatim.
    assert store.inputs(subject="ini") == ["[s]\nk=v\n"]
    # Re-distilling is idempotent: nothing more to drop.
    again = distill_store(store, subject="expr")
    assert again[0].dropped == 0
    assert again[0].kept == stats[0].kept


def test_distill_store_drops_duplicate_records(tmp_path):
    store = CorpusStore(tmp_path / "corpus.jsonl")
    store.add_records(
        [
            CorpusRecord("expr", "pfuzzer", 1, "1"),
            CorpusRecord("expr", "pfuzzer", 2, "1"),  # duplicate input
        ]
    )
    stats = distill_store(store, subject="expr")
    assert stats[0].kept == 1
    assert store.inputs(subject="expr") == ["1"]


def test_distill_store_on_empty_store(tmp_path):
    assert distill_store(CorpusStore(tmp_path / "nope.jsonl")) == []


# --------------------------------------------------------------------- #
# Edge cases: empty corpus, all-duplicate signatures, one-input cover
# --------------------------------------------------------------------- #


def test_distill_subject_empty_corpus():
    kept, arcs = distill_subject("expr", [])
    assert kept == []
    assert arcs == 0


def test_distill_subject_all_duplicate_signatures():
    """Distinct inputs whose executions cover identical arc sets: greedy
    set cover keeps exactly one — the earliest in file order."""
    inputs = ["2", "3", "5"]  # single digits: identical expr branch sets
    subject = load_subject("expr")
    signatures = {
        frozenset(run_subject(subject, text).decoded_branches())
        for text in inputs
    }
    assert len(signatures) == 1, "fixture drifted: not duplicates anymore"
    kept, arcs = distill_subject("expr", inputs)
    assert kept == ["2"]
    assert arcs > 0
    assert _arc_union("expr", kept) == _arc_union("expr", inputs)


def test_distill_subject_single_input_covering_everything():
    """When one input's arcs subsume every other input's, the distilled
    corpus is exactly that input."""
    rich = "1+2"  # addition plus every digit arc a bare literal covers
    inputs = ["7", "3", rich]
    subject = load_subject("expr")
    union = _arc_union("expr", inputs)
    rich_arcs = set(run_subject(subject, rich).decoded_branches())
    assert rich_arcs == union, "fixture drifted: no longer a superset"
    kept, _ = distill_subject("expr", inputs)
    assert kept == [rich]


def test_distill_store_all_duplicate_signatures_end_to_end(tmp_path):
    """A store whose records all re-execute to the same signature shrinks
    to a single record, keeping the earliest provenance."""
    store = CorpusStore(tmp_path / "corpus.jsonl")
    store.add_records(
        [
            CorpusRecord("expr", "pfuzzer", 1, "4"),
            CorpusRecord("expr", "pfuzzer", 2, "8"),
            CorpusRecord("expr", "afl", 3, "9"),
        ]
    )
    stats = distill_store(store, subject="expr")
    assert stats[0].kept == 1
    assert stats[0].dropped == 2
    records = list(store.records())
    assert [record.input for record in records] == ["4"]
    assert records[0].seed == 1  # earliest provenance survives
    # Re-distilling an already-minimal store changes nothing.
    again = distill_store(store, subject="expr")
    assert again[0].kept == 1
    assert again[0].dropped == 0


def test_distill_passes_crash_findings_through_untouched(tmp_path):
    """Crash findings are findings, not coverage seeds: distillation
    neither drops them nor lets them claim set-cover picks."""
    site = ("RecursionError", "expr.py", 3)
    store = CorpusStore(tmp_path / "corpus.jsonl")
    store.add_records(
        [
            CorpusRecord("expr", "pfuzzer", 1, "4"),
            CorpusRecord("expr", "pfuzzer", 2, "8"),  # redundant: dropped
            CorpusRecord(
                "expr", "pfuzzer", 1, "4",
                kind="crash", crash_signature=site,
            ),
        ]
    )
    stats = distill_store(store, subject="expr")
    assert stats[0].kept == 1
    assert stats[0].dropped == 1  # only the redundant *valid* record
    records = list(store.records())
    assert [record.kind for record in records] == ["valid", "crash"]
    assert records[1].crash_signature == site
