"""Code-coverage measurement (Figure 2 machinery)."""

from repro.eval.code_cov import coverage_of_inputs, figure2


def test_no_inputs_no_coverage():
    assert coverage_of_inputs("expr", []) == 0.0


def test_coverage_monotone_in_corpus():
    small = coverage_of_inputs("expr", ["1"])
    large = coverage_of_inputs("expr", ["1", "(1+2)-3"])
    assert 0.0 < small <= large <= 100.0


def test_richer_inputs_cover_more():
    plain = coverage_of_inputs("json", ["1"])
    rich = coverage_of_inputs("json", ['{"a":[true,false,null,"s",-1.5e2]}'])
    assert rich > plain


def test_coverage_bounded_by_100():
    inputs = ["1", "(1)", "-2+3", "((4))-5"]
    assert coverage_of_inputs("expr", inputs) <= 100.0


def test_figure2_grid_shape():
    valid = {
        ("expr", "toolA"): ["1"],
        ("expr", "toolB"): [],
    }
    grid = figure2(valid, subjects=["expr"], tools=["toolA", "toolB"])
    assert set(grid) == {("expr", "toolA"), ("expr", "toolB")}
    assert grid[("expr", "toolA")] > grid[("expr", "toolB")] == 0.0
