"""Token extraction from generated inputs."""

import pytest

from repro.eval.extract import extract_tokens


# ---------------------------------------------------------------------- #
# ini
# ---------------------------------------------------------------------- #


def test_ini_section_tokens():
    assert extract_tokens("ini", "[sec]\n") == {"[", "]", "name"}


def test_ini_pair_tokens():
    assert extract_tokens("ini", "a=1") == {"=", "name"}


def test_ini_comment():
    assert extract_tokens("ini", "; note") == {";"}


def test_ini_inline_comment():
    found = extract_tokens("ini", "a=1 ; note")
    assert {";", "=", "name"} <= found


def test_ini_colon_pair_has_no_equals_token():
    assert "=" not in extract_tokens("ini", "a: 1")


def test_ini_empty():
    assert extract_tokens("ini", "  \n") == set()


# ---------------------------------------------------------------------- #
# csv
# ---------------------------------------------------------------------- #


def test_csv_fields_and_commas():
    assert extract_tokens("csv", "a,b") == {",", "field"}
    assert extract_tokens("csv", "abc") == {"field"}
    assert extract_tokens("csv", ",") == {","}
    assert extract_tokens("csv", "") == set()


def test_csv_quoted_field():
    assert extract_tokens("csv", '"a,b"') == {"field"}


# ---------------------------------------------------------------------- #
# json
# ---------------------------------------------------------------------- #


def test_json_structural():
    assert extract_tokens("json", '{"a":[1,-2]}') == {
        "{", "}", "[", "]", ":", ",", "-", "string", "number",
    }


def test_json_keywords():
    assert extract_tokens("json", "[true,false,null]") == {
        "[", "]", ",", "true", "false", "null",
    }


def test_json_string_with_escaped_quote():
    assert extract_tokens("json", '"a\\"b"') == {"string"}


def test_json_negative_number():
    assert extract_tokens("json", "-5") == {"-", "number"}


# ---------------------------------------------------------------------- #
# tinyc
# ---------------------------------------------------------------------- #


def test_tinyc_full_statement():
    found = extract_tokens("tinyc", "while (a<1) {b=b+2;}")
    assert found == {
        "while", "(", ")", "<", "{", "}", "=", "+", ";", "identifier", "number",
    }


def test_tinyc_keywords_not_identifiers():
    assert extract_tokens("tinyc", "if (a) ; else ;") == {
        "if", "else", "(", ")", ";", "identifier",
    }


def test_tinyc_invalid_input_best_effort():
    # Extraction of a lexically broken input returns what was scanned.
    assert extract_tokens("tinyc", "a=!") <= {"identifier", "=", "!"}


# ---------------------------------------------------------------------- #
# mjs
# ---------------------------------------------------------------------- #


def test_mjs_keywords_and_operators():
    found = extract_tokens("mjs", "while (x >= 1) { x >>>= 2 }")
    assert {"while", "(", ")", ">=", "{", "}", ">>>=", "identifier", "number"} <= found


def test_mjs_builtin_names_are_their_own_tokens():
    found = extract_tokens("mjs", "print(JSON.stringify(x))")
    assert {"print", "JSON", "stringify", ".", "(", ")"} <= found
    assert "identifier" in found  # x


def test_mjs_plain_identifier_class():
    assert "identifier" in extract_tokens("mjs", "someName")
    assert "print" not in extract_tokens("mjs", "someName")


def test_mjs_newline_token():
    assert "newline" in extract_tokens("mjs", "a = 1\nb = 2")
    assert "newline" not in extract_tokens("mjs", "a = 1; b = 2")


def test_mjs_string_and_number():
    assert {"string", "number"} <= extract_tokens("mjs", "'x' + 0x1F")


def test_unknown_subject_raises():
    with pytest.raises(KeyError, match="ini"):
        extract_tokens("nope", "x")


def test_invalid_input_returns_empty_or_partial():
    assert extract_tokens("mjs", "'unterminated") == set()
