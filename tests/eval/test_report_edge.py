"""Report rendering edge cases."""

from repro.eval.report import render_figure2, render_figure3, render_token_table
from repro.eval.token_cov import token_coverage


def test_token_table_for_flat_subjects():
    for subject in ("ini", "csv"):
        text = render_token_table(subject, max_examples=10)
        assert "Length" in text
        assert "1" in text


def test_figure2_missing_cells_render_as_zero():
    text = render_figure2({}, subjects=["ini"], tools=["afl"])
    assert "0.0" in text


def test_figure3_missing_coverage_renders_blank_row():
    text = render_figure3({}, subjects=["ini"], tools=["afl"])
    lines = [line for line in text.splitlines() if "afl" in line]
    assert lines  # row exists even with no data


def test_figure3_total_column_consistent():
    coverage = token_coverage("tinyc", ["while (1<a) ;", "a=b+1;"])
    text = render_figure3(
        {("tinyc", "pfuzzer"): coverage}, subjects=["tinyc"], tools=["pfuzzer"]
    )
    total = f"{coverage.total_found}/{coverage.total_possible}"
    assert total in text


def test_zero_width_inputs_do_not_crash():
    coverage = token_coverage("json", [""])
    assert coverage.total_found == 0
