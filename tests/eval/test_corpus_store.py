"""Persistent corpus store: appends, filtering, signatures, compaction."""

import json

from repro.eval.campaign import ToolOutput, run_campaign
from repro.eval.corpus_store import CorpusRecord, CorpusStore


def _store_with(tmp_path, records):
    store = CorpusStore(tmp_path / "corpus.jsonl")
    store.add_records(records)
    return store


def test_add_and_read_back_in_order(tmp_path):
    store = CorpusStore(tmp_path / "corpus.jsonl")
    store.add("ini", "pfuzzer", 0, "[s]\n", path_signature=123)
    store.add("ini", "afl", 1, "k=v\n")
    records = list(store.records())
    assert [record.input for record in records] == ["[s]\n", "k=v\n"]
    assert records[0].path_signature == 123
    assert records[1].path_signature is None
    assert len(store) == 2


def test_filtering_by_subject_tool_seed(tmp_path):
    store = _store_with(
        tmp_path,
        [
            CorpusRecord("ini", "pfuzzer", 0, "a"),
            CorpusRecord("ini", "afl", 0, "b"),
            CorpusRecord("csv", "pfuzzer", 1, "c"),
        ],
    )
    assert store.inputs(subject="ini") == ["a", "b"]
    assert store.inputs(subject="ini", tool="pfuzzer") == ["a"]
    assert [r.input for r in store.records(seed=1)] == ["c"]


def test_add_output_aligns_signatures_with_inputs(tmp_path):
    output = ToolOutput(
        tool="pfuzzer",
        subject="expr",
        seed=4,
        valid_inputs=["1", "1+2"],
        valid_signatures=[111, 222],
    )
    store = CorpusStore(tmp_path / "corpus.jsonl")
    assert store.add_output(output) == 2
    by_input = {r.input: r.path_signature for r in store.records()}
    assert by_input == {"1": 111, "1+2": 222}


def test_campaign_appends_to_corpus_store(tmp_path):
    path = tmp_path / "corpus.jsonl"
    output = run_campaign(
        "pfuzzer", "expr", budget=200, seed=1, corpus_path=str(path)
    )
    store = CorpusStore(path)
    assert store.inputs(subject="expr") == output.valid_inputs
    signatures = [r.path_signature for r in store.records()]
    assert signatures == output.valid_signatures


def test_malformed_trailing_line_is_skipped(tmp_path):
    store = _store_with(tmp_path, [CorpusRecord("ini", "pfuzzer", 0, "a")])
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write('{"subject": "ini", "tool": "pfu')  # torn append
    assert store.inputs() == ["a"]
    # The store stays appendable after the torn line.
    store.add("ini", "pfuzzer", 0, "b")
    assert store.inputs() == ["a", "b"]


def test_compact_dedupes_keeping_first_occurrence(tmp_path):
    store = _store_with(
        tmp_path,
        [
            CorpusRecord("ini", "pfuzzer", 0, "a", path_signature=1),
            CorpusRecord("ini", "afl", 3, "a", path_signature=2),  # duplicate
            CorpusRecord("csv", "pfuzzer", 0, "a"),  # other subject: kept
            CorpusRecord("ini", "pfuzzer", 0, "b"),
        ],
    )
    kept, dropped = store.compact()
    assert (kept, dropped) == (3, 1)
    records = list(store.records())
    assert [(r.subject, r.input) for r in records] == [
        ("ini", "a"),
        ("csv", "a"),
        ("ini", "b"),
    ]
    # First occurrence wins: provenance of the surviving "a" is pfuzzer/0.
    assert records[0].tool == "pfuzzer" and records[0].path_signature == 1


def test_compact_of_missing_store_is_a_noop(tmp_path):
    store = CorpusStore(tmp_path / "never-written.jsonl")
    assert store.compact() == (0, 0)
    assert not store.path.exists()


def test_initial_inputs_feed_a_new_campaign(tmp_path):
    store = _store_with(
        tmp_path,
        [
            CorpusRecord("ini", "pfuzzer", 0, "[s]\n"),
            CorpusRecord("ini", "pfuzzer", 1, "[s]\n"),  # deduped
            CorpusRecord("ini", "afl", 0, "k=v\n"),
        ],
    )
    assert store.initial_inputs("ini") == ("[s]\n", "k=v\n")


def test_records_are_plain_json_lines(tmp_path):
    store = _store_with(tmp_path, [CorpusRecord("ini", "pfuzzer", 7, "x", 9)])
    (line,) = store.path.read_text().splitlines()
    assert json.loads(line) == {
        "subject": "ini",
        "tool": "pfuzzer",
        "seed": 7,
        "input": "x",
        "path_signature": 9,
    }


# --------------------------------------------------------------------- #
# Multi-writer safety: the corpus-sync protocol's storage contract
# --------------------------------------------------------------------- #


def _writer_process(path, writer_id, batches, per_batch):
    store = CorpusStore(path)
    for batch in range(batches):
        store.add_records(
            [
                CorpusRecord(
                    subject="ini",
                    tool=f"writer-{writer_id}",
                    seed=writer_id,
                    input=f"w{writer_id}-b{batch}-r{index}" + "x" * 64,
                    path_signature=writer_id * 100_000 + batch * 100 + index,
                )
                for index in range(per_batch)
            ]
        )


def test_eight_concurrent_writers_every_line_parses(tmp_path):
    """Stress the single-write O_APPEND contract with 8 live processes.

    Every line of the resulting file must parse as exactly one record —
    concurrent flushes may interleave *between* batches but never inside
    a line — and no record may be lost.
    """
    import multiprocessing

    path = tmp_path / "corpus.jsonl"
    ctx = multiprocessing.get_context(
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else None
    )
    writers, batches, per_batch = 8, 20, 5
    processes = [
        ctx.Process(
            target=_writer_process, args=(str(path), i, batches, per_batch)
        )
        for i in range(writers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=60)
        assert process.exitcode == 0
    raw_lines = [
        line for line in path.read_text().splitlines() if line.strip()
    ]
    # Every non-blank line is a complete JSON record...
    parsed = [CorpusRecord.from_json_line(line) for line in raw_lines]
    assert all(record is not None for record in parsed)
    # ...and nothing was lost or duplicated.
    assert len(parsed) == writers * batches * per_batch
    assert len({record.path_signature for record in parsed}) == len(parsed)


def test_append_repairs_torn_tail_with_newline_guard(tmp_path):
    store = _store_with(tmp_path, [CorpusRecord("ini", "pfuzzer", 0, "a")])
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write('{"torn": ')  # no trailing newline
    store.add("ini", "pfuzzer", 0, "b")
    # The guard newline terminated the torn line; the new record is intact.
    assert store.inputs() == ["a", "b"]
    lines = store.path.read_text().splitlines()
    assert lines[-1] == CorpusRecord("ini", "pfuzzer", 0, "b").to_json_line()


# --------------------------------------------------------------------- #
# stats() and signature-collapsing compaction
# --------------------------------------------------------------------- #


def test_stats_reports_distinct_signature_counts(tmp_path):
    store = _store_with(
        tmp_path,
        [
            CorpusRecord("ini", "pfuzzer", 0, "a", path_signature=1),
            CorpusRecord("ini", "pfuzzer", 1, "a", path_signature=1),  # dup
            CorpusRecord("ini", "pfuzzer", 0, "b", path_signature=2),
            CorpusRecord("ini", "afl", 0, "c"),  # unsigned: not counted
            CorpusRecord("csv", "pfuzzer", 0, "d", path_signature=1),
        ],
    )
    assert store.stats() == {
        "csv": {"records": 1, "inputs": 1, "signatures": 1, "crashes": 0},
        "ini": {"records": 4, "inputs": 3, "signatures": 2, "crashes": 0},
    }


def test_stats_of_missing_store_is_empty(tmp_path):
    assert CorpusStore(tmp_path / "nope.jsonl").stats() == {}


def test_compact_collapse_signatures_keeps_one_input_per_path(tmp_path):
    store = _store_with(
        tmp_path,
        [
            CorpusRecord("ini", "pfuzzer", 0, "a", path_signature=1),
            # Different input, same path: redundant under the flag.
            CorpusRecord("ini", "pfuzzer", 0, "a2", path_signature=1),
            CorpusRecord("ini", "pfuzzer", 0, "b", path_signature=2),
            # Unsigned records are never collapsed.
            CorpusRecord("ini", "afl", 0, "c"),
            CorpusRecord("ini", "afl", 0, "d"),
            # Same signature under another subject: kept.
            CorpusRecord("csv", "pfuzzer", 0, "e", path_signature=1),
        ],
    )
    kept, dropped = store.compact(collapse_signatures=True)
    assert (kept, dropped) == (5, 1)
    assert store.inputs() == ["a", "b", "c", "d", "e"]


def test_compact_without_flag_keeps_distinct_inputs_sharing_a_path(tmp_path):
    store = _store_with(
        tmp_path,
        [
            CorpusRecord("ini", "pfuzzer", 0, "a", path_signature=1),
            CorpusRecord("ini", "pfuzzer", 0, "a2", path_signature=1),
        ],
    )
    assert store.compact() == (2, 0)
    assert store.inputs() == ["a", "a2"]


# --------------------------------------------------------------------- #
# Crash findings ("crash"-kind records)
# --------------------------------------------------------------------- #


SITE = ("RecursionError", "parser.py", 12)


def _crash_record(text="((", signature=SITE, path=9):
    return CorpusRecord(
        "crashy", "pfuzzer", 7, text,
        path_signature=path, kind="crash", crash_signature=signature,
    )


def test_valid_records_keep_their_byte_shape(tmp_path):
    """The pre-crash-hunting serialization is unchanged for valid records."""
    line = CorpusRecord("ini", "pfuzzer", 0, "a", path_signature=1).to_json_line()
    assert "kind" not in json.loads(line)
    assert "crash_signature" not in json.loads(line)


def test_crash_record_round_trips(tmp_path):
    store = _store_with(tmp_path, [_crash_record()])
    (record,) = store.records()
    assert record.kind == "crash"
    assert record.crash_signature == SITE


def test_records_filter_by_kind(tmp_path):
    store = _store_with(
        tmp_path,
        [CorpusRecord("crashy", "pfuzzer", 7, "a"), _crash_record()],
    )
    assert [r.input for r in store.records(kind="crash")] == ["(("]
    assert [r.input for r in store.records(kind="valid")] == ["a"]
    assert len(list(store.records())) == 2


def test_crash_findings_never_seed_future_campaigns(tmp_path):
    store = _store_with(
        tmp_path,
        [CorpusRecord("crashy", "pfuzzer", 7, "a"), _crash_record()],
    )
    assert store.initial_inputs("crashy") == ("a",)


def test_add_output_appends_crash_findings(tmp_path):
    output = ToolOutput(
        tool="pfuzzer", subject="crashy", seed=7,
        valid_inputs=["a"], valid_signatures=[1],
        crashes=3, crash_inputs=["(("], crash_signatures=[SITE],
        crash_path_signatures=[9],
    )
    store = CorpusStore(tmp_path / "corpus.jsonl")
    assert store.add_output(output) == 2
    crash = next(iter(store.records(kind="crash")))
    assert crash.crash_signature == SITE
    assert crash.path_signature == 9


def test_stats_count_distinct_crash_sites(tmp_path):
    store = _store_with(
        tmp_path,
        [
            _crash_record("((", SITE),
            _crash_record("(((", SITE),  # same site: one crash
            _crash_record("[[", ("TypeError", "parser.py", 30), path=10),
        ],
    )
    assert store.stats()["crashy"]["crashes"] == 2


def test_compaction_keys_are_kind_qualified(tmp_path):
    """A crashing input equal to a valid one is not its duplicate."""
    store = _store_with(
        tmp_path,
        [
            CorpusRecord("crashy", "pfuzzer", 7, "((", path_signature=9),
            _crash_record("((", SITE, path=9),
        ],
    )
    assert store.compact(collapse_signatures=True) == (2, 0)
    assert len(list(store.records())) == 2
