"""Persistent corpus store: appends, filtering, signatures, compaction."""

import json

from repro.eval.campaign import ToolOutput, run_campaign
from repro.eval.corpus_store import CorpusRecord, CorpusStore


def _store_with(tmp_path, records):
    store = CorpusStore(tmp_path / "corpus.jsonl")
    store.add_records(records)
    return store


def test_add_and_read_back_in_order(tmp_path):
    store = CorpusStore(tmp_path / "corpus.jsonl")
    store.add("ini", "pfuzzer", 0, "[s]\n", path_signature=123)
    store.add("ini", "afl", 1, "k=v\n")
    records = list(store.records())
    assert [record.input for record in records] == ["[s]\n", "k=v\n"]
    assert records[0].path_signature == 123
    assert records[1].path_signature is None
    assert len(store) == 2


def test_filtering_by_subject_tool_seed(tmp_path):
    store = _store_with(
        tmp_path,
        [
            CorpusRecord("ini", "pfuzzer", 0, "a"),
            CorpusRecord("ini", "afl", 0, "b"),
            CorpusRecord("csv", "pfuzzer", 1, "c"),
        ],
    )
    assert store.inputs(subject="ini") == ["a", "b"]
    assert store.inputs(subject="ini", tool="pfuzzer") == ["a"]
    assert [r.input for r in store.records(seed=1)] == ["c"]


def test_add_output_aligns_signatures_with_inputs(tmp_path):
    output = ToolOutput(
        tool="pfuzzer",
        subject="expr",
        seed=4,
        valid_inputs=["1", "1+2"],
        valid_signatures=[111, 222],
    )
    store = CorpusStore(tmp_path / "corpus.jsonl")
    assert store.add_output(output) == 2
    by_input = {r.input: r.path_signature for r in store.records()}
    assert by_input == {"1": 111, "1+2": 222}


def test_campaign_appends_to_corpus_store(tmp_path):
    path = tmp_path / "corpus.jsonl"
    output = run_campaign(
        "pfuzzer", "expr", budget=200, seed=1, corpus_path=str(path)
    )
    store = CorpusStore(path)
    assert store.inputs(subject="expr") == output.valid_inputs
    signatures = [r.path_signature for r in store.records()]
    assert signatures == output.valid_signatures


def test_malformed_trailing_line_is_skipped(tmp_path):
    store = _store_with(tmp_path, [CorpusRecord("ini", "pfuzzer", 0, "a")])
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write('{"subject": "ini", "tool": "pfu')  # torn append
    assert store.inputs() == ["a"]
    # The store stays appendable after the torn line.
    store.add("ini", "pfuzzer", 0, "b")
    assert store.inputs() == ["a", "b"]


def test_compact_dedupes_keeping_first_occurrence(tmp_path):
    store = _store_with(
        tmp_path,
        [
            CorpusRecord("ini", "pfuzzer", 0, "a", path_signature=1),
            CorpusRecord("ini", "afl", 3, "a", path_signature=2),  # duplicate
            CorpusRecord("csv", "pfuzzer", 0, "a"),  # other subject: kept
            CorpusRecord("ini", "pfuzzer", 0, "b"),
        ],
    )
    kept, dropped = store.compact()
    assert (kept, dropped) == (3, 1)
    records = list(store.records())
    assert [(r.subject, r.input) for r in records] == [
        ("ini", "a"),
        ("csv", "a"),
        ("ini", "b"),
    ]
    # First occurrence wins: provenance of the surviving "a" is pfuzzer/0.
    assert records[0].tool == "pfuzzer" and records[0].path_signature == 1


def test_compact_of_missing_store_is_a_noop(tmp_path):
    store = CorpusStore(tmp_path / "never-written.jsonl")
    assert store.compact() == (0, 0)
    assert not store.path.exists()


def test_initial_inputs_feed_a_new_campaign(tmp_path):
    store = _store_with(
        tmp_path,
        [
            CorpusRecord("ini", "pfuzzer", 0, "[s]\n"),
            CorpusRecord("ini", "pfuzzer", 1, "[s]\n"),  # deduped
            CorpusRecord("ini", "afl", 0, "k=v\n"),
        ],
    )
    assert store.initial_inputs("ini") == ("[s]\n", "k=v\n")


def test_records_are_plain_json_lines(tmp_path):
    store = _store_with(tmp_path, [CorpusRecord("ini", "pfuzzer", 7, "x", 9)])
    (line,) = store.path.read_text().splitlines()
    assert json.loads(line) == {
        "subject": "ini",
        "tool": "pfuzzer",
        "seed": 7,
        "input": "x",
        "path_signature": 9,
    }
