"""Report rendering produces paper-shaped text blocks."""

from repro.eval.report import (
    render_aggregates,
    render_figure2,
    render_figure3,
    render_table,
    render_table1,
    render_token_table,
)
from repro.eval.token_cov import token_coverage


def test_render_table_alignment():
    text = render_table(("A", "Long"), [("x", "y"), ("longer", "z")])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(len(line) for line in lines if "|" in line)) == 1


def test_render_table1_contains_subjects():
    text = render_table1()
    for name in ("ini", "csv", "json", "tinyc", "mjs", "10920"):
        assert name in text


def test_render_token_table_examples_truncated():
    text = render_token_table("mjs", max_examples=3)
    assert "..." in text
    assert "Length" in text


def test_render_figure2_bars():
    text = render_figure2(
        {("ini", "afl"): 75.0, ("ini", "pfuzzer"): 50.0},
        subjects=["ini"],
        tools=["afl", "pfuzzer"],
    )
    assert "ini" in text
    afl_line = next(line for line in text.splitlines() if "afl" in line)
    pf_line = next(line for line in text.splitlines() if "pfuzzer" in line)
    assert afl_line.count("#") > pf_line.count("#")


def test_render_figure3_grid():
    coverages = {("json", "pfuzzer"): token_coverage("json", ["[true]"])}
    text = render_figure3(coverages, subjects=["json"], tools=["pfuzzer", "afl"])
    assert "2/8" in text  # length-1 tokens found
    assert "pfuzzer" in text and "afl" in text


def test_render_aggregates():
    text = render_aggregates({"afl": 91.5, "pfuzzer": 81.9}, {"afl": 5.0, "pfuzzer": 52.5})
    assert "91.5%" in text
    assert "52.5%" in text
