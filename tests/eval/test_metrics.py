"""Campaign metrics: JSONL round-trip, schema stability, sanity bounds."""

import json

import pytest

from repro.eval.campaign import run_campaign
from repro.eval.metrics import (
    FIELD_NAMES,
    SCHEMA_VERSION,
    CampaignMetrics,
    append_jsonl,
    read_jsonl,
    write_jsonl,
)


@pytest.fixture(scope="module")
def expr_metrics():
    output = run_campaign("pfuzzer", "expr", budget=150, seed=1)
    return CampaignMetrics.from_output(output, budget=150), output


# --------------------------------------------------------------------- #
# Round-trip
# --------------------------------------------------------------------- #


def test_json_line_round_trip(expr_metrics):
    metrics, _ = expr_metrics
    assert CampaignMetrics.from_json_line(metrics.to_json_line()) == metrics


def test_jsonl_file_round_trip(tmp_path, expr_metrics):
    metrics, _ = expr_metrics
    failure = CampaignMetrics.for_failure(
        "afl", "ini", 2, 500, status="timeout", attempts=1, wall_time=1.5
    )
    path = tmp_path / "metrics.jsonl"
    write_jsonl(path, [metrics, failure])
    assert read_jsonl(path) == [metrics, failure]


def test_append_streams_records(tmp_path, expr_metrics):
    metrics, _ = expr_metrics
    path = tmp_path / "metrics.jsonl"
    append_jsonl(path, metrics)
    append_jsonl(path, metrics)
    assert read_jsonl(path) == [metrics, metrics]


def test_read_skips_blank_lines(tmp_path, expr_metrics):
    metrics, _ = expr_metrics
    path = tmp_path / "metrics.jsonl"
    path.write_text(metrics.to_json_line() + "\n\n\n" + metrics.to_json_line() + "\n")
    assert len(read_jsonl(path)) == 2


def test_read_tolerates_torn_final_line(tmp_path, expr_metrics):
    """A SIGKILL mid-append tears at most the trailing line; reading the
    journal must return every complete record instead of raising."""
    metrics, _ = expr_metrics
    path = tmp_path / "metrics.jsonl"
    path.write_text(
        metrics.to_json_line() + "\n" + metrics.to_json_line()[: 20]
    )
    assert read_jsonl(path) == [metrics]


def test_read_strict_rejects_torn_final_line(tmp_path, expr_metrics):
    metrics, _ = expr_metrics
    path = tmp_path / "metrics.jsonl"
    path.write_text(metrics.to_json_line() + "\n" + '{"torn')
    with pytest.raises(ValueError):
        read_jsonl(path, strict=True)


def test_read_interior_corruption_still_raises(tmp_path, expr_metrics):
    """Only the *final* line gets the torn-tail tolerance; corruption in
    the middle of the journal is an error in either mode."""
    metrics, _ = expr_metrics
    path = tmp_path / "metrics.jsonl"
    path.write_text('{"garbage\n' + metrics.to_json_line() + "\n")
    with pytest.raises(ValueError):
        read_jsonl(path)


# --------------------------------------------------------------------- #
# Schema stability
# --------------------------------------------------------------------- #


def test_schema_field_order_is_stable(expr_metrics):
    """The JSONL key order is part of the schema contract."""
    metrics, _ = expr_metrics
    assert FIELD_NAMES == (
        "schema",
        "tool",
        "subject",
        "seed",
        "budget",
        "status",
        "attempts",
        "executions",
        "valid_inputs",
        "executions_per_second",
        "valid_rate",
        "queue_depth",
        "peak_rss_bytes",
        "wall_time",
        "phase_times",
        "resumes",
        "hostname",
        "peak_rss_kb",
        "crashes",
    )
    assert tuple(json.loads(metrics.to_json_line()).keys()) == FIELD_NAMES


def test_phase_times_absent_in_old_records_reads_as_none(expr_metrics):
    """Records written before phase_times existed still parse (as None)."""
    metrics, _ = expr_metrics
    record = json.loads(metrics.to_json_line())
    del record["phase_times"]
    parsed = CampaignMetrics.from_json_line(json.dumps(record))
    assert parsed.phase_times is None


def test_resumes_absent_in_old_records_reads_as_zero(expr_metrics):
    """Records written before the resumes counter existed parse as 0."""
    metrics, _ = expr_metrics
    record = json.loads(metrics.to_json_line())
    del record["resumes"]
    parsed = CampaignMetrics.from_json_line(json.dumps(record))
    assert parsed.resumes == 0


def test_hostname_and_rss_absent_in_old_records_read_as_defaults(expr_metrics):
    """Records written before hostname/peak_rss_kb existed still parse."""
    metrics, _ = expr_metrics
    record = json.loads(metrics.to_json_line())
    del record["hostname"]
    del record["peak_rss_kb"]
    parsed = CampaignMetrics.from_json_line(json.dumps(record))
    assert parsed.hostname == ""
    assert parsed.peak_rss_kb == 0


def test_parallel_records_carry_hostname_and_rss_kb():
    import socket

    from repro.eval.parallel import RunSpec, run_grid

    (record,) = run_grid([RunSpec("random", "ini", 40, 0)], jobs=1)
    assert record.metrics.hostname == socket.gethostname()
    assert record.metrics.peak_rss_kb == record.metrics.peak_rss_bytes // 1024
    assert record.metrics.peak_rss_kb > 0


def test_wrong_schema_version_rejected(expr_metrics):
    metrics, _ = expr_metrics
    record = json.loads(metrics.to_json_line())
    record["schema"] = SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema"):
        CampaignMetrics.from_json_line(json.dumps(record))


def test_missing_field_rejected(expr_metrics):
    metrics, _ = expr_metrics
    record = json.loads(metrics.to_json_line())
    del record["executions"]
    with pytest.raises(ValueError, match="executions"):
        CampaignMetrics.from_json_line(json.dumps(record))


def test_malformed_line_rejected():
    with pytest.raises(ValueError, match="malformed"):
        CampaignMetrics.from_json_line("{not json")
    with pytest.raises(ValueError, match="not an object"):
        CampaignMetrics.from_json_line("[1, 2]")


# --------------------------------------------------------------------- #
# Sanity bounds (expr subject)
# --------------------------------------------------------------------- #


def test_expr_throughput_sane(expr_metrics):
    metrics, output = expr_metrics
    assert metrics.executions == output.executions == 150
    assert metrics.valid_inputs == len(output.valid_inputs)
    # expr runs in-process: faster than 1 exec/s, slower than 10M exec/s.
    assert 1.0 < metrics.executions_per_second < 1e7
    assert metrics.executions_per_second == pytest.approx(
        output.executions / output.wall_time
    )
    assert 0.0 <= metrics.valid_rate <= 1.0
    assert metrics.queue_depth is not None and metrics.queue_depth >= 0
    assert metrics.status == "ok"


def test_failure_record_has_zero_counters():
    record = CampaignMetrics.for_failure(
        "klee", "mjs", 0, 1000, status="failed", attempts=3
    )
    assert record.executions == 0
    assert record.valid_inputs == 0
    assert record.executions_per_second == 0.0
    assert record.queue_depth is None
    assert record.attempts == 3
    assert record.resumes == 0


def test_failure_record_keeps_resumes():
    """Regression: for_failure used to drop the resume count, so a cell
    that resumed twice and then timed out reported resumes=0."""
    record = CampaignMetrics.for_failure(
        "pfuzzer", "json", 1, 2000, status="timeout", attempts=3, resumes=2
    )
    assert record.resumes == 2
    assert CampaignMetrics.from_json_line(record.to_json_line()).resumes == 2


def test_peak_rss_recorded_by_parallel_runs():
    from repro.eval.parallel import RunSpec, run_grid

    (record,) = run_grid([RunSpec("random", "ini", 40, 0)], jobs=1)
    # A Python worker occupies at least a few MB; under 100 GB is "sane".
    assert 1_000_000 < record.metrics.peak_rss_bytes < 100_000_000_000
