"""Campaign plumbing: tool dispatch, budgets, best-of-N."""

import pytest

from repro.eval.campaign import ToolOutput, best_of, run_campaign, run_campaigns


def test_run_campaign_every_tool():
    from repro.eval.campaign import TOOLS

    assert set(TOOLS) == {"pfuzzer", "afl", "klee", "random", "steelix", "driller"}
    for tool in TOOLS:
        output = run_campaign(tool, "ini", budget=120, seed=1)
        assert isinstance(output, ToolOutput)
        assert output.tool == tool
        assert output.subject == "ini"
        assert output.executions <= 130  # driller's replay may overshoot by a few


def test_unknown_tool_rejected():
    with pytest.raises(ValueError, match="pfuzzer"):
        run_campaign("libfuzzer", "ini", budget=10)


def test_unknown_tool_message_lists_choices():
    from repro.eval.campaign import TOOLS

    with pytest.raises(ValueError) as excinfo:
        run_campaign("libfuzzer", "ini", budget=10)
    message = str(excinfo.value)
    for tool in TOOLS:
        assert tool in message


def test_unknown_subject_rejected_up_front():
    with pytest.raises(ValueError, match="valid subjects"):
        run_campaign("pfuzzer", "nope", budget=10)


def test_unknown_tool_and_subject_both_reported():
    """Both arguments are validated before any work happens."""
    with pytest.raises(ValueError) as excinfo:
        run_campaign("libfuzzer", "nope", budget=10)
    message = str(excinfo.value)
    assert "unknown tool" in message
    assert "unknown subject" in message
    assert "pfuzzer" in message
    assert "ini" in message


def test_outputs_are_valid_inputs():
    from repro.subjects.registry import load_subject

    output = run_campaign("pfuzzer", "expr", budget=200, seed=1)
    subject = load_subject("expr")
    for text in output.valid_inputs:
        assert subject.accepts(text)


def test_best_of_picks_metric_max():
    best = best_of(
        "pfuzzer",
        "expr",
        budget=150,
        metric=lambda output: len(output.valid_inputs),
        repetitions=2,
        base_seed=0,
    )
    other = run_campaign("pfuzzer", "expr", budget=150, seed=0)
    assert len(best.valid_inputs) >= len(other.valid_inputs)


def test_run_campaigns_grid():
    grid = run_campaigns(["ini"], ["random", "klee"], default_budget=80, seed=1)
    assert set(grid) == {("ini", "random"), ("ini", "klee")}


def test_run_campaigns_budget_override():
    grid = run_campaigns(
        ["ini"], ["random"], budgets={"ini": 30}, default_budget=500, seed=1
    )
    assert grid[("ini", "random")].executions <= 30
