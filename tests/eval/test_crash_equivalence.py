"""Crash-status equivalence: every engine and backend agrees on crashes.

The acceptance matrix of the crash-hunting ISSUE: a campaign over a
crashing plugin subject must produce the *same* findings — crash counts,
failure-site signatures, crashing inputs, path signatures, and the full
:func:`result_fingerprint` — whether executed inline, through the pooled
executor, or with speculative batching, on either coverage backend.  A
crash in a pooled worker is an ordinary result, not a worker death: the
pool must not respawn over it.
"""

import sys
from pathlib import Path

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.eval.checkpoint import result_fingerprint
from repro.runtime.arcs import arc_table_for
from repro.runtime.executor import PooledExecutor
from repro.runtime.harness import ExitStatus
from repro.subjects.registry import load_subject, load_subject_module

HELPERS = str(Path(__file__).resolve().parent.parent / "helpers")
if HELPERS not in sys.path:
    sys.path.insert(0, HELPERS)
load_subject_module("crashy_plugin")

import crashy_plugin  # noqa: E402  (needs sys.path above)

BACKENDS = ("settrace", "ast")
CRASHING_INPUT = "(" * (crashy_plugin.CRASH_DEPTH + 1)


def _campaign(backend, **overrides):
    config = FuzzerConfig(
        seed=7,
        max_executions=400,
        coverage_backend=backend,
        hunt_crashes=True,
        **overrides,
    )
    return PFuzzer(load_subject("crashy"), config).run()


def _fingerprint(result):
    return result_fingerprint(result, arc_table_for(load_subject("crashy")))


# --------------------------------------------------------------------- #
# Inline vs pooled vs batched, both backends
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", BACKENDS)
def test_engines_agree_on_crash_findings(backend):
    inline = _campaign(backend)
    pooled = _campaign(
        backend, executor="pooled", executor_isolation="none"
    )
    batched = _campaign(
        backend,
        executor="pooled",
        batch_size=8,
        executor_isolation="none",
    )
    assert inline.crashes >= 1
    assert inline.crash_signatures
    reference = _fingerprint(inline)
    assert _fingerprint(pooled) == reference
    assert _fingerprint(batched) == reference
    for other in (pooled, batched):
        assert other.crashes == inline.crashes
        assert other.crash_inputs == inline.crash_inputs
        assert other.crash_signatures == inline.crash_signatures
        assert other.crash_path_signatures == inline.crash_path_signatures


def test_backends_agree_on_crash_signatures():
    results = {backend: _campaign(backend) for backend in BACKENDS}
    assert (
        results["settrace"].crash_signatures
        == results["ast"].crash_signatures
    )
    assert results["settrace"].crash_inputs == results["ast"].crash_inputs


# --------------------------------------------------------------------- #
# Crashes are results, not worker deaths
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", BACKENDS)
def test_pooled_crash_does_not_respawn_workers(backend):
    executor = PooledExecutor(
        load_subject("crashy"),
        coverage_backend=backend,
        isolation="none",
    )
    try:
        reference = None
        for _ in range(5):
            result = executor.execute(CRASHING_INPUT)
            assert result.status is ExitStatus.CRASH
            if reference is None:
                reference = result.crash_signature
            assert result.crash_signature == reference
        assert executor.respawns == 0
    finally:
        executor.close()


def test_crash_signature_survives_the_wire_format():
    """Pooled (serialized) and inline (in-process) results byte-match."""
    from repro.runtime.harness import run_subject

    inline = run_subject(load_subject("crashy"), CRASHING_INPUT)
    executor = PooledExecutor(load_subject("crashy"), isolation="none")
    try:
        pooled = executor.execute(CRASHING_INPUT)
    finally:
        executor.close()
    assert pooled.status is ExitStatus.CRASH
    assert pooled.crash_signature == inline.crash_signature
    assert pooled.error == inline.error
    table = arc_table_for(load_subject("crashy"))
    assert table.signature(pooled.arcs) == table.signature(inline.arcs)


# --------------------------------------------------------------------- #
# Resume: crash findings are part of the durable fingerprint
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", BACKENDS)
def test_resumed_hunt_matches_uninterrupted(backend, tmp_path):
    import shutil

    from repro.eval.checkpoint import list_generations

    reference = _campaign(
        backend,
        checkpoint_dir=str(tmp_path / "reference"),
        checkpoint_every=100,
        checkpoint_keep=1_000,
    )
    assert reference.crash_signatures
    generations = list_generations(str(tmp_path / "reference"))
    assert len(generations) >= 2
    for generation in generations[:-1]:
        resume_dir = tmp_path / f"resume-{backend}-{generation}"
        resume_dir.mkdir()
        name = f"ckpt-{generation:08d}.json"
        shutil.copy(tmp_path / "reference" / name, resume_dir / name)
        resumed = _campaign(
            backend,
            checkpoint_dir=str(resume_dir),
            checkpoint_every=100,
            resume=True,
        )
        assert resumed.resumes == 1
        assert _fingerprint(resumed) == _fingerprint(reference)
        assert resumed.crash_signatures == reference.crash_signatures
