"""End-to-end experiment runner (miniature budgets)."""

import pytest

from repro.eval.experiments import ExperimentReport, render_markdown, run_all


@pytest.fixture(scope="module")
def tiny_report():
    return run_all(
        budgets={"ini": 150, "csv": 150},
        tools=("random", "pfuzzer"),
        subjects=("ini", "csv"),
        seeds=(1,),
        measure_code_coverage=True,
    )


def test_report_grid_complete(tiny_report):
    assert set(tiny_report.valid_inputs) == {
        ("ini", "random"),
        ("ini", "pfuzzer"),
        ("csv", "random"),
        ("csv", "pfuzzer"),
    }
    assert all(execs <= 150 for execs in tiny_report.executions.values())


def test_report_aggregates_present(tiny_report):
    assert set(tiny_report.aggregate_short) == {"random", "pfuzzer"}
    for value in tiny_report.aggregate_short.values():
        assert 0.0 <= value <= 100.0


def test_render_markdown(tiny_report):
    text = render_markdown(tiny_report)
    assert "# Evaluation report" in text
    assert "Table 1" in text
    assert "Figure 3" in text
    assert "instanceof" in text  # mjs token table rendered regardless


def test_render_without_code_coverage():
    report = ExperimentReport(("ini",), ("random",))
    text = render_markdown(report)
    assert "Figure 2" not in text
