"""Tables 1-4 generation."""

from repro.eval.tables import Table1Row, check_against_paper, table1, token_table


def test_table1_rows():
    rows = table1()
    assert [row.name for row in rows] == ["ini", "csv", "json", "tinyc", "mjs"]
    for row in rows:
        assert isinstance(row, Table1Row)
        assert row.paper_loc > 0
        assert row.repro_sloc > 0


def test_table1_mjs_largest():
    rows = {row.name: row for row in table1()}
    assert rows["mjs"].repro_sloc == max(row.repro_sloc for row in table1())
    assert rows["mjs"].paper_loc == 10920


def test_token_table_json():
    table = token_table("json")
    assert table[1][0] == 8
    assert "number" in table[1][1]
    assert table[2] == (1, ("string",))
    assert set(table[4][1]) == {"null", "true"}
    assert table[5] == (1, ("false",))


def test_token_table_tinyc():
    table = token_table("tinyc")
    assert table[1][0] == 11
    assert set(table[2][1]) == {"if", "do"}


def test_check_against_paper_all_tabled_subjects():
    for subject in ("json", "tinyc", "mjs"):
        assert check_against_paper(subject), subject


def test_check_against_paper_untabled_subjects_pass():
    assert check_against_paper("ini")
    assert check_against_paper("csv")
