"""Corpus persistence round trips."""

from repro.eval.campaign import ToolOutput, run_campaign
from repro.eval.corpus import iter_corpus, load_corpus, revalidate, save_corpus


def make_output(subject="ini", tool="pfuzzer", inputs=("a=1", "[s]\n")):
    return ToolOutput(
        tool=tool, subject=subject, seed=0, valid_inputs=list(inputs), executions=10
    )


def test_save_and_load_round_trip(tmp_path):
    path = tmp_path / "corpus.jsonl"
    written = save_corpus(path, make_output())
    assert written == 2
    assert load_corpus(path) == ["a=1", "[s]\n"]


def test_control_characters_survive(tmp_path):
    path = tmp_path / "corpus.jsonl"
    nasty = ["\x00\x01", "line\nbreak", 'quote"inside', "tab\there"]
    save_corpus(path, make_output(inputs=nasty))
    assert load_corpus(path) == nasty


def test_append_and_filter(tmp_path):
    path = tmp_path / "corpus.jsonl"
    save_corpus(path, make_output(subject="ini", tool="afl", inputs=("x=1",)))
    save_corpus(path, make_output(subject="csv", tool="pfuzzer", inputs=("a,b",)))
    assert load_corpus(path, subject="ini") == ["x=1"]
    assert load_corpus(path, tool="pfuzzer") == ["a,b"]
    assert load_corpus(path) == ["x=1", "a,b"]


def test_malformed_lines_skipped(tmp_path):
    path = tmp_path / "corpus.jsonl"
    save_corpus(path, make_output(inputs=("good",)))
    with open(path, "a") as handle:
        handle.write("{not json\n")
        handle.write('{"no_input_key": 1}\n')
        handle.write("\n")
    assert load_corpus(path) == ["good"]


def test_iter_is_lazy(tmp_path):
    path = tmp_path / "corpus.jsonl"
    save_corpus(path, make_output(inputs=[f"i{i}" for i in range(100)]))
    iterator = iter_corpus(path)
    assert next(iterator) == "i0"


def test_revalidate_drops_invalid():
    kept = revalidate("ini", ["a=1", "no separator line", "[ok]"])
    assert kept == ["a=1", "[ok]"]


def test_real_campaign_round_trip(tmp_path):
    output = run_campaign("pfuzzer", "expr", budget=150, seed=1)
    path = tmp_path / "expr.jsonl"
    save_corpus(path, output)
    reloaded = load_corpus(path, subject="expr")
    assert reloaded == output.valid_inputs
    assert revalidate("expr", reloaded) == reloaded
