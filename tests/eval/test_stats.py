"""Discovery curves and efficiency summaries."""

import math

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.eval.stats import (
    CampaignStats,
    discovery_curve,
    executions_to_reach,
    summarize,
)
from repro.subjects.registry import load_subject


def test_curve_is_monotone():
    curve = discovery_curve(
        "json", [(10, "1"), (20, "[1]"), (30, "true"), (40, "2")]
    )
    counts = [point.tokens_found for point in curve]
    assert counts == sorted(counts)
    executions = [point.executions for point in curve]
    assert executions == sorted(executions)


def test_curve_skips_no_discovery_emissions():
    curve = discovery_curve("json", [(5, "1"), (9, "2"), (12, "[3]")])
    # "2" discovers nothing new -> no point (after the initial one).
    assert [point.executions for point in curve] == [5, 12]


def test_curve_empty_log():
    assert discovery_curve("json", []) == []


def test_executions_to_reach():
    curve = discovery_curve("json", [(5, "1"), (50, "[true]")])
    assert executions_to_reach(curve, 1) == 5
    assert executions_to_reach(curve, 3) == 50
    assert executions_to_reach(curve, 99) == -1


def test_summarize_counts():
    stats = summarize("json", ["1", "[true]"], executions=100)
    assert stats.valid_inputs == 2
    assert stats.tokens_found == 4  # number, [, ], true
    assert stats.validity_rate == 0.02
    assert stats.executions_per_token == 25.0


def test_summarize_empty():
    stats = summarize("json", [], executions=0)
    assert stats.validity_rate == 0.0
    assert math.isinf(stats.executions_per_token)


def test_real_campaign_curve():
    result = PFuzzer(
        load_subject("json"), FuzzerConfig(seed=3, max_executions=1_500)
    ).run()
    curve = discovery_curve("json", result.emit_log)
    assert curve
    assert curve[-1].tokens_found >= 5
    keyword_cost = executions_to_reach(curve, curve[-1].tokens_found)
    assert 0 < keyword_cost <= result.executions


def test_pfuzzer_cheaper_per_token_than_random():
    """§5.2 'fewer tests by orders of magnitude', as executions/token."""
    from repro.eval.campaign import run_campaign

    pf = run_campaign("pfuzzer", "json", 1_500, seed=3)
    rand = run_campaign("random", "json", 1_500, seed=3)
    pf_stats = summarize("json", pf.valid_inputs, pf.executions)
    rand_stats = summarize("json", rand.valid_inputs, rand.executions)
    assert pf_stats.executions_per_token < rand_stats.executions_per_token
