"""Property tests: snapshot -> restore -> snapshot is a fixed point.

The durability contract hinges on restore being *exact*: a restored fuzzer
must be indistinguishable from the one that was snapshot, state for state.
The cleanest statement of that is idempotence — restoring a snapshot into a
fresh fuzzer and snapshotting again must reproduce the identical payload,
whatever campaign state the original snapshot captured.  Hypothesis drives
real (short) campaigns to arbitrary points to generate those states.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.eval.checkpoint import _canonical_payload
from repro.subjects.registry import load_subject


def _campaign_snapshot(subject_name, seed, budget, max_input_length, backend):
    """Run a short real campaign and snapshot wherever it ended up."""
    fuzzer = PFuzzer(
        load_subject(subject_name),
        FuzzerConfig(
            seed=seed,
            max_executions=budget,
            max_input_length=max_input_length,
            coverage_backend=backend,
        ),
    )
    fuzzer.run()
    return fuzzer


def _assert_fixed_point(fuzzer, subject_name):
    first = fuzzer.snapshot()
    restored = PFuzzer(load_subject(subject_name), fuzzer.config)
    restored.restore(first)
    second = restored.snapshot()
    assert _canonical_payload(second) == _canonical_payload(first)
    # And once more: restore of a restored snapshot stays fixed.
    again = PFuzzer(load_subject(subject_name), fuzzer.config)
    again.restore(second)
    assert _canonical_payload(again.snapshot()) == _canonical_payload(first)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    budget=st.integers(min_value=10, max_value=250),
    max_input_length=st.sampled_from([3, 8, 200]),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_snapshot_restore_snapshot_fixed_point_expr(
    seed, budget, max_input_length
):
    fuzzer = _campaign_snapshot("expr", seed, budget, max_input_length, "settrace")
    _assert_fixed_point(fuzzer, "expr")


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["settrace", "ast"])
@pytest.mark.parametrize("subject_name", ["expr", "ini", "csv", "json"])
def test_snapshot_restore_snapshot_fixed_point_grid(subject_name, backend):
    """The fixed point holds across subjects and both coverage backends."""

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        budget=st.integers(min_value=10, max_value=300),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def check(seed, budget):
        fuzzer = _campaign_snapshot(subject_name, seed, budget, 200, backend)
        _assert_fixed_point(fuzzer, subject_name)

    check()


def test_restore_rejects_mismatched_configuration():
    from repro.eval.checkpoint import CheckpointError

    fuzzer = _campaign_snapshot("expr", 1, 60, 200, "settrace")
    payload = fuzzer.snapshot()
    other = PFuzzer(
        load_subject("expr"),
        FuzzerConfig(seed=2, max_executions=60),
    )
    with pytest.raises(CheckpointError, match="seed"):
        other.restore(payload)


def test_restore_allows_a_larger_budget():
    """max_executions is not part of the fingerprint: a finished campaign
    can be resumed with a bigger budget to extend it."""
    fuzzer = _campaign_snapshot("expr", 1, 60, 200, "settrace")
    payload = fuzzer.snapshot()
    bigger = PFuzzer(load_subject("expr"), FuzzerConfig(seed=1, max_executions=120))
    bigger.restore(payload)
    result = bigger.run()
    assert result.executions == 120
