"""Parallel executor: sequential equivalence, fault isolation, ordering."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.eval.campaign import best_of, run_campaign, run_campaigns
from repro.eval.parallel import (
    RunRecord,
    RunSpec,
    RunStatus,
    parallel_best_of,
    parallel_campaigns,
    run_grid,
)
from repro.eval.report import render_figure3
from repro.eval.token_cov import figure3


def _same_run(output, expected):
    """The determinism contract: everything except wall time matches."""
    assert output.tool == expected.tool
    assert output.subject == expected.subject
    assert output.seed == expected.seed
    assert output.valid_inputs == expected.valid_inputs
    assert output.executions == expected.executions


# --------------------------------------------------------------------- #
# Equivalence with the sequential path
# --------------------------------------------------------------------- #


def test_grid_matches_sequential_and_preserves_order():
    specs = [
        RunSpec("random", "ini", 60, 1),
        RunSpec("pfuzzer", "expr", 120, 0),
        RunSpec("random", "ini", 60, 2),
        RunSpec("afl", "ini", 60, 1),
    ]
    records = run_grid(specs, jobs=2)
    assert [record.spec for record in records] == specs
    for record in records:
        assert record.status is RunStatus.OK
        spec = record.spec
        _same_run(
            record.output,
            run_campaign(spec.tool, spec.subject, spec.budget, seed=spec.seed),
        )


@pytest.mark.parametrize("subject", ["expr", "json"])
def test_best_of_identical_to_sequential(subject):
    """Acceptance: byte-identical best_of selections at --jobs 4."""
    metric = lambda output: len(output.valid_inputs)  # noqa: E731
    budget = 150 if subject == "expr" else 250
    sequential = best_of(
        "pfuzzer", subject, budget, metric, repetitions=3, base_seed=0
    )
    parallel = parallel_best_of(
        "pfuzzer", subject, budget, metric, repetitions=3, base_seed=0, jobs=4
    )
    _same_run(parallel, sequential)


def test_figure_rows_identical_to_sequential():
    """Acceptance: table/figure rows byte-identical to the sequential path."""
    subjects, tools = ["ini"], ["random", "pfuzzer"]
    sequential = run_campaigns(subjects, tools, default_budget=80, seed=1)
    parallel = parallel_campaigns(subjects, tools, default_budget=80, seed=1, jobs=4)
    seq_corpora = {key: output.valid_inputs for key, output in sequential.items()}
    par_corpora = {key: output.valid_inputs for key, output in parallel.items()}
    seq_rendered = render_figure3(
        figure3(seq_corpora, subjects, tools), subjects, tools
    )
    par_rendered = render_figure3(
        figure3(par_corpora, subjects, tools), subjects, tools
    )
    assert par_rendered == seq_rendered


# --------------------------------------------------------------------- #
# Fault isolation
# --------------------------------------------------------------------- #


def test_crash_isolated_to_one_cell():
    specs = [RunSpec("random", "ini", 50, seed) for seed in range(4)]
    records = run_grid(
        specs,
        jobs=2,
        retries=1,
        _test_fail_on={("random", "ini", 2): "crash"},
    )
    assert [record.spec for record in records] == specs
    by_seed = {record.spec.seed: record for record in records}
    assert by_seed[2].status is RunStatus.FAILED
    assert by_seed[2].output is None
    assert by_seed[2].attempts == 2  # initial + 1 retry, both crashed
    assert "worker died" in by_seed[2].error
    for seed in (0, 1, 3):
        assert by_seed[seed].status is RunStatus.OK
        _same_run(by_seed[seed].output, run_campaign("random", "ini", 50, seed=seed))


def test_hang_isolated_to_one_cell():
    specs = [RunSpec("random", "ini", 50, seed) for seed in range(3)]
    records = run_grid(
        specs,
        jobs=2,
        timeout=1.0,
        _test_fail_on={("random", "ini", 0): "hang"},
    )
    by_seed = {record.spec.seed: record for record in records}
    assert by_seed[0].status is RunStatus.TIMEOUT
    assert by_seed[0].output is None
    for seed in (1, 2):
        assert by_seed[seed].status is RunStatus.OK
        _same_run(by_seed[seed].output, run_campaign("random", "ini", 50, seed=seed))


@pytest.mark.slow
def test_hard_hang_recovered_by_watchdog():
    """A worker with its alarm blocked is killed by the parent watchdog."""
    specs = [RunSpec("random", "ini", 50, seed) for seed in range(2)]
    records = run_grid(
        specs,
        jobs=2,
        timeout=0.5,
        watchdog_grace=1.0,
        _test_fail_on={("random", "ini", 0): "hang-hard"},
    )
    by_seed = {record.spec.seed: record for record in records}
    assert by_seed[0].status is RunStatus.TIMEOUT
    assert by_seed[1].status is RunStatus.OK


def test_flaky_run_recovers_via_retry():
    records = run_grid(
        [RunSpec("random", "ini", 50, 7)],
        jobs=1,
        retries=2,
        backoff=0.01,
        _test_fail_on={("random", "ini", 7): "flaky"},
    )
    (record,) = records
    assert record.status is RunStatus.OK
    assert record.attempts == 2
    _same_run(record.output, run_campaign("random", "ini", 50, seed=7))


def test_all_repetitions_failed_raises():
    with pytest.raises(RuntimeError, match="failed"):
        parallel_best_of(
            "random",
            "ini",
            40,
            lambda output: len(output.valid_inputs),
            repetitions=2,
            base_seed=0,
            jobs=1,
            retries=0,
            _test_fail_on={
                ("random", "ini", 0): "crash",
                ("random", "ini", 1): "crash",
            },
        )


# --------------------------------------------------------------------- #
# Plumbing
# --------------------------------------------------------------------- #


def test_empty_grid():
    assert run_grid([], jobs=2) == []


def test_unknown_spec_rejected_before_forking():
    with pytest.raises(ValueError, match="valid tools"):
        run_grid([RunSpec("libfuzzer", "ini", 10, 0)], jobs=1)
    with pytest.raises(ValueError, match="valid subjects"):
        run_grid([RunSpec("random", "nope", 10, 0)], jobs=1)


def test_progress_stream_sees_every_record():
    seen = []
    specs = [RunSpec("random", "ini", 40, seed) for seed in range(3)]
    records = run_grid(specs, jobs=2, progress=seen.append)
    assert len(seen) == 3
    assert all(isinstance(record, RunRecord) for record in seen)
    assert {record.spec.seed for record in seen} == {0, 1, 2}
    assert [record.spec for record in records] == specs


def test_metrics_jsonl_written_in_spec_order(tmp_path):
    from repro.eval.metrics import read_jsonl

    path = tmp_path / "metrics.jsonl"
    specs = [RunSpec("random", "ini", 40, seed) for seed in (5, 3, 1)]
    run_grid(specs, jobs=2, metrics_path=path)
    records = read_jsonl(path)
    assert [record.seed for record in records] == [5, 3, 1]
    assert all(record.status == "ok" for record in records)


def test_trace_dir_writes_per_cell_traces(tmp_path):
    """Each traced pFuzzer cell leaves a valid NDJSON artifact whose
    lineage replays every emitted input."""
    from repro.obs.lineage import LineageLog
    from repro.obs.trace import read_trace

    trace_dir = tmp_path / "traces"
    specs = [RunSpec("pfuzzer", "expr", 120, seed) for seed in (0, 1)]
    records = run_grid(specs, jobs=2, trace_dir=trace_dir)
    for record in records:
        assert record.status is RunStatus.OK
        path = trace_dir / f"pfuzzer-expr-s{record.spec.seed}.ndjson"
        events = read_trace(path, strict=True)
        emitted = [e for e in events if e["type"] == "input_emitted"]
        assert [e["text"] for e in emitted] == record.output.valid_inputs
        lineage = LineageLog.from_trace_events(events)
        for event in emitted:
            assert lineage.replay(event["lineage"]) == event["text"]


def test_failure_records_carry_resume_counts(tmp_path):
    """Regression: a durable cell that resumed before giving up used to
    report resumes=0 in its failure metrics."""
    spec = RunSpec("pfuzzer", "expr", 300, seed=2)
    fail_on = {spec.fault_key(): "hang"}

    (plain,) = run_grid(
        [spec], jobs=1, timeout=0.3, retries=0, _test_fail_on=fail_on
    )
    assert plain.status is RunStatus.TIMEOUT
    assert plain.metrics.resumes == 0

    (durable,) = run_grid(
        [spec],
        jobs=1,
        timeout=0.3,
        retries=0,
        resume_retries=2,
        checkpoint_dir=tmp_path / "grid",
        _test_fail_on=fail_on,
    )
    assert durable.status is RunStatus.TIMEOUT
    assert durable.attempts == 3
    assert durable.metrics.resumes == 2


# --------------------------------------------------------------------- #
# Property: equivalence holds under arbitrary small grids with faults
# --------------------------------------------------------------------- #


@pytest.mark.slow
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    cells=st.lists(
        st.tuples(
            st.sampled_from(["random", "pfuzzer", "afl"]),
            st.sampled_from(["expr", "ini"]),
            st.integers(min_value=20, max_value=60),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=4,
        unique=True,
    ),
    faults=st.lists(
        st.sampled_from(["", "", "crash", "flaky"]), min_size=4, max_size=4
    ),
)
def test_parallel_equals_sequential_under_faults(cells, faults):
    specs = [RunSpec(*cell) for cell in cells]
    fail_on = {
        spec.fault_key(): mode
        for spec, mode in zip(specs, faults)
        if mode
    }
    records = run_grid(
        specs, jobs=2, retries=1, backoff=0.01, _test_fail_on=fail_on
    )
    assert [record.spec for record in records] == specs
    for record in records:
        spec = record.spec
        mode = fail_on.get(spec.fault_key())
        if mode == "crash":
            assert record.status is RunStatus.FAILED
            assert record.output is None
            continue
        assert record.status is RunStatus.OK, record
        _same_run(
            record.output,
            run_campaign(spec.tool, spec.subject, spec.budget, seed=spec.seed),
        )
