"""Token coverage accounting (Figure 3 machinery)."""

from repro.eval.token_cov import TokenCoverage, aggregate_by_length, token_coverage


def test_token_coverage_counts_by_length():
    coverage = token_coverage("json", ["[true]", '"x"'])
    assert coverage.found == {"[", "]", "true", "string"}
    assert coverage.by_length[1] == (2, 8)
    assert coverage.by_length[2] == (1, 1)
    assert coverage.by_length[4] == (1, 2)
    assert coverage.by_length[5] == (0, 1)


def test_totals_and_percent():
    coverage = token_coverage("json", ["[true]"])
    assert coverage.total_found == 3
    assert coverage.total_possible == 12
    assert coverage.percent() == 25.0


def test_missing_tokens():
    coverage = token_coverage("json", ["[true]"])
    assert "false" in coverage.missing()
    assert "true" not in coverage.missing()


def test_empty_inputs_cover_nothing():
    coverage = token_coverage("tinyc", [])
    assert coverage.total_found == 0
    assert coverage.percent() == 0.0


def test_aggregate_by_length_pools_over_subjects():
    json_cov = token_coverage("json", ["[true,false,null]", '{"a":-1}'])
    tinyc_cov = token_coverage("tinyc", ["while (a<1) ;", "if (b) ; else ;", "do ; while (1);"])
    short, long_ = aggregate_by_length([json_cov, tinyc_cov])
    assert 0.0 < short <= 100.0
    assert long_ == 100.0  # true false null else while do(if len2)... see below


def test_aggregate_split_boundary():
    json_cov = token_coverage("json", ["true"])
    short, long_ = aggregate_by_length([json_cov], split=3)
    assert short == 0.0
    assert long_ == 100.0 / 3  # true of {true, null, false}


def test_full_coverage_is_100():
    inputs = ['{"k":[1,-2,true,false,null]}', '"s"']
    coverage = token_coverage("json", inputs)
    assert coverage.percent() == 100.0
    assert coverage.missing() == set()
