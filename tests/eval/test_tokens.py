"""Token inventories match the paper's tables exactly."""

from repro.eval.tokens import (
    MJS_BUILTIN_NAME_TOKENS,
    PAPER_TOKEN_COUNTS,
    TOKEN_INVENTORIES,
    inventory_by_length,
)


def counts(subject):
    return {length: len(names) for length, names in inventory_by_length(subject).items()}


def test_json_matches_table2():
    assert counts("json") == {1: 8, 2: 1, 4: 2, 5: 1}


def test_tinyc_matches_table3():
    assert counts("tinyc") == {1: 11, 2: 2, 4: 1, 5: 1}


def test_mjs_matches_table4():
    assert counts("mjs") == {1: 27, 2: 24, 3: 13, 4: 10, 5: 9, 6: 7, 7: 3, 8: 3, 9: 2, 10: 1}


def test_mjs_total_99():
    assert len(TOKEN_INVENTORIES["mjs"]) == 99


def test_ini_has_five_csv_has_two():
    assert len(TOKEN_INVENTORIES["ini"]) == 5
    assert len(TOKEN_INVENTORIES["csv"]) == 2


def test_token_lengths_consistent():
    """A concrete token's classified length equals its spelling length."""
    classes = {"number", "string", "identifier", "name", "field", "newline"}
    for subject, inventory in TOKEN_INVENTORIES.items():
        for token in inventory:
            if token.name in classes:
                continue
            assert token.length == len(token.name), (subject, token)


def test_no_duplicate_tokens():
    for subject, inventory in TOKEN_INVENTORIES.items():
        names = [token.name for token in inventory]
        assert len(names) == len(set(names)), subject


def test_paper_table_examples_present():
    mjs = {token.name for token in TOKEN_INVENTORIES["mjs"]}
    # Every example the paper prints in Table 4 appears in the inventory.
    for example in (
        "{", "[", "(", "+", "&", "?", "identifier", "number",
        "+=", "==", "++", "/=", "&=", "|=", "!=", "if", "in", "string",
        "===", "!==", "<<=", ">>>", "for", "try", "let",
        ">>>=", "true", "null", "void", "with", "else",
        "false", "throw", "while", "break", "catch",
        "return", "delete", "typeof", "Object",
        "default", "finally", "indexOf",
        "continue", "function", "debugger",
        "undefined", "stringify",
        "instanceof",
    ):
        assert example in mjs, example


def test_mjs_keywords_are_lexer_keywords():
    from repro.subjects.mjs.tokens import KEYWORDS

    mjs = {token.name for token in TOKEN_INVENTORIES["mjs"]}
    for keyword in KEYWORDS:
        assert keyword in mjs, keyword


def test_builtin_name_tokens_in_inventory():
    mjs = {token.name for token in TOKEN_INVENTORIES["mjs"]}
    assert MJS_BUILTIN_NAME_TOKENS <= mjs


def test_paper_counts_constant_agrees():
    for subject, expected in PAPER_TOKEN_COUNTS.items():
        assert counts(subject) == expected, subject
