"""Shard partitioning and the lockstep group orchestrator.

The cross-shard determinism harness lives in
``test_resume_equivalence.py``; this module covers the pieces it builds
on: the ownership partition (disjoint, complete, rotating), shard
config derivation, and the ``run_sharded_campaign`` convenience wrapper.
"""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.eval.shards import ShardPlan, shard_config


def _shard_fuzzer(subject, shard_id, shard_count, rotate=200):
    return PFuzzer(
        subject,
        FuzzerConfig(
            seed=1,
            max_executions=100,
            shard_id=shard_id,
            shard_count=shard_count,
            shard_rotate_every=rotate,
        ),
    )


# --------------------------------------------------------------------- #
# The ownership partition
# --------------------------------------------------------------------- #


def test_partition_is_disjoint_and_complete(expr_subject):
    """At any fixed epoch, every candidate text is owned by exactly one
    of the group's shards."""
    shard_count = 3
    fuzzers = [
        _shard_fuzzer(expr_subject, shard_id, shard_count)
        for shard_id in range(shard_count)
    ]
    texts = [f"candidate-{index}" for index in range(200)]
    for text in texts:
        owners = [f._owns(text) for f in fuzzers]
        assert owners.count(True) == 1, text


def test_partition_rotates_so_no_text_is_orphaned(expr_subject):
    """Over ``shard_count`` consecutive epochs, every shard owns every
    text exactly once — rotation guarantees no candidate is permanently
    stuck on a shard that never schedules it."""
    shard_count = 4
    fuzzer = _shard_fuzzer(expr_subject, 0, shard_count, rotate=10)
    text = "some-candidate"
    owned_epochs = []
    for epoch in range(shard_count):
        fuzzer._result.executions = epoch * 10  # one execution per epoch
        if fuzzer._owns(text):
            owned_epochs.append(epoch)
    assert len(owned_epochs) == 1


def test_single_shard_owns_everything(expr_subject):
    fuzzer = _shard_fuzzer(expr_subject, 0, 1)
    assert all(fuzzer._owns(t) for t in ("", "a", "xyz", "\x00\xff"))
    # And its append pool is the full, unrotated character pool.
    pool = fuzzer._append_pool()
    fuzzer._result.executions = 10_000
    assert fuzzer._append_pool() == pool


def test_append_pool_slices_rotate_and_cover(expr_subject):
    shard_count = 2
    fuzzers = [
        _shard_fuzzer(expr_subject, shard_id, shard_count, rotate=10)
        for shard_id in range(shard_count)
    ]
    full = _shard_fuzzer(expr_subject, 0, 1)._append_pool()
    # At any epoch the two slices partition the full pool...
    slices = [f._append_pool() for f in fuzzers]
    assert sorted(slices[0] + slices[1]) == sorted(full)
    assert not set(slices[0]) & set(slices[1])
    # ...and a shard's slice changes across epochs (rotation).
    fuzzers[0]._result.executions = 10
    assert fuzzers[0]._append_pool() != slices[0]


def test_invalid_shard_config_raises(expr_subject):
    with pytest.raises(ValueError):
        _shard_fuzzer(expr_subject, 2, 2)
    with pytest.raises(ValueError):
        _shard_fuzzer(expr_subject, -1, 2)
    with pytest.raises(ValueError):
        PFuzzer(
            expr_subject,
            FuzzerConfig(shard_id=0, shard_count=2, shard_rotate_every=0),
        )


def test_shard_count_one_matches_unsharded_run(expr_subject):
    """``shard_count == 1`` must be byte-identical to a config that never
    mentions sharding — sharding is strictly opt-in."""
    from repro.eval.checkpoint import result_fingerprint
    from repro.runtime.arcs import arc_table_for

    table = arc_table_for(expr_subject)
    plain = PFuzzer(
        expr_subject, FuzzerConfig(seed=3, max_executions=300)
    ).run()
    sharded = PFuzzer(
        expr_subject,
        FuzzerConfig(seed=3, max_executions=300, shard_id=0, shard_count=1),
    ).run()
    assert result_fingerprint(sharded, table) == result_fingerprint(
        plain, table
    )


# --------------------------------------------------------------------- #
# shard_config: one derivation for orchestrator and service
# --------------------------------------------------------------------- #


def test_shard_config_derivation(tmp_path):
    plan = ShardPlan(
        subject="expr", budget=500, shards=3, base_seed=7,
        slice_executions=100,
    )
    config = shard_config(plan, 2, tmp_path)
    assert config.seed == 9  # base_seed + shard_id
    assert config.shard_id == 2 and config.shard_count == 3
    assert config.sync_store == str(tmp_path / "corpus.jsonl")
    assert config.sync_every == 100  # defaults to slice_executions
    assert config.checkpoint_dir == str(tmp_path / "shard-2")
    assert config.resume is True


def test_shard_config_honours_explicit_sync_every(tmp_path):
    plan = ShardPlan(subject="expr", budget=500, sync_every=42)
    assert shard_config(plan, 0, tmp_path).sync_every == 42


# --------------------------------------------------------------------- #
# run_sharded_campaign: the eval-layer entry point
# --------------------------------------------------------------------- #


def test_run_sharded_campaign_wrapper(tmp_path):
    from repro.eval.parallel import run_sharded_campaign

    result = run_sharded_campaign(
        "expr", budget=300, shards=2, base_seed=5,
        slice_executions=150, root=tmp_path / "group",
    )
    assert len(result.shards) == 2
    assert [s.seed for s in result.shards] == [5, 6]
    assert all(s.executions == 300 for s in result.shards)
    assert result.rounds == 2
    assert (tmp_path / "group" / "corpus.jsonl").exists()
