"""Queue hygiene at scale: what a cull pass buys the rescore loop.

Every emitted valid input rescores the whole queue — an O(n) pass over
all stored entries, dead or alive.  On branch-heavy subjects the heap
accumulates dead entries (texts that already executed) and dominated
duplicates; ``CandidateQueue.cull`` removes them without changing any
campaign result (DESIGN.md §10), so every subsequent rescore pays only
for the live frontier.

This benchmark builds a synthetic 12k-entry queue with a realistic
hygiene profile (half dead, a quarter dominated duplicates, a quarter
live), measures a rescore over the dirty heap, the cull pass itself, and
a rescore over the culled heap, and reports the rescore speedup.  The
expected result: the cull pass costs about one rescore, and each later
rescore runs ~4x faster — the pass pays for itself within one emitted
valid input.

The tracked trajectory lives in repo-root ``BENCH_queue_cull.json``: run
with ``REPRO_BENCH_WRITE=1`` to append an entry; ``REPRO_BENCH_SMOKE=1``
keeps the measurement but skips the speedup assertion (timings on shared
CI runners are advisory — this benchmark is non-blocking there).
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.candidate import Candidate
from repro.core.queue import CandidateQueue

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_queue_cull.json"

ENTRIES = 12_000
ARC_SPACE = 2_000  # distinct interned arc ids
ARCS_PER_CANDIDATE = 40
ROUNDS = 5


def _score(candidate: Candidate) -> float:
    # The vBr-dependent shape of the real heuristic: cached new-branch
    # count plus a couple of metadata terms.
    count = candidate.new_count
    if count is None:
        count = len(candidate.parent_branches)
        candidate.new_count = count
    return count + 1.0 / (1 + candidate.parents) - 0.01 * len(candidate.text)


def _build_queue() -> tuple[CandidateQueue, set]:
    """A dirty queue: 50% dead, 25% dominated duplicates, 25% live."""
    rng = random.Random(2019)
    seen: set = set()
    queue = CandidateQueue(_score, limit=4 * ENTRIES, seen=seen)
    live = ENTRIES // 4
    for index in range(live):
        branches = sorted(rng.sample(range(ARC_SPACE), ARCS_PER_CANDIDATE))
        candidate = Candidate(
            text=f"input-{index}",
            replacement=str(index % 10),
            parents=index % 7,
            parent_branches=branches,
            avg_stack=float(index % 5),
            path_signature=index % 97,
        )
        queue.push(candidate)
        # One dominated duplicate (identical metadata, later push) ...
        queue.push(
            Candidate(
                text=candidate.text,
                replacement=candidate.replacement,
                parents=candidate.parents,
                parent_branches=branches,
                avg_stack=candidate.avg_stack,
                path_signature=candidate.path_signature,
            )
        )
        # ... and two dead entries (texts that already executed).
        for death in range(2):
            dead_text = f"dead-{index}-{death}"
            seen.add(dead_text)
            queue.push(
                Candidate(
                    text=dead_text,
                    parent_branches=sorted(
                        rng.sample(range(ARC_SPACE), ARCS_PER_CANDIDATE)
                    ),
                )
            )
    assert len(queue) == ENTRIES
    return queue, seen


def _rescore_seconds(queue: CandidateQueue, rng: random.Random) -> float:
    start = time.perf_counter()
    for _ in range(ROUNDS):
        queue.rescore(rng.sample(range(ARC_SPACE), 25))
    return (time.perf_counter() - start) / ROUNDS


def _measure() -> dict:
    queue, seen = _build_queue()
    dirty_depth = len(queue)
    rescore_dirty = _rescore_seconds(queue, random.Random(7))
    start = time.perf_counter()
    stats = queue.cull(seen)
    cull_seconds = time.perf_counter() - start
    assert stats.dead == ENTRIES // 2
    assert stats.dominated == ENTRIES // 4
    rescore_culled = _rescore_seconds(queue, random.Random(7))
    return {
        "dirty_depth": dirty_depth,
        "culled_depth": len(queue),
        "rescore_dirty_ms": rescore_dirty * 1e3,
        "rescore_culled_ms": rescore_culled * 1e3,
        "cull_ms": cull_seconds * 1e3,
        "rescore_speedup": rescore_dirty / rescore_culled,
    }


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=BENCH_PATH.parent,
                check=True,
                capture_output=True,
                text=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def test_bench_queue_cull_speeds_up_rescore(benchmark):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print("\n\n=== queue hygiene: rescore cost, dirty vs culled ===")
    print(
        f"  dirty   {measured['dirty_depth']:6d} entries   "
        f"rescore {measured['rescore_dirty_ms']:7.2f} ms"
    )
    print(
        f"  culled  {measured['culled_depth']:6d} entries   "
        f"rescore {measured['rescore_culled_ms']:7.2f} ms"
    )
    print(
        f"  cull pass {measured['cull_ms']:7.2f} ms   "
        f"rescore speedup {measured['rescore_speedup']:.2f}x"
    )
    benchmark.extra_info.update(measured)
    if os.environ.get("REPRO_BENCH_WRITE"):
        entry = {
            "git_rev": _git_rev(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
            "rates": measured,
        }
        document = (
            json.loads(BENCH_PATH.read_text())
            if BENCH_PATH.exists()
            else {"schema": 1, "trajectory": []}
        )
        document["trajectory"].append(entry)
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
        print(f"  appended trajectory entry {entry['git_rev']} to {BENCH_PATH}")
    elif BENCH_PATH.exists():
        committed = json.loads(BENCH_PATH.read_text())["trajectory"][-1]
        print(
            f"  committed entry {committed['git_rev']}: "
            f"speedup {committed['rates']['rescore_speedup']:.2f}x"
        )
    if os.environ.get("REPRO_BENCH_SMOKE"):
        pytest.skip("smoke mode: measured, speedup assertion skipped")
    # With 75% of entries removed, the live rescore must be clearly
    # cheaper; 2x leaves generous noise headroom below the ~4x expected.
    assert measured["rescore_speedup"] >= 2.0
