"""Shared campaign plumbing for the benchmark suite.

Campaigns are expensive (thousands of instrumented executions), so results
are cached per (tool, subject) and shared between the Figure 2 and Figure 3
benchmarks within one pytest session.

Budgets are the DESIGN.md §2 substitution for the paper's 48 CPU-hours:
execution counts sized for minutes of laptop time.  pFuzzer runs best-of-N
seeds, mirroring the paper's "all tests were run three times; we report the
best run".
"""

from __future__ import annotations

import functools
from typing import Dict, List, Tuple

from repro.eval.campaign import run_campaign
from repro.eval.token_cov import token_coverage

#: Paper subjects in Table 1 order.
SUBJECTS: Tuple[str, ...] = ("ini", "csv", "json", "tinyc", "mjs")

#: Tools compared in §5.
TOOLS: Tuple[str, ...] = ("afl", "klee", "pfuzzer")

#: Execution budgets per subject (every tool gets the same budget, as every
#: tool got the same 48 hours in the paper).
BUDGETS: Dict[str, int] = {
    "ini": 6_000,
    "csv": 4_000,
    "json": 8_000,
    "tinyc": 12_000,
    "mjs": 20_000,
}

#: Seeds for the best-of-N repetition (paper: 3 repetitions).
SEEDS: Tuple[int, ...] = (0, 3, 8)


@functools.lru_cache(maxsize=None)
def campaign_inputs(tool: str, subject: str) -> Tuple[str, ...]:
    """Valid inputs of the best repetition of ``tool`` on ``subject``.

    "Best" is by token coverage, the metric Figure 3 reports; the same
    corpus then feeds the Figure 2 coverage measurement.
    """
    budget = BUDGETS[subject]
    best: Tuple[str, ...] = ()
    best_score = -1.0
    for seed in SEEDS:
        output = run_campaign(tool, subject, budget, seed=seed)
        coverage = token_coverage(subject, output.valid_inputs)
        score = coverage.total_found + coverage.percent() / 1000.0
        if score > best_score:
            best_score = score
            best = tuple(output.valid_inputs)
    return best


def all_campaigns() -> Dict[Tuple[str, str], List[str]]:
    """Every (subject, tool) corpus, computing lazily through the cache."""
    return {
        (subject, tool): list(campaign_inputs(tool, subject))
        for subject in SUBJECTS
        for tool in TOOLS
    }
