"""Observability cost: disabled tracing must be (nearly) free.

The trace bus is designed so a campaign without a recorder pays one
``enabled`` attribute check per would-be event plus one lineage
``NamedTuple`` per scheduled candidate.  This benchmark pins that down
two ways:

* campaign level — executions/second for the same json campaign with
  tracing disabled, buffered in memory, and written to NDJSON; the rates
  land in the bench JSON (``extra_info``) so regressions show up in CI
  history;
* micro level — the disabled path's per-execution observability work
  (guard checks + lineage node creation) measured directly and asserted
  to be under 5% of the campaign's per-execution cost, the ISSUE's
  disabled-tracing budget.

Set ``REPRO_BENCH_SMOKE=1`` (CI smoke) to keep the measurements but skip
the ratio assertion, which needs an unloaded machine.
"""

from __future__ import annotations

import os
import time

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.obs.lineage import LineageLog
from repro.obs.trace import NULL_RECORDER, InMemoryTraceRecorder, JsonlTraceRecorder
from repro.subjects.registry import load_subject

BUDGET = 2_000


def _campaign_rate(tracer=None, trace_path=None, seed=1) -> float:
    """Executions/second for one fixed-budget json campaign."""
    config = FuzzerConfig(seed=seed, max_executions=BUDGET, trace_path=trace_path)
    started = time.perf_counter()
    result = PFuzzer(load_subject("json"), config, tracer=tracer).run()
    elapsed = time.perf_counter() - started
    assert result.executions == BUDGET
    return BUDGET / elapsed


def test_bench_tracing_modes(benchmark, tmp_path):
    """Throughput with tracing off / in-memory / NDJSON, for the record."""
    _campaign_rate()  # warm instrumentation caches outside the measurement
    rates = benchmark.pedantic(
        lambda: {
            "disabled": _campaign_rate(),
            "memory": _campaign_rate(tracer=InMemoryTraceRecorder()),
            "ndjson": _campaign_rate(
                trace_path=str(tmp_path / "bench-trace.ndjson")
            ),
        },
        rounds=1,
        iterations=1,
    )
    for mode, rate in rates.items():
        benchmark.extra_info[f"{mode}_per_second"] = rate
    print("\n\n=== campaign throughput by tracing mode (json) ===")
    for mode, rate in rates.items():
        print(f"  {mode:<9} {rate:8.0f} executions/s")


def test_bench_disabled_tracing_under_budget(benchmark):
    """Acceptance: disabled-path observability work < 5% of execution cost.

    With tracing off, one campaign iteration adds at most a handful of
    ``recorder.enabled`` guard checks and (per scheduled candidate) one
    :class:`LineageNode` allocation over the pre-observability code.
    Measure that work directly and compare it to the campaign's real
    per-execution cost.
    """
    # Per-execution cost of the actual campaign (tracing disabled).
    _campaign_rate()  # warm-up
    per_execution = 1.0 / _campaign_rate()

    # The disabled path's added work, deliberately overestimated: 16
    # guard checks and 8 lineage nodes per execution (a real iteration
    # does far fewer — one node per scheduled candidate, ~6 per
    # execution on json, and one guard per would-be event).
    log = LineageLog()
    rounds = 20_000
    started = time.perf_counter()
    for index in range(rounds):
        for _ in range(16):
            if NULL_RECORDER.enabled:  # pragma: no cover - never taken
                raise AssertionError
        for _ in range(8):
            log.new_node(index, "append", "xyzzy", replacement="y")
    overhead = (time.perf_counter() - started) / rounds

    ratio = overhead / per_execution
    benchmark.extra_info["per_execution_seconds"] = per_execution
    benchmark.extra_info["disabled_overhead_seconds"] = overhead
    benchmark.extra_info["overhead_ratio"] = ratio
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n\n=== disabled-tracing overhead (json) ===")
    print(f"  per execution   {per_execution * 1e6:9.2f} us")
    print(f"  obs. overhead   {overhead * 1e6:9.2f} us")
    print(f"  ratio           {ratio * 100:9.2f} %")
    if os.environ.get("REPRO_BENCH_SMOKE"):
        import pytest

        pytest.skip("smoke mode: measured, ratio assertion skipped")
    assert ratio < 0.05, f"disabled tracing costs {ratio:.1%} of an execution"


def test_bench_ndjson_recorder_emit_rate(benchmark, tmp_path):
    """Raw emit throughput of the NDJSON recorder (events/second)."""
    recorder = JsonlTraceRecorder(tmp_path / "emit.ndjson")

    def emit_block():
        for index in range(1_000):
            recorder.emit(
                "candidate_scheduled",
                lineage=index,
                parent=index - 1,
                op="append",
                text="abcdef",
                replacement="f",
            )

    benchmark.pedantic(emit_block, rounds=10, iterations=1, warmup_rounds=1)
    recorder.close()
    benchmark.extra_info["events_per_second"] = (
        1_000 / benchmark.stats.stats.mean
    )
