"""Tables 2, 3 and 4 — token inventories per subject.

Regenerates the three token tables and asserts the per-length counts match
the paper exactly (json 8/1/2/1, tinyC 11/2/1/1, mjs 27/24/13/10/9/7/3/3/2/1).
"""

import pytest

from repro.eval.report import render_token_table
from repro.eval.tables import check_against_paper, token_table
from repro.eval.tokens import PAPER_TOKEN_COUNTS


@pytest.mark.parametrize(
    "subject,table_number",
    [("json", 2), ("tinyc", 3), ("mjs", 4)],
)
def test_bench_token_tables(benchmark, subject, table_number):
    table = benchmark(token_table, subject)
    print(f"\n\n=== Table {table_number}: {subject} tokens by length ===")
    print(render_token_table(subject))
    counts = {length: count for length, (count, _) in table.items()}
    assert counts == PAPER_TOKEN_COUNTS[subject]
    assert check_against_paper(subject)
