"""§2 / Figure 1 — the walkthrough experiment.

Fuzzes the arithmetic-expression parser from nothing and checks that the
fuzzer derives the §2 feature set (digits, unary and binary +/-, balanced
parentheses), producing only valid inputs along the way.
"""

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.subjects.expr import ExprSubject


def run_walkthrough():
    subject = ExprSubject()
    return subject, PFuzzer(
        subject, FuzzerConfig(seed=1, max_executions=800)
    ).run()


def test_bench_section2_walkthrough(benchmark):
    subject, result = benchmark.pedantic(run_walkthrough, rounds=1, iterations=1)
    print("\n\n=== §2 walkthrough: fuzzing the expression parser ===")
    print(f"executions: {result.executions}, emitted: {len(result.valid_inputs)}")
    print("emitted inputs:", result.valid_inputs[:12])

    corpus = " ".join(result.all_valid)
    # The §2 token set: digits, signs, operators, parentheses.
    assert any(char.isdigit() for char in corpus)
    assert "+" in corpus and "-" in corpus
    assert "(" in corpus and ")" in corpus
    # Every output is valid by construction.
    for text in result.valid_inputs:
        assert subject.accepts(text), text
    # Far fewer tests than blind search: a few hundred executions suffice
    # for full feature coverage of this subject.
    assert result.executions <= 800
