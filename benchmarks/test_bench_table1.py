"""Table 1 — the subjects used for the evaluation.

Regenerates the subject-size table (paper C LoC vs this reproduction's
Python SLoC) and benchmarks the size-accounting pass.
"""

from repro.eval.report import render_table1
from repro.eval.tables import table1
from repro.subjects.registry import PAPER_LOC


def test_bench_table1(benchmark):
    rows = benchmark(table1)
    print("\n\n=== Table 1: evaluation subjects ===")
    print(render_table1(rows))
    names = [row.name for row in rows]
    assert names == ["ini", "csv", "json", "tinyc", "mjs"]
    for row in rows:
        assert row.paper_loc == PAPER_LOC[row.name]
        assert row.repro_sloc > 0
    # Relative size ordering of the complex subjects is preserved: mjs is
    # by far the largest, as in the paper.
    by_name = {row.name: row.repro_sloc for row in rows}
    assert by_name["mjs"] > 3 * by_name["json"]
