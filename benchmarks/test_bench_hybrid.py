"""Hybrid campaign acceptance: closing the loop beats pure search.

Two measurements, both against the committed trajectory in repo-root
``BENCH_hybrid.json``:

1. **Decoded arcs at equal budget** — hybrid campaigns (explore → mine →
   flood → resume) versus pure parser-directed search and the AFL
   baseline at six per-subject operating points.  Campaigns are pure
   functions of (seed, config), so the arc counts are exact,
   machine-independent numbers and any drift from the committed entry is
   a behavior change, not noise.  Acceptance: hybrid strictly exceeds
   pure pFuzzer on **>= 4 of 6** subjects (§7.4: "use the mined grammar
   for generating longer and more complex sequences").

2. **Compiled-generator throughput** — the depth-specialised closures
   from :mod:`repro.hybrid.compile` versus the recursive
   :class:`~repro.miner.generate.GrammarFuzzer` interpreter, on the
   grammar mined (and lineage-enriched) from a hybrid json campaign, at
   the generation phase's flood depth.  The grammar shape (rules,
   alternatives) is equality-asserted; the ratio is a timing and only
   the **>= 50x** acceptance threshold is asserted.

Run with ``REPRO_BENCH_WRITE=1`` to append a trajectory entry;
``REPRO_BENCH_SMOKE=1`` keeps the measurements but skips the acceptance
assertions.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro.baselines.afl import AFLConfig, AFLFuzzer
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.hybrid.campaign import enrich_grammar, lineage_keywords
from repro.hybrid.compile import CompiledGenerator, compile_grammar
from repro.miner.generate import GrammarFuzzer
from repro.miner.mine import mine_grammar
from repro.subjects.registry import load_subject

#: Tracked trajectory (committed; see module docstring).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_hybrid.json"

#: Per-subject operating points: (budget, seed, mine_after, gen_batch,
#: gen_depth).  Budgets are sized so the pure campaign has plateaued
#: (DESIGN.md §2's substitution for the paper's 48 hours); tinyC floods
#: deep because its coverage lives in deep statement structure, the rest
#: flood shallow to re-seed the search (see FuzzerConfig.gen_depth).
ARC_POINTS: Dict[str, Tuple[int, int, int, int, int]] = {
    "expr": (1_200, 0, 300, 32, 3),
    "ini": (1_000, 0, 150, 32, 3),
    "csv": (1_500, 0, 300, 32, 3),
    "json": (3_000, 0, 300, 32, 3),
    "tinyc": (2_000, 5, 300, 32, 10),
    "mjs": (5_000, 0, 300, 32, 3),
}

#: The throughput grammar's mining campaign (json; hybrid so the corpus
#: contains generated, deeper-than-discovered inputs) and flood depth.
MINE_BUDGET, MINE_SEED, MINE_KEEP = 4_000, 2, 60
FLOOD_DEPTH = 3

ACCEPT_WINS = 4
ACCEPT_SPEEDUP = 50.0


def _decoded_arcs() -> Dict[str, Dict[str, int]]:
    """Decoded arcs per subject for pure pFuzzer, hybrid, and AFL."""
    table: Dict[str, Dict[str, int]] = {}
    for name, (budget, seed, mine_after, gen_batch, gen_depth) in ARC_POINTS.items():
        subject = load_subject(name)
        plain = PFuzzer(
            subject,
            FuzzerConfig(
                seed=seed, max_executions=budget, coverage_backend="ast"
            ),
        ).run()
        hybrid = PFuzzer(
            subject,
            FuzzerConfig(
                seed=seed,
                max_executions=budget,
                coverage_backend="ast",
                hybrid=True,
                mine_after=mine_after,
                gen_batch=gen_batch,
                gen_depth=gen_depth,
            ),
        ).run()
        afl = AFLFuzzer(
            subject, AFLConfig(seed=seed, max_executions=budget)
        ).run()
        table[name] = {
            "pfuzzer": len(plain.valid_branches),
            "hybrid": len(hybrid.valid_branches),
            "afl": len(afl.valid_branches),
        }
    return table


def _mined_json_grammar():
    """The grammar a hybrid json campaign mines, lineage-enriched."""
    subject = load_subject("json")
    result = PFuzzer(
        subject,
        FuzzerConfig(
            seed=MINE_SEED,
            max_executions=MINE_BUDGET,
            coverage_backend="ast",
            hybrid=True,
            mine_after=300,
            gen_batch=32,
        ),
    ).run()
    corpus = sorted(set(result.all_valid), key=lambda t: (len(t), t))
    corpus = corpus[-MINE_KEEP:]
    grammar = mine_grammar(subject, corpus)
    keywords = lineage_keywords(result.lineage, result.valid_lineage)
    return subject, enrich_grammar(grammar, keywords)


def _throughput() -> Dict[str, float]:
    """Interpreter vs compiled generation rates on the mined grammar.

    Best-of-5 interleaved timings: both sides warm up first, and taking
    the best round of each damps scheduler noise without changing what
    is measured (the ratio of steady-state sentence rates).
    """
    subject, grammar = _mined_json_grammar()
    interp = GrammarFuzzer(grammar, seed=0, max_depth=FLOOD_DEPTH)
    compiled = compile_grammar(grammar, max_depth=FLOOD_DEPTH)
    generator = CompiledGenerator(compiled, seed=0)
    for _ in range(300):
        interp.generate()
    sample = generator.generate_many(3_000)
    assert all(subject.accepts(text) for text in sample[:200])
    interp_best = 0.0
    compiled_best = 0.0
    for _ in range(5):
        draws = 3_000
        start = time.perf_counter()
        for _ in range(draws):
            interp.generate()
        interp_best = max(
            interp_best, draws / (time.perf_counter() - start)
        )
        draws = 100_000
        start = time.perf_counter()
        generator.generate_many(draws)
        compiled_best = max(
            compiled_best, draws / (time.perf_counter() - start)
        )
    return {
        "grammar_rules": len(grammar.rules),
        "grammar_alts": sum(
            len(alternatives) for alternatives in grammar.rules.values()
        ),
        "interp_per_s": interp_best,
        "compiled_per_s": compiled_best,
        "speedup": compiled_best / interp_best,
    }


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=BENCH_PATH.parent,
                check=True,
                capture_output=True,
                text=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _record(rates: dict, key: str) -> dict:
    """Append (WRITE mode) or load the committed entry carrying ``key``.

    The two tests append separate trajectory entries, so reads search
    backwards for the newest entry of the right kind.
    """
    if os.environ.get("REPRO_BENCH_WRITE"):
        entry = {
            "git_rev": _git_rev(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": sys.version.split()[0],
            "rates": rates,
        }
        document = (
            json.loads(BENCH_PATH.read_text())
            if BENCH_PATH.exists()
            else {"schema": 1, "trajectory": []}
        )
        document["trajectory"].append(entry)
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
        print(f"  appended trajectory entry {entry['git_rev']} to {BENCH_PATH}")
        return entry
    if BENCH_PATH.exists():
        for entry in reversed(json.loads(BENCH_PATH.read_text())["trajectory"]):
            if key in entry["rates"]:
                return entry
    return {}


def test_bench_hybrid_decoded_arcs(benchmark):
    """Hybrid vs pure pFuzzer vs AFL decoded arcs at equal budgets."""
    table = benchmark.pedantic(_decoded_arcs, rounds=1, iterations=1)
    wins = sum(
        1
        for counts in table.values()
        if counts["hybrid"] > counts["pfuzzer"]
    )
    print("\n\n=== hybrid campaigns: decoded arcs at equal budget ===")
    print(f"  {'subject':8s} {'budget':>7s} {'pfuzzer':>8s} {'hybrid':>7s} {'afl':>6s}")
    for name, counts in table.items():
        budget = ARC_POINTS[name][0]
        marker = "  <- win" if counts["hybrid"] > counts["pfuzzer"] else ""
        print(
            f"  {name:8s} {budget:7d} {counts['pfuzzer']:8d} "
            f"{counts['hybrid']:7d} {counts['afl']:6d}{marker}"
        )
    print(f"  hybrid wins on {wins}/6 subjects (acceptance: >= {ACCEPT_WINS})")
    benchmark.extra_info["arcs"] = table
    benchmark.extra_info["wins"] = wins
    committed = _record({"arcs": table, "wins": wins}, "arcs")
    if committed and not os.environ.get("REPRO_BENCH_WRITE"):
        # Campaigns are deterministic: the committed counts must
        # reproduce exactly on any machine.
        assert table == committed["rates"]["arcs"], (
            "decoded-arc counts drifted from the committed trajectory"
        )
    if os.environ.get("REPRO_BENCH_SMOKE"):
        pytest.skip("smoke mode: measured, acceptance assertion skipped")
    assert wins >= ACCEPT_WINS, (
        f"hybrid beat pure pFuzzer on only {wins}/6 subjects "
        f"(acceptance: >= {ACCEPT_WINS})"
    )


def test_bench_hybrid_compiled_throughput(benchmark):
    """Compiled generation >= 50x the recursive interpreter."""
    rates = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    print("\n\n=== compiled generation vs recursive interpreter (json) ===")
    print(
        f"  mined grammar      {rates['grammar_rules']} rules, "
        f"{rates['grammar_alts']} alternatives (flood depth {FLOOD_DEPTH})"
    )
    print(f"  interpreter        {rates['interp_per_s']:12,.0f} sentences/s")
    print(f"  compiled           {rates['compiled_per_s']:12,.0f} sentences/s")
    print(
        f"  speedup            {rates['speedup']:.1f}x "
        f"(acceptance: >= {ACCEPT_SPEEDUP:.0f}x)"
    )
    benchmark.extra_info.update(rates)
    committed = _record({"throughput": rates}, "throughput")
    if committed and not os.environ.get("REPRO_BENCH_WRITE"):
        # The grammar shape is deterministic even though the rates are
        # timings: drift here means the mining pipeline changed.
        recorded = committed["rates"]["throughput"]
        assert rates["grammar_rules"] == recorded["grammar_rules"]
        assert rates["grammar_alts"] == recorded["grammar_alts"]
    if os.environ.get("REPRO_BENCH_SMOKE"):
        pytest.skip("smoke mode: measured, acceptance assertion skipped")
    assert rates["speedup"] >= ACCEPT_SPEEDUP, (
        f"compiled generator is only {rates['speedup']:.1f}x the "
        f"interpreter (acceptance: >= {ACCEPT_SPEEDUP:.0f}x)"
    )
