"""Ablations — the §3 design choices, measured.

DESIGN.md calls out the heuristic's components (input-length penalty,
2×replacement bonus, stack-size penalty, parents sign, path novelty) and
the naive DFS/BFS searches the paper dismisses.  Each ablation runs the
fuzzer on json with one component disabled and reports token coverage, plus
the §3 Dyck-path analysis behind the closing problem.
"""

import pytest

from repro.analysis.dyck import closed_path_probability, simulate_random_walk
from repro.analysis.search import bfs_search, dfs_search
from repro.core.config import FuzzerConfig, HeuristicWeights
from repro.core.fuzzer import PFuzzer
from repro.eval.token_cov import token_coverage
from repro.subjects.registry import load_subject

BUDGET = 2_000
SEEDS = (0, 3)

ABLATIONS = {
    "full": HeuristicWeights(),
    "no-length-penalty": HeuristicWeights(input_length=0.0),
    "no-replacement-bonus": HeuristicWeights(replacement_length=0.0),
    "no-stack-penalty": HeuristicWeights(stack_size=0.0),
    "no-path-novelty": HeuristicWeights(path_repetition=0.0),
    "paper-literal-parents": HeuristicWeights(parents=1.0),
}


def run_variant(weights: HeuristicWeights) -> float:
    best = 0.0
    for seed in SEEDS:
        fuzzer = PFuzzer(
            load_subject("json"),
            FuzzerConfig(seed=seed, max_executions=BUDGET, weights=weights),
        )
        result = fuzzer.run()
        coverage = token_coverage("json", result.valid_inputs)
        best = max(best, coverage.percent())
    return best


@pytest.fixture(scope="module")
def ablation_scores():
    return {name: run_variant(weights) for name, weights in ABLATIONS.items()}


def test_bench_heuristic_ablations(benchmark, ablation_scores):
    benchmark.pedantic(run_variant, args=(HeuristicWeights(),), rounds=1, iterations=1)
    print("\n\n=== Ablations: json token coverage (best of 2 seeds) ===")
    for name, score in sorted(ablation_scores.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<24} {score:5.1f}%")
    full = ablation_scores["full"]
    assert full >= 75.0
    # The replacement bonus is what finds keywords; dropping it must not
    # *improve* things, and the full heuristic is never the worst variant.
    assert full >= ablation_scores["no-replacement-bonus"] - 10.0
    assert full >= min(ablation_scores.values())


def test_bench_naive_searches(benchmark):
    """§3: DFS opens what it cannot close; BFS drowns in breadth."""
    subject = load_subject("expr")

    def run_searches():
        return (
            dfs_search(subject, budget=600, seed=1),
            bfs_search(subject, budget=600, seed=1),
        )

    dfs, bfs = benchmark.pedantic(run_searches, rounds=1, iterations=1)
    pf = PFuzzer(load_subject("expr"), FuzzerConfig(seed=1, max_executions=600)).run()
    print("\n\n=== Naive search vs heuristic (expr, 600 executions) ===")
    print(f"  DFS: {len(dfs.valid_inputs)} valid, max depth {dfs.max_depth_reached}")
    print(f"  BFS: {len(bfs.valid_inputs)} valid, max depth {bfs.max_depth_reached}")
    print(f"  pFuzzer: {len(pf.all_valid)} valid")
    assert dfs.max_depth_reached > bfs.max_depth_reached
    assert pf.all_valid


def test_bench_tokenization_bridge(benchmark):
    """§7.2 future work: token-taint bridging on tinyc.

    Without the bridge, tokenization destroys the data flow the fuzzer
    needs to continue after a keyword; with it, the parser's token
    expectations come back as string comparisons.  Measured as valid-input
    yield at equal budgets.
    """
    from repro.subjects.tinyc import TinyCSubject

    def run_with(bridge: bool) -> int:
        total = 0
        for seed in SEEDS:
            result = PFuzzer(
                TinyCSubject(token_bridge=bridge),
                FuzzerConfig(seed=seed, max_executions=BUDGET),
            ).run()
            total += len(result.all_valid)
        return total

    bridged = benchmark.pedantic(run_with, args=(True,), rounds=1, iterations=1)
    plain = run_with(False)
    print("\n\n=== §7.2 ablation: token-taint bridging (tinyc) ===")
    print(f"  plain   : {plain} valid inputs over {len(SEEDS)} seeds")
    print(f"  bridged : {bridged} valid inputs over {len(SEEDS)} seeds")
    assert bridged > plain


def test_bench_table_driven(benchmark):
    """§7.1 future work: table-element coverage for table-driven parsers.

    The plain LL(1) engine gives the fuzzer neither coverage signal nor
    expansion comparisons; instrumenting table-cell consultations restores
    both.
    """
    from repro.tables import TableExprSubject

    def run_with(instrumented: bool) -> int:
        total = 0
        for seed in SEEDS:
            result = PFuzzer(
                TableExprSubject(instrumented=instrumented),
                FuzzerConfig(seed=seed, max_executions=800),
            ).run()
            total += len(result.all_valid)
        return total

    instrumented = benchmark.pedantic(run_with, args=(True,), rounds=1, iterations=1)
    plain = run_with(False)
    print("\n\n=== §7.1 ablation: table-element coverage (LL(1) expr) ===")
    print(f"  plain table parser        : {plain} valid inputs")
    print(f"  instrumented table parser : {instrumented} valid inputs")
    assert instrumented > plain


def test_bench_related_work_fuzzers(benchmark):
    """§6.2 related work: AFL < Steelix/Driller < pFuzzer on keywords.

    Steelix's comparison-progress feedback advances one byte per
    generation; Driller's symbolic stints drill past keyword roadblocks on
    stagnation; pFuzzer splices whole comparison values.  Same budget,
    keyword tokens found on json.
    """
    from repro.eval.campaign import run_campaign

    def keyword_count(tool: str) -> int:
        best = 0
        for seed in SEEDS:
            output = run_campaign(tool, "json", 2_500, seed=seed)
            coverage = token_coverage("json", output.valid_inputs)
            best = max(best, len(coverage.found & {"true", "false", "null"}))
        return best

    steelix = benchmark.pedantic(keyword_count, args=("steelix",), rounds=1, iterations=1)
    afl = keyword_count("afl")
    driller = keyword_count("driller")
    pfuzzer = keyword_count("pfuzzer")
    print("\n\n=== §6.2: keyword tokens on json (of 3, best of seeds) ===")
    print(f"  afl     : {afl}")
    print(f"  steelix : {steelix}")
    print(f"  driller : {driller}")
    print(f"  pfuzzer : {pfuzzer}")
    assert afl <= steelix <= pfuzzer
    assert afl <= driller
    assert pfuzzer == 3


def test_bench_hybrid_pipeline(benchmark):
    """§6.2's concluding suggestion: "start fuzzing with a fast lexical
    fuzzer such as AFL, continue with syntactic fuzzing such as pFuzzer".

    AFL's corpus seeds a pFuzzer campaign (via ``initial_inputs``); the
    pipeline is compared against pFuzzer-from-scratch at the same total
    budget.
    """
    from repro.baselines.afl import AFLConfig, AFLFuzzer
    from repro.subjects.registry import load_subject

    def pipeline() -> float:
        afl = AFLFuzzer(
            load_subject("json"), AFLConfig(seed=3, max_executions=1_000)
        ).run()
        seeded = PFuzzer(
            load_subject("json"),
            FuzzerConfig(
                seed=3,
                max_executions=1_500,
                initial_inputs=tuple(afl.valid_inputs[:50]),
            ),
        ).run()
        return token_coverage("json", seeded.valid_inputs).percent()

    piped = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    scratch = token_coverage(
        "json",
        PFuzzer(
            load_subject("json"), FuzzerConfig(seed=3, max_executions=2_500)
        ).run().valid_inputs,
    ).percent()
    print("\n\n=== §6.2 hybrid pipeline (json token coverage) ===")
    print(f"  AFL 1000 execs -> pFuzzer 1500 execs : {piped:.1f}%")
    print(f"  pFuzzer 2500 execs from scratch       : {scratch:.1f}%")
    assert piped >= 50.0


def test_bench_semantic_checks(benchmark):
    """§7.3 limitation: parser-valid inputs vs post-parse semantic checks."""
    from repro.subjects.mjs import MjsSubject

    sloppy = MjsSubject()
    strict = MjsSubject(semantic_checks=True)
    result = benchmark.pedantic(
        lambda: PFuzzer(sloppy, FuzzerConfig(seed=5, max_executions=2_500)).run(),
        rounds=1,
        iterations=1,
    )
    parser_valid = len(result.all_valid)
    also_semantic = sum(strict.accepts(text) for text in result.all_valid)
    print("\n\n=== §7.3: semantic restrictions (mjs) ===")
    print(f"  parser-valid inputs          : {parser_valid}")
    print(f"  ... passing semantic checks  : {also_semantic}")
    assert also_semantic < parser_valid


def test_bench_guess_cost(benchmark):
    """§2 cost claim: 'building a valid input of size n takes in worst
    case 2n guesses'.  Measured as executions per emitted character on the
    walkthrough subject."""
    from repro.analysis.guesses import best_cost_per_length, measure_guess_costs
    from repro.subjects.expr import ExprSubject

    costs = benchmark.pedantic(
        measure_guess_costs, args=(ExprSubject(), 600, 1), rounds=1, iterations=1
    )
    best = best_cost_per_length(costs)
    print("\n\n=== §2: cheapest emission per input length (expr) ===")
    for length in sorted(best):
        cost = best[length]
        print(f"  len {length:2d}: {cost.executions:4d} executions ({cost.text!r})")
    assert costs
    # The first emitted input arrives within a handful of guesses.
    assert costs[0].executions <= 20


def test_bench_dyck_closing_probability(benchmark):
    """§3 footnote 2: P(closed after 2n steps) = 1/(n+1); ~1 % at n=100."""
    probability = benchmark(simulate_random_walk, 40, 20_000, 1)
    print("\n\n=== Dyck-path closing probabilities ===")
    for steps in (4, 10, 40, 100, 200):
        n = steps // 2
        print(
            f"  2n={steps:<4} analytic 1/(n+1)={closed_path_probability(n):.4f}"
        )
    print(f"  empirical (2n=40): {probability:.4f}")
    assert closed_path_probability(100) < 0.01
    assert probability < closed_path_probability(5)
