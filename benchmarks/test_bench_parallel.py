"""Parallel campaign executor — sequential vs parallel wall time.

The evaluation grid is embarrassingly parallel (every (tool, subject, seed)
cell is independent), so wall time should scale with worker count.  This
bench runs a small grid both ways, records both timings in the bench JSON
(``extra_info``) and, on machines with enough cores, asserts the >= 2x
speedup at 4 workers.  On starved CI boxes (< 4 CPUs) the speedup is
physically impossible, so only equivalence is asserted there.
"""

import os
import time

from repro.eval.campaign import run_campaign
from repro.eval.parallel import RunSpec, RunStatus, run_grid
from repro.eval.stats import summarize_grid

JOBS = 4

#: Small grid: 2 tools x 2 subjects x 2 seeds, budgets sized for seconds
#: of sequential wall time so pool overhead is amortised.
SPECS = tuple(
    RunSpec(tool, subject, budget, seed)
    for tool, subject, budget in (
        ("pfuzzer", "json", 2_000),
        ("pfuzzer", "tinyc", 2_000),
        ("afl", "json", 2_000),
        ("afl", "tinyc", 2_000),
    )
    for seed in (0, 3)
)


def _run_sequential():
    return [
        run_campaign(spec.tool, spec.subject, spec.budget, seed=spec.seed)
        for spec in SPECS
    ]


def _run_parallel():
    return run_grid(list(SPECS), jobs=JOBS)


def test_bench_parallel_speedup(benchmark):
    sequential_start = time.monotonic()
    sequential = _run_sequential()
    sequential_seconds = time.monotonic() - sequential_start

    parallel_start = time.monotonic()
    records = benchmark.pedantic(_run_parallel, rounds=1, iterations=1)
    parallel_seconds = time.monotonic() - parallel_start

    speedup = sequential_seconds / parallel_seconds if parallel_seconds else 0.0
    benchmark.extra_info["grid_cells"] = len(SPECS)
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["sequential_seconds"] = round(sequential_seconds, 3)
    benchmark.extra_info["parallel_seconds"] = round(parallel_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    summary = summarize_grid(record.metrics for record in records)
    print("\n\n=== Parallel executor: sequential vs parallel wall time ===")
    print(f"  grid cells            {len(SPECS)}")
    print(f"  sequential            {sequential_seconds:6.2f}s")
    print(f"  parallel (--jobs {JOBS})   {parallel_seconds:6.2f}s")
    print(f"  speedup               {speedup:6.2f}x on {os.cpu_count()} CPU(s)")
    print(f"  total executions      {summary.total_executions}")
    print(f"  mean throughput       {summary.mean_executions_per_second:,.0f} exec/s")

    # Equivalence: the parallel grid is the sequential grid, cell for cell.
    assert all(record.status is RunStatus.OK for record in records)
    for record, expected in zip(records, sequential):
        assert record.output.valid_inputs == expected.valid_inputs
        assert record.output.executions == expected.executions

    # Speedup: only claimable when the hardware can physically deliver it.
    if (os.cpu_count() or 1) >= JOBS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at {JOBS} workers, got {speedup:.2f}x"
        )
