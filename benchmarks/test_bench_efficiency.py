"""§5.2 efficiency claim — "while requiring fewer tests by orders of
magnitude".

The paper observes AFL generating ~1,000× more inputs than pFuzzer for its
coverage.  Measured here as executions-per-token and as the token-discovery
curve on json: how many executions each tool needs to reach each level of
token coverage.
"""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.eval.campaign import run_campaign
from repro.eval.stats import discovery_curve, executions_to_reach, summarize
from repro.subjects.registry import load_subject

BUDGET = 3_000
SEED = 3


@pytest.fixture(scope="module")
def outputs():
    return {
        tool: run_campaign(tool, "json", BUDGET, seed=SEED)
        for tool in ("pfuzzer", "afl", "random", "klee")
    }


def test_bench_executions_per_token(benchmark, outputs):
    stats = benchmark.pedantic(
        lambda: {
            tool: summarize("json", output.valid_inputs, output.executions)
            for tool, output in outputs.items()
        },
        rounds=1,
        iterations=1,
    )
    print("\n\n=== §5.2 efficiency: executions per json token ===")
    for tool, stat in sorted(stats.items(), key=lambda kv: kv[1].executions_per_token):
        cost = stat.executions_per_token
        rendered = f"{cost:8.1f}" if cost != float("inf") else "     inf"
        print(
            f"  {tool:<8} {stat.tokens_found:2d} tokens, "
            f"{stat.valid_inputs:5d} valid inputs, {rendered} executions/token"
        )
    assert stats["pfuzzer"].executions_per_token < stats["random"].executions_per_token
    assert stats["pfuzzer"].executions_per_token < stats["afl"].executions_per_token
    assert stats["pfuzzer"].tokens_found == max(s.tokens_found for s in stats.values())


def test_bench_discovery_curve(benchmark):
    result = benchmark.pedantic(
        lambda: PFuzzer(
            load_subject("json"), FuzzerConfig(seed=SEED, max_executions=BUDGET)
        ).run(),
        rounds=1,
        iterations=1,
    )
    curve = discovery_curve("json", result.emit_log)
    print("\n\n=== pFuzzer token-discovery curve (json) ===")
    for point in curve:
        print(f"  after {point.executions:5d} executions: {point.tokens_found:2d} tokens")
    assert curve[-1].tokens_found >= 10
    # Keywords (all 12 tokens) are reached well inside the budget.
    full = executions_to_reach(curve, 12)
    if full > 0:
        assert full <= BUDGET
