"""Figure 2 — code coverage per subject and tool.

Runs the AFL / KLEE / pFuzzer campaigns (shared with the Figure 3 bench),
re-executes each tool's valid inputs and reports line-coverage percentages.
The asserted shape follows the paper's §5.2 findings:

* AFL ≥ pFuzzer on the shallow subjects (ini, csv) — randomness wins where
  any two characters cover everything;
* pFuzzer > AFL on tinyC — complex-but-small code needs structured inputs;
* KLEE collapses on mjs (path explosion).
"""

import pytest

from bench_common import SUBJECTS, TOOLS, all_campaigns
from repro.eval.code_cov import coverage_of_inputs
from repro.eval.report import render_figure2


@pytest.fixture(scope="module")
def campaigns():
    return all_campaigns()


def measure_grid(campaigns):
    return {
        (subject, tool): coverage_of_inputs(subject, inputs)
        for (subject, tool), inputs in campaigns.items()
    }


def test_bench_figure2(benchmark, campaigns):
    grid = benchmark.pedantic(measure_grid, args=(campaigns,), rounds=1, iterations=1)
    print("\n\n=== Figure 2: coverage by each tool ===")
    print(render_figure2(grid, SUBJECTS, TOOLS))

    # Shape assertions (paper §5.2).
    assert grid[("csv", "afl")] >= grid[("csv", "pfuzzer")]
    assert grid[("tinyc", "pfuzzer")] > grid[("tinyc", "afl")]
    assert grid[("mjs", "klee")] < grid[("mjs", "afl")]
    assert grid[("mjs", "klee")] < grid[("mjs", "pfuzzer")]
    # Everybody covers something on every subject except KLEE on mjs, which
    # is allowed to be near-zero.
    for subject in SUBJECTS:
        for tool in TOOLS:
            if (subject, tool) == ("mjs", "klee"):
                continue
            assert grid[(subject, tool)] > 0.0, (subject, tool)
