"""Adaptive scheduling acceptance: compute follows coverage gain.

The tentpole scenario from the adaptive-scheduling issue: a mixed fleet
of one *productive* job (still discovering on every slice) and one
*plateaued* job (a first-slice burst, then a dead flat line), fixed
seeds, one worker.  The blind stride scheduler splits slices evenly, so
by the time the productive job reaches its target coverage the fleet has
spent roughly twice the productive job's budget.  The adaptive scheduler
parks the plateau after a few low-gain slices and probes it
periodically, so the same target costs little more than the productive
budget alone.

The fleet is synthetic — the real :class:`CampaignScheduler` and
:class:`JobStore` drive a deterministic in-process fake worker pool — so
the measured quantity (fleet executions spent until the productive job
finishes) is an exact, machine-independent number, not a timing.  The
acceptance criterion: adaptive reaches the productive job's target in
**<= 60%** of the blind scheduler's executions.

The tracked trajectory lives in repo-root ``BENCH_adaptive.json``: run
with ``REPRO_BENCH_WRITE=1`` to append an entry; ``REPRO_BENCH_SMOKE=1``
keeps the measurement but skips the acceptance assertion.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List

import pytest

from repro.eval.campaign import ToolOutput
from repro.service.gain import GainConfig
from repro.service.jobs import JobSpec, JobState, JobStore
from repro.service.scheduler import (
    CampaignScheduler,
    SchedulerConfig,
    SliceResult,
)

#: Tracked trajectory (committed; see module docstring).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_adaptive.json"

SLICE = 100
BUDGET = 30 * SLICE  # per job

#: Park a plateau within a few 100-execution slices (same knobs the
#: scheduler property tests use).
GAIN = GainConfig(decay=0.99, min_evidence=100.0, pause_threshold=0.02,
                  probe_every=2_000)


@dataclass
class _JobSim:
    profile: Callable[[int], int]  # slice_index -> discoveries
    executions: int = 0
    slices: int = 0
    valid: List[str] = field(default_factory=list)


class _FakePool:
    """Deterministic synchronous stand-in for the scheduler's WorkerPool."""

    def __init__(self, sims: Dict[int, _JobSim]) -> None:
        self.sims = sims
        self.workers: Dict[int, dict] = {}
        self.next_id = 0

    def __len__(self) -> int:
        return len(self.workers)

    def spawn(self) -> int:
        self.workers[self.next_id] = None
        self.next_id += 1
        return self.next_id - 1

    def worker_ids(self) -> List[int]:
        return sorted(self.workers)

    def send(self, worker_id: int, task: dict) -> None:
        self.workers[worker_id] = task

    def drain(self, timeout: float = 0.0) -> List[tuple]:
        messages = []
        for worker_id in sorted(self.workers):
            task = self.workers[worker_id]
            if task is None:
                continue
            self.workers[worker_id] = None
            sim = self.sims[task["seed"]]
            delta = min(task["slice_executions"],
                        task["budget"] - sim.executions)
            hits = min(delta, max(0, sim.profile(sim.slices)))
            sim.slices += 1
            sim.executions += delta
            sim.valid.extend(
                f"s{task['seed']}-{i}"
                for i in range(len(sim.valid), len(sim.valid) + hits)
            )
            done = sim.executions >= task["budget"]
            output = ToolOutput(
                tool="pfuzzer", subject=task["subject"], seed=task["seed"],
                valid_inputs=list(sim.valid), executions=sim.executions,
                wall_time=0.0, queue_depth=1,
            )
            messages.append((
                "ok", worker_id, task["job_id"],
                SliceResult(job_id=task["job_id"], done=done, output=output,
                            fingerprint="fp" if done else None,
                            peak_rss_bytes=0, slice_wall=0.0),
            ))
        return messages

    def reap(self) -> List[tuple]:
        return []

    def remove(self, worker_id: int, terminate: bool = False) -> None:
        self.workers.pop(worker_id, None)

    def shutdown(self) -> None:
        self.workers.clear()


def _executions_to_target(root: Path, adaptive: bool) -> int:
    """Fleet executions spent when the productive job reaches its target
    (its full budget of steady-gain slices — the coverage proxy)."""
    sims = {
        0: _JobSim(profile=lambda s: 5),               # productive
        1: _JobSim(profile=lambda s: 5 if s == 0 else 0),  # plateaued
    }
    store = JobStore(root / "journal.jsonl")
    productive = store.submit(
        JobSpec(subject="expr", budget=BUDGET, seed=0, checkpoint_every=SLICE)
    )
    store.submit(
        JobSpec(subject="expr", budget=BUDGET, seed=1, checkpoint_every=SLICE)
    )
    spent_at_target = {}

    def on_slice(record, metrics, delta, slice_wall, trace_events):
        if (
            record.job_id == productive.job_id
            and record.executions >= BUDGET
            and "target" not in spent_at_target
        ):
            spent_at_target["target"] = scheduler._fleet_executions

    scheduler = CampaignScheduler(
        store,
        root,
        SchedulerConfig(workers=1, slice_executions=SLICE, backoff=0.0,
                        adaptive=adaptive, gain=GAIN),
        on_slice=on_slice,
    )
    scheduler.pool = _FakePool(sims)
    scheduler.run_until_idle()
    assert all(r.state is JobState.DONE for r in store.list())
    return spent_at_target["target"]


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=BENCH_PATH.parent,
                check=True,
                capture_output=True,
                text=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def test_bench_adaptive_reaches_target_in_60_percent(benchmark, tmp_path):
    """The adaptive-scheduling acceptance number, exactly reproducible."""
    blind, adaptive = benchmark.pedantic(
        lambda: (
            _executions_to_target(tmp_path / "blind", adaptive=False),
            _executions_to_target(tmp_path / "adaptive", adaptive=True),
        ),
        rounds=1,
        iterations=1,
    )
    ratio = adaptive / blind
    print("\n\n=== adaptive scheduling: executions to productive target ===")
    print(f"  blind stride   {blind:7d} fleet executions")
    print(f"  adaptive       {adaptive:7d} fleet executions")
    print(f"  ratio          {ratio:.3f}  (acceptance: <= 0.60)")
    benchmark.extra_info["blind_executions"] = blind
    benchmark.extra_info["adaptive_executions"] = adaptive
    benchmark.extra_info["ratio"] = ratio
    if os.environ.get("REPRO_BENCH_WRITE"):
        entry = {
            "git_rev": _git_rev(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": sys.version.split()[0],
            "rates": {
                "blind_executions": blind,
                "adaptive_executions": adaptive,
                "ratio": ratio,
            },
        }
        document = (
            json.loads(BENCH_PATH.read_text())
            if BENCH_PATH.exists()
            else {"schema": 1, "trajectory": []}
        )
        document["trajectory"].append(entry)
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
        print(f"  appended trajectory entry {entry['git_rev']} to {BENCH_PATH}")
    elif BENCH_PATH.exists():
        committed = json.loads(BENCH_PATH.read_text())["trajectory"][-1]
        print(
            f"  committed entry {committed['git_rev']}: "
            f"ratio {committed['rates']['ratio']:.3f}"
        )
        # The fleet is synthetic and deterministic: any drift from the
        # committed ratio is a scheduling behavior change, not noise.
        assert ratio == pytest.approx(committed["rates"]["ratio"]), (
            "adaptive schedule drifted from the committed trajectory"
        )
    if os.environ.get("REPRO_BENCH_SMOKE"):
        pytest.skip("smoke mode: measured, acceptance assertion skipped")
    assert ratio <= 0.60, (
        f"adaptive needed {ratio:.1%} of the blind scheduler's executions "
        "(acceptance: <= 60%)"
    )
