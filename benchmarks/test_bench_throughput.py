"""Hot-path throughput: backends and execution-engine modes.

The execution engine is the fuzzer's hot path — every campaign iteration
costs up to two subject runs under coverage.  This benchmark replays a
fixed json corpus (valid, rejected and EOF-truncated inputs, shallow and
nested) through :func:`run_subject` under both backends and records
executions/second for each in the bench JSON (``extra_info``), plus the
speedup ratio the tentpole targets (AST >= 3x settrace on json).

The executor matrix measures what the execution-engine tentpole removes:
per-candidate and per-slice *fixed* costs.  Four modes per subject x
backend cell:

* ``inline`` — warm in-process ``run_subject`` (the reference upper
  bound; a long-lived campaign already amortises setup);
* ``coldstart`` — a fresh interpreter per corpus slice (spawn + import +
  instrument + replay), the shape every grid cell and scheduler slice
  paid before the pooled engine existed;
* ``pooled`` — persistent worker, ``fork()`` per candidate (the AFL
  isolation path);
* ``batched`` — persistent worker, same-process runs, one speculative
  round-trip per corpus slice (the throughput path).

The tracked trajectory lives in repo-root ``BENCH_throughput.json``: run
with ``REPRO_BENCH_WRITE=1`` to append an entry (git rev + timestamp +
rates); without it, the run prints the delta against the committed entry
instead.  The headline acceptance ratio is batched >= 2x coldstart on
the json subject under the ast backend.

Run with ``--benchmark-json=out.json`` to persist the numbers; set
``REPRO_BENCH_SMOKE=1`` (CI smoke) to keep the measurements but skip the
ratio assertions, which need an unloaded machine.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.runtime.executor import PooledExecutor
from repro.runtime.harness import COVERAGE_BACKENDS, run_subject
from repro.subjects.registry import load_subject

#: Tracked throughput trajectory (committed; see module docstring).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

#: Subject x backend cells the executor matrix measures.
MATRIX_SUBJECTS = ("json", "ini")
EXECUTOR_BENCH_MODES = ("inline", "coldstart", "pooled", "batched")

#: Replay corpus: the mix a real campaign sees — rejections dominate, with
#: a few deep valid inputs exercising loops, recursion and handler arcs.
CORPUS = (
    "",
    "1",
    "[1, 2]",
    '{"a": true}',
    "[1,",
    '"str"',
    "nul",
    "-1.5e3",
    '{"a": {"b": [1, 2, {"c": null}]}}',
    "[" * 20 + "1" + "]" * 20,
    '{"k1": [true, false, null], "k2": "some longer string value", "k3": 1e-7}',
)


def _replay(subject, backend: str) -> None:
    for text in CORPUS:
        run_subject(subject, text, coverage_backend=backend)


def _rate(subject, backend: str, seconds: float = 1.5) -> float:
    """Executions/second over a fixed wall-clock window."""
    _replay(subject, backend)  # warm caches (instrumentation, arc tables)
    runs = 0
    started = time.perf_counter()
    while time.perf_counter() - started < seconds:
        _replay(subject, backend)
        runs += len(CORPUS)
    return runs / (time.perf_counter() - started)


@pytest.mark.parametrize("backend", COVERAGE_BACKENDS)
def test_bench_backend_throughput(benchmark, backend):
    """Per-backend replay cost; executions/sec lands in the bench JSON."""
    subject = load_subject("json")
    _replay(subject, backend)  # warm up outside the measurement
    benchmark.pedantic(
        _replay, args=(subject, backend), rounds=20, iterations=1, warmup_rounds=2
    )
    per_replay = benchmark.stats.stats.mean
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["corpus_size"] = len(CORPUS)
    benchmark.extra_info["executions_per_second"] = len(CORPUS) / per_replay


def test_bench_ast_speedup_over_settrace(benchmark):
    """The tentpole acceptance number: AST backend >= 3x settrace on json."""
    subject = load_subject("json")
    rates = benchmark.pedantic(
        lambda: {b: _rate(subject, b) for b in COVERAGE_BACKENDS},
        rounds=1,
        iterations=1,
    )
    ratio = rates["ast"] / rates["settrace"]
    benchmark.extra_info["settrace_per_second"] = rates["settrace"]
    benchmark.extra_info["ast_per_second"] = rates["ast"]
    benchmark.extra_info["speedup"] = ratio
    print("\n\n=== execution-engine throughput (json corpus) ===")
    for backend in COVERAGE_BACKENDS:
        print(f"  {backend:<9} {rates[backend]:8.0f} executions/s")
    print(f"  speedup   {ratio:.2f}x")
    if os.environ.get("REPRO_BENCH_SMOKE"):
        pytest.skip("smoke mode: measured, ratio assertion skipped")
    assert ratio >= 3.0, f"AST backend only {ratio:.2f}x faster than settrace"


# --------------------------------------------------------------------- #
# Execution-engine modes and the tracked trajectory
# --------------------------------------------------------------------- #


def _coldstart_rate(subject_name: str, backend: str, spawns: int) -> float:
    """Executions/second when every corpus slice pays a fresh process.

    Spawns a new interpreter that imports the package, loads and (for the
    ast backend) instruments the subject, and replays the corpus once —
    the per-cell/per-slice cost shape of the pre-engine grid and
    scheduler.  Best of ``spawns`` runs, to shed scheduler noise.
    """
    package_root = os.path.dirname(os.path.dirname(repro.__file__))
    script = (
        "import sys\n"
        f"sys.path.insert(0, {package_root!r})\n"
        "from repro.runtime.harness import run_subject\n"
        "from repro.subjects.registry import load_subject\n"
        f"subject = load_subject({subject_name!r})\n"
        f"for text in {list(CORPUS)!r}:\n"
        f"    run_subject(subject, text, coverage_backend={backend!r})\n"
    )
    best = float("inf")
    for _ in range(spawns):
        started = time.perf_counter()
        subprocess.run(
            [sys.executable, "-c", script], check=True, capture_output=True
        )
        best = min(best, time.perf_counter() - started)
    return len(CORPUS) / best


def _pooled_rate(
    subject, backend: str, isolation: str, batched: bool, seconds: float
) -> float:
    """Executions/second through a persistent one-worker executor."""
    with PooledExecutor(
        subject, coverage_backend=backend, isolation=isolation
    ) as executor:
        executor.run_batch(list(CORPUS))  # warm the worker
        runs = 0
        started = time.perf_counter()
        while time.perf_counter() - started < seconds:
            if batched:
                executor.run_batch(list(CORPUS))
            else:
                for text in CORPUS:
                    executor.execute(text)
            runs += len(CORPUS)
        return runs / (time.perf_counter() - started)


def _measure_matrix(seconds: float, spawns: int) -> dict:
    """rates[subject][backend][mode] -> executions/second."""
    rates: dict = {}
    for subject_name in MATRIX_SUBJECTS:
        subject = load_subject(subject_name)
        rates[subject_name] = {}
        for backend in COVERAGE_BACKENDS:
            rates[subject_name][backend] = {
                "inline": _rate(subject, backend, seconds=seconds),
                "coldstart": _coldstart_rate(subject_name, backend, spawns),
                "pooled": _pooled_rate(
                    subject, backend, "auto", batched=False, seconds=seconds
                ),
                "batched": _pooled_rate(
                    subject, backend, "none", batched=True, seconds=seconds
                ),
            }
    return rates


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=BENCH_PATH.parent,
                check=True,
                capture_output=True,
                text=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _print_matrix(rates: dict) -> None:
    print("\n\n=== executor throughput (executions/s) ===")
    header = "  {:<6} {:<9}".format("subj", "backend") + "".join(
        f"{mode:>11}" for mode in EXECUTOR_BENCH_MODES
    )
    print(header)
    for subject_name, backends in rates.items():
        for backend, modes in backends.items():
            row = "  {:<6} {:<9}".format(subject_name, backend) + "".join(
                f"{modes[mode]:>11.0f}" for mode in EXECUTOR_BENCH_MODES
            )
            print(row)


def _print_delta_vs_committed(rates: dict) -> None:
    """Non-blocking comparison against the committed trajectory."""
    if not BENCH_PATH.exists():
        print("  (no committed BENCH_throughput.json to compare against)")
        return
    trajectory = json.loads(BENCH_PATH.read_text())["trajectory"]
    if not trajectory:
        return
    committed = trajectory[-1]
    print(
        f"  delta vs committed entry {committed['git_rev']} "
        f"({committed['timestamp']}):"
    )
    for subject_name, backends in rates.items():
        for backend, modes in backends.items():
            reference = (
                committed["rates"].get(subject_name, {}).get(backend, {})
            )
            for mode, rate in modes.items():
                base = reference.get(mode)
                if not base:
                    continue
                change = 100.0 * (rate - base) / base
                print(
                    f"    {subject_name}/{backend}/{mode:<9} "
                    f"{rate:9.0f} exec/s ({change:+.0f}%)"
                )


def test_bench_executor_matrix(benchmark):
    """The engine acceptance matrix; optionally extends the trajectory.

    Smoke mode shrinks the measurement windows and skips the ratio
    assertions (they need an unloaded machine); the numbers still print
    and still land in the bench JSON.
    """
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    seconds, spawns = (0.4, 1) if smoke else (1.0, 3)
    rates = benchmark.pedantic(
        lambda: _measure_matrix(seconds, spawns), rounds=1, iterations=1
    )
    _print_matrix(rates)
    headline = rates["json"]["ast"]
    ratio = headline["batched"] / headline["coldstart"]
    print(f"  headline: json/ast batched/coldstart = {ratio:.2f}x")
    benchmark.extra_info["rates"] = rates
    benchmark.extra_info["batched_over_coldstart_json_ast"] = ratio
    if os.environ.get("REPRO_BENCH_WRITE"):
        entry = {
            "git_rev": _git_rev(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
            "rates": rates,
            "ratios": {
                "json_ast_batched_over_coldstart": ratio,
                "json_ast_batched_over_inline": (
                    headline["batched"] / headline["inline"]
                ),
            },
        }
        document = (
            json.loads(BENCH_PATH.read_text())
            if BENCH_PATH.exists()
            else {"schema": 1, "trajectory": []}
        )
        document["trajectory"].append(entry)
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
        print(f"  appended trajectory entry {entry['git_rev']} to {BENCH_PATH}")
    else:
        _print_delta_vs_committed(rates)
    if smoke:
        pytest.skip("smoke mode: measured, ratio assertions skipped")
    assert ratio >= 2.0, (
        f"batched engine only {ratio:.2f}x coldstart on json/ast "
        "(acceptance: >= 2x)"
    )
    # Batching must amortise the per-candidate round-trip and fork cost
    # that the unbatched pooled path pays on every execution.
    assert headline["batched"] >= 2.0 * headline["pooled"], (
        f"batching only {headline['batched'] / headline['pooled']:.2f}x "
        "over per-candidate round-trips"
    )
