"""Hot-path throughput: settrace tracer vs AST-instrumented backend.

The execution engine is the fuzzer's hot path — every campaign iteration
costs up to two subject runs under coverage.  This benchmark replays a
fixed json corpus (valid, rejected and EOF-truncated inputs, shallow and
nested) through :func:`run_subject` under both backends and records
executions/second for each in the bench JSON (``extra_info``), plus the
speedup ratio the tentpole targets (AST >= 3x settrace on json).

Run with ``--benchmark-json=out.json`` to persist the numbers; set
``REPRO_BENCH_SMOKE=1`` (CI smoke) to keep the measurements but skip the
ratio assertion, which needs an unloaded machine.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runtime.harness import COVERAGE_BACKENDS, run_subject
from repro.subjects.registry import load_subject

#: Replay corpus: the mix a real campaign sees — rejections dominate, with
#: a few deep valid inputs exercising loops, recursion and handler arcs.
CORPUS = (
    "",
    "1",
    "[1, 2]",
    '{"a": true}',
    "[1,",
    '"str"',
    "nul",
    "-1.5e3",
    '{"a": {"b": [1, 2, {"c": null}]}}',
    "[" * 20 + "1" + "]" * 20,
    '{"k1": [true, false, null], "k2": "some longer string value", "k3": 1e-7}',
)


def _replay(subject, backend: str) -> None:
    for text in CORPUS:
        run_subject(subject, text, coverage_backend=backend)


def _rate(subject, backend: str, seconds: float = 1.5) -> float:
    """Executions/second over a fixed wall-clock window."""
    _replay(subject, backend)  # warm caches (instrumentation, arc tables)
    runs = 0
    started = time.perf_counter()
    while time.perf_counter() - started < seconds:
        _replay(subject, backend)
        runs += len(CORPUS)
    return runs / (time.perf_counter() - started)


@pytest.mark.parametrize("backend", COVERAGE_BACKENDS)
def test_bench_backend_throughput(benchmark, backend):
    """Per-backend replay cost; executions/sec lands in the bench JSON."""
    subject = load_subject("json")
    _replay(subject, backend)  # warm up outside the measurement
    benchmark.pedantic(
        _replay, args=(subject, backend), rounds=20, iterations=1, warmup_rounds=2
    )
    per_replay = benchmark.stats.stats.mean
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["corpus_size"] = len(CORPUS)
    benchmark.extra_info["executions_per_second"] = len(CORPUS) / per_replay


def test_bench_ast_speedup_over_settrace(benchmark):
    """The tentpole acceptance number: AST backend >= 3x settrace on json."""
    subject = load_subject("json")
    rates = benchmark.pedantic(
        lambda: {b: _rate(subject, b) for b in COVERAGE_BACKENDS},
        rounds=1,
        iterations=1,
    )
    ratio = rates["ast"] / rates["settrace"]
    benchmark.extra_info["settrace_per_second"] = rates["settrace"]
    benchmark.extra_info["ast_per_second"] = rates["ast"]
    benchmark.extra_info["speedup"] = ratio
    print("\n\n=== execution-engine throughput (json corpus) ===")
    for backend in COVERAGE_BACKENDS:
        print(f"  {backend:<9} {rates[backend]:8.0f} executions/s")
    print(f"  speedup   {ratio:.2f}x")
    if os.environ.get("REPRO_BENCH_SMOKE"):
        pytest.skip("smoke mode: measured, ratio assertion skipped")
    assert ratio >= 3.0, f"AST backend only {ratio:.2f}x faster than settrace"
