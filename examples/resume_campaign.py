#!/usr/bin/env python3
"""Persisting and resuming campaigns.

Fuzz in two sessions: the first campaign's corpus is saved to disk
(JSON Lines); the second campaign reloads it, revalidates, and continues
from those seeds via ``FuzzerConfig.initial_inputs`` — reaching strictly
more coverage than either half alone.

Run:
    python examples/resume_campaign.py [corpus.jsonl]
"""

import sys
import tempfile
from pathlib import Path

from repro import FuzzerConfig, PFuzzer, load_subject
from repro.eval.campaign import ToolOutput
from repro.eval.corpus import load_corpus, revalidate, save_corpus
from repro.eval.token_cov import token_coverage


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(tempfile.mkdtemp()) / "json-corpus.jsonl"
    )

    # Session 1: a short campaign, saved to disk.
    first = PFuzzer(
        load_subject("json"), FuzzerConfig(seed=3, max_executions=600)
    ).run()
    output = ToolOutput(
        tool="pfuzzer", subject="json", seed=3,
        valid_inputs=first.valid_inputs, executions=first.executions,
    )
    written = save_corpus(path, output)
    print(f"session 1: {first.executions} executions, {written} inputs -> {path}")
    coverage_1 = token_coverage("json", first.valid_inputs)
    print(f"  token coverage: {coverage_1.total_found}/12")

    # Session 2: reload, revalidate, resume.
    seeds = revalidate("json", load_corpus(path, subject="json"))
    print(f"\nsession 2: resuming from {len(seeds)} revalidated seeds")
    second = PFuzzer(
        load_subject("json"),
        FuzzerConfig(seed=4, max_executions=900, initial_inputs=tuple(seeds)),
    ).run()
    combined = list(seeds) + list(second.valid_inputs)
    coverage_2 = token_coverage("json", combined)
    print(f"  after resume: token coverage {coverage_2.total_found}/12")
    missing = coverage_2.missing()
    print(f"  still missing: {sorted(missing) if missing else 'nothing'}")


if __name__ == "__main__":
    main()
