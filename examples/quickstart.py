#!/usr/bin/env python3
"""Quickstart: fuzz the §2 arithmetic-expression parser from nothing.

This reproduces the paper's Figure 1 walkthrough: starting from the empty
string, pFuzzer observes the comparisons the parser makes, satisfies them
one character (or one keyword) at a time, and emits only valid inputs.

Run:
    python examples/quickstart.py
"""

from repro import FuzzerConfig, PFuzzer
from repro.subjects.expr import ExprSubject


def main() -> None:
    subject = ExprSubject()
    config = FuzzerConfig(seed=1, max_executions=800)
    fuzzer = PFuzzer(subject, config)

    print(f"Fuzzing {subject.description!r} with {config.max_executions} executions...")
    result = fuzzer.run()

    print(f"\nexecutions: {result.executions}")
    print(f"rejected:   {result.rejected}")
    print(f"emitted {len(result.valid_inputs)} valid inputs covering new code:")
    for execution, text in result.emit_log:
        print(f"  after {execution:4d} executions: {text!r}")

    print(f"\n{len(result.all_valid)} distinct valid inputs seen in total, e.g.:")
    print(" ", sorted(result.all_valid, key=len)[-8:])

    # Every output is valid by construction — check it, like the paper's
    # evaluation re-checks exit codes.
    assert all(subject.accepts(text) for text in result.valid_inputs)
    print("\nall emitted inputs re-validated: OK")


if __name__ == "__main__":
    main()
