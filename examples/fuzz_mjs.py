#!/usr/bin/env python3
"""Fuzzing a JavaScript engine: the paper's most challenging subject.

Runs pFuzzer against the mjs-style interpreter and reports which of the 99
Table 4 tokens the campaign covered, grouped by token length — the
single-subject version of Figure 3's mjs rows.

Run:
    python examples/fuzz_mjs.py [budget]
"""

import sys

from repro import FuzzerConfig, PFuzzer, load_subject
from repro.eval.token_cov import token_coverage
from repro.eval.tokens import inventory_by_length


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    subject = load_subject("mjs")
    print(f"Fuzzing mjs with {budget} executions (this takes a little while)...")
    result = PFuzzer(subject, FuzzerConfig(seed=5, max_executions=budget)).run()

    print(f"\nexecutions: {result.executions}, valid inputs emitted: {len(result.valid_inputs)}")
    interesting = [t for t in result.valid_inputs if len(t.strip()) > 3]
    print("sample emitted inputs:")
    for text in interesting[:10]:
        print(f"  {text!r}")

    coverage = token_coverage("mjs", result.valid_inputs)
    print(f"\ntoken coverage: {coverage.total_found}/{coverage.total_possible} "
          f"({coverage.percent():.1f}%)")
    for length, names in inventory_by_length("mjs").items():
        found = sorted(set(names) & coverage.found)
        print(f"  len {length:>2}: {len(found):2d}/{len(names):2d}  {' '.join(found)}")


if __name__ == "__main__":
    main()
