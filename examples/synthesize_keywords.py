#!/usr/bin/env python3
"""Keyword synthesis: the paper's headline capability.

Generating the string "while" by random chance is a 1-in-11-million event
(§1); pFuzzer gets it from a single recorded ``strcmp`` against the keyword
table.  This example fuzzes the JSON and tinyC subjects and shows which
keywords each campaign synthesised, next to an AFL-style campaign with the
same budget that finds none.

Run:
    python examples/synthesize_keywords.py
"""

from repro import FuzzerConfig, PFuzzer, load_subject
from repro.baselines import AFLConfig, AFLFuzzer

KEYWORDS = {
    "json": ("true", "false", "null"),
    "tinyc": ("if", "do", "else", "while"),
}

BUDGETS = {"json": 2_500, "tinyc": 4_000}
SEEDS = (3, 8, 0)


def keywords_found(subject_name: str, corpus) -> set:
    from repro.eval.extract import extract_tokens

    found = set()
    for text in corpus:
        found |= extract_tokens(subject_name, text)
    return found & set(KEYWORDS[subject_name])


def best_pfuzzer_corpus(subject_name: str) -> list:
    best: list = []
    for seed in SEEDS:
        result = PFuzzer(
            load_subject(subject_name),
            FuzzerConfig(seed=seed, max_executions=BUDGETS[subject_name]),
        ).run()
        if len(keywords_found(subject_name, result.valid_inputs)) > len(
            keywords_found(subject_name, best)
        ):
            best = list(result.valid_inputs)
    return best


def main() -> None:
    for subject_name in ("json", "tinyc"):
        budget = BUDGETS[subject_name]
        print(f"\n=== {subject_name} ({budget} executions per tool) ===")

        pf_corpus = best_pfuzzer_corpus(subject_name)
        pf_found = keywords_found(subject_name, pf_corpus)
        print(f"pFuzzer keywords: {sorted(pf_found) or 'none'}")
        examples = [t for t in pf_corpus if any(k in t for k in pf_found)]
        for text in examples[:4]:
            print(f"    e.g. {text!r}")

        afl = AFLFuzzer(
            load_subject(subject_name), AFLConfig(seed=3, max_executions=budget)
        ).run()
        afl_found = keywords_found(subject_name, afl.valid_inputs)
        print(f"AFL keywords:     {sorted(afl_found) or 'none'}")


if __name__ == "__main__":
    main()
