#!/usr/bin/env python3
"""The paper's §7 future-work items, implemented and measured.

Three limitations the paper names, each with the proposed fix:

* §7.1 table-driven parsers — branch coverage carries no signal; fix:
  coverage of table elements (``repro.tables``);
* §7.2 tokenization — token kinds break taint flow; fix: token-taint
  bridging (``repro.taint.bridge``);
* §7.3 semantic restrictions — parser-valid inputs fail later checks;
  no fix (it mirrors the lexing problem), but the failure is measurable.

Run:
    python examples/future_work.py
"""

from repro import FuzzerConfig, PFuzzer
from repro.subjects.mjs import MjsSubject
from repro.subjects.tinyc import TinyCSubject
from repro.tables import TableExprSubject

BUDGET = 1_500
SEEDS = (0, 3)


def total_valid(make_subject) -> int:
    total = 0
    for seed in SEEDS:
        result = PFuzzer(
            make_subject(), FuzzerConfig(seed=seed, max_executions=BUDGET)
        ).run()
        total += len(result.all_valid)
    return total


def main() -> None:
    print("=== §7.1: table-driven parsing ===")
    plain = total_valid(lambda: TableExprSubject(instrumented=False))
    instrumented = total_valid(lambda: TableExprSubject(instrumented=True))
    print(f"  plain LL(1) engine          : {plain:4d} valid inputs")
    print(f"  + table-element coverage    : {instrumented:4d} valid inputs")

    print("\n=== §7.2: tokenization ===")
    unbridged = total_valid(lambda: TinyCSubject())
    bridged = total_valid(lambda: TinyCSubject(token_bridge=True))
    print(f"  tinyc, taint lost at tokens : {unbridged:4d} valid inputs")
    print(f"  + token-taint bridging      : {bridged:4d} valid inputs")

    print("\n=== §7.3: semantic restrictions ===")
    sloppy = MjsSubject()
    strict = MjsSubject(semantic_checks=True)
    result = PFuzzer(sloppy, FuzzerConfig(seed=5, max_executions=2_000)).run()
    passing = sum(strict.accepts(text) for text in result.all_valid)
    print(f"  parser-valid mjs inputs     : {len(result.all_valid):4d}")
    print(f"  ... passing semantic checks : {passing:4d}")
    print("  (the gap is the §7.3 limitation: pFuzzer has no notion of a")
    print("   delayed constraint)")


if __name__ == "__main__":
    main()
