#!/usr/bin/env python3
"""Tool comparison on one subject: a miniature of Figures 2 and 3.

Runs pFuzzer, the AFL-style baseline and the KLEE-style baseline on the
JSON subject with equal budgets, then prints the token-coverage grid and
code-coverage bars the paper's evaluation reports.

Run:
    python examples/compare_tools.py [subject] [budget]
"""

import sys

from repro.eval.campaign import run_campaign
from repro.eval.code_cov import coverage_of_inputs
from repro.eval.report import render_figure2, render_figure3
from repro.eval.token_cov import figure3

TOOLS = ("afl", "klee", "pfuzzer")


def main() -> None:
    subject = sys.argv[1] if len(sys.argv) > 1 else "json"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 2_500

    corpora = {}
    for tool in TOOLS:
        output = run_campaign(tool, subject, budget, seed=3)
        corpora[(subject, tool)] = output.valid_inputs
        print(
            f"{tool:<8} {output.executions:6d} executions -> "
            f"{len(output.valid_inputs):4d} valid inputs "
            f"({output.wall_time:.1f}s)"
        )

    print("\n--- token coverage (Figure 3 shape) ---")
    coverages = figure3(corpora, [subject], TOOLS)
    print(render_figure3(coverages, [subject], TOOLS))

    print("\n--- code coverage (Figure 2 shape) ---")
    grid = {
        key: coverage_of_inputs(subject, inputs) for key, inputs in corpora.items()
    }
    print(render_figure2(grid, [subject], TOOLS))


if __name__ == "__main__":
    main()
