#!/usr/bin/env python3
"""The §7.4 pipeline: fuzz -> mine a grammar -> generate recursive inputs.

Parser-directed fuzzing explores shallow structure efficiently but is
inefficient for deep recursion (§7.4).  The proposed tool chain — mine a
grammar (AutoGram-style) from pFuzzer's valid inputs, then switch to
grammar-based generation — is implemented in :mod:`repro.miner`.

Run:
    python examples/mine_grammar.py
"""

from repro import FuzzerConfig, PFuzzer
from repro.miner import GrammarFuzzer, mine_grammar
from repro.subjects.expr import ExprSubject


def main() -> None:
    subject = ExprSubject()

    # Phase 1: parser-directed fuzzing for initial exploration.
    result = PFuzzer(subject, FuzzerConfig(seed=1, max_executions=600)).run()
    corpus = sorted(set(result.all_valid), key=len)[-20:]
    print(f"phase 1: pFuzzer produced {len(result.all_valid)} valid inputs")
    print("  sample:", corpus[-6:])

    # Phase 2: mine a grammar from the instrumentation's access traces.
    grammar = mine_grammar(subject, corpus)
    print("\nphase 2: mined grammar (nonterminals are parser functions):")
    print(grammar)
    print("\n  recursive nonterminals:",
          sorted(n for n in grammar.nonterminals() if grammar.is_recursive(n)))

    # Phase 3: grammar-based generation reaches depths pFuzzer's shallow
    # search would take far longer to find.
    generator = GrammarFuzzer(grammar, seed=7, max_depth=10)
    generated = generator.generate_many(12)
    print("\nphase 3: grammar-generated inputs:")
    accepted = 0
    for text in generated:
        ok = subject.accepts(text)
        accepted += ok
        print(f"  {'ok ' if ok else 'BAD'} {text!r}")
    deepest = max(text.count("(") for text in generated)
    print(f"\n{accepted}/{len(generated)} accepted; deepest nesting: {deepest}")


if __name__ == "__main__":
    main()
