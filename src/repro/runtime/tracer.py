"""Branch-coverage and call-depth tracer.

The paper instruments subjects with LLVM to track "(3) the sequence of
function calls together with current stack contents, and (4) the sequence of
basic blocks taken" (§4).  Here the same signals come from a
:func:`sys.settrace` hook restricted to the subject's source files:

* **branches** are line arcs ``(file, previous_line, line)`` — the dynamic
  equivalent of basic-block transitions;
* **call depth** is maintained by counting call/return events in subject
  frames, giving the ``avgStackSize()`` input of the heuristic;
* a monotonic **clock** (one tick per executed statement) timestamps both
  arcs and comparison events so the fuzzer can restrict coverage to
  "branches up to the first comparison of the last character" (§3.1).

Raw line events are normalised to *statement owners* (see
:mod:`repro.runtime.owners`): an event maps to the head line of the
innermost statement containing it, and consecutive events on the same owner
within a frame collapse into one.  This removes multi-line-statement and
per-item comprehension noise, and makes the event stream identical to the
one produced by the AST-instrumentation backend
(:mod:`repro.runtime.instrument`).
"""

from __future__ import annotations

import sys
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.runtime.owners import owner_map

Arc = Tuple[str, int, int]
Line = Tuple[str, int]

#: Pseudo previous-line used for a function's entry arc.
ENTRY = 0


class CoverageTracer:
    """Records line arcs, lines, and call depth for a set of source files.

    Use as a context manager around the subject execution::

        tracer = CoverageTracer(subject.files)
        with tracer:
            subject.parse(stream)

    Attributes:
        files: absolute filenames whose frames are traced.
        arcs: arc -> clock of first traversal.
        clock: number of line events seen so far.
        depth: current call-stack depth within traced code.
    """

    def __init__(self, files: Iterable[str]) -> None:
        self.files: FrozenSet[str] = frozenset(files)
        self._owners: Dict[str, Dict[int, int]] = {
            filename: owner_map(filename) for filename in self.files
        }
        self.arcs: Dict[Arc, int] = {}
        self.clock = 0
        self.depth = 0
        #: Active subject call stack as (function name, invocation serial)
        #: pairs — consumed by the grammar miner (§7.4 extension).
        self.call_stack: list = []
        self._serial = 0
        self._prev_line: Dict[int, Tuple[str, int]] = {}
        self._saved_trace = None

    # ------------------------------------------------------------------ #
    # settrace plumbing
    # ------------------------------------------------------------------ #

    def _global_trace(self, frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if filename not in self.files:
            return None
        self.depth += 1
        self._serial += 1
        self.call_stack.append((frame.f_code.co_name, self._serial))
        self._prev_line[id(frame)] = (filename, ENTRY)
        return self._local_trace

    def _local_trace(self, frame, event, arg):
        if event == "line":
            filename, previous = self._prev_line.get(
                id(frame), (frame.f_code.co_filename, ENTRY)
            )
            line = frame.f_lineno
            owners = self._owners.get(filename)
            if owners:
                line = owners.get(line, line)
            if line == previous:
                # Same statement as the previous event in this frame: a
                # continuation line, loop-header re-check on a one-line
                # body, or comprehension item — not a new statement.
                return self._local_trace
            self.clock += 1
            arc = (filename, previous, line)
            if arc not in self.arcs:
                self.arcs[arc] = self.clock
            self._prev_line[id(frame)] = (filename, line)
        elif event == "return":
            self.depth -= 1
            if self.call_stack:
                self.call_stack.pop()
            self._prev_line.pop(id(frame), None)
        return self._local_trace

    def __enter__(self) -> "CoverageTracer":
        self._saved_trace = sys.gettrace()
        sys.settrace(self._global_trace)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        sys.settrace(self._saved_trace)
        self._saved_trace = None
        # Reset transient state so a reused tracer cannot drift.
        self.depth = 0
        self.call_stack.clear()
        self._prev_line.clear()

    # ------------------------------------------------------------------ #
    # Providers handed to the taint recorder
    # ------------------------------------------------------------------ #

    def current_depth(self) -> int:
        """Call-stack depth inside subject code right now."""
        return self.depth

    def current_clock(self) -> int:
        """Monotonic line-event clock right now."""
        return self.clock

    def current_stack(self) -> Tuple[Tuple[str, int], ...]:
        """Snapshot of the subject call stack (name, invocation serial)."""
        return tuple(self.call_stack)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def arc_set(self) -> FrozenSet[Arc]:
        """All arcs traversed during the traced execution."""
        return frozenset(self.arcs)

    def arcs_until(self, clock: Optional[int]) -> FrozenSet[Arc]:
        """Arcs first traversed at or before ``clock`` (all arcs if None)."""
        if clock is None:
            return self.arc_set()
        return frozenset(arc for arc, first in self.arcs.items() if first <= clock)

    def line_set(self) -> FrozenSet[Line]:
        """All executed lines (for gcov-style line-coverage reporting)."""
        lines: Set[Line] = set()
        for filename, previous, line in self.arcs:
            lines.add((filename, line))
            if previous != ENTRY:
                lines.add((filename, previous))
        return frozenset(lines)
