"""Exceptions raised by subject programs.

The paper's subjects are set up to "abort parsing with a non-zero exit code
on the first error" (§5.1).  In this reproduction a subject signals rejection
by raising :class:`ParseError`; the harness converts exceptions into exit
codes so the fuzzers see the same interface as the paper's tools.
"""

from __future__ import annotations


class SubjectError(Exception):
    """Base class for every error a subject program can signal."""


class ParseError(SubjectError):
    """The input was rejected by the parser (non-zero exit).

    Attributes:
        message: human-readable description.
        index: input index at which the rejection happened, when known.
    """

    def __init__(self, message: str, index: int = -1) -> None:
        super().__init__(message)
        self.message = message
        self.index = index


class SemanticError(ParseError):
    """The input parsed but failed a post-parse semantic check.

    The paper disables semantic checking in mjs (§5.1); subjects here follow
    suit by default, but the checks exist and can be enabled to study the
    §7.3 limitation.
    """


class HangError(SubjectError):
    """The subject exceeded its execution step budget.

    The paper ran into this with a generated ``while(9);`` input (§5.2,
    footnote 6) and had to patch the input by hand because gcov loses its
    data on interrupt.  Our tracer has no such fragility, so hangs are simply
    a distinct exit status.
    """

    def __init__(self, steps: int) -> None:
        super().__init__(f"execution exceeded {steps} steps")
        self.steps = steps
