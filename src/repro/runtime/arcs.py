"""Arc interning: small-integer ids for branch arcs.

The fuzzer's hot loop is dominated by set operations over branch arcs —
``RunResult.branches``, the growing ``vBr`` union, and the heuristic's
``branches \\ vBr`` difference.  Hashing ``(filename, int, int)`` tuples for
every membership test is needlessly expensive, so each subject gets an
:class:`ArcTable` that interns every distinct arc to a dense small integer.
Both coverage backends (settrace and AST instrumentation) share the same
table per subject class, which is what makes their interned branch sets
directly comparable.

The table also hands out *stable* per-arc digests (blake2b over the decoded
tuple) so path signatures do not depend on ``PYTHONHASHSEED`` or on the
order arcs happened to be interned in.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

#: Decoded arc: ``(filename, previous_line, line)`` for line arcs, or the
#: auxiliary table-coverage tuples recorded via ``Recorder.record_branch``.
Arc = Tuple[str, int, int]


class ArcTable:
    """Bidirectional arc <-> small-int mapping with cached stable digests."""

    __slots__ = ("_ids", "_arcs", "_digests")

    def __init__(self) -> None:
        self._ids: Dict[tuple, int] = {}
        self._arcs: List[tuple] = []
        self._digests: List[Optional[bytes]] = []

    def __len__(self) -> int:
        return len(self._arcs)

    def intern(self, arc: tuple) -> int:
        """Return the id of ``arc``, assigning the next free id if new."""
        arc_id = self._ids.get(arc)
        if arc_id is None:
            arc_id = len(self._arcs)
            self._ids[arc] = arc_id
            self._arcs.append(arc)
            self._digests.append(None)
        return arc_id

    def arc(self, arc_id: int) -> tuple:
        """Decode an interned id back to the original arc tuple."""
        return self._arcs[arc_id]

    def decode(self, arc_ids: Iterable[int]) -> FrozenSet[tuple]:
        """Decode a set of interned ids to the original arc tuples."""
        arcs = self._arcs
        return frozenset(arcs[arc_id] for arc_id in arc_ids)

    def digest(self, arc_id: int) -> bytes:
        """Stable 8-byte digest of one arc (independent of intern order)."""
        cached = self._digests[arc_id]
        if cached is None:
            cached = blake2b(
                repr(self._arcs[arc_id]).encode("utf-8"), digest_size=8
            ).digest()
            self._digests[arc_id] = cached
        return cached

    def signature(self, arc_ids: Iterable[int]) -> int:
        """Stable signature of a branch path (a set of interned arcs).

        Hashes the sorted per-arc digests, so the result is identical across
        interpreter runs, hash seeds, backends and intern orders.
        """
        hasher = blake2b(digest_size=8)
        for digest in sorted(self.digest(arc_id) for arc_id in arc_ids):
            hasher.update(digest)
        return int.from_bytes(hasher.digest(), "big")


#: One table per subject identity; both backends intern through the same
#: table.  The key is normally the subject class, but adapter subjects that
#: wrap arbitrary callables (one class, many distinct parsers — see
#: :class:`repro.subjects.function.FunctionSubject`) publish an
#: ``arc_table_key`` attribute so each wrapped parser gets its own table.
_TABLES: Dict[object, ArcTable] = {}


def arc_table_for(subject) -> ArcTable:
    """The shared per-subject arc table (created on first use).

    Keyed by the subject's ``arc_table_key`` attribute when present,
    falling back to the subject class.
    """
    key = getattr(subject, "arc_table_key", None)
    if key is None:
        key = type(subject)
    table = _TABLES.get(key)
    if table is None:
        table = _TABLES[key] = ArcTable()
    return table
