"""Execution substrate: input streams, coverage tracing, and the run harness.

This package plays the role of the paper's LLVM instrumentation and driver:
it feeds a candidate input to a subject parser character by character
(:mod:`repro.runtime.stream`), records branch coverage and call-stack depth
with a :mod:`sys.settrace`-based tracer (:mod:`repro.runtime.tracer`), and
packages everything a fuzzer needs to know about one execution into a
:class:`~repro.runtime.harness.RunResult` (:mod:`repro.runtime.harness`).
"""

from repro.runtime.errors import (
    HangError,
    ParseError,
    SemanticError,
    SubjectError,
)
from repro.runtime.harness import ExitStatus, RunResult, run_subject
from repro.runtime.stream import InputStream
from repro.runtime.tracer import CoverageTracer

__all__ = [
    "SubjectError",
    "ParseError",
    "SemanticError",
    "HangError",
    "InputStream",
    "CoverageTracer",
    "RunResult",
    "ExitStatus",
    "run_subject",
]
