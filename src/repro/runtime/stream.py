"""Sequential character input stream with EOF-access detection.

Subjects read their input through an :class:`InputStream`, the analogue of C
``stdin``.  Every character handed out is a tainted
:class:`~repro.taint.tchar.TChar` carrying its input index.  Reading or
peeking *past the end* of the input returns the EOF sentinel and reports an
:class:`~repro.taint.events.EOFEvent` to the ambient recorder — the paper's
"attempt to access a character beyond the length of the input string is
interpreted as the program encountering EOF before processing is complete".
"""

from __future__ import annotations

from repro.taint.recorder import current_recorder
from repro.taint.tchar import TChar
from repro.taint.tstr import TaintedStr


class InputStream:
    """A string of input characters consumed one at a time.

    Attributes:
        text: the full input.
        pos: index of the next character to be read.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self._max_accessed = -1
        # TChar is immutable, so each index's proxy can be built once and
        # reused — peek-heavy parsers fetch the same character many times.
        self._chars: list = [None] * len(text)
        self._eof_char: TChar = None  # type: ignore[assignment]

    def __len__(self) -> int:
        return len(self.text)

    # ------------------------------------------------------------------ #
    # Character access
    # ------------------------------------------------------------------ #

    def _fetch(self, index: int) -> TChar:
        text = self.text
        if index >= len(text):
            recorder = current_recorder()
            if recorder is not None:
                recorder.record_eof(len(text))
            if self._max_accessed < len(text):
                self._max_accessed = len(text)
            char = self._eof_char
            if char is None:
                char = self._eof_char = TChar.eof(len(text))
            return char
        if self._max_accessed < index:
            self._max_accessed = index
        char = self._chars[index]
        if char is None:
            char = self._chars[index] = TChar(text[index], index)
        return char

    def next_char(self) -> TChar:
        """Read and consume the next character (C ``getchar``).

        At end of input this returns the EOF sentinel without advancing, so
        repeated reads keep returning EOF exactly like ``getchar``.
        Consumption (not peeking) is what attributes the character to the
        current parse function in the grammar miner's access log.
        """
        char = self._fetch(self.pos)
        if not char.is_eof:
            recorder = current_recorder()
            if recorder is not None:
                recorder.record_access(self.pos)
            self.pos += 1
        return char

    def peek(self, offset: int = 0) -> TChar:
        """Look ahead without consuming (C ``ungetc`` discipline).

        ``offset`` 0 is the character :meth:`next_char` would return next.
        """
        return self._fetch(self.pos + offset)

    def unread(self, count: int = 1) -> None:
        """Push back the last ``count`` consumed characters (C ``ungetc``)."""
        if count > self.pos:
            raise ValueError(f"cannot unread {count} characters at pos {self.pos}")
        self.pos -= count

    def read_while(self, predicate) -> TaintedStr:
        """Consume characters while ``predicate(char)`` holds.

        Each test is an ordinary (recorded) comparison; the collected buffer
        keeps per-character taints.
        """
        buffer = TaintedStr.empty()
        while True:
            char = self.peek()
            if char.is_eof or not predicate(char):
                return buffer
            buffer = buffer.append(char)
            recorder = current_recorder()
            if recorder is not None:
                recorder.record_access(self.pos)
            self.pos += 1

    # ------------------------------------------------------------------ #
    # Introspection for the harness
    # ------------------------------------------------------------------ #

    @property
    def at_end(self) -> bool:
        """True when every input character has been consumed."""
        return self.pos >= len(self.text)

    @property
    def max_accessed(self) -> int:
        """Largest index the program touched (``len(text)`` = past the end)."""
        return self._max_accessed

    def remaining(self) -> str:
        """Unconsumed tail of the input (diagnostics only)."""
        return self.text[self.pos :]

    def __repr__(self) -> str:
        return f"InputStream({self.text!r}, pos={self.pos})"
