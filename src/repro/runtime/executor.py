"""Persistent forked-worker execution engine (AFL-forkserver style).

:func:`repro.runtime.harness.run_subject` pays fixed costs on every call
when the caller is a fresh process: importing the subject, building its
AST instrumentation, warming the arc table.  A fuzzing campaign amortises
those inside one process, but the evaluation grid and the campaign
service pay them once per cell/slice.  This module is the forkserver
answer: a :class:`PooledExecutor` spawns persistent worker processes that
load and instrument the subject *once*, then serve candidate executions
over a pipe protocol for the lifetime of the campaign.

Isolation follows AFL: on POSIX each candidate runs in a ``fork()`` child
of the warm worker (inheriting the compiled instrumentation for free and
discarding any state the run mutated), with a same-process fallback
(``isolation="none"``) where fork is unavailable — subjects here are
pure-Python parsers whose per-run state is reset by the harness, so the
fallback is equivalence-tested, not best-effort.

Wire format: interned arc ids are process-local, so results cross the
pipe *decoded* — ``(status, error, [(arc_tuple, clock), ...],
comparisons, eof_events, crash_signature)`` — and
:func:`rehydrate_run_result` re-interns them through the parent's arc
table (tolerating the historical 5-tuple without the crash field).
Comparison/EOF events are plain NamedTuples of primitives and pickle
as-is.  Two :class:`RunResult` fields do not cross the pipe: ``value``
(the subject's parse result — unused by the fuzzing loop) and
``Recorder.accesses`` (consumed only by the grammar miner, which runs
its own executions).  Unexpected subject exceptions are CRASH *results*
(``run_subject`` classifies them), so they ride the normal result path;
:class:`ExecutorError` is reserved for harness-infrastructure failures
(a result that cannot pickle, a fork child that died without sending).

Batching: :meth:`PooledExecutor.prefetch` submits a slice of candidate
texts in one round-trip per worker; the worker streams results back as
each finishes, and :meth:`PooledExecutor.execute` consumes them from the
ready cache.  Because ``run_subject(subject, text)`` is a pure function
of ``text`` for these subjects, speculative prefetch never changes a
campaign's result — a wrong guess only wastes worker time, and the
fingerprint-equivalence harness holds exactly.

Fault tolerance: a worker that dies mid-batch (crash, OOM kill, the test
suite's kill hook) is detected by pipe EOF, respawned, and every
not-yet-received text of its outstanding batches is resubmitted —
determinism is unaffected because results are keyed by text.
"""

from __future__ import annotations

import os
import signal
from collections import OrderedDict, deque
from multiprocessing import connection, get_context
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.runtime.arcs import arc_table_for
from repro.runtime.harness import ExitStatus, RunResult, run_subject
from repro.taint.recorder import Recorder

#: Executor modes accepted by ``FuzzerConfig.executor``.
EXECUTOR_MODES = ("inline", "pooled")

#: Isolation modes accepted by ``FuzzerConfig.executor_isolation``:
#: ``"auto"`` resolves to ``"fork"`` where ``os.fork`` exists, else
#: ``"none"`` (the same-process re-init fallback).
ISOLATION_MODES = ("auto", "fork", "none")

#: Fault-injection hook for the test suite: when set, the *next* spawned
#: worker SIGKILLs itself after serving this many executions — a worker
#: death mid-batch, exactly what respawn-and-resubmit must survive.  The
#: hook is consumed by the spawn (reset to None), so the respawned worker
#: runs clean.  Never set in production.
_TEST_WORKER_KILL_AFTER: Optional[int] = None


class ExecutorError(RuntimeError):
    """A pooled execution failed on the worker side."""


def _resolve_isolation(isolation: str) -> str:
    if isolation not in ISOLATION_MODES:
        raise ValueError(
            f"unknown executor isolation {isolation!r}; "
            f"expected one of {ISOLATION_MODES}"
        )
    if isolation == "auto":
        return "fork" if hasattr(os, "fork") else "none"
    if isolation == "fork" and not hasattr(os, "fork"):
        return "none"
    return isolation


# --------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------- #


def serialize_run_result(result: RunResult) -> tuple:
    """Flatten a :class:`RunResult` into the pickle-safe wire tuple.

    Arc ids are decoded through the result's own table so the receiving
    process can re-intern them into *its* table (ids are process-local;
    the decoded tuples are the stable identity).
    """
    table = result.arc_table
    arcs = [
        (table.arc(arc_id) if table is not None else arc_id, clock)
        for arc_id, clock in result.arcs.items()
    ]
    recorder = result.recorder
    return (
        result.status.name,
        result.error,
        arcs,
        recorder.comparisons,
        recorder.eof_events,
        result.crash_signature,
    )


def rehydrate_run_result(subject, text: str, payload: tuple) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`serialize_run_result` output.

    The recorder comes back provider-less (depth/clock/stack providers
    belong to the worker's tracer); every query the fuzzing loop performs
    (``last_compared_index``, ``first_comparison_clock``,
    ``average_stack_size``, ``comparisons_touching``) reads only the
    recorded events, which crossed the pipe verbatim.
    """
    status_name, error, arcs, comparisons, eof_events = payload[:5]
    # Tolerant tail: payloads predating the CRASH status are 5-tuples.
    crash_signature = payload[5] if len(payload) > 5 else None
    table = arc_table_for(subject)
    intern = table.intern
    recorder = Recorder()
    recorder.comparisons = list(comparisons)
    recorder.eof_events = list(eof_events)
    return RunResult(
        text=text,
        status=ExitStatus[status_name],
        recorder=recorder,
        arcs={intern(arc): clock for arc, clock in arcs},
        value=None,
        error=error,
        arc_table=table,
        crash_signature=tuple(crash_signature) if crash_signature else None,
    )


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


def _run_and_send(
    subject, text, trace_coverage, backend, results, batch_id, index
) -> None:
    try:
        result = run_subject(
            subject, text, trace_coverage=trace_coverage, coverage_backend=backend
        )
        payload = serialize_run_result(result)
    except BaseException as exc:  # noqa: BLE001 - report, let parent decide
        results.send(("fail", batch_id, index, f"{type(exc).__name__}: {exc}"))
        return
    results.send(("res", batch_id, index, payload))


def _worker_main(
    subject_name: str,
    backend: str,
    trace_coverage: bool,
    isolation: str,
    kill_after: Optional[int],
    inbox,
    results,
) -> None:
    """Serve batches until the None sentinel, pipe EOF, or re-parenting.

    The subject is loaded (and its AST instrumentation compiled) exactly
    once, before the first batch; with ``isolation="fork"`` every
    candidate then runs in a fork child that inherits the warm state and
    sends its own result before ``os._exit`` — the worker never sees the
    run's side effects.  The poll loop mirrors the grid/scheduler
    workers: a SIGKILLed parent re-parents us instead of EOFing the pipe
    (siblings hold write-end copies), so exit on ``getppid`` change.
    """
    from repro.subjects.registry import load_subject

    parent = os.getppid()
    subject = load_subject(subject_name)
    if trace_coverage and backend == "ast":
        from repro.runtime.instrument import instrumented_subject

        instrumented_subject(subject)  # compile once; forks inherit it warm
    served = 0
    while True:
        try:
            while not inbox.poll(1.0):
                if os.getppid() != parent:
                    return
            item = inbox.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        batch_id, texts = item
        for index, text in enumerate(texts):
            if kill_after is not None and served >= kill_after:
                os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies
            served += 1
            if isolation == "fork":
                pid = os.fork()
                if pid == 0:
                    try:
                        _run_and_send(
                            subject,
                            text,
                            trace_coverage,
                            backend,
                            results,
                            batch_id,
                            index,
                        )
                    finally:
                        os._exit(0)
                os.waitpid(pid, 0)
                # An abnormal child exit sent nothing for this index; the
                # parent detects the gap when "done" arrives.
            else:
                _run_and_send(
                    subject, text, trace_coverage, backend, results, batch_id, index
                )
        results.send(("done", batch_id))


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #


class InlineExecutor:
    """The no-op engine: execute in-process, exactly ``run_subject``.

    Exists so callers can treat executor modes uniformly; ``PFuzzer``
    special-cases inline to skip even this indirection on its hot path.
    """

    def __init__(
        self, subject, *, coverage_backend: str = "settrace", trace_coverage: bool = True
    ) -> None:
        self.subject = subject
        self.coverage_backend = coverage_backend
        self.trace_coverage = trace_coverage

    def prefetch(self, texts: Iterable[str]) -> None:  # noqa: ARG002
        """Inline execution has nothing to overlap; a no-op."""

    def execute(self, text: str) -> RunResult:
        return run_subject(
            self.subject,
            text,
            trace_coverage=self.trace_coverage,
            coverage_backend=self.coverage_backend,
        )

    def run_batch(self, texts: Sequence[str]) -> List[RunResult]:
        return [self.execute(text) for text in texts]

    def close(self) -> None:
        """Nothing to shut down."""


class _WorkerHandle:
    """One persistent worker: process, pipes, and outstanding batches."""

    __slots__ = ("process", "task_conn", "result_conn", "outstanding")

    def __init__(self, process, task_conn, result_conn) -> None:
        self.process = process
        self.task_conn = task_conn
        self.result_conn = result_conn
        #: batch_id -> [text or None, ...]; a slot is cleared (None) when
        #: its result arrives, so a worker death resubmits exactly the
        #: not-yet-received texts.
        self.outstanding: "OrderedDict[int, List[Optional[str]]]" = OrderedDict()

    def unfinished_texts(self) -> List[str]:
        texts: List[str] = []
        for slots in self.outstanding.values():
            texts.extend(text for text in slots if text is not None)
        return texts


class PooledExecutor:
    """Persistent forked-worker executor for one subject.

    Args:
        subject: the program under test (its *name* is what crosses to
            workers; the registry loads a fresh instance worker-side).
        coverage_backend: ``"settrace"`` or ``"ast"``.
        trace_coverage: forwarded to :func:`run_subject`.
        workers: persistent worker processes serving executions.
        isolation: ``"auto"`` / ``"fork"`` (fork per candidate, AFL
            style) / ``"none"`` (same-process re-init fallback).
        max_ready: ready-result cache capacity; the oldest unconsumed
            speculative result is evicted first (a later ``execute`` of
            an evicted text simply re-runs it — results are a pure
            function of the text, so eviction never affects outcomes).
    """

    def __init__(
        self,
        subject,
        *,
        coverage_backend: str = "settrace",
        trace_coverage: bool = True,
        workers: int = 1,
        isolation: str = "auto",
        max_ready: int = 256,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.subject = subject
        self.subject_name = subject.name
        self.coverage_backend = coverage_backend
        self.trace_coverage = trace_coverage
        self.isolation = _resolve_isolation(isolation)
        self.max_ready = max_ready
        #: Workers respawned after an unexpected death (observability).
        self.respawns = 0
        if trace_coverage and coverage_backend == "ast":
            from repro.runtime.instrument import instrumented_subject

            # Compile the instrumentation before spawning: fork-context
            # workers inherit the warm build and never pay it themselves.
            instrumented_subject(subject)
        try:
            self._ctx = get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._ctx = get_context("spawn")
        self._workers: List[_WorkerHandle] = []
        self._next_worker = 0
        self._next_batch = 0
        #: text -> worker index, for every submitted-but-unreceived text.
        self._pending: Dict[str, int] = {}
        #: Ready results in arrival order (the eviction order).
        self._ready: "OrderedDict[str, object]" = OrderedDict()
        self._closed = False
        for _ in range(workers):
            self._spawn_worker()

    # -- lifecycle ------------------------------------------------------ #

    def _spawn_worker(self) -> _WorkerHandle:
        global _TEST_WORKER_KILL_AFTER
        kill_after = _TEST_WORKER_KILL_AFTER
        _TEST_WORKER_KILL_AFTER = None
        task_recv, task_send = self._ctx.Pipe(duplex=False)
        result_recv, result_send = self._ctx.Pipe(duplex=False)
        # daemon=False: grid/scheduler workers host executors too, and
        # daemonic processes may not have children.  Orphan safety comes
        # from the worker's getppid poll (exit once re-parented) plus the
        # close() sentinel, not from the daemon flag.
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self.subject_name,
                self.coverage_backend,
                self.trace_coverage,
                self.isolation,
                kill_after,
                task_recv,
                result_send,
            ),
            daemon=False,
        )
        process.start()
        # The child holds its own copies; closing ours makes a dead
        # worker's result pipe EOF in the parent (the death signal).
        task_recv.close()
        result_send.close()
        handle = _WorkerHandle(process, task_send, result_recv)
        self._workers.append(handle)
        return handle

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            try:
                handle.task_conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for handle in self._workers:
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            handle.task_conn.close()
            handle.result_conn.close()
        self._workers = []
        self._pending.clear()

    def __enter__(self) -> "PooledExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission ----------------------------------------------------- #

    def _submit(self, worker_index: int, texts: List[str]) -> None:
        handle = self._workers[worker_index]
        batch_id = self._next_batch
        self._next_batch += 1
        handle.outstanding[batch_id] = list(texts)
        for text in texts:
            self._pending[text] = worker_index
        try:
            handle.task_conn.send((batch_id, texts))
        except (BrokenPipeError, OSError):
            # Worker died between batches; respawn and let the death
            # handler resubmit (it re-reads ``outstanding``).
            self._handle_death(worker_index)

    def prefetch(self, texts: Iterable[str]) -> None:
        """Submit candidate texts speculatively, one batch per worker.

        Texts already pending or ready are skipped, so repeated prefetch
        of an unchanged frontier costs nothing.  Results stream into the
        ready cache as workers finish; consume them with :meth:`execute`.
        """
        fresh = [
            text
            for text in dict.fromkeys(texts)
            if text not in self._pending and text not in self._ready
        ]
        if not fresh or self._closed:
            return
        worker_count = len(self._workers)
        chunks: List[List[str]] = [[] for _ in range(worker_count)]
        for offset, text in enumerate(fresh):
            chunks[(self._next_worker + offset) % worker_count].append(text)
        self._next_worker = (self._next_worker + len(fresh)) % worker_count
        for worker_index, chunk in enumerate(chunks):
            if chunk:
                self._submit(worker_index, chunk)

    # -- results -------------------------------------------------------- #

    def _store_ready(self, text: str, value: object) -> None:
        self._pending.pop(text, None)
        self._ready[text] = value
        self._ready.move_to_end(text)
        while len(self._ready) > self.max_ready:
            self._ready.popitem(last=False)

    def _handle_message(self, worker_index: int, message: tuple) -> None:
        handle = self._workers[worker_index]
        kind = message[0]
        if kind == "res":
            _, batch_id, index, payload = message
            slots = handle.outstanding.get(batch_id)
            if slots is None or slots[index] is None:
                return  # duplicate after a resubmit race; first wins
            text = slots[index]
            slots[index] = None
            self._store_ready(
                text, rehydrate_run_result(self.subject, text, payload)
            )
        elif kind == "fail":
            _, batch_id, index, error = message
            slots = handle.outstanding.get(batch_id)
            if slots is None or slots[index] is None:
                return
            text = slots[index]
            slots[index] = None
            self._store_ready(
                text, ExecutorError(f"worker execution of {text!r} failed: {error}")
            )
        elif kind == "done":
            _, batch_id = message
            slots = handle.outstanding.pop(batch_id, [])
            for text in slots:
                if text is not None:
                    # A fork child died before sending (e.g. hard crash
                    # inside the subject): surface it rather than hang.
                    self._store_ready(
                        text,
                        ExecutorError(
                            f"worker finished batch {batch_id} without a "
                            f"result for {text!r}"
                        ),
                    )

    def _handle_death(self, worker_index: int) -> None:
        """Respawn a dead worker and resubmit its unfinished texts."""
        handle = self._workers[worker_index]
        unfinished = handle.unfinished_texts()
        handle.process.join(timeout=1.0)
        if handle.process.is_alive():  # pragma: no cover - refuses to die
            handle.process.terminate()
            handle.process.join(timeout=1.0)
        handle.task_conn.close()
        handle.result_conn.close()
        for text in unfinished:
            self._pending.pop(text, None)
        self._workers.pop(worker_index)
        replacement = self._spawn_worker()
        # Keep the round-robin index valid after the list shuffle.
        self._workers.remove(replacement)
        self._workers.insert(worker_index, replacement)
        self.respawns += 1
        if unfinished:
            self._submit(worker_index, unfinished)

    def _drain(self, timeout: Optional[float]) -> bool:
        """Receive every available message; True if any arrived."""
        conns = {
            handle.result_conn: index
            for index, handle in enumerate(self._workers)
            if handle.outstanding
        }
        if not conns:
            return False
        ready = connection.wait(list(conns), timeout=timeout)
        progressed = False
        for conn in ready:
            worker_index = conns[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._handle_death(worker_index)
                progressed = True
                continue
            self._handle_message(worker_index, message)
            progressed = True
        return progressed

    def execute(self, text: str) -> RunResult:
        """The result of running ``text`` — from cache, stream, or fresh.

        Blocks until the result is available.  Raises
        :class:`ExecutorError` if the worker-side execution failed.
        """
        if self._closed:
            raise ExecutorError("executor is closed")
        if text not in self._ready and text not in self._pending:
            self._submit(self._next_worker, [text])
            self._next_worker = (self._next_worker + 1) % len(self._workers)
        while text not in self._ready:
            if text not in self._pending:
                # Evicted or dropped by a dying worker between checks.
                self._submit(self._next_worker, [text])
                self._next_worker = (self._next_worker + 1) % len(self._workers)
            self._drain(timeout=None)
        value = self._ready.pop(text)
        if isinstance(value, ExecutorError):
            raise value
        return value

    def run_batch(self, texts: Sequence[str]) -> List[RunResult]:
        """Execute a slice of candidates in one submission round-trip."""
        self.prefetch(texts)
        return [self.execute(text) for text in texts]


def create_executor(
    mode: str,
    subject,
    *,
    coverage_backend: str = "settrace",
    trace_coverage: bool = True,
    workers: int = 1,
    isolation: str = "auto",
):
    """Build the executor for ``mode`` (one of :data:`EXECUTOR_MODES`)."""
    if mode == "inline":
        return InlineExecutor(
            subject,
            coverage_backend=coverage_backend,
            trace_coverage=trace_coverage,
        )
    if mode == "pooled":
        return PooledExecutor(
            subject,
            coverage_backend=coverage_backend,
            trace_coverage=trace_coverage,
            workers=workers,
            isolation=isolation,
        )
    raise ValueError(
        f"unknown executor mode {mode!r}; expected one of {EXECUTOR_MODES}"
    )
