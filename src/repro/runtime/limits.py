"""Per-run resource limits: wall-clock timeouts and rlimit/RSS plumbing.

The parallel campaign executor (:mod:`repro.eval.parallel`) gives every
grid cell its own worker process; this module is the in-worker half of the
fault-isolation story.  :func:`time_limit` arms a wall-clock alarm so a
stalled subject run raises :class:`RunTimeout` instead of hanging the
worker, :func:`apply_rlimits` caps the worker's address space, and
:func:`peak_rss_bytes` reads the high-water RSS that campaign metrics
report.

Everything degrades gracefully: on platforms without ``SIGALRM`` or the
``resource`` module (Windows), :func:`time_limit` is a no-op and the
parent-side watchdog in :mod:`repro.eval.parallel` remains the backstop.
"""

from __future__ import annotations

import signal
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

try:  # POSIX only; absent on Windows.
    import resource
except ImportError:  # pragma: no cover - exercised only off-POSIX
    resource = None  # type: ignore[assignment]


class RunTimeout(Exception):
    """A run exceeded its wall-clock limit (see :func:`time_limit`)."""


@dataclass(frozen=True)
class RunLimits:
    """Limits applied to one campaign run.

    Attributes:
        wall_seconds: wall-clock budget for the run; ``None`` disables the
            alarm.
        address_space_bytes: ``RLIMIT_AS`` cap for the process; ``None``
            leaves the inherited limit in place.
    """

    wall_seconds: Optional[float] = None
    address_space_bytes: Optional[int] = None


def _alarm_usable() -> bool:
    """Alarms need SIGALRM and the main thread (signal-module contract)."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def time_limit(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`RunTimeout` if the body runs longer than ``seconds``.

    Uses ``setitimer``; a no-op when ``seconds`` is ``None``/non-positive
    or when alarms are unavailable (non-POSIX, non-main thread).
    """
    if seconds is None or seconds <= 0 or not _alarm_usable():
        yield
        return

    def _on_alarm(signum, frame):  # noqa: ARG001 - signal handler signature
        raise RunTimeout(f"run exceeded {seconds:g}s wall-clock limit")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def apply_rlimits(limits: RunLimits) -> None:
    """Apply the process-wide pieces of ``limits`` (currently RLIMIT_AS)."""
    if limits.address_space_bytes is None or resource is None:
        return
    soft = limits.address_space_bytes
    _, hard = resource.getrlimit(resource.RLIMIT_AS)
    if hard != resource.RLIM_INFINITY:
        soft = min(soft, hard)
    try:
        resource.setrlimit(resource.RLIMIT_AS, (soft, hard))
    except (ValueError, OSError):  # pragma: no cover - container-dependent
        pass


def peak_rss_bytes() -> int:
    """High-water resident set size of this process, in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    """
    if resource is None:  # pragma: no cover - exercised only off-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux container
        return int(peak)
    return int(peak) * 1024


def peak_rss_kb() -> int:
    """High-water RSS in kilobytes (0 where ``resource`` is unavailable).

    The unit campaign metrics report (:class:`repro.eval.metrics.
    CampaignMetrics.peak_rss_kb`) and the service's ``/metrics`` endpoint
    exports.
    """
    return peak_rss_bytes() // 1024
