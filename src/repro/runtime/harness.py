"""Run one input against one subject under full instrumentation.

:func:`run_subject` is the equivalent of one execution of the paper's
instrumented binary: it installs a fresh comparison recorder and a coverage
backend, feeds the input through an
:class:`~repro.runtime.stream.InputStream` and returns a :class:`RunResult`
carrying the exit status, the comparison trace, the covered branches (line
arcs, interned to small ints) and the information needed by the search
heuristic.

Two coverage backends are available (``coverage_backend``):

* ``"settrace"`` — the reference :class:`~repro.runtime.tracer.CoverageTracer`
  (a per-line trace function);
* ``"ast"`` — compiled-in instrumentation from
  :mod:`repro.runtime.instrument`, several times faster per execution.

Both intern arcs through the subject's shared
:class:`~repro.runtime.arcs.ArcTable`, so their branch sets are directly
comparable and equivalence is asserted in the test suite.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.runtime.arcs import ArcTable, arc_table_for
from repro.runtime.errors import HangError, ParseError, SubjectError
from repro.runtime.stream import InputStream
from repro.runtime.tracer import CoverageTracer
from repro.taint.recorder import Recorder, recording

#: Supported values for ``coverage_backend``.
COVERAGE_BACKENDS = ("settrace", "ast")

#: Reserved backend names that are registered but not implemented yet.
#: ``"monitoring"`` is the planned PEP 669 ``sys.monitoring`` backend —
#: out of scope while CI runs Python 3.11; :func:`run_subject` raises a
#: version-gated :class:`NotImplementedError` naming the follow-up.
EXPERIMENTAL_BACKENDS = ("monitoring",)


class ExitStatus(enum.Enum):
    """Outcome of one subject execution (the paper's process exit code)."""

    VALID = 0
    REJECTED = 1
    HANG = 2
    #: The subject raised something other than its declared rejection
    #: exceptions — the Python analogue of a segfault.  Crashes are
    #: first-class results: the campaign keeps running and the failure
    #: site counts as coverage (see :func:`run_subject`).
    CRASH = 3


def failure_site(exc: BaseException, files) -> tuple:
    """Deterministic failure-site signature for a crash.

    Returns ``(exception_type, filename, line)`` where the location is the
    *deepest subject-owned frame* of the traceback — the crash site as the
    subject sees it, independent of harness frames above and of library
    frames below.  For a recursive crash (``RecursionError`` out of a
    self-call) the deepest subject frame repeats the same line whatever the
    baseline stack depth was, so the signature is stable across the inline,
    pooled and batched engines.
    """
    filename = "<unknown>"
    line = 0
    trace = exc.__traceback__
    while trace is not None:
        frame_file = trace.tb_frame.f_code.co_filename
        if frame_file in files:
            filename = frame_file
            line = trace.tb_lineno
        trace = trace.tb_next
    return (type(exc).__name__, filename, line)


@dataclass(slots=True)
class RunResult:
    """Everything observed during one instrumented execution.

    ``slots=True``: every campaign iteration builds up to two of these,
    so they ride the hot loop alongside ``Candidate`` — no per-instance
    ``__dict__``, and stray attribute writes fail loudly.

    Attributes:
        text: the input that was executed.
        status: exit status (VALID / REJECTED / HANG).
        recorder: the full comparison + EOF trace.
        arcs: interned arc id -> first-traversal clock.
        value: the subject's parse result (None unless VALID).
        error: rejection message (None when VALID).
        arc_table: the subject's shared table that interned ``arcs``.
        crash_signature: ``(exception_type, filename, line)`` failure-site
            signature (None unless CRASH); see :func:`failure_site`.
    """

    text: str
    status: ExitStatus
    recorder: Recorder
    arcs: Dict[int, int] = field(default_factory=dict)
    value: object = None
    error: Optional[str] = None
    arc_table: Optional[ArcTable] = None
    crash_signature: Optional[tuple] = None
    #: Lazily built ``frozenset(arcs)``; ``branches`` is consulted up to
    #: three times per execution (validity gate, vBr growth, heuristic),
    #: and rebuilding the frozenset each time was measurable.
    _branches: Optional[FrozenSet[int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def valid(self) -> bool:
        """True when the subject accepted the input (exit code 0)."""
        return self.status is ExitStatus.VALID

    @property
    def crashed(self) -> bool:
        """True when the subject raised an undeclared exception."""
        return self.status is ExitStatus.CRASH

    @property
    def branches(self) -> FrozenSet[int]:
        """All branches (interned line arcs) the execution covered."""
        cached = self._branches
        if cached is None:
            cached = frozenset(self.arcs)
            self._branches = cached
        return cached

    def decoded_branches(self) -> FrozenSet[tuple]:
        """Branches decoded back to ``(filename, previous, line)`` tuples."""
        if self.arc_table is None:
            return frozenset()
        return self.arc_table.decode(self.arcs)

    def branches_for_heuristic(self) -> FrozenSet[int]:
        """Branches counted by the search heuristic.

        For rejected inputs the paper only counts coverage "up to the first
        comparison of the last character of the input" (§3.1), so that error
        handling reached after the rejection does not look like progress.
        Valid inputs count everything.
        """
        if self.valid:
            return self.branches
        last = self.recorder.last_compared_index()
        if last is None:
            return self.branches
        cutoff = self.recorder.first_comparison_clock(last)
        if cutoff is None:
            return self.branches
        return frozenset(arc for arc, first in self.arcs.items() if first <= cutoff)

    @property
    def eof_accessed(self) -> bool:
        """Did the subject try to read past the end of the input?"""
        return self.recorder.eof_accessed

    def average_stack_size(self) -> float:
        """The heuristic's ``avgStackSize()`` for this execution."""
        return self.recorder.average_stack_size()

    def path_signature(self) -> int:
        """Stable signature of the execution path (the set of arcs).

        Built from per-arc blake2 digests, so it is identical across
        interpreter runs (``PYTHONHASHSEED``), backends and intern orders.
        """
        if self.arc_table is None or not self.arcs:
            return 0
        return self.arc_table.signature(self.arcs)


def run_subject(
    subject,
    text: str,
    trace_coverage: bool = True,
    coverage_backend: str = "settrace",
) -> RunResult:
    """Execute ``subject`` on ``text`` under taint + coverage instrumentation.

    Args:
        subject: a :class:`~repro.subjects.base.Subject`.
        text: the candidate input.
        trace_coverage: disable to skip branch coverage entirely (much
            faster; used by baselines that only need comparison events or
            only an exit code).
        coverage_backend: ``"settrace"`` (reference tracer) or ``"ast"``
            (compiled-in instrumentation; see
            :mod:`repro.runtime.instrument`).
    """
    stream = InputStream(text)
    table = arc_table_for(subject)
    tracer: Optional[CoverageTracer] = None
    collector = None
    run_target = subject
    if not trace_coverage:
        recorder = Recorder()
    elif coverage_backend == "ast":
        from repro.runtime.instrument import instrumented_subject

        run_target, collector = instrumented_subject(subject)
        collector.reset()
        recorder = Recorder(
            depth_provider=collector.current_depth,
            clock_provider=collector.current_clock,
            stack_provider=collector.current_stack,
        )
    elif coverage_backend == "settrace":
        tracer = CoverageTracer(subject.files)
        recorder = Recorder(
            depth_provider=tracer.current_depth,
            clock_provider=tracer.current_clock,
            stack_provider=tracer.current_stack,
        )
    elif coverage_backend == "monitoring":
        # Version-gated stub for the PEP 669 backend (ROADMAP item 2's
        # remainder): the name is reserved so the 3.12 follow-up slots in
        # without a config migration, but no implementation ships while
        # CI pins 3.11.
        if sys.version_info < (3, 12):
            raise NotImplementedError(
                "the 'monitoring' coverage backend requires Python 3.12+ "
                "(PEP 669 sys.monitoring); this interpreter is "
                f"{sys.version_info.major}.{sys.version_info.minor} — "
                "use 'ast' (fastest) or 'settrace' (reference)"
            )
        raise NotImplementedError(
            "the 'monitoring' coverage backend is registered but not "
            "implemented yet; use 'ast' (fastest) or 'settrace' (reference)"
        )
    else:
        raise ValueError(
            f"unknown coverage backend {coverage_backend!r}; "
            f"expected one of {COVERAGE_BACKENDS}"
        )

    status = ExitStatus.VALID
    value: object = None
    error: Optional[str] = None
    crash_signature: Optional[tuple] = None
    with recording(recorder):
        try:
            if tracer is not None:
                with tracer:
                    value = run_target.parse(stream)
            else:
                value = run_target.parse(stream)
        except HangError as exc:
            status = ExitStatus.HANG
            error = str(exc)
        except ParseError as exc:
            status = ExitStatus.REJECTED
            error = exc.message
        except SubjectError as exc:
            status = ExitStatus.REJECTED
            error = str(exc)
        except Exception as exc:  # noqa: BLE001 - crashes are results here
            # Anything else out of the subject is the Python analogue of a
            # segfault.  Propagating it would kill the campaign (and, under
            # the pooled engine, look like a worker death and trigger a
            # respawn loop), so classify it as a CRASH result instead.
            status = ExitStatus.CRASH
            crash_signature = failure_site(exc, subject.files)
            error = f"{crash_signature[0]}: {exc}"

    if tracer is not None:
        intern = table.intern
        arcs = {intern(arc): clock for arc, clock in tracer.arcs.items()}
    elif collector is not None:
        arcs = dict(collector.arcs)
    else:
        arcs = {}
    # Table-driven parsers contribute table-element coverage (§7.1) through
    # the recorder's auxiliary channel; merge it into the branch set.
    if recorder.aux_branches:
        intern = table.intern
        for key, clock in recorder.aux_branches.items():
            arcs[intern(key)] = clock
    # Distinct failure sites count as coverage ("Fuzzing with Fast Failure
    # Feedback"): intern the crash site as an auxiliary arc, shared by both
    # backends through the subject's table.
    if crash_signature is not None:
        arcs[table.intern(("crash",) + crash_signature)] = recorder.clock_provider()
    return RunResult(
        text=text,
        status=status,
        recorder=recorder,
        arcs=arcs,
        value=value,
        error=error,
        arc_table=table,
        crash_signature=crash_signature,
    )
