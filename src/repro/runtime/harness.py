"""Run one input against one subject under full instrumentation.

:func:`run_subject` is the equivalent of one execution of the paper's
instrumented binary: it installs a fresh comparison recorder and coverage
tracer, feeds the input through an :class:`~repro.runtime.stream.InputStream`
and returns a :class:`RunResult` carrying the exit status, the comparison
trace, the covered branches (line arcs) and the information needed by the
search heuristic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.runtime.errors import HangError, ParseError, SubjectError
from repro.runtime.stream import InputStream
from repro.runtime.tracer import Arc, CoverageTracer
from repro.taint.recorder import Recorder, recording


class ExitStatus(enum.Enum):
    """Outcome of one subject execution (the paper's process exit code)."""

    VALID = 0
    REJECTED = 1
    HANG = 2


@dataclass
class RunResult:
    """Everything observed during one instrumented execution.

    Attributes:
        text: the input that was executed.
        status: exit status (VALID / REJECTED / HANG).
        recorder: the full comparison + EOF trace.
        arcs: all line arcs traversed, with first-traversal clocks.
        value: the subject's parse result (None unless VALID).
        error: rejection message (None when VALID).
    """

    text: str
    status: ExitStatus
    recorder: Recorder
    arcs: Dict[Arc, int] = field(default_factory=dict)
    value: object = None
    error: Optional[str] = None

    @property
    def valid(self) -> bool:
        """True when the subject accepted the input (exit code 0)."""
        return self.status is ExitStatus.VALID

    @property
    def branches(self) -> FrozenSet[Arc]:
        """All branches (line arcs) the execution covered."""
        return frozenset(self.arcs)

    def branches_for_heuristic(self) -> FrozenSet[Arc]:
        """Branches counted by the search heuristic.

        For rejected inputs the paper only counts coverage "up to the first
        comparison of the last character of the input" (§3.1), so that error
        handling reached after the rejection does not look like progress.
        Valid inputs count everything.
        """
        if self.valid:
            return self.branches
        last = self.recorder.last_compared_index()
        if last is None:
            return self.branches
        cutoff = self.recorder.first_comparison_clock(last)
        if cutoff is None:
            return self.branches
        return frozenset(arc for arc, first in self.arcs.items() if first <= cutoff)

    @property
    def eof_accessed(self) -> bool:
        """Did the subject try to read past the end of the input?"""
        return self.recorder.eof_accessed

    def average_stack_size(self) -> float:
        """The heuristic's ``avgStackSize()`` for this execution."""
        return self.recorder.average_stack_size()


def run_subject(
    subject,
    text: str,
    trace_coverage: bool = True,
) -> RunResult:
    """Execute ``subject`` on ``text`` under taint + coverage instrumentation.

    Args:
        subject: a :class:`~repro.subjects.base.Subject`.
        text: the candidate input.
        trace_coverage: disable to skip the settrace tracer (much faster;
            used by baselines that only need comparison events or only an
            exit code).
    """
    stream = InputStream(text)
    if trace_coverage:
        tracer: Optional[CoverageTracer] = CoverageTracer(subject.files)
        recorder = Recorder(
            depth_provider=tracer.current_depth,
            clock_provider=tracer.current_clock,
            stack_provider=tracer.current_stack,
        )
    else:
        tracer = None
        recorder = Recorder()

    status = ExitStatus.VALID
    value: object = None
    error: Optional[str] = None
    with recording(recorder):
        try:
            if tracer is not None:
                with tracer:
                    value = subject.parse(stream)
            else:
                value = subject.parse(stream)
        except HangError as exc:
            status = ExitStatus.HANG
            error = str(exc)
        except ParseError as exc:
            status = ExitStatus.REJECTED
            error = exc.message
        except SubjectError as exc:
            status = ExitStatus.REJECTED
            error = str(exc)

    arcs = dict(tracer.arcs) if tracer is not None else {}
    # Table-driven parsers contribute table-element coverage (§7.1) through
    # the recorder's auxiliary channel; merge it into the branch set.
    arcs.update(recorder.aux_branches)
    return RunResult(
        text=text,
        status=status,
        recorder=recorder,
        arcs=arcs,
        value=value,
        error=error,
    )
