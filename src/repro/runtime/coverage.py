"""Coverage accounting utilities.

Two views of coverage are needed:

* the **heuristic** view used inside the fuzzer: sets of line arcs
  ("branches") produced by :class:`~repro.runtime.tracer.CoverageTracer`;
* the **reporting** view for Figure 2: a percentage relative to the total
  executable lines of the subject, the analogue of the paper's gcov numbers.

The universe of executable lines of a module is computed statically by
walking its code objects, so percentages are stable across runs.
"""

from __future__ import annotations

import dis
import types
from typing import FrozenSet, Iterable, Set, Tuple

Line = Tuple[str, int]


def code_lines(code: types.CodeType) -> Set[Line]:
    """Executable lines of one code object (recursing into nested code)."""
    lines: Set[Line] = set()
    filename = code.co_filename
    for _, line in dis.findlinestarts(code):
        if line is not None:
            lines.add((filename, line))
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            lines |= code_lines(const)
    return lines


def module_lines(module: types.ModuleType) -> FrozenSet[Line]:
    """All executable lines of a module, from its functions and classes.

    This is the denominator of Figure 2-style coverage percentages.  Module
    top-level statements (imports, constant tables) are excluded: like the
    paper's subjects, some code "cannot be covered" by parsing and we keep it
    out of the universe only when it is clearly not runtime code.
    """
    lines: Set[Line] = set()
    seen: Set[int] = set()
    for value in vars(module).values():
        lines |= _object_lines(value, module.__name__, seen)
    return frozenset(lines)


def _object_lines(value: object, module_name: str, seen: Set[int]) -> Set[Line]:
    if id(value) in seen:
        return set()
    seen.add(id(value))
    if isinstance(value, types.FunctionType) and value.__module__ == module_name:
        return code_lines(value.__code__)
    if isinstance(value, type) and value.__module__ == module_name:
        lines: Set[Line] = set()
        for attr in vars(value).values():
            if isinstance(attr, (staticmethod, classmethod)):
                attr = attr.__func__
            if isinstance(attr, property):
                for accessor in (attr.fget, attr.fset, attr.fdel):
                    if accessor is not None:
                        lines |= _object_lines(accessor, module_name, seen)
                continue
            lines |= _object_lines(attr, module_name, seen)
        return lines
    return set()


def line_coverage_percent(covered: Iterable[Line], universe: FrozenSet[Line]) -> float:
    """Percentage of ``universe`` lines present in ``covered``."""
    if not universe:
        return 0.0
    hit = sum(1 for line in covered if line in universe)
    return 100.0 * hit / len(universe)
