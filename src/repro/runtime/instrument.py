"""AST-instrumentation coverage backend.

The settrace tracer costs a Python-level callback for *every* line event in
*every* frame of the process — including the taint and stream machinery that
runs constantly during a parse.  This backend removes that overhead by
rewriting the subject's modules once at build time: every statement boundary
gets a cheap ``__cov_line__(lineno)`` call compiled directly into the code,
so only subject code pays for coverage, and it pays a plain function call
instead of a trace dispatch (cf. *Building Fast Fuzzers*, Gopinath &
Zeller).

The rewrite is engineered to produce **exactly** the event stream of the
settrace backend after statement-owner normalisation (see
:mod:`repro.runtime.owners`):

* plain statements get a preceding ``__cov_line__(head)``;
* ``if``/``while`` tests become ``(__cov_line__(head) or test)`` so the
  header fires once per check, including the final failing one — except
  constant-test loops (``while True:``), whose header CPython only executes
  once at loop entry;
* ``for`` loops are desugared into ``while True`` + explicit ``next()``
  with a header line event before every fetch and at exhaustion, and
  nothing when the loop ``break``s;
* ``except`` clauses collapse into one ``except BaseException`` handler
  that fires the ``try`` head (exception dispatch) and then replays the
  original clause matching with ``isinstance``;
* comprehensions and generator expressions are hoisted into synthesized
  closures that replicate their dedicated frames (call event, one owner
  line event per frame activation, return event);
* function bodies get a ``__cov_call__(name)`` prologue and a
  ``try/finally`` ``__cov_ret__()`` epilogue, mirroring frame call/return
  events including exception unwinding.

Modules are cloned — parsed, rewritten, compiled under the original
filename, and executed into fresh module objects — so the real modules stay
untouched.  Imports *between* cloned modules are rewritten to a
``__cov_import__`` helper so a clone calls into sibling clones, while
imports of shared infrastructure (errors, stream, taint) are left alone and
keep pointing at the real modules.  Arcs are interned eagerly through the
subject's :class:`~repro.runtime.arcs.ArcTable`, the same table the
settrace backend interns through.
"""

from __future__ import annotations

import ast
import inspect
import sys
import types
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.runtime.arcs import ArcTable, arc_table_for
from repro.runtime.owners import statement_head

#: Pseudo previous-line for a frame's entry arc (matches the tracer).
ENTRY = 0

_COV_LINE = "__cov_line__"
_COV_CALL = "__cov_call__"
_COV_RET = "__cov_ret__"
_COV_IMPORT = "__cov_import__"
_COV_EXC = "__cov_exc__"


class UnsupportedConstruct(Exception):
    """A subject uses syntax the instrumenter cannot replicate faithfully."""


# ---------------------------------------------------------------------- #
# Runtime collector
# ---------------------------------------------------------------------- #


class Collector:
    """Mutable coverage state shared by all cloned modules of one subject.

    Mirrors :class:`~repro.runtime.tracer.CoverageTracer`'s observable
    state — interned arcs with first-traversal clocks, a statement clock,
    call depth and the named call stack — but is driven by compiled-in
    ``__cov_*`` calls instead of trace events.  ``_prev`` is a stack of
    per-logical-frame previous lines: ``__cov_call__`` pushes ``ENTRY``,
    ``__cov_ret__`` pops.
    """

    __slots__ = ("table", "arcs", "call_stack", "_state", "_prev")

    #: Indices into the ``_state`` list (one shared mutable cell block so
    #: the injected closures avoid attribute lookups on the hot path).
    _CLOCK, _DEPTH, _SERIAL = 0, 1, 2

    def __init__(self, table: ArcTable) -> None:
        self.table = table
        self.arcs: Dict[int, int] = {}
        self.call_stack: List[Tuple[str, int]] = []
        self._state: List[int] = [0, 0, 0]  # clock, depth, serial
        self._prev: List[int] = [ENTRY]

    def reset(self) -> None:
        """Clear per-run state (arcs, clock, depth, stack).

        Clears in place: the injected ``__cov_*`` closures bind these
        containers by identity, so they must never be replaced.
        """
        self.arcs.clear()
        self.call_stack.clear()
        state = self._state
        state[0] = state[1] = state[2] = 0
        prev = self._prev
        del prev[1:]
        prev[0] = ENTRY

    @property
    def clock(self) -> int:
        return self._state[self._CLOCK]

    @property
    def depth(self) -> int:
        return self._state[self._DEPTH]

    # -- providers handed to the taint recorder ------------------------- #

    def current_depth(self) -> int:
        """Call-stack depth inside subject code right now."""
        return self._state[self._DEPTH]

    def current_clock(self) -> int:
        """Monotonic statement clock right now."""
        return self._state[self._CLOCK]

    def current_stack(self) -> Tuple[Tuple[str, int], ...]:
        """Snapshot of the subject call stack (name, invocation serial)."""
        return tuple(self.call_stack)

    # -- per-module instrumentation entry points ------------------------ #
    #
    # Hot-path state is bound through default arguments: cheaper than both
    # closure cells and attribute lookups, and safe because reset() mutates
    # the bound containers instead of rebinding them.

    def line_function(self, filename: str) -> Callable[[int], None]:
        """The ``__cov_line__`` injected into a module from ``filename``."""

        def __cov_line__(
            lineno: int,
            _prev: list = self._prev,
            _state: list = self._state,
            _record=self.arcs.setdefault,
            _cache: dict = {},  # noqa: B006 — intentional per-closure cache
            _intern=self.table.intern,
            _filename: str = filename,
        ) -> None:
            previous = _prev[-1]
            if previous == lineno:
                return None
            clock = _state[0] + 1
            _state[0] = clock
            key = (previous << 20) | lineno
            arc_id = _cache.get(key)
            if arc_id is None:
                arc_id = _intern((_filename, previous, lineno))
                _cache[key] = arc_id
            _record(arc_id, clock)
            _prev[-1] = lineno
            return None

        return __cov_line__

    def call_function(self) -> Callable[[str], None]:
        """The ``__cov_call__`` prologue: one frame entered."""

        def __cov_call__(
            name: str,
            _state: list = self._state,
            _stack_push=self.call_stack.append,
            _prev_push=self._prev.append,
        ) -> None:
            _state[1] += 1
            serial = _state[2] + 1
            _state[2] = serial
            _stack_push((name, serial))
            _prev_push(ENTRY)

        return __cov_call__

    def ret_function(self) -> Callable[[], None]:
        """The ``__cov_ret__`` epilogue: one frame left (even by raising)."""

        def __cov_ret__(
            _state: list = self._state,
            _stack: list = self.call_stack,
            _prev: list = self._prev,
        ) -> None:
            _state[1] -= 1
            if _stack:
                _stack.pop()
            if len(_prev) > 1:
                _prev.pop()

        return __cov_ret__


# ---------------------------------------------------------------------- #
# AST helpers
# ---------------------------------------------------------------------- #


def _load(name: str) -> ast.Name:
    return ast.Name(id=name, ctx=ast.Load())


def _store(name: str) -> ast.Name:
    return ast.Name(id=name, ctx=ast.Store())


def _call(func: str, args: List[ast.expr]) -> ast.Call:
    return ast.Call(func=_load(func), args=args, keywords=[])


def _line_event(lineno: int) -> ast.Expr:
    return ast.Expr(value=_call(_COV_LINE, [ast.Constant(lineno)]))


def _or_trick(lineno: int, test: ast.expr) -> ast.BoolOp:
    """``test`` -> ``(__cov_line__(lineno) or test)`` (fires per check)."""
    return ast.BoolOp(
        op=ast.Or(), values=[_call(_COV_LINE, [ast.Constant(lineno)]), test]
    )


def _is_docstring_or_constant(stmt: ast.stmt) -> bool:
    return isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)


def _check_supported(tree: ast.Module, filename: str) -> None:
    """Reject function-body syntax whose trace events we cannot replicate."""
    banned = (
        ast.AsyncFunctionDef,
        ast.AsyncFor,
        ast.AsyncWith,
        ast.With,
        ast.Match,
        ast.Lambda,
        ast.Yield,
        ast.YieldFrom,
        ast.Await,
    )
    # Async defs escape the per-function scan below (they are not
    # ast.FunctionDef), yet would run uninstrumented if defined at module
    # or class level — ban them anywhere.
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            raise UnsupportedConstruct(
                f"{filename}:{node.lineno}: cannot instrument "
                f"async function {node.name!r}"
            )
    for function in ast.walk(tree):
        if not isinstance(function, ast.FunctionDef):
            continue
        for node in ast.walk(function):
            if isinstance(node, banned):
                raise UnsupportedConstruct(
                    f"{filename}:{node.lineno}: cannot instrument "
                    f"{type(node).__name__} in function {function.name!r}"
                )
            if isinstance(node, ast.ClassDef) and node is not function:
                raise UnsupportedConstruct(
                    f"{filename}:{node.lineno}: class definition inside "
                    f"function {function.name!r}"
                )
            if isinstance(node, (ast.For, ast.While)) and node.orelse:
                raise UnsupportedConstruct(
                    f"{filename}:{node.lineno}: loop else clause"
                )
            if isinstance(node, ast.Try) and node.orelse:
                raise UnsupportedConstruct(
                    f"{filename}:{node.lineno}: try else clause"
                )


# ---------------------------------------------------------------------- #
# Comprehension hoisting
# ---------------------------------------------------------------------- #

_COMP_NAMES = {
    ast.ListComp: "<listcomp>",
    ast.SetComp: "<setcomp>",
    ast.DictComp: "<dictcomp>",
}


class _CompRewriter(ast.NodeTransformer):
    """Replace comprehensions/genexps with calls to synthesized closures.

    A comprehension runs in its own frame, so the tracer sees a call event,
    owner-line event(s) and a return event that compiled-in statement hooks
    would miss.  Each comprehension becomes a hoisted nested function that
    replays those events explicitly; the hoisted definitions are emitted
    just before the statement that contained the expression (closures keep
    captured variables live, so hoisting is behaviour-preserving).
    """

    def __init__(self, instrumenter: "_Instrumenter", owner_line: int) -> None:
        self._instrumenter = instrumenter
        self._owner = owner_line
        self.hoisted: List[ast.FunctionDef] = []

    # Nested function bodies are instrumented separately.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.FunctionDef:
        return node

    def _generator(self, node) -> ast.comprehension:
        if len(node.generators) != 1:
            raise UnsupportedConstruct(
                f"line {node.lineno}: comprehension with multiple generators"
            )
        generator = node.generators[0]
        if generator.ifs or generator.is_async:
            raise UnsupportedConstruct(
                f"line {node.lineno}: filtered or async comprehension"
            )
        for sub in ast.iter_child_nodes(node):
            for nested in ast.walk(sub):
                if nested is not node and isinstance(
                    nested, (*_COMP_NAMES, ast.GeneratorExp)
                ):
                    raise UnsupportedConstruct(
                        f"line {node.lineno}: nested comprehension"
                    )
        return generator

    def _closure(self, name: str, body: List[ast.stmt]) -> str:
        function_name = self._instrumenter.fresh_name()
        arguments = ast.arguments(
            posonlyargs=[],
            args=[ast.arg(arg="__cov_it__")],
            vararg=None,
            kwonlyargs=[],
            kw_defaults=[],
            kwarg=None,
            defaults=[],
        )
        self.hoisted.append(
            ast.FunctionDef(
                name=function_name,
                args=arguments,
                body=body,
                decorator_list=[],
                returns=None,
            )
        )
        return function_name

    def _comp(self, node) -> ast.Call:
        generator = self._generator(node)
        inner_generators = [
            ast.comprehension(
                target=generator.target,
                iter=_load("__cov_it__"),
                ifs=[],
                is_async=0,
            )
        ]
        if isinstance(node, ast.DictComp):
            inner: ast.expr = ast.DictComp(
                key=node.key, value=node.value, generators=inner_generators
            )
        elif isinstance(node, ast.SetComp):
            inner = ast.SetComp(elt=node.elt, generators=inner_generators)
        else:
            inner = ast.ListComp(elt=node.elt, generators=inner_generators)
        # def closure(__cov_it__):
        #     __cov_call__('<listcomp>')
        #     try:
        #         __cov_line__(owner)        # the frame's single owner event
        #         return [... for ... in __cov_it__]
        #     finally:
        #         __cov_ret__()
        body: List[ast.stmt] = [
            ast.Expr(value=_call(_COV_CALL, [ast.Constant(_COMP_NAMES[type(node)])])),
            ast.Try(
                body=[_line_event(self._owner), ast.Return(value=inner)],
                handlers=[],
                orelse=[],
                finalbody=[ast.Expr(value=_call(_COV_RET, []))],
            ),
        ]
        function_name = self._closure(_COMP_NAMES[type(node)], body)
        return _call(function_name, [node.generators[0].iter])

    def visit_ListComp(self, node: ast.ListComp) -> ast.Call:
        return self._comp(node)

    def visit_SetComp(self, node: ast.SetComp) -> ast.Call:
        return self._comp(node)

    def visit_DictComp(self, node: ast.DictComp) -> ast.Call:
        return self._comp(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> ast.Call:
        generator = self._generator(node)
        # Each resume of a traced genexp frame fires call, one owner line,
        # and return (the yield).  The closure replays that per item, plus
        # the final resume that ends in StopIteration.  The yield sits
        # outside the call/ret window so abandoning the generator (which the
        # subjects never do) fires nothing.
        #
        # def closure(__cov_it__):           # called with iter(<iterable>)
        #     while True:
        #         __cov_call__('<genexpr>')
        #         try:
        #             __cov_line__(owner)
        #             try:
        #                 <target> = next(__cov_it__)
        #             except StopIteration:
        #                 return
        #             __cov_value__ = <elt>
        #         finally:
        #             __cov_ret__()
        #         yield __cov_value__
        fetch = ast.Try(
            body=[
                ast.Assign(
                    targets=[generator.target],
                    value=_call("next", [_load("__cov_it__")]),
                )
            ],
            handlers=[
                ast.ExceptHandler(
                    type=_load("StopIteration"),
                    name=None,
                    body=[ast.Return(value=None)],
                )
            ],
            orelse=[],
            finalbody=[],
        )
        loop_body: List[ast.stmt] = [
            ast.Expr(value=_call(_COV_CALL, [ast.Constant("<genexpr>")])),
            ast.Try(
                body=[
                    _line_event(self._owner),
                    fetch,
                    ast.Assign(targets=[_store("__cov_value__")], value=node.elt),
                ],
                handlers=[],
                orelse=[],
                finalbody=[ast.Expr(value=_call(_COV_RET, []))],
            ),
            ast.Expr(value=ast.Yield(value=_load("__cov_value__"))),
        ]
        body: List[ast.stmt] = [
            ast.While(test=ast.Constant(True), body=loop_body, orelse=[])
        ]
        function_name = self._closure("<genexpr>", body)
        return _call(function_name, [_call("iter", [generator.iter])])


# ---------------------------------------------------------------------- #
# Statement instrumentation
# ---------------------------------------------------------------------- #


class _Instrumenter:
    """Rewrites one module tree in place (function bodies only)."""

    def __init__(self) -> None:
        self._counter = 0

    def fresh_name(self, kind: str = "closure") -> str:
        self._counter += 1
        return f"__cov_{kind}_{self._counter}__"

    def instrument_module(self, tree: ast.Module) -> None:
        self._scan_definitions(tree.body)

    def _scan_definitions(self, statements: List[ast.stmt]) -> None:
        """Find functions at module/class level; leave the level itself alone.

        Module- and class-level statements run once at clone build time,
        never during a traced execution, so they stay uninstrumented — the
        per-run ``Collector.reset`` discards anything they might record.
        """
        for statement in statements:
            if isinstance(statement, ast.FunctionDef):
                self._instrument_function(statement)
            elif isinstance(statement, ast.ClassDef):
                self._scan_definitions(statement.body)

    def _instrument_function(self, function: ast.FunctionDef) -> None:
        body = self._block(function.body)
        function.body = [
            ast.Expr(value=_call(_COV_CALL, [ast.Constant(function.name)])),
            ast.Try(
                body=body or [ast.Pass()],
                handlers=[],
                orelse=[],
                finalbody=[ast.Expr(value=_call(_COV_RET, []))],
            ),
        ]

    def _block(self, statements: List[ast.stmt]) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        for statement in statements:
            out.extend(self._statement(statement))
        return out

    def _rewrite_expressions(
        self, statement: ast.stmt, owner: int, fields: Optional[Tuple[str, ...]]
    ) -> List[ast.stmt]:
        """Hoist comprehensions out of a statement's expressions."""
        rewriter = _CompRewriter(self, owner)
        if fields is None:
            rewriter.generic_visit(statement)
        else:
            for field in fields:
                setattr(statement, field, rewriter.visit(getattr(statement, field)))
        return rewriter.hoisted

    def _statement(self, statement: ast.stmt) -> List[ast.stmt]:
        head = statement_head(statement)
        # Statements that execute without a line event of their own.
        if (
            _is_docstring_or_constant(statement)
            or isinstance(statement, (ast.Global, ast.Nonlocal))
            or (isinstance(statement, ast.AnnAssign) and statement.value is None)
        ):
            return [statement]
        if isinstance(statement, ast.FunctionDef):
            self._instrument_function(statement)
            return [_line_event(head), statement]
        if isinstance(statement, ast.If):
            hoisted = self._rewrite_expressions(statement, head, ("test",))
            statement.test = _or_trick(head, statement.test)
            statement.body = self._block(statement.body)
            statement.orelse = self._block(statement.orelse)
            return hoisted + [statement]
        if isinstance(statement, ast.While):
            # The or-trick fires the header per check: at entry, after every
            # back-jump, and for the final failing check — matching CPython,
            # which attributes even a `while True:` back-jump to the header
            # line (no event when the loop exits via break/return).
            hoisted = self._rewrite_expressions(statement, head, ("test",))
            statement.body = self._block(statement.body)
            statement.test = _or_trick(head, statement.test)
            return hoisted + [statement]
        if isinstance(statement, ast.For):
            return self._rewrite_for(statement, head)
        if isinstance(statement, ast.Try):
            statement.body = self._block(statement.body)
            statement.finalbody = self._block(statement.finalbody)
            if statement.handlers:
                statement.handlers = [
                    self._dispatch_handler(statement.handlers, head)
                ]
            return [_line_event(head), statement]
        # Plain statement (assign, call, return, raise, import, pass, ...).
        hoisted = self._rewrite_expressions(statement, head, None)
        return hoisted + [_line_event(head), statement]

    def _rewrite_for(self, statement: ast.For, head: int) -> List[ast.stmt]:
        """Desugar ``for`` into ``while True`` + explicit ``next()``.

        A traced ``for`` fires its header line per fetch: at entry, after
        each completed iteration (the back-jump), and once at exhaustion —
        but not when the loop exits via ``break``.  The desugared loop fires
        ``__cov_line__(head)`` at exactly those points, without the extra
        frame a wrapper generator would add::

            __cov_line__(head)               # the `for` statement itself
            __cov_iter_N__ = iter(ITER)
            while True:
                __cov_line__(head)           # per-fetch (deduped at entry)
                try:
                    TARGET = next(__cov_iter_N__)
                except StopIteration:
                    break
                BODY
        """
        hoisted = self._rewrite_expressions(statement, head, ("iter",))
        iterator_name = self.fresh_name("iter")
        fetch = ast.Try(
            body=[
                ast.Assign(
                    targets=[statement.target],
                    value=_call("next", [_load(iterator_name)]),
                )
            ],
            handlers=[
                ast.ExceptHandler(
                    type=_load("StopIteration"),
                    name=None,
                    body=[ast.Break()],
                )
            ],
            orelse=[],
            finalbody=[],
        )
        loop = ast.While(
            test=ast.Constant(True),
            body=[_line_event(head), fetch] + self._block(statement.body),
            orelse=[],
        )
        setup = ast.Assign(
            targets=[_store(iterator_name)],
            value=_call("iter", [statement.iter]),
        )
        return hoisted + [_line_event(head), setup, loop]

    def _dispatch_handler(
        self, handlers: List[ast.ExceptHandler], try_head: int
    ) -> ast.ExceptHandler:
        """Collapse except clauses into one catch-all that replays dispatch.

        The tracer sees one owner event at the try head when an exception
        arrives (every examined clause line maps there), then the matching
        handler body.  The synthesized handler fires that event and
        re-implements clause matching with ``isinstance``; unmatched
        exceptions are re-raised bare, preserving the traceback.
        """
        orelse: List[ast.stmt] = [ast.Raise(exc=None, cause=None)]
        for handler in reversed(handlers):
            body = self._block(handler.body)
            if handler.name:
                # Replicate `except E as name:` binding and unbinding.
                body = [
                    ast.Assign(targets=[_store(handler.name)], value=_load(_COV_EXC)),
                    ast.Try(
                        body=body,
                        handlers=[],
                        orelse=[],
                        finalbody=[
                            ast.Assign(
                                targets=[_store(handler.name)],
                                value=ast.Constant(None),
                            ),
                            ast.Delete(
                                targets=[ast.Name(id=handler.name, ctx=ast.Del())]
                            ),
                        ],
                    ),
                ]
            if handler.type is None:
                orelse = body + []
            else:
                test = _call("isinstance", [_load(_COV_EXC), handler.type])
                orelse = [ast.If(test=test, body=body, orelse=orelse)]
        return ast.ExceptHandler(
            type=_load("BaseException"),
            name=_COV_EXC,
            body=[_line_event(try_head)] + orelse,
        )


# ---------------------------------------------------------------------- #
# Module cloning
# ---------------------------------------------------------------------- #


class _RewriteImports(ast.NodeTransformer):
    """Point imports of cloned modules at ``__cov_import__``.

    Imports of modules outside the clone set (errors, stream, taint, the
    Subject base class) are left untouched so exception types and the
    recorder stay shared with the rest of the process.
    """

    def __init__(self, clone_names: Iterable[str]) -> None:
        self._clone_names = frozenset(clone_names)

    def visit_Import(self, node: ast.Import) -> ast.stmt:
        for alias in node.names:
            if alias.name in self._clone_names:
                raise UnsupportedConstruct(
                    f"line {node.lineno}: plain `import {alias.name}` of a "
                    "cloned module (use `from ... import ...`)"
                )
        return node

    def visit_ImportFrom(self, node: ast.ImportFrom):
        if node.level or node.module is None:
            return node
        module = node.module
        replacements: List[ast.stmt] = []
        remaining: List[ast.alias] = []
        for alias in node.names:
            target = alias.asname or alias.name
            submodule = f"{module}.{alias.name}"
            if module in self._clone_names:
                # from <cloned module> import name  ->  name = clone.name
                value: ast.expr = ast.Attribute(
                    value=_call(_COV_IMPORT, [ast.Constant(module)]),
                    attr=alias.name,
                    ctx=ast.Load(),
                )
            elif submodule in self._clone_names:
                # from <package> import <cloned submodule>
                value = _call(_COV_IMPORT, [ast.Constant(submodule)])
            else:
                remaining.append(alias)
                continue
            replacements.append(
                ast.copy_location(
                    ast.Assign(targets=[_store(target)], value=value), node
                )
            )
        if not replacements:
            return node
        if remaining:
            replacements.insert(
                0,
                ast.copy_location(
                    ast.ImportFrom(module=module, names=remaining, level=0), node
                ),
            )
        return replacements


class InstrumentedSubject:
    """A subject clone whose modules carry compiled-in coverage hooks."""

    __slots__ = ("subject", "collector", "modules")

    def __init__(self, subject, collector: Collector, modules) -> None:
        self.subject = subject
        self.collector = collector
        self.modules = modules


def _clone_source(module: types.ModuleType) -> Tuple[str, ast.Module]:
    filename = inspect.getsourcefile(module) or module.__file__
    with open(filename, "r", encoding="utf-8") as handle:
        source = handle.read()
    return filename, ast.parse(source, filename)


def _build(subject) -> Tuple[Dict[str, list], Collector]:
    """Clone, rewrite and execute all modules of one subject class."""
    table = arc_table_for(subject)
    collector = Collector(table)
    instrumented = list(subject.instrument_modules())
    instrumented_names = {module.__name__ for module in instrumented}
    subject_module = sys.modules[type(subject).__module__]
    clone_set = list(instrumented)
    if subject_module.__name__ not in instrumented_names:
        # The subject's own module is not traced (e.g. mjs/subject.py), but
        # it must still call into the clones, so it is import-rewritten
        # without arc instrumentation.
        clone_set.append(subject_module)
    clone_names = {module.__name__ for module in clone_set}

    registry: Dict[str, list] = {}  # name -> [module, code, initialised]

    def importer(name: str) -> types.ModuleType:
        entry = registry[name]
        if not entry[2]:
            entry[2] = True  # set first: tolerate import cycles
            exec(entry[1], entry[0].__dict__)
        return entry[0]

    for module in clone_set:
        filename, tree = _clone_source(module)
        tree = _RewriteImports(clone_names).visit(tree)
        if module.__name__ in instrumented_names:
            _check_supported(tree, filename)
            _Instrumenter().instrument_module(tree)
        ast.fix_missing_locations(tree)
        code = compile(tree, filename, "exec")
        clone = types.ModuleType(module.__name__)
        clone.__file__ = filename
        clone.__package__ = module.__package__
        namespace = clone.__dict__
        line_function = collector.line_function(filename)
        namespace[_COV_LINE] = line_function
        namespace[_COV_CALL] = collector.call_function()
        namespace[_COV_RET] = collector.ret_function()
        namespace[_COV_IMPORT] = importer
        registry[module.__name__] = [clone, code, False]

    for name in registry:
        importer(name)
    return registry, collector


#: One build (cloned modules + collector) per subject identity — the
#: subject class, or its ``arc_table_key`` when it publishes one (adapter
#: subjects wrap many distinct parsers under one class; see
#: :func:`repro.runtime.arcs.arc_table_for`).
_BUILDS: Dict[object, Tuple[Dict[str, list], Collector]] = {}


def instrumented_subject(subject) -> Tuple[object, Collector]:
    """An instrumented clone of ``subject`` plus its (shared) collector.

    The expensive part — parsing, rewriting and compiling the subject's
    modules — runs once per subject identity and is cached; per call only
    a fresh subject instance is materialised from the cloned class with
    the original instance's configuration.

    Subjects that delegate to captured callables rather than methods on
    their own class (adapters like
    :class:`~repro.subjects.function.FunctionSubject`) implement
    ``rebind_instrumented(resolve)`` — called with a ``module name ->
    clone module`` resolver, returning the clone subject with its
    captured state rebound into the cloned modules.
    """
    key = getattr(subject, "arc_table_key", None)
    if key is None:
        key = type(subject)
    build = _BUILDS.get(key)
    if build is None:
        build = _BUILDS[key] = _build(subject)
    registry, collector = build

    def resolve(name: str) -> types.ModuleType:
        return registry[name][0]

    rebind = getattr(subject, "rebind_instrumented", None)
    if rebind is not None:
        return rebind(resolve), collector
    cls = type(subject)
    clone_module = registry[cls.__module__][0]
    clone_cls = getattr(clone_module, cls.__name__)
    clone = clone_cls.__new__(clone_cls)
    clone.__dict__.update(subject.__dict__)
    return clone, collector
