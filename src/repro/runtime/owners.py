"""Statement ownership: map raw source lines to their owning statement.

CPython's line-event stream is noisy at sub-statement granularity: a
multi-line call fires one event per physical line it touches, a multi-line
boolean condition fires extra "jump" events attributed to the ``if (`` line,
and comprehension frames fire one event per produced item.  None of that
noise is a *branch decision* — it is an artifact of how the compiler lays
out line numbers.

Both coverage backends therefore normalise events to **statement owners**:
every physical line belongs to the innermost statement that contains it, and
an event only counts when it lands on a different owner than the previous
event in the same frame.  The settrace backend applies the mapping to raw
``f_lineno`` values; the AST backend only ever emits events at owner points.
Using the same table on both sides is what makes their arc sets equal by
construction.

Special cases baked into the table:

* ``except`` clause header lines map to the ``try`` statement's head line —
  exception dispatch fires one event per examined clause, which collapses to
  a single "the try dispatched" event;
* decorated ``def``/``class`` statements are owned by their first decorator
  line (evaluation starts there).
"""

from __future__ import annotations

import ast
from typing import Dict

#: filename -> (line -> owner line).  Owner maps are immutable per file.
_CACHE: Dict[str, Dict[int, int]] = {}


def statement_head(node: ast.stmt) -> int:
    """The line a statement's execution is attributed to."""
    decorators = getattr(node, "decorator_list", None)
    if decorators:
        return min(decorator.lineno for decorator in decorators)
    return node.lineno


def _build(tree: ast.AST) -> Dict[int, int]:
    owners: Dict[int, int] = {}
    # ast.walk is breadth-first, so parents assign their full spans before
    # nested statements overwrite the sub-ranges they own.  Lines that only
    # belong to a compound statement's header (an ``if`` test, a ``try:`` or
    # ``except`` line) keep the compound statement as their owner.
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        head = statement_head(node)
        end = node.end_lineno or head
        for line in range(head, end + 1):
            owners[line] = head
    return owners


def owner_map(filename: str) -> Dict[int, int]:
    """Line -> owning-statement-head map for ``filename``.

    Unreadable or unparsable files get an empty map, which callers treat as
    the identity mapping (``owners.get(line, line)``).
    """
    cached = _CACHE.get(filename)
    if cached is None:
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
            cached = _build(ast.parse(source, filename))
        except (OSError, SyntaxError, ValueError):
            cached = {}
        _CACHE[filename] = cached
    return cached
