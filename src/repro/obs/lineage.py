"""Candidate lineage: every input as a replayable derivation chain.

The paper's walkthrough (Figure 1) derives ``"while"`` from the empty
input through a chain of appends and comparison-driven substitutions.
:class:`LineageLog` records exactly that chain for *every* input the
fuzzer creates: one :class:`LineageNode` per input, carrying its parent
node and the operation that produced it —

* ``"seed"`` — a root: an initial input, the empty-string start, or a
  random restart character.  ``replacement`` holds the full text.
* ``"append"`` — the random-character extension of the parent input;
  ``replacement`` is the appended character.
* ``"substitute"`` — a comparison-driven splice (Algorithm 1
  ``addInputs``): ``parent_text[:at_index] + replacement``, where
  ``cmp_kind`` names the comparison kind (``strcmp``, ``==``, ``in``,
  ...) that produced it.
* ``"sync"`` — a root imported from another shard's corpus during a
  sync point (see :mod:`repro.eval.sync`).  Like ``"seed"``,
  ``replacement`` holds the full text; ``cmp_kind`` carries the shared
  store's provenance tag so cross-shard chains stay explainable.
* ``"gen"`` — a root flooded by the compiled grammar generator during a
  hybrid campaign's generation phase (see :mod:`repro.hybrid`).  Like
  ``"seed"``, ``replacement`` holds the full text; ``cmp_kind`` carries
  the generation phase tag (``"phase-N"``) so corpus entries remain
  attributable to the grammar that produced them.

Because every operation is a pure function of the parent's text,
:meth:`LineageLog.replay` can re-derive any node's input bytes from its
root — the acceptance check that a lineage chain really *explains* its
input.  The log serialises into campaign snapshots
(:meth:`to_payload` / :meth:`from_payload`), so chains survive
checkpoint/resume, and reconstructs from a trace file's
``candidate_scheduled`` events (:meth:`from_trace_events`), so the
``repro trace lineage`` query needs only the NDJSON artifact.

Lineage ids are assigned deterministically (a monotonic counter advanced
in loop order), independent of whether a trace recorder is attached —
a resumed campaign allocates the same ids an uninterrupted one would,
with or without tracing enabled.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional


class LineageError(Exception):
    """A lineage query failed (unknown node, broken chain, bad replay)."""


class LineageNode(NamedTuple):
    """One input's provenance: parent plus the operation that made it.

    A ``NamedTuple``: nodes are created for every queued candidate and
    every executed input, so construction cost matters even with tracing
    disabled.
    """

    node_id: int
    parent_id: Optional[int]
    op: str  # "seed" | "append" | "substitute" | "sync" | "gen"
    text: str
    replacement: str = ""
    at_index: int = 0
    cmp_kind: str = ""

    def derive(self, parent_text: str) -> str:
        """Apply this node's operation to its parent's text."""
        if self.op in ("seed", "sync", "gen"):
            return self.replacement
        if self.op == "append":
            return parent_text + self.replacement
        if self.op == "substitute":
            return parent_text[: self.at_index] + self.replacement
        raise LineageError(f"unknown lineage op {self.op!r}")


class LineageLog:
    """Append-only table of lineage nodes with chain queries."""

    def __init__(self) -> None:
        self.nodes: Dict[int, LineageNode] = {}
        self.next_id = 0

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def new_node(
        self,
        parent_id: Optional[int],
        op: str,
        text: str,
        replacement: str = "",
        at_index: int = 0,
        cmp_kind: str = "",
    ) -> int:
        """Allocate the next node id and record the node; returns the id."""
        node_id = self.next_id
        self.next_id = node_id + 1
        self.nodes[node_id] = LineageNode(
            node_id, parent_id, op, text, replacement, at_index, cmp_kind
        )
        return node_id

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def get(self, node_id: int) -> LineageNode:
        node = self.nodes.get(node_id)
        if node is None:
            raise LineageError(f"unknown lineage node {node_id}")
        return node

    def chain(self, node_id: int) -> List[LineageNode]:
        """The derivation chain root-first, ending at ``node_id``.

        Raises:
            LineageError: the node (or any ancestor) is missing, or the
                parent links cycle.
        """
        out: List[LineageNode] = []
        seen = set()
        current: Optional[int] = node_id
        while current is not None:
            if current in seen:
                raise LineageError(f"lineage cycle at node {current}")
            seen.add(current)
            node = self.get(current)
            out.append(node)
            current = node.parent_id
        out.reverse()
        return out

    def replay(self, node_id: int) -> str:
        """Re-derive the node's input bytes by folding the chain's ops."""
        text = ""
        for node in self.chain(node_id):
            text = node.derive(text)
        return text

    def find_by_text(self, text: str) -> List[int]:
        """Node ids whose recorded text equals ``text``, in id order."""
        return sorted(
            node_id for node_id, node in self.nodes.items() if node.text == text
        )

    # ------------------------------------------------------------------ #
    # Snapshot serialisation (see repro.eval.checkpoint)
    # ------------------------------------------------------------------ #

    def to_payload(self) -> dict:
        """JSON-safe form for campaign snapshots (nodes in id order)."""
        return {
            "next_id": self.next_id,
            "nodes": [list(self.nodes[key]) for key in sorted(self.nodes)],
        }

    @classmethod
    def from_payload(cls, payload: Optional[dict]) -> "LineageLog":
        """Rebuild from :meth:`to_payload` (None/missing -> empty log)."""
        log = cls()
        if not payload:
            return log
        for record in payload["nodes"]:
            node = LineageNode(*record)
            log.nodes[node.node_id] = node
        log.next_id = payload["next_id"]
        return log

    # ------------------------------------------------------------------ #
    # Trace reconstruction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_trace_events(cls, events: Iterable[dict]) -> "LineageLog":
        """Rebuild the lineage tree from a trace's NDJSON events.

        ``candidate_scheduled`` events carry the tree structure; matching
        ``substitution_applied`` events (same ``lineage`` id) refine
        substitute nodes with the splice position and comparison kind.
        """
        log = cls()
        details: Dict[int, dict] = {}
        scheduled: List[dict] = []
        for event in events:
            kind = event.get("type")
            if kind == "candidate_scheduled":
                scheduled.append(event)
            elif kind == "substitution_applied":
                details[event["lineage"]] = event
        for event in scheduled:
            node_id = event["lineage"]
            detail = details.get(node_id, {})
            node = LineageNode(
                node_id=node_id,
                parent_id=event["parent"],
                op=event["op"],
                text=event["text"],
                replacement=detail.get(
                    "replacement",
                    event["text"]
                    if event["op"] in ("seed", "sync", "gen")
                    else event.get("replacement", ""),
                ),
                at_index=detail.get("at_index", 0),
                cmp_kind=detail.get("cmp_kind", ""),
            )
            log.nodes[node_id] = node
            log.next_id = max(log.next_id, node_id + 1)
        return log
