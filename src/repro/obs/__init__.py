"""Observability subsystem: structured tracing and candidate lineage.

The paper's central claim is that every valid input is *explainable* — it
was derived by a chain of comparison-driven substitutions.  This package
makes that explanation a first-class artifact:

* :mod:`repro.obs.trace` — a low-overhead structured trace bus emitting
  typed NDJSON events (candidate scheduled/executed/rejected, substitution
  applied with the comparison that caused it, input emitted, checkpoint
  written, preemption) plus per-phase span timings;
* :mod:`repro.obs.lineage` — the candidate lineage tree: every executed
  input records its parent and the operation that produced it, so any
  valid input replays as a derivation chain (``repro trace lineage``);
* :mod:`repro.obs.export` — exporters: Chrome ``chrome://tracing`` JSON
  for spans, lineage DOT/JSON dumps.

Tracing is opt-in (``FuzzerConfig.trace_path`` / ``--trace``); when
disabled, the fuzzer runs against :data:`repro.obs.trace.NULL_RECORDER`,
whose emit path is a constant-false flag check.
"""

from repro.obs.lineage import LineageError, LineageLog, LineageNode
from repro.obs.trace import (
    NULL_RECORDER,
    TRACE_SCHEMA_VERSION,
    InMemoryTraceRecorder,
    JsonlTraceRecorder,
    PhaseTimer,
    TraceRecorder,
    read_trace,
    validate_event,
)

__all__ = [
    "LineageError",
    "LineageLog",
    "LineageNode",
    "NULL_RECORDER",
    "TRACE_SCHEMA_VERSION",
    "InMemoryTraceRecorder",
    "JsonlTraceRecorder",
    "PhaseTimer",
    "TraceRecorder",
    "read_trace",
    "validate_event",
]
