"""Structured trace bus: typed NDJSON events with per-phase span timing.

One campaign's trace is an append-only NDJSON file, one event per line.
Events are plain JSON objects with two envelope fields — ``"v"`` (the
trace schema version) and ``"type"`` — plus per-type payload fields
described by :data:`TRACE_SCHEMA`.  Appends follow the same torn-tail
discipline as the corpus store and jobs journal: a SIGKILL mid-write
corrupts at most the trailing line, which :func:`read_trace` skips.

Event types:

``campaign_start``
    A campaign (or a resumed leg of one) entered its main loop.
``candidate_scheduled``
    A lineage node was created: a candidate entered the system via
    ``op`` ``"seed"`` (random restart / initial input / empty start),
    ``"append"`` (the random-character extension) or ``"substitute"``.
``substitution_applied``
    Companion detail for ``op == "substitute"`` nodes: the comparison
    (STRCMP, character relation, class membership) that caused the
    splice, with its operands and splice position.
``candidate_rejected``
    A derived candidate was discarded without executing (duplicate of an
    already-seen input, or over the length cap).
``candidate_executed``
    One subject execution finished, with its exit status.
``input_emitted``
    A valid input with new coverage was emitted (Algorithm 1 Line 38).
``span``
    One timed occurrence of a campaign phase ("execute" / "rescore" /
    "substitute" / "checkpoint"): wall-clock start offset and duration.
``corpus_sync``
    One corpus-sync point of a sharded campaign (see
    :mod:`repro.eval.sync`): how many valid inputs were pushed to and
    imported from the shared store at this execution count.
``queue_cull``
    One queue-hygiene pass (see
    :meth:`repro.core.queue.CandidateQueue.cull`): how many dead and
    dominated entries were dropped, and how many remain.
``grammar_mined``
    A hybrid campaign induced a grammar from its accumulated valid
    inputs (see :mod:`repro.hybrid`): corpus slice size, rule count, and
    how many lineage-derived keywords enriched the token boundaries.
``gen_phase``
    One generation flood of a hybrid campaign: how many compiled-grammar
    candidates were injected and how many survived as valid
    ``"gen"``-lineage corpus roots after the ``vBr`` reset.
``gain_update``
    Service-side: the scheduler's coverage-gain posterior for one job
    after a completed slice (see :mod:`repro.service.gain`), with the
    dynamic stride weight and whether the job is parked.
``crash_found``
    A crash-hunting campaign recorded a crashing input at a failure site
    not seen before (see
    :attr:`repro.core.config.FuzzerConfig.hunt_crashes`); ``signature``
    is the ``(exception_type, file, line)`` failure-site triple of
    :func:`repro.runtime.harness.failure_site`.  Emitted at most once
    per distinct site.
``checkpoint_written``, ``resumed``, ``preempted``, ``campaign_end``
    Durability and lifecycle markers.

The recorder API is deliberately tiny: :class:`TraceRecorder` is the
null implementation (``enabled`` False, ``emit`` a no-op), so the fuzzer
hot path guards every event construction behind one attribute check and
disabled tracing costs a single branch per would-be event.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

PathLike = Union[str, Path]

#: Bumped on any envelope/payload field rename or retyping; additions
#: keep the version.
TRACE_SCHEMA_VERSION = 1

#: Required payload fields per event type (the envelope fields ``v`` and
#: ``type`` are required for every event; ``ts`` — seconds since the
#: recorder was opened — is added by the recorders themselves).
TRACE_SCHEMA: Dict[str, tuple] = {
    "campaign_start": ("subject", "seed", "budget", "executions"),
    "candidate_scheduled": ("lineage", "parent", "op", "text"),
    "substitution_applied": (
        "lineage",
        "parent",
        "at_index",
        "replacement",
        "cmp_kind",
        "cmp_expected",
    ),
    "candidate_rejected": ("reason", "text"),
    "candidate_executed": ("lineage", "executions", "status"),
    "input_emitted": ("lineage", "executions", "text", "signature"),
    "span": ("phase", "start", "dur"),
    "corpus_sync": ("executions", "pushed", "imported"),
    "queue_cull": ("executions", "dead", "dominated", "kept"),
    "grammar_mined": ("executions", "phase", "corpus", "rules", "keywords"),
    "gen_phase": ("executions", "phase", "injected", "valid"),
    "gain_update": ("job_id", "executions", "posterior", "weight", "parked"),
    "crash_found": ("lineage", "executions", "text", "signature"),
    "checkpoint_written": ("executions",),
    "resumed": ("executions", "resumes"),
    "preempted": ("executions",),
    "campaign_end": ("executions", "valid_inputs", "wall_time"),
}

#: ``op`` values legal on ``candidate_scheduled`` events.
LINEAGE_OPS = ("seed", "append", "substitute", "sync", "gen")


def validate_event(event: object) -> dict:
    """Check one decoded trace event against :data:`TRACE_SCHEMA`.

    Returns the event unchanged when valid.

    Raises:
        ValueError: not an object, wrong/missing schema version, unknown
            type, missing payload fields, or an illegal lineage ``op``.
    """
    if not isinstance(event, dict):
        raise ValueError(f"trace event is not an object: {event!r}")
    version = event.get("v")
    if version != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema {version!r} "
            f"(expected {TRACE_SCHEMA_VERSION})"
        )
    kind = event.get("type")
    if kind not in TRACE_SCHEMA:
        raise ValueError(f"unknown trace event type {kind!r}")
    missing = [name for name in TRACE_SCHEMA[kind] if name not in event]
    if missing:
        raise ValueError(
            f"{kind} event missing fields: {', '.join(missing)}"
        )
    if kind == "candidate_scheduled" and event["op"] not in LINEAGE_OPS:
        raise ValueError(f"illegal lineage op {event['op']!r}")
    return event


class TraceRecorder:
    """Null recorder: the disabled-tracing fast path.

    ``enabled`` is the contract: callers guard event *construction* (not
    just emission) behind it, so a disabled campaign pays one attribute
    check per would-be event and nothing else.
    """

    enabled = False

    def emit(self, type: str, **fields) -> None:  # noqa: A002 - schema name
        """Record one event (no-op here)."""

    def close(self) -> None:
        """Release any resources (no-op here)."""


#: Shared no-op recorder; stateless, safe to reuse across campaigns.
NULL_RECORDER = TraceRecorder()


class _CountingRecorder(TraceRecorder):
    """Shared bookkeeping for real recorders: per-type event counts."""

    enabled = True

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self._origin = time.monotonic()

    def _envelope(self, type: str, fields: dict) -> dict:  # noqa: A002
        self.counts[type] = self.counts.get(type, 0) + 1
        event = {
            "v": TRACE_SCHEMA_VERSION,
            "type": type,
            "ts": round(time.monotonic() - self._origin, 6),
        }
        event.update(fields)
        return event


class InMemoryTraceRecorder(_CountingRecorder):
    """Buffer events as dicts; for tests and in-process consumers."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[dict] = []

    def emit(self, type: str, **fields) -> None:  # noqa: A002
        self.events.append(self._envelope(type, fields))


class JsonlTraceRecorder(_CountingRecorder):
    """Append NDJSON events to a file.

    The file is opened in append mode so a resumed campaign continues its
    predecessor's trace; writes are line-buffered JSON (flushed every
    ``flush_every`` events and on :meth:`close`), and a kill mid-write
    tears at most the trailing line.
    """

    def __init__(self, path: PathLike, flush_every: int = 64) -> None:
        super().__init__()
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._flush_every = max(1, flush_every)
        self._unflushed = 0

    def emit(self, type: str, **fields) -> None:  # noqa: A002
        line = json.dumps(
            self._envelope(type, fields),
            ensure_ascii=True,
            separators=(",", ":"),
        )
        self._handle.write(line + "\n")
        self._unflushed += 1
        if self._unflushed >= self._flush_every:
            self._handle.flush()
            self._unflushed = 0

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


def read_trace(path: PathLike, *, strict: bool = False) -> List[dict]:
    """Read and validate every event from an NDJSON trace file.

    By default the torn tail of an interrupted append — a malformed
    *final* line — is skipped, matching the corpus store and jobs
    journal.  A malformed line anywhere else is always an error (it means
    corruption, not a crash mid-append).

    Args:
        path: the NDJSON trace file.
        strict: raise on a torn tail instead of skipping it.

    Raises:
        ValueError: malformed JSON (other than a tolerated torn tail), or
            any event failing :func:`validate_event`.
    """
    lines = [
        line
        for line in Path(path).read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    events: List[dict] = []
    for position, line in enumerate(lines):
        try:
            events.append(validate_event(json.loads(line)))
        except (json.JSONDecodeError, ValueError) as exc:
            if not strict and position == len(lines) - 1:
                break
            raise ValueError(
                f"{path}: line {position + 1}: {exc}"
            ) from None
    return events


class PhaseTimer:
    """Accumulate per-phase wall time, emitting one span event per stop.

    Subsumes the fuzzer's previous ad-hoc ``phase_times`` dict: the
    cumulative totals are still available as :attr:`totals` (and keep
    feeding ``FuzzingResult.phase_times`` / campaign metrics), but every
    timed occurrence additionally becomes a ``span`` trace event, which
    is what the Chrome-trace exporter renders.

    The hot path is two ``time.perf_counter()`` calls plus one dict add;
    span construction is guarded by the recorder's ``enabled`` flag.
    """

    def __init__(
        self,
        recorder: TraceRecorder = NULL_RECORDER,
        totals: Optional[Dict[str, float]] = None,
    ) -> None:
        self.recorder = recorder
        self.totals: Dict[str, float] = dict(totals or {})
        self._origin = time.perf_counter()

    @staticmethod
    def start() -> float:
        """Mark the start of a timed section."""
        return time.perf_counter()

    def stop(self, phase: str, started: float) -> float:
        """Close a timed section; returns its duration in seconds."""
        now = time.perf_counter()
        duration = now - started
        self.totals[phase] = self.totals.get(phase, 0.0) + duration
        if self.recorder.enabled:
            self.recorder.emit(
                "span",
                phase=phase,
                start=round(started - self._origin, 6),
                dur=round(duration, 6),
            )
        return duration
