"""Exporters: Chrome tracing JSON for spans, DOT/JSON dumps for lineage.

All exporters consume the decoded event list of :func:`repro.obs.trace.
read_trace` (or a :class:`~repro.obs.lineage.LineageLog`), never the
fuzzer's live state — a trace file is the complete observability
artifact of a campaign.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.obs.lineage import LineageLog


def chrome_trace(events: Iterable[dict]) -> dict:
    """Convert span (and marker) events to Chrome's trace-event format.

    The output loads directly into ``chrome://tracing`` / Perfetto:
    ``span`` events become complete ("X") slices on one thread per
    campaign phase; emit/checkpoint/resume markers become instant ("i")
    events.  Timestamps are microseconds, as the format requires.
    """
    phases: Dict[str, int] = {}
    out: List[dict] = []

    def thread_for(phase: str) -> int:
        if phase not in phases:
            phases[phase] = len(phases) + 1
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": phases[phase],
                    "args": {"name": phase},
                }
            )
        return phases[phase]

    for event in events:
        kind = event.get("type")
        if kind == "span":
            out.append(
                {
                    "name": event["phase"],
                    "cat": "phase",
                    "ph": "X",
                    "ts": round(event["start"] * 1e6, 3),
                    "dur": round(event["dur"] * 1e6, 3),
                    "pid": 1,
                    "tid": thread_for(event["phase"]),
                }
            )
        elif kind in ("input_emitted", "checkpoint_written", "resumed", "preempted"):
            out.append(
                {
                    "name": kind,
                    "cat": "campaign",
                    "ph": "i",
                    "s": "g",
                    "ts": round(event.get("ts", 0.0) * 1e6, 3),
                    "pid": 1,
                    "tid": 0,
                    "args": {
                        key: value
                        for key, value in event.items()
                        if key not in ("v", "type", "ts")
                    },
                }
            )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def lineage_dot(
    log: LineageLog, node_ids: Optional[Iterable[int]] = None
) -> str:
    """Render (a subtree of) the lineage tree as Graphviz DOT.

    Args:
        log: the lineage tree.
        node_ids: restrict to these nodes and their ancestors; None
            renders the whole tree.
    """
    if node_ids is None:
        selected = set(log.nodes)
    else:
        selected = set()
        for node_id in node_ids:
            selected.update(node.node_id for node in log.chain(node_id))
    lines = ["digraph lineage {", "  rankdir=TB;", "  node [shape=box];"]
    for node_id in sorted(selected):
        node = log.nodes[node_id]
        label = f"#{node.node_id} {node.op}"
        if node.op == "substitute":
            label += f" @{node.at_index} {node.cmp_kind} {node.replacement!r}"
        elif node.replacement:
            label += f" {node.replacement!r}"
        label += f"\\n{node.text!r}"
        lines.append(f'  n{node.node_id} [label="{_dot_escape(label)}"];')
    for node_id in sorted(selected):
        node = log.nodes[node_id]
        if node.parent_id is not None and node.parent_id in selected:
            lines.append(f"  n{node.parent_id} -> n{node.node_id};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def lineage_json(
    log: LineageLog, node_ids: Optional[Iterable[int]] = None
) -> str:
    """Dump (chains of) the lineage tree as a JSON document.

    With ``node_ids``, the dump is a list of root-first chains (one per
    requested node); without, it is every node in id order.
    """
    if node_ids is None:
        payload = {
            "nodes": [log.nodes[key]._asdict() for key in sorted(log.nodes)]
        }
    else:
        payload = {
            "chains": [
                [node._asdict() for node in log.chain(node_id)]
                for node_id in node_ids
            ]
        }
    return json.dumps(payload, ensure_ascii=True, indent=2) + "\n"
