"""Thin urllib client for the campaign service control plane.

Used by the ``repro submit`` / ``repro status`` / ``repro cancel`` CLI
subcommands and by tests; keeps the HTTP wire format in one place so the
CLI never hand-rolls requests.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, List, Optional

from repro.eval.metrics import CampaignMetrics
from repro.service.jobs import TERMINAL_STATES, JobState


class ServiceError(RuntimeError):
    """An HTTP error from the service, carrying its JSON ``error`` text."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Client for one service instance, e.g. ``ServiceClient("http://127.0.0.1:8321")``."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------- #

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
    ) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload, ensure_ascii=True).encode("ascii")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except json.JSONDecodeError:
                message = raw or exc.reason
            raise ServiceError(exc.code, message) from None

    def _request_text(self, path: str) -> str:
        request = urllib.request.Request(self.base_url + path)
        with urllib.request.urlopen(request, timeout=self.timeout) as resp:
            return resp.read().decode("utf-8")

    # -- endpoints -------------------------------------------------------- #

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, spec: dict) -> dict:
        """POST a job spec; returns the created job record dict."""
        return self._request("POST", "/jobs", payload=spec)

    def jobs(self) -> List[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def metrics(self) -> str:
        """The raw Prometheus exposition text."""
        return self._request_text("/metrics")

    def events(self) -> Iterator[CampaignMetrics]:
        """The buffered /events backlog, parsed through the schema reader."""
        request = urllib.request.Request(self.base_url + "/events")
        with urllib.request.urlopen(request, timeout=self.timeout) as resp:
            for raw in resp:
                line = raw.decode("utf-8").strip()
                if line:
                    yield CampaignMetrics.from_json_line(line)

    def trace_events(self) -> Iterator[dict]:
        """The buffered /events?trace=1 backlog: raw campaign trace events
        (see :mod:`repro.obs.trace`) from traced jobs, tagged with their
        ``job_id``."""
        request = urllib.request.Request(self.base_url + "/events?trace=1")
        with urllib.request.urlopen(request, timeout=self.timeout) as resp:
            for raw in resp:
                line = raw.decode("utf-8").strip()
                if line:
                    yield json.loads(line)

    # -- conveniences ----------------------------------------------------- #

    def wait(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.1
    ) -> dict:
        """Poll until the job reaches a terminal state.

        Raises:
            TimeoutError: still non-terminal after ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if JobState(record["state"]) in TERMINAL_STATES:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} "
                    f"after {timeout:.1f}s"
                )
            time.sleep(poll)

    def wait_until_ready(self, timeout: float = 10.0, poll: float = 0.05) -> None:
        """Poll /healthz until the server answers (for freshly spawned ones)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.healthz()
                return
            except (urllib.error.URLError, ConnectionError, OSError):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"service at {self.base_url} not ready "
                        f"after {timeout:.1f}s"
                    ) from None
                time.sleep(poll)
