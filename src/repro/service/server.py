"""HTTP control plane for the campaign service (stdlib only).

:class:`CampaignService` owns the job store, the scheduler and the event
stream; :func:`make_server` wraps it in a ``ThreadingHTTPServer``.  The
scheduler runs in the caller's thread (:meth:`CampaignService.run`), HTTP
handlers run in daemon threads and only touch the thread-safe store and
the event buffer.

Endpoints::

    POST   /jobs        submit a JobSpec JSON -> job record (201); with
                        "shards": N > 1 the job expands into a gang-
                        scheduled shard group and the response carries
                        ``shard_group`` plus every member record
    GET    /jobs        every job record, submission order
    GET    /jobs/<id>   one job record
    DELETE /jobs/<id>   cancel (terminal; the job's snapshot is preserved)
    GET    /events      NDJSON stream of per-slice CampaignMetrics
                        records (add ?follow=1 to keep streaming; add
                        ?trace=1 for raw campaign trace events from
                        traced jobs instead)
    GET    /healthz     liveness + job counts
    GET    /metrics     Prometheus text format

Durability contract: all state that matters is in the journal and the
per-job checkpoint directories, both crash-safe.  SIGKILL the server at
any point, restart it on the same ``--state-dir``, and every unfinished
job resumes to a byte-identical result (same ``result_fingerprint``) —
the property ``tests/service/test_kill_restart.py`` asserts.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.eval.metrics import CampaignMetrics
from repro.runtime.limits import peak_rss_kb
from repro.service.jobs import (
    JobError,
    JobRecord,
    JobSpec,
    JobState,
    JobStateError,
    JobStore,
)
from repro.service.scheduler import CampaignScheduler, SchedulerConfig

_JOB_PATH_RE = re.compile(r"^/jobs/([A-Za-z0-9_-]+)$")

#: Per-slice metrics records kept for /events; old entries fall off.
_EVENT_BUFFER = 4096

#: Campaign trace events kept for /events?trace=1; old entries fall off.
_TRACE_BUFFER = 8192


class CampaignService:
    """The resident service: store + scheduler + event stream.

    Args:
        state_dir: holds ``journal.jsonl`` and per-job checkpoint
            directories under ``jobs/``; everything a restarted service
            needs to finish in-flight work deterministically.
        scheduler_config: worker pool size, slice length, retry policy.
    """

    def __init__(
        self,
        state_dir,
        scheduler_config: Optional[SchedulerConfig] = None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.store = JobStore(self.state_dir / "journal.jsonl")
        self.scheduler = CampaignScheduler(
            self.store,
            self.state_dir,
            scheduler_config,
            on_slice=self._record_slice,
        )
        self._events: deque = deque(maxlen=_EVENT_BUFFER)
        self._events_seen = 0
        self._events_cond = threading.Condition()
        self._started = time.monotonic()
        self._slice_wall_total = 0.0
        self._slice_executions_total = 0
        self._worker_peak_rss_kb = 0
        #: Cumulative trace-event counts by type, across every traced job.
        self._trace_counts: Dict[str, int] = {}
        #: Byte offset already ingested from each traced job's trace file.
        self._trace_offsets: Dict[str, int] = {}
        self._trace_events: deque = deque(maxlen=_TRACE_BUFFER)
        self._trace_seen = 0

    # -- event stream ---------------------------------------------------- #

    def _ingest_trace(self, job_id: str) -> List[dict]:
        """New complete trace lines from the job's file since last slice.

        Workers append NDJSON to ``jobs/<id>/trace.ndjson``; the service
        tails it at slice boundaries, remembering the byte offset per job.
        A torn final line (the worker was killed mid-append) stays behind
        the offset and is retried — or skipped — on the next slice.
        """
        path = self.state_dir / "jobs" / job_id / "trace.ndjson"
        offset = self._trace_offsets.get(job_id, 0)
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                data = handle.read()
        except OSError:
            return []
        end = data.rfind(b"\n")
        if end < 0:
            return []
        self._trace_offsets[job_id] = offset + end + 1
        events: List[dict] = []
        for line in data[:end].split(b"\n"):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue
            if isinstance(event, dict):
                event["job_id"] = job_id
                events.append(event)
        return events

    def _record_slice(
        self,
        record: JobRecord,
        metrics: CampaignMetrics,
        delta_executions: int,
        slice_wall: float,
        trace_events: Optional[Dict[str, int]] = None,
    ) -> None:
        fresh_trace = self._ingest_trace(record.job_id) if trace_events else []
        gain = self.scheduler.gain_state(record)
        if gain is not None:
            # Synthesized service-side event: the adaptive scheduler's
            # posterior for this job after the slice, interleaved into
            # the trace stream so /events?trace=1 consumers see gain
            # moves next to the campaign events that caused them.
            from repro.obs.trace import TRACE_SCHEMA_VERSION

            fresh_trace.append(
                {
                    "v": TRACE_SCHEMA_VERSION,
                    "type": "gain_update",
                    "job_id": record.job_id,
                    "executions": record.executions,
                    "posterior": gain["posterior"],
                    "weight": gain["weight"],
                    "parked": gain["parked"],
                }
            )
        with self._events_cond:
            self._events.append(metrics)
            self._events_seen += 1
            self._slice_wall_total += slice_wall
            self._slice_executions_total += delta_executions
            self._worker_peak_rss_kb = max(
                self._worker_peak_rss_kb, metrics.peak_rss_kb
            )
            if trace_events:
                for kind, count in trace_events.items():
                    self._trace_counts[kind] = (
                        self._trace_counts.get(kind, 0) + count
                    )
            if gain is not None:
                self._trace_counts["gain_update"] = (
                    self._trace_counts.get("gain_update", 0) + 1
                )
            for event in fresh_trace:
                self._trace_events.append(event)
            self._trace_seen += len(fresh_trace)
            self._events_cond.notify_all()

    def events_snapshot(self) -> Tuple[int, List[CampaignMetrics]]:
        """(total events ever seen, buffered records oldest-first)."""
        with self._events_cond:
            return self._events_seen, list(self._events)

    def trace_snapshot(self) -> Tuple[int, List[dict]]:
        """(total trace events ever seen, buffered events oldest-first)."""
        with self._events_cond:
            return self._trace_seen, list(self._trace_events)

    def wait_for_events(self, seen: int, timeout: float) -> None:
        """Block until the event counter passes ``seen`` (or timeout)."""
        with self._events_cond:
            if self._events_seen <= seen:
                self._events_cond.wait(timeout)

    def wait_for_trace(self, seen: int, timeout: float) -> None:
        """Block until the trace counter passes ``seen`` (or timeout)."""
        with self._events_cond:
            if self._trace_seen <= seen:
                self._events_cond.wait(timeout)

    # -- control-plane operations ---------------------------------------- #

    def submit(self, payload: dict) -> List[JobRecord]:
        """Submit one job — or, with ``shards`` > 1, a shard group.

        Returns the created records (one per shard; a single record for
        ordinary jobs).  Raises :class:`JobError` on an invalid spec.
        """
        return self.store.submit_sharded(JobSpec.from_dict(payload))

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job; its snapshot directory is left untouched.

        Raises:
            JobError: unknown job.
            JobStateError: the job is already terminal.
        """
        return self.store.transition(job_id, JobState.CANCELLED)

    def health(self) -> dict:
        states = self.state_counts()
        return {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "jobs": sum(states.values()),
            "states": states,
        }

    def state_counts(self) -> Dict[str, int]:
        counts = {state.value: 0 for state in JobState}
        for record in self.store.list():
            counts[record.state.value] += 1
        return counts

    def metrics_text(self) -> str:
        """Service gauges/counters in Prometheus text exposition format."""
        states = self.state_counts()
        records = self.store.list()
        executions = sum(record.executions for record in records)
        resumes = sum(record.resumes for record in records)
        slices = sum(record.slices for record in records)
        crashes = sum(record.crashes for record in records)
        with self._events_cond:
            wall = self._slice_wall_total
            sliced_execs = self._slice_executions_total
            worker_rss = self._worker_peak_rss_kb
            trace_counts = dict(self._trace_counts)
        execs_per_second = sliced_execs / wall if wall > 0 else 0.0
        # Sum the newest cumulative phase_times per job (not per slice —
        # slices report campaign-cumulative timings).
        newest_by_job: Dict[Tuple[str, str, int], Dict[str, float]] = {}
        for metrics in list(self._events):
            if metrics.phase_times:
                key = (metrics.tool, metrics.subject, metrics.seed)
                newest_by_job[key] = metrics.phase_times
        phase_totals: Dict[str, float] = {}
        for phases in newest_by_job.values():
            for phase, seconds in phases.items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
        lines = [
            "# HELP repro_service_jobs Jobs by lifecycle state.",
            "# TYPE repro_service_jobs gauge",
        ]
        for state in JobState:
            lines.append(
                f'repro_service_jobs{{state="{state.value}"}} {states[state.value]}'
            )
        queue_depth = states["queued"] + states["paused"]
        lines += [
            "# HELP repro_service_queue_depth Jobs waiting for a time slice.",
            "# TYPE repro_service_queue_depth gauge",
            f"repro_service_queue_depth {queue_depth}",
            "# HELP repro_service_running_jobs Jobs currently on a worker.",
            "# TYPE repro_service_running_jobs gauge",
            f"repro_service_running_jobs {states['running']}",
            "# HELP repro_service_executions_total Subject executions across all jobs.",
            "# TYPE repro_service_executions_total counter",
            f"repro_service_executions_total {executions}",
            "# HELP repro_service_resumes_total Checkpoint resumes across all jobs.",
            "# TYPE repro_service_resumes_total counter",
            f"repro_service_resumes_total {resumes}",
            "# HELP repro_service_slices_total Completed time slices.",
            "# TYPE repro_service_slices_total counter",
            f"repro_service_slices_total {slices}",
            "# HELP repro_service_executions_per_second Throughput over completed slices.",
            "# TYPE repro_service_executions_per_second gauge",
            f"repro_service_executions_per_second {execs_per_second:.6f}",
        ]
        lines += [
            "# HELP repro_service_phase_seconds Campaign seconds by phase, summed over jobs.",
            "# TYPE repro_service_phase_seconds gauge",
        ]
        for phase in sorted(phase_totals):
            lines.append(
                f'repro_service_phase_seconds{{phase="{phase}"}} '
                f"{phase_totals[phase]:.6f}"
            )
        lines += [
            "# HELP repro_service_trace_events_total Campaign trace events by type, across traced jobs.",
            "# TYPE repro_service_trace_events_total counter",
        ]
        for kind in sorted(trace_counts):
            lines.append(
                f'repro_service_trace_events_total{{type="{kind}"}} '
                f"{trace_counts[kind]}"
            )
        gain = self.scheduler.gain_snapshot()
        if gain:
            lines += [
                "# HELP repro_service_gain_posterior Coverage-gain posterior per stride account.",
                "# TYPE repro_service_gain_posterior gauge",
            ]
            for account in sorted(gain):
                lines.append(
                    f'repro_service_gain_posterior{{account="{account}"}} '
                    f"{gain[account]['posterior']:.9f}"
                )
            lines += [
                "# HELP repro_service_gain_weight Dynamic stride weight per stride account.",
                "# TYPE repro_service_gain_weight gauge",
            ]
            for account in sorted(gain):
                lines.append(
                    f'repro_service_gain_weight{{account="{account}"}} '
                    f"{gain[account]['weight']:.9f}"
                )
            lines += [
                "# HELP repro_service_gain_parked Whether the account is parked (1) or schedulable (0).",
                "# TYPE repro_service_gain_parked gauge",
            ]
            for account in sorted(gain):
                lines.append(
                    f'repro_service_gain_parked{{account="{account}"}} '
                    f"{1 if gain[account]['parked'] else 0}"
                )
        hybrid_jobs = sum(1 for record in records if record.spec.hybrid)
        lines += [
            "# HELP repro_service_hybrid_jobs Jobs in hybrid mine/generate mode.",
            "# TYPE repro_service_hybrid_jobs gauge",
            f"repro_service_hybrid_jobs {hybrid_jobs}",
            "# HELP repro_service_hybrid_mines_total grammar_mined events across traced jobs.",
            "# TYPE repro_service_hybrid_mines_total counter",
            f"repro_service_hybrid_mines_total {trace_counts.get('grammar_mined', 0)}",
            "# HELP repro_service_hybrid_floods_total gen_phase events across traced jobs.",
            "# TYPE repro_service_hybrid_floods_total counter",
            f"repro_service_hybrid_floods_total {trace_counts.get('gen_phase', 0)}",
        ]
        hunting_jobs = sum(1 for record in records if record.spec.hunt_crashes)
        lines += [
            "# HELP repro_service_crash_hunting_jobs Jobs in crash-hunting mode.",
            "# TYPE repro_service_crash_hunting_jobs gauge",
            f"repro_service_crash_hunting_jobs {hunting_jobs}",
            "# HELP repro_service_crashes_total Subject crashes observed across all jobs.",
            "# TYPE repro_service_crashes_total counter",
            f"repro_service_crashes_total {crashes}",
            "# HELP repro_service_crash_sites_total crash_found events (distinct failure sites) across traced jobs.",
            "# TYPE repro_service_crash_sites_total counter",
            f"repro_service_crash_sites_total {trace_counts.get('crash_found', 0)}",
        ]
        lines += [
            "# HELP repro_service_peak_rss_kb High-water RSS of the server process (kB).",
            "# TYPE repro_service_peak_rss_kb gauge",
            f"repro_service_peak_rss_kb {peak_rss_kb()}",
            "# HELP repro_service_worker_peak_rss_kb Highest worker RSS seen in a slice (kB).",
            "# TYPE repro_service_worker_peak_rss_kb gauge",
            f"repro_service_worker_peak_rss_kb {worker_rss}",
        ]
        return "\n".join(lines) + "\n"

    # -- scheduler loop --------------------------------------------------- #

    def run(
        self,
        stop: Optional[threading.Event] = None,
        until_idle: bool = False,
        poll: float = 0.05,
    ) -> None:
        """Drive the scheduler until ``stop`` is set (or the queue drains).

        Runs in the calling thread — the service's main loop.  On exit the
        worker pool is torn down; in-flight slices lose at most one
        checkpoint interval, which the next start resumes.
        """
        try:
            while True:
                if stop is not None and stop.is_set():
                    return
                if until_idle and not self.scheduler.has_work():
                    return
                self.scheduler.step(drain_timeout=poll)
        finally:
            self.scheduler.shutdown()


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs+paths onto the owning :class:`CampaignService`."""

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the control plane is quiet; metrics are the observability

    # -- helpers ---------------------------------------------------------- #

    def _send_json(self, payload, status: int = 200) -> None:
        body = json.dumps(payload, ensure_ascii=True).encode("ascii")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise JobError("empty request body; expected a job spec JSON object")
        try:
            return json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise JobError(f"malformed JSON body: {exc}") from None

    def _query_flag(self, name: str) -> bool:
        if "?" not in self.path:
            return False
        query = self.path.split("?", 1)[1]
        for part in query.split("&"):
            key, _, value = part.partition("=")
            if key == name and value not in ("", "0", "false"):
                return True
        return False

    @property
    def _route(self) -> str:
        return self.path.split("?", 1)[0]

    # -- verbs ------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        route = self._route
        if route == "/healthz":
            self._send_json(self.service.health())
        elif route == "/metrics":
            body = self.service.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif route == "/jobs":
            self._send_json(
                {"jobs": [r.to_dict() for r in self.service.store.list()]}
            )
        elif _JOB_PATH_RE.match(route):
            job_id = _JOB_PATH_RE.match(route).group(1)
            try:
                self._send_json(self.service.store.get(job_id).to_dict())
            except JobError as exc:
                self._send_error_json(str(exc), 404)
        elif route == "/events":
            self._stream_events(
                follow=self._query_flag("follow"),
                trace=self._query_flag("trace"),
            )
        else:
            self._send_error_json(f"no such endpoint: {route}", 404)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self._route != "/jobs":
            self._send_error_json(f"no such endpoint: {self._route}", 404)
            return
        try:
            records = self.service.submit(self._read_body_json())
        except JobError as exc:
            self._send_error_json(str(exc), 400)
            return
        if len(records) == 1 and records[0].spec.shard_group is None:
            # Ordinary jobs keep the original single-record response.
            self._send_json(records[0].to_dict(), status=201)
        else:
            self._send_json(
                {
                    "shard_group": records[0].spec.shard_group,
                    "jobs": [record.to_dict() for record in records],
                },
                status=201,
            )

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        match = _JOB_PATH_RE.match(self._route)
        if not match:
            self._send_error_json(f"no such endpoint: {self._route}", 404)
            return
        try:
            record = self.service.cancel(match.group(1))
        except JobStateError as exc:
            self._send_error_json(str(exc), 409)
            return
        except JobError as exc:
            self._send_error_json(str(exc), 404)
            return
        self._send_json(record.to_dict())

    # -- /events ----------------------------------------------------------- #

    def _stream_events(self, follow: bool, trace: bool = False) -> None:
        """NDJSON: the buffered backlog, then (with follow) live records.

        Default records are :meth:`CampaignMetrics.to_json_line` lines, so
        any consumer of campaign metrics JSONL files can read the stream
        unchanged; with ``trace`` they are raw campaign trace events (see
        :mod:`repro.obs.trace`) tagged with their ``job_id``.  Chunked
        transfer keeps HTTP/1.1 keep-alive correct for the open-ended
        follow mode.
        """
        if trace:
            snapshot = self.service.trace_snapshot
            wait = self.service.wait_for_trace
            encode = lambda event: json.dumps(  # noqa: E731
                event, ensure_ascii=True, separators=(",", ":")
            )
        else:
            snapshot = self.service.events_snapshot
            wait = self.service.wait_for_events
            encode = lambda metrics: metrics.to_json_line()  # noqa: E731
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def write_chunk(text: str) -> None:
            data = text.encode("utf-8")
            self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
            self.wfile.write(data + b"\r\n")
            self.wfile.flush()

        try:
            seen, backlog = snapshot()
            for record in backlog:
                write_chunk(encode(record) + "\n")
            while follow:
                wait(seen, timeout=0.25)
                total, buffered = snapshot()
                fresh = total - seen
                if fresh > 0:
                    for record in buffered[-fresh:]:
                        write_chunk(encode(record) + "\n")
                    seen = total
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up


def make_server(
    service: CampaignService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind the control plane; ``port=0`` picks a free port (see
    ``server_address`` for the bound one)."""
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    return server


def serve(
    state_dir,
    host: str = "127.0.0.1",
    port: int = 0,
    scheduler_config: Optional[SchedulerConfig] = None,
    *,
    stop: Optional[threading.Event] = None,
    until_idle: bool = False,
    on_bound=None,
) -> None:
    """Run the full service: HTTP in daemon threads, scheduler here.

    Blocks until ``stop`` is set (SIGTERM/SIGINT from the CLI) — or, with
    ``until_idle``, until every journalled job is terminal.  ``on_bound``
    is called with ``(host, port)`` once the socket is listening.
    """
    service = CampaignService(state_dir, scheduler_config)
    httpd = make_server(service, host, port)
    bound_host, bound_port = httpd.server_address[:2]
    if on_bound is not None:
        on_bound(bound_host, bound_port)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        service.run(stop=stop, until_idle=until_idle)
    finally:
        httpd.shutdown()
        httpd.server_close()
