"""Campaign service: resident fuzzing with a job queue and control plane.

One-shot CLI grids (:mod:`repro.eval.parallel`) run a fixed spec list and
exit; the service keeps running.  Campaigns are submitted as *jobs*, a
fair-share scheduler time-slices them across a bounded worker pool by
checkpointing at iteration boundaries (PR 3's byte-identical
snapshot/resume), and a stdlib HTTP control plane exposes submission,
status, cancellation, an NDJSON metrics stream and Prometheus metrics.

* :mod:`repro.service.jobs` — job model, state machine, crash-safe journal;
* :mod:`repro.service.scheduler` — preemptive fair-share scheduler;
* :mod:`repro.service.server` — HTTP control plane and service facade;
* :mod:`repro.service.client` — urllib client used by the CLI subcommands.

The headline property: because resume is deterministic, a SIGKILLed server
restarted on the same journal and checkpoint directory finishes every
in-flight job byte-identical to a server that was never interrupted.
"""

from repro.service.jobs import JobRecord, JobSpec, JobState, JobStore
from repro.service.scheduler import CampaignScheduler, SchedulerConfig
from repro.service.server import CampaignService

__all__ = [
    "CampaignScheduler",
    "CampaignService",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobStore",
    "SchedulerConfig",
]
