"""Per-job coverage-gain estimation for adaptive scheduling.

The stride scheduler (DESIGN.md §7) time-slices campaigns fairly but
blindly: a campaign that stopped discovering anything keeps receiving
exactly its fair share.  This module estimates each job's probability of
discovering something new on the next execution and turns it into a
*dynamic* priority weight, so compute flows toward the jobs where
coverage is actually arriving — the hypofuzz/bandit idea, driven by the
per-slice discovery counts the scheduler already observes.

The estimator is a Laplace-smoothed Bernoulli posterior over
"this execution emits a new-coverage valid input"::

    posterior = (discoveries + alpha) / (executions + alpha + beta)

with exponential decay applied to both counts per observed execution, so
a rich early history cannot keep a now-plateaued job's posterior high
forever (recency matters; "Fast Failure Feedback" motivates treating
diminishing feedback as the move-on signal).  The dynamic weight is the
posterior normalised by the prior mean ``alpha / (alpha + beta)``:

* a fresh job (no evidence) has posterior == prior, weight 1.0 — it
  competes exactly as the blind scheduler would have scheduled it;
* a productive job's weight rises above 1.0, shrinking its virtual-time
  charge per execution;
* a plateaued job's weight decays toward ``weight_floor`` and, once the
  posterior falls below ``pause_threshold`` with at least
  ``min_evidence`` decayed executions observed, :meth:`should_pause`
  asks the scheduler to park it (periodic probe slices resurrect parked
  jobs that start producing again; see ``CampaignScheduler``).

Determinism contract: the estimator is pure state — identical
observation sequences produce identical posteriors, weights and pause
decisions.  No wall clock, no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GainConfig:
    """Knobs of the coverage-gain estimator and the park/probe lifecycle.

    Attributes:
        alpha: Laplace prior pseudo-discoveries.  With ``beta`` it fixes
            the prior mean ``alpha / (alpha + beta)`` every weight is
            normalised against.
        beta: Laplace prior pseudo-misses.
        decay: per-execution exponential decay applied to both evidence
            counts before absorbing a new observation; 1.0 disables
            decay (the posterior then weights all history equally).
        pause_threshold: park a job once its posterior discovery rate
            falls below this (and ``min_evidence`` is met).
        resume_margin: multiple of ``pause_threshold`` a probed job's
            posterior must reach to unpark (hysteresis; 1.0 unparks at
            the threshold itself).
        min_evidence: decayed executions that must have been observed
            before :meth:`GainEstimator.should_pause` may fire — a job
            is never parked on its prior alone.
        probe_every: while parked, grant one probe slice after the rest
            of the fleet has advanced this many executions; the probe's
            discoveries then decide between unparking and another wait.
        weight_floor: lower bound on the dynamic weight, so an unparked
            low-gain job still makes (slow) progress instead of starving
            outright.
    """

    alpha: float = 1.0
    beta: float = 1.0
    decay: float = 0.999
    pause_threshold: float = 0.005
    resume_margin: float = 1.0
    min_evidence: float = 200.0
    probe_every: int = 2_000
    weight_floor: float = 0.1

    def validate(self) -> None:
        """Raises ``ValueError`` naming the first invalid knob."""
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError("alpha and beta must be positive")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if not 0.0 <= self.pause_threshold < 1.0:
            raise ValueError("pause_threshold must be in [0, 1)")
        if self.resume_margin < 1.0:
            raise ValueError("resume_margin must be >= 1")
        if self.min_evidence < 0:
            raise ValueError("min_evidence must be non-negative")
        if self.probe_every < 1:
            raise ValueError("probe_every must be positive")
        if not 0.0 < self.weight_floor <= 1.0:
            raise ValueError("weight_floor must be in (0, 1]")

    @property
    def prior_mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)


class GainEstimator:
    """Decayed Laplace posterior of discoveries-per-execution for one job.

    One instance per stride account (per job; shard groups share one, the
    same way they share a virtual-time account).  Feed it per-slice
    observations with :meth:`observe`; read :meth:`posterior`,
    :meth:`weight` and :meth:`should_pause`.
    """

    def __init__(self, config: GainConfig) -> None:
        self.config = config
        #: Decayed execution count (the Bernoulli trials).
        self.executions = 0.0
        #: Decayed discovery count (the Bernoulli successes).
        self.discoveries = 0.0

    def observe(self, executions: int, discoveries: int) -> None:
        """Absorb one slice: ``executions`` trials, ``discoveries`` hits.

        Existing evidence is decayed by ``decay ** executions`` first, so
        the posterior's horizon is measured in executions, not slices —
        a job sliced finely and one sliced coarsely see the same decay
        for the same work.
        """
        if executions <= 0:
            return
        factor = self.config.decay**executions
        self.executions = self.executions * factor + executions
        self.discoveries = self.discoveries * factor + min(
            discoveries, executions
        )

    def posterior(self) -> float:
        """Smoothed probability the next execution discovers something."""
        config = self.config
        return (self.discoveries + config.alpha) / (
            self.executions + config.alpha + config.beta
        )

    def weight(self) -> float:
        """Dynamic stride weight: posterior over prior mean, floored.

        Multiplies the job's static priority in the scheduler's
        virtual-time charge — weight 2.0 halves the virtual cost of an
        execution, weight 0.5 doubles it.
        """
        return max(
            self.config.weight_floor, self.posterior() / self.config.prior_mean
        )

    def should_pause(self) -> bool:
        """True once enough evidence shows the job has plateaued."""
        return (
            self.executions >= self.config.min_evidence
            and self.posterior() < self.config.pause_threshold
        )

    def should_resume(self) -> bool:
        """True when a probed job's posterior clears the hysteresis bar."""
        return self.posterior() >= (
            self.config.pause_threshold * self.config.resume_margin
        )

    def snapshot(self) -> dict:
        """JSON-safe view for ``/metrics`` and ``gain_update`` events."""
        return {
            "executions": round(self.executions, 6),
            "discoveries": round(self.discoveries, 6),
            "posterior": round(self.posterior(), 9),
            "weight": round(self.weight(), 9),
        }
