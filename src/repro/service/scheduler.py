"""Fair-share preemptive scheduler: time-slice campaigns over workers.

The scheduler turns long campaigns into a sequence of bounded *slices*.
One slice resumes a job from its newest checkpoint, runs until the
preemption hook trips (``slice_executions`` more executions, checked at
the iteration boundary — see ``PFuzzer.should_preempt``), snapshots, and
reports back.  Because snapshot/resume is byte-identical, slicing is
invisible to the campaign result: a job scheduled across many slices —
or killed and rescheduled on a restarted service — finishes with exactly
the result an uninterrupted run would have produced.

Scheduling is stride-style fair share: each job accumulates virtual time
``executions / priority``, and the runnable job with the least virtual
time (ties: submission order) gets the next free worker.  A job that has
never run has virtual time zero, so with N queued jobs no job waits more
than one round of slices before its first — the no-starvation guarantee
the service tests assert.

Sharded job groups (``JobSpec.shard_group``) are *gang-aware*: all
members of a group share one virtual-time account, so the fair-share
winner is the whole group and its members — tied on the group's virtual
time, ordered by fewest executions first, then submission — flow onto
idle workers consecutively and rotate round-robin across slices.
Shards of a group therefore advance in near-lockstep (no member racing
a full budget ahead of its peers), which keeps their corpus-sync
windows overlapping, while the group as a whole competes with ordinary
jobs under the same stride accounting.  With a single worker the
rotation is *exact* lockstep: the schedule reproduces the reference
orchestrator (:func:`repro.eval.shards.run_sharded`) byte-for-byte,
which the service shard tests assert by fingerprint.

With ``SchedulerConfig.adaptive`` on, the stride charge is additionally
weighted by a per-account coverage-gain posterior (see
:mod:`repro.service.gain`): jobs still discovering new-coverage inputs
pay less virtual time per execution and therefore receive more slices,
plateaued jobs pay more, and an account whose posterior falls below the
pause threshold is *parked* — skipped at dispatch until the rest of the
fleet advances a probe window, then granted one probe slice whose
outcome decides between resurrection and another wait.  The lifecycle is
clocked on fleet executions, never wall time, so the adaptive schedule
is a deterministic function of the slice-completion history; and because
slicing is invisible to campaign results, a job's final fingerprint is
identical under blind and adaptive scheduling.

Process management reuses the evaluation grid's machinery
(:class:`repro.eval.parallel.WorkerPool`): per-worker pipes for fault
isolation, a parent-side watchdog for hung slices, and bounded
retry-with-backoff — a crashed worker fails only its own slice, and the
job re-queues for another attempt that *resumes* rather than restarts.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.eval.campaign import ToolOutput, run_campaign
from repro.eval.metrics import CampaignMetrics
from repro.eval.parallel import WorkerPool
from repro.runtime.limits import RunTimeout, peak_rss_bytes, time_limit
from repro.service.gain import GainConfig, GainEstimator
from repro.service.jobs import (
    TERMINAL_STATES,
    JobRecord,
    JobState,
    JobStore,
)


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the slicing scheduler.

    Attributes:
        workers: bounded worker-pool size.
        slice_executions: preempt a pFuzzer slice after this many
            executions (checked at iteration boundaries, so a slice can
            overshoot by one iteration's executions).
        slice_timeout: wall-clock limit per slice; None disables the
            in-worker alarm (the watchdog then never fires either).
        retries: extra attempts for a crashed/timed-out slice before the
            job is FAILED; every attempt resumes from the newest snapshot.
        backoff: base delay before re-queueing a failed slice; doubles
            per consecutive failure.
        watchdog_grace: extra seconds past ``slice_timeout`` before the
            parent kills a hung worker.
        adaptive: weight each job's stride charge by its coverage-gain
            posterior (see :mod:`repro.service.gain`) and park jobs
            whose posterior drops below the pause threshold, granting
            parked jobs periodic probe slices.  Off by default: the
            blind fair-share schedule is the reference behavior, and a
            single job's result is fingerprint-identical either way
            (scheduling order never changes campaign results).
        gain: estimator and park/probe knobs used when ``adaptive``.
    """

    workers: int = 2
    slice_executions: int = 250
    slice_timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.05
    watchdog_grace: float = 5.0
    adaptive: bool = False
    gain: GainConfig = field(default_factory=GainConfig)


@dataclass
class SliceResult:
    """What one completed slice reports back to the scheduler."""

    job_id: str
    done: bool
    output: ToolOutput
    fingerprint: Optional[str]
    peak_rss_bytes: int
    slice_wall: float
    #: Per-type count of trace events this slice emitted (empty when the
    #: job is untraced) — what the service's Prometheus counters sum.
    trace_events: Optional[Dict[str, int]] = None


def _job_checkpoint_dir(state_dir: Path, job_id: str) -> str:
    return str(state_dir / "jobs" / job_id)


def _run_slice(task: dict) -> SliceResult:
    """Execute one slice in the worker process.

    pFuzzer jobs resume from the job's checkpoint directory and run with
    the preemption hook armed; the end-of-run snapshot captures the
    paused state.  Baseline tools have no resumable state: they run their
    whole budget in this single slice.
    """
    started = time.monotonic()
    trace_events: Optional[Dict[str, int]] = None
    if task["tool"] == "pfuzzer":
        from repro.core.config import FuzzerConfig
        from repro.core.fuzzer import PFuzzer
        from repro.eval.checkpoint import result_fingerprint
        from repro.runtime.arcs import arc_table_for
        from repro.subjects.registry import load_subject, load_subject_module

        if task.get("subject_module"):
            # Plugin registrations are per-process; the worker must import
            # the module itself before the name resolves.
            load_subject_module(task["subject_module"])
        subject = load_subject(task["subject"])
        durability = {}
        if task["checkpoint_every"] is not None:
            durability["checkpoint_every"] = task["checkpoint_every"]
        if task.get("shard_id") is not None:
            # Member of a sharded group: partition the candidate space and
            # sync through the group's shared corpus store.
            durability["shard_id"] = task["shard_id"]
            durability["shard_count"] = task["shard_count"]
            durability["sync_store"] = task["sync_store"]
            durability["sync_every"] = task["sync_every"]
        if task.get("executor"):
            durability["executor"] = task["executor"]
            durability["batch_size"] = task.get("batch_size") or 1
        if task.get("cull_every") is not None:
            durability["cull_every"] = task["cull_every"]
        if task.get("hybrid"):
            # Hybrid mode is fingerprinted campaign state, not an
            # environmental knob: every slice of the job must run with
            # the same hybrid config or the checkpoint restore rejects
            # the snapshot — which is exactly the protection wanted.
            durability["hybrid"] = True
            if task.get("mine_after") is not None:
                durability["mine_after"] = task["mine_after"]
            if task.get("gen_batch") is not None:
                durability["gen_batch"] = task["gen_batch"]
            if task.get("gen_depth") is not None:
                durability["gen_depth"] = task["gen_depth"]
        if task.get("hunt_crashes"):
            # Like hybrid: fingerprinted campaign state, so every slice
            # of the job runs with hunting on (the spec is immutable).
            durability["hunt_crashes"] = True
        config = FuzzerConfig(
            seed=task["seed"],
            max_executions=task["budget"],
            coverage_backend=task["coverage_backend"],
            checkpoint_dir=task["checkpoint_dir"],
            resume=True,
            **durability,
        )
        tracer = None
        if task.get("trace"):
            from repro.obs.trace import JsonlTraceRecorder

            # Append mode: every slice of the job continues one trace file
            # next to its checkpoints, spanning the whole campaign.
            tracer = JsonlTraceRecorder(
                os.path.join(task["checkpoint_dir"], "trace.ndjson")
            )
        slice_cap = task["slice_executions"]
        try:
            result = PFuzzer(
                subject,
                config,
                should_preempt=lambda run_execs, _total: run_execs >= slice_cap,
                tracer=tracer,
            ).run()
        finally:
            if tracer is not None:
                tracer.close()
        if tracer is not None:
            trace_events = dict(tracer.counts)
        done = not result.preempted
        # The canonical fingerprint is a full JSON document; journal the
        # digest — equality is all the determinism contract needs.
        fingerprint = (
            hashlib.sha256(
                result_fingerprint(result, arc_table_for(subject)).encode("ascii")
            ).hexdigest()
            if done
            else None
        )
        output = ToolOutput(
            tool="pfuzzer",
            subject=task["subject"],
            seed=task["seed"],
            valid_inputs=list(result.valid_inputs),
            executions=result.executions,
            wall_time=result.wall_time,
            queue_depth=result.queue_depth,
            phase_times=result.phase_times,
            resumes=result.resumes,
            valid_signatures=list(result.valid_signatures) or None,
            crashes=result.crashes,
            crash_inputs=list(result.crash_inputs),
            crash_signatures=list(result.crash_signatures),
            crash_path_signatures=list(result.crash_path_signatures),
        )
    else:
        output = run_campaign(
            task["tool"], task["subject"], task["budget"], seed=task["seed"]
        )
        done = True
        fingerprint = None
    return SliceResult(
        job_id=task["job_id"],
        done=done,
        output=output,
        fingerprint=fingerprint,
        peak_rss_bytes=peak_rss_bytes(),
        slice_wall=time.monotonic() - started,
        trace_events=trace_events,
    )


def _slice_worker(worker_id: int, inbox, results) -> None:
    """Worker loop: take slice tasks until the None sentinel (or EOF).

    Siblings forked later inherit this worker's inbox write-end, so a
    SIGKILLed parent does not EOF the pipe — idle workers would sleep in
    ``recv`` forever, holding the service's listening socket open.  The
    loop therefore polls with a timeout and exits once re-parented.
    """
    parent = os.getppid()
    while True:
        try:
            while not inbox.poll(1.0):
                if os.getppid() != parent:
                    return
            item = inbox.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        started = time.monotonic()
        try:
            with time_limit(item.get("slice_timeout")):
                outcome = _run_slice(item)
            results.send(("ok", worker_id, item["job_id"], outcome))
        except RunTimeout:
            results.send(
                (
                    "timeout",
                    worker_id,
                    item["job_id"],
                    time.monotonic() - started,
                )
            )
        except BaseException as exc:  # noqa: BLE001 - isolate, report, survive
            results.send(
                (
                    "error",
                    worker_id,
                    item["job_id"],
                    f"{type(exc).__name__}: {exc}",
                )
            )


#: Callback fired after every completed slice:
#: ``on_slice(record, metrics, delta_executions, slice_wall_seconds,
#: trace_events)`` — the last argument is the slice's per-type trace
#: event counts, or None for untraced jobs.
SliceCallback = Callable[
    [JobRecord, CampaignMetrics, int, float, Optional[Dict[str, int]]], None
]


class CampaignScheduler:
    """Schedule every non-terminal job in ``store`` across a worker pool.

    Drive it with :meth:`step` from a loop (the service does), or use
    :meth:`run_until_idle` to drain the current queue — the
    uninterrupted-reference path in the determinism tests.
    """

    def __init__(
        self,
        store: JobStore,
        state_dir,
        config: Optional[SchedulerConfig] = None,
        on_slice: Optional[SliceCallback] = None,
    ) -> None:
        self.store = store
        self.state_dir = Path(state_dir)
        self.config = config or SchedulerConfig()
        self.config.gain.validate()
        self.on_slice = on_slice
        self.pool = WorkerPool(_slice_worker)
        #: worker_id -> (job_id, watchdog deadline or None)
        self.assignments: Dict[int, Tuple[str, Optional[float]]] = {}
        #: stride-account key -> virtual time (executions / priority).
        #: The key is the job id, or the shard group id for gang members —
        #: a group shares one account, so fair share treats it as one job
        #: and its members dispatch consecutively.
        self._virtual: Dict[str, float] = {}
        #: job_id -> monotonic time before which it must not re-dispatch.
        self._backoff_until: Dict[str, float] = {}
        #: Dispatch history (job ids, in dispatch order) — what the
        #: fairness tests assert over.
        self.dispatch_log: List[str] = []
        #: stride-account key -> coverage-gain estimator (adaptive mode).
        self._gain: Dict[str, GainEstimator] = {}
        #: stride-account key -> fleet executions when it was parked; the
        #: account earns a probe slice ``gain.probe_every`` fleet
        #: executions later.
        self._parked: Dict[str, int] = {}
        #: Total executions charged across all jobs — the adaptive
        #: lifecycle's clock (never wall time, so park/probe decisions
        #: are a pure function of the slice-completion history).
        self._fleet_executions = 0

    # -- bookkeeping ----------------------------------------------------- #

    def _assigned_jobs(self) -> set:
        return {job_id for job_id, _ in self.assignments.values()}

    def _runnable(self) -> List[JobRecord]:
        now = time.monotonic()
        assigned = self._assigned_jobs()
        return [
            record
            for record in self.store.list()
            if record.state in (JobState.QUEUED, JobState.PAUSED)
            and record.job_id not in assigned
            and self._backoff_until.get(record.job_id, 0.0) <= now
        ]

    @staticmethod
    def _stride_key(record: JobRecord) -> str:
        """The stride account this job charges: its group, else itself."""
        return record.spec.shard_group or record.job_id

    def _effective_priority(self, record: JobRecord) -> float:
        """Static fair-share weight times the dynamic gain weight.

        The blind scheduler's priority is the spec's; in adaptive mode it
        is scaled by the account's coverage-gain weight (1.0 until the
        first observation), so productive jobs pay less virtual time per
        execution and plateaued ones pay more.
        """
        priority = float(record.spec.priority)
        if self.config.adaptive:
            estimator = self._gain.get(self._stride_key(record))
            if estimator is not None:
                priority *= estimator.weight()
        return priority

    def _stride(self, record: JobRecord, executions: float) -> float:
        """The one executions→virtual-time formula.

        Both users — seeding a job's account from its resumed execution
        count and charging a completed slice's delta — must divide by the
        same effective priority, or a dynamic-weight change would bend
        them apart; factoring it here keeps that impossible.
        """
        return executions / self._effective_priority(record)

    def _virtual_time(self, record: JobRecord) -> float:
        return self._virtual.setdefault(
            self._stride_key(record), self._stride(record, record.executions)
        )

    def has_work(self) -> bool:
        """True while any job is non-terminal (running ones included)."""
        return bool(self.store.active())

    # -- slice completion ------------------------------------------------ #

    def _charge(self, record: JobRecord, executions: int) -> int:
        """Advance the job's virtual time; returns the execution delta."""
        previous = record.executions
        delta = max(0, executions - previous)
        self._virtual[self._stride_key(record)] = self._virtual_time(
            record
        ) + self._stride(record, delta)
        self._fleet_executions += delta
        return delta

    # -- adaptive gain lifecycle ----------------------------------------- #

    def _observe_gain(self, record: JobRecord, delta: int, discoveries: int) -> None:
        """Absorb a slice's outcome; park, re-park or unpark the account.

        Driven entirely by (delta executions, discoveries) pairs in
        completion order — no wall clock — so given the same event
        history the adaptive schedule is deterministic.
        """
        key = self._stride_key(record)
        estimator = self._gain.get(key)
        if estimator is None:
            estimator = self._gain[key] = GainEstimator(self.config.gain)
        estimator.observe(delta, discoveries)
        if key in self._parked:
            if estimator.should_resume():
                del self._parked[key]
            else:
                # Probe found nothing convincing: wait a full probe
                # window again, measured from the fleet's current clock.
                self._parked[key] = self._fleet_executions
        elif estimator.should_pause():
            self._parked[key] = self._fleet_executions

    def _probe_eligible(self, record: JobRecord) -> bool:
        """Not parked, or parked long enough to have earned a probe."""
        parked_at = self._parked.get(self._stride_key(record))
        if parked_at is None:
            return True
        return (
            self._fleet_executions - parked_at >= self.config.gain.probe_every
        )

    def gain_snapshot(self) -> Dict[str, dict]:
        """stride-account key -> estimator state (adaptive mode only).

        What ``/metrics`` renders as gauges; each entry carries the
        decayed evidence counts, posterior, weight and parked flag.
        """
        return {
            key: {**estimator.snapshot(), "parked": key in self._parked}
            for key, estimator in self._gain.items()
        }

    def gain_state(self, record: JobRecord) -> Optional[dict]:
        """One job's gain state, or None when untracked/non-adaptive."""
        if not self.config.adaptive:
            return None
        key = self._stride_key(record)
        estimator = self._gain.get(key)
        if estimator is None:
            return None
        return {**estimator.snapshot(), "parked": key in self._parked}

    def _handle_ok(self, outcome: SliceResult) -> None:
        record = self.store.get(outcome.job_id)
        if record.state in TERMINAL_STATES:
            # Cancelled (or otherwise resolved) while the slice was in
            # flight: drop the result, keep the snapshot on disk.
            return
        delta = self._charge(record, outcome.output.executions)
        if self.config.adaptive and record.spec.tool == "pfuzzer":
            # Discoveries this slice: the growth of the cumulative
            # emitted-inputs list over the record's last known count.
            # Equals the slice's ``input_emitted`` trace count by
            # construction, but needs no tracing to be observable.
            discoveries = max(
                0, len(outcome.output.valid_inputs) - record.valid_inputs
            )
            self._observe_gain(record, delta, discoveries)
        record.failures = 0
        self._backoff_until.pop(record.job_id, None)
        if outcome.done:
            self.store.transition(
                record.job_id,
                JobState.DONE,
                fingerprint=outcome.fingerprint,
            )
        else:
            self.store.transition(record.job_id, JobState.PAUSED)
        record = self.store.update_progress(
            record.job_id,
            executions=outcome.output.executions,
            valid_inputs=len(outcome.output.valid_inputs),
            resumes=outcome.output.resumes,
            slices=record.slices + 1,
            wall_time=outcome.output.wall_time,
            crashes=getattr(outcome.output, "crashes", 0),
        )
        if self.on_slice is not None:
            metrics = CampaignMetrics.from_output(
                outcome.output,
                record.spec.budget,
                status="ok" if outcome.done else "paused",
                attempts=record.slices,
                peak_rss_bytes=outcome.peak_rss_bytes,
            )
            self.on_slice(
                record, metrics, delta, outcome.slice_wall, outcome.trace_events
            )

    def _handle_failure(self, job_id: str, error: str) -> None:
        """Crash/timeout path: bounded retry with backoff, else FAILED.

        Every retry resumes from the job's newest snapshot, so repeated
        attempts make forward progress instead of re-burning the budget.
        """
        try:
            record = self.store.get(job_id)
        except Exception:  # pragma: no cover - job table raced
            return
        if record.state in TERMINAL_STATES:
            return
        record.failures += 1
        if record.failures > self.config.retries:
            self.store.transition(job_id, JobState.FAILED, error=error)
            return
        delay = self.config.backoff * (2 ** (record.failures - 1))
        self._backoff_until[job_id] = time.monotonic() + delay
        if record.state is JobState.RUNNING:
            self.store.transition(job_id, JobState.QUEUED, error=error)

    def _handle_message(self, message: Tuple) -> None:
        kind, worker_id = message[0], message[1]
        self.assignments.pop(worker_id, None)
        if kind == "ok":
            self._handle_ok(message[3])
        elif kind == "timeout":
            self._handle_failure(
                message[2],
                f"slice exceeded {self.config.slice_timeout:g}s wall-clock limit"
                if self.config.slice_timeout
                else "slice timed out",
            )
        else:  # "error"
            self._handle_failure(message[2], message[3])

    # -- event loop ------------------------------------------------------ #

    def _reap_dead_workers(self) -> None:
        for worker_id, exit_code in self.pool.reap():
            assignment = self.assignments.pop(worker_id, None)
            if assignment is not None:
                job_id, _ = assignment
                self._handle_failure(
                    job_id, f"worker died (exit code {exit_code})"
                )

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        for worker_id in self.pool.worker_ids():
            assignment = self.assignments.get(worker_id)
            if assignment is None:
                continue
            job_id, deadline = assignment
            if deadline is None or now < deadline:
                continue
            self.pool.remove(worker_id, terminate=True)
            self.assignments.pop(worker_id, None)
            self._handle_failure(job_id, "slice hung past the watchdog deadline")

    def _abort_cancelled(self) -> None:
        """Kill workers whose job was cancelled mid-slice (snapshot kept)."""
        for worker_id in self.pool.worker_ids():
            assignment = self.assignments.get(worker_id)
            if assignment is None:
                continue
            job_id, _ = assignment
            try:
                state = self.store.get(job_id).state
            except Exception:  # pragma: no cover - job table raced
                continue
            if state is JobState.CANCELLED:
                self.pool.remove(worker_id, terminate=True)
                self.assignments.pop(worker_id, None)

    def _dispatch_ready(self) -> None:
        idle = [
            worker_id
            for worker_id in self.pool.worker_ids()
            if worker_id not in self.assignments
        ]
        for worker_id in idle:
            runnable = self._runnable()
            if not runnable:
                break
            if self.config.adaptive and self._parked:
                unparked = [r for r in runnable if self._probe_eligible(r)]
                # If every runnable account is parked inside its probe
                # window, probe the fair-share winner immediately instead:
                # idle workers over parked-only fleets would deadlock
                # run_until_idle (and waste capacity in the service loop).
                if unparked:
                    runnable = unparked
            record = min(
                runnable,
                # Gang members tie on their shared account; the extra
                # executions term rotates the group round-robin (least
                # progressed member first) instead of letting the lowest
                # seq drain its whole budget before its peers start.
                key=lambda r: (
                    self._virtual_time(r),
                    r.executions if r.spec.shard_group is not None else 0,
                    r.seq,
                ),
            )
            self.store.transition(record.job_id, JobState.RUNNING)
            self.dispatch_log.append(record.job_id)
            deadline = (
                time.monotonic()
                + self.config.slice_timeout
                + self.config.watchdog_grace
                if self.config.slice_timeout is not None
                else None
            )
            self.assignments[worker_id] = (record.job_id, deadline)
            spec = record.spec
            self.pool.send(
                worker_id,
                {
                    "job_id": record.job_id,
                    "tool": spec.tool,
                    "subject": spec.subject,
                    "budget": spec.budget,
                    "seed": spec.seed,
                    "coverage_backend": spec.coverage_backend,
                    "checkpoint_every": spec.checkpoint_every,
                    "checkpoint_dir": _job_checkpoint_dir(
                        self.state_dir, record.job_id
                    ),
                    "slice_executions": self.config.slice_executions,
                    "slice_timeout": self.config.slice_timeout,
                    "trace": spec.trace,
                    "shard_id": spec.shard_id,
                    "shard_count": spec.shards,
                    "sync_every": spec.sync_every,
                    "executor": spec.executor,
                    "batch_size": spec.batch_size,
                    "cull_every": spec.cull_every,
                    "hybrid": spec.hybrid,
                    "mine_after": spec.mine_after,
                    "gen_batch": spec.gen_batch,
                    "gen_depth": spec.gen_depth,
                    "hunt_crashes": spec.hunt_crashes,
                    "subject_module": spec.subject_module,
                    "sync_store": (
                        str(
                            self.state_dir
                            / "groups"
                            / spec.shard_group
                            / "corpus.jsonl"
                        )
                        if spec.shard_group is not None
                        else None
                    ),
                },
            )

    def _ensure_capacity(self) -> None:
        wanted = min(
            self.config.workers,
            len(self.assignments) + len(self._runnable()),
        )
        while len(self.pool) < wanted:
            self.pool.spawn()

    def step(self, drain_timeout: float = 0.05) -> None:
        """One scheduling round: collect, recover, watchdog, dispatch."""
        for message in self.pool.drain(timeout=drain_timeout):
            self._handle_message(message)
        self._reap_dead_workers()
        self._enforce_deadlines()
        self._abort_cancelled()
        self._ensure_capacity()
        self._dispatch_ready()

    def run_until_idle(self) -> None:
        """Drive :meth:`step` until every job reaches a terminal state."""
        try:
            while self.has_work():
                self.step()
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Kill the pool.  In-flight slices die; their snapshots survive,
        and a journal replay re-queues their jobs as resumable."""
        self.pool.shutdown()
        self.assignments.clear()
