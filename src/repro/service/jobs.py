"""Job model and crash-safe journal for the campaign service.

A *job* is one campaign owned by the service: a :class:`JobSpec` (what to
run) plus a :class:`JobRecord` (where it is).  Records move through a
small state machine::

    QUEUED ──> RUNNING ──> DONE
      │          │  ▲        FAILED
      │          ▼  │
      │        PAUSED        (preempted, snapshot on disk)
      │          │
      └──────────┴─────────> CANCELLED

``RUNNING -> QUEUED`` is also legal: a crashed worker re-queues its job
for another attempt.  Invalid transitions raise :class:`JobStateError`
rather than silently corrupting the table.

Durability is an append-only journal: every submission, state change and
progress update is one JSON line, flushed and fsynced, so the journal
survives SIGKILL with at most a torn trailing line (skipped on replay,
same contract as :mod:`repro.eval.corpus_store`).  :meth:`JobStore.compact`
rewrites the journal to its current state with the atomic
tmpfile+fsync+``os.replace`` discipline shared with
:func:`repro.eval.checkpoint.atomic_write_text`.  Replaying the journal
after a crash restores every record; jobs that were ``RUNNING`` when the
process died come back as ``QUEUED`` — their actual progress lives in the
per-job checkpoint directory, so re-running them resumes instead of
restarting.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass, replace
from enum import Enum
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.eval.campaign import validate_campaign
from repro.eval.checkpoint import atomic_write_text
from repro.runtime.executor import EXECUTOR_MODES
from repro.runtime.harness import COVERAGE_BACKENDS

PathLike = Union[str, Path]


class JobState(str, Enum):
    """Lifecycle state of one job."""

    QUEUED = "queued"
    RUNNING = "running"
    PAUSED = "paused"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

#: Legal state-machine edges (see module docstring).
_TRANSITIONS = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset(
        {
            JobState.PAUSED,
            JobState.QUEUED,
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
        }
    ),
    JobState.PAUSED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


class JobError(Exception):
    """A job operation failed (unknown id, invalid spec)."""


class JobStateError(JobError):
    """An illegal state-machine transition was attempted."""


@dataclass(frozen=True)
class JobSpec:
    """What one job runs — immutable once submitted.

    Attributes:
        subject: registered subject name.
        tool: campaign tool (:data:`repro.eval.campaign.TOOLS`); only
            pFuzzer jobs are preemptible — baseline tools run their whole
            budget in a single slice.
        budget: execution budget for the whole campaign.
        seed: PRNG seed.
        priority: fair-share weight (>= 1); a priority-2 job receives
            twice the executions of a priority-1 job under contention.
        coverage_backend: ``"settrace"`` or ``"ast"``.
        checkpoint_every: snapshot cadence in executions (pFuzzer default
            when None); slice boundaries always snapshot regardless.
        trace: record a structured NDJSON campaign trace (pFuzzer only) to
            ``trace.ndjson`` in the job's state directory; slices append to
            it, so the file spans the whole campaign across preemptions.
        shards: submit-time group size.  ``shards`` > 1 expands the
            submission into that many member jobs (one per shard, seeds
            ``seed + shard_id``) sharing a group corpus store under the
            service state directory (see :meth:`JobStore.submit_sharded`).
        shard_id: this member's shard index; assigned by the service on
            group expansion, never set by clients.
        shard_group: the group id shared by all members; assigned by the
            service on group expansion.
        sync_every: corpus-sync cadence in executions for sharded jobs
            (pFuzzer default — the checkpoint cadence — when None).
        executor: pFuzzer execution engine (``"inline"`` or ``"pooled"``;
            see :mod:`repro.runtime.executor`).  Environmental like
            ``trace`` — the job's result is engine-independent.
        batch_size: speculative batch size for the pooled engine.
        cull_every: queue-hygiene cadence in executions (pFuzzer only;
            see :attr:`repro.core.config.FuzzerConfig.cull_every`).
            Environmental like ``executor`` — culling never changes the
            job's result fingerprint.  None disables culling.
        hybrid: run the job as a hybrid mine/generate campaign (pFuzzer
            only; see :mod:`repro.hybrid`).  *Not* environmental: hybrid
            mode changes the job's result, participates in the campaign
            snapshot fingerprint, and must stay fixed across the job's
            slices — which it does, because specs are immutable.
        mine_after: hybrid gain-evidence/inter-phase floor (pFuzzer
            default when None).
        gen_batch: hybrid generated candidates per flood (pFuzzer
            default when None).
        gen_depth: hybrid compiled-generator flood depth budget (pFuzzer
            default when None).
        hunt_crashes: run the job in crash-hunting mode (pFuzzer only;
            see :attr:`repro.core.config.FuzzerConfig.hunt_crashes`).
            Like ``hybrid``, not environmental: it changes the result
            and participates in the snapshot fingerprint, so it must —
            and, being spec-immutable, does — stay fixed across slices.
        subject_module: module imported (registering its plugin
            subjects via :func:`repro.subjects.registry.register_subject`)
            before the subject name is resolved — in every worker, since
            plugin registrations are per-process.
    """

    subject: str
    tool: str = "pfuzzer"
    budget: int = 2_000
    seed: int = 0
    priority: int = 1
    coverage_backend: str = "settrace"
    checkpoint_every: Optional[int] = None
    trace: bool = False
    shards: int = 1
    shard_id: Optional[int] = None
    shard_group: Optional[str] = None
    sync_every: Optional[int] = None
    executor: str = "inline"
    batch_size: int = 1
    cull_every: Optional[int] = None
    hybrid: bool = False
    mine_after: Optional[int] = None
    gen_batch: Optional[int] = None
    gen_depth: Optional[int] = None
    hunt_crashes: bool = False
    subject_module: Optional[str] = None

    def validate(self) -> None:
        """Raises :class:`JobError` naming every invalid field."""
        problems: List[str] = []
        if self.subject_module is not None and (
            not isinstance(self.subject_module, str) or not self.subject_module
        ):
            problems.append(
                f"subject_module must be a non-empty string, "
                f"got {self.subject_module!r}"
            )
        elif self.subject_module is not None:
            # Import up front so plugin subjects the module registers are
            # visible to the subject-name check below; a module that fails
            # to import is a spec problem, not a worker crash later.
            from repro.subjects.registry import load_subject_module

            try:
                load_subject_module(self.subject_module)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                problems.append(
                    f"subject_module {self.subject_module!r} failed to "
                    f"import: {type(exc).__name__}: {exc}"
                )
        try:
            validate_campaign(self.tool, self.subject)
        except ValueError as exc:
            problems.append(str(exc))
        if not isinstance(self.budget, int) or self.budget < 1:
            problems.append(f"budget must be a positive integer, got {self.budget!r}")
        if not isinstance(self.seed, int):
            problems.append(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.priority, int) or self.priority < 1:
            problems.append(
                f"priority must be a positive integer, got {self.priority!r}"
            )
        if self.coverage_backend not in COVERAGE_BACKENDS:
            problems.append(
                f"unknown coverage backend {self.coverage_backend!r}; "
                f"valid backends: {', '.join(COVERAGE_BACKENDS)}"
            )
        if self.checkpoint_every is not None and (
            not isinstance(self.checkpoint_every, int) or self.checkpoint_every < 1
        ):
            problems.append(
                "checkpoint_every must be a positive integer, "
                f"got {self.checkpoint_every!r}"
            )
        if not isinstance(self.trace, bool):
            problems.append(f"trace must be a boolean, got {self.trace!r}")
        if not isinstance(self.shards, int) or self.shards < 1:
            problems.append(
                f"shards must be a positive integer, got {self.shards!r}"
            )
        elif self.shards > 1 and self.tool != "pfuzzer":
            problems.append(
                f"sharding requires the pfuzzer tool, got {self.tool!r}"
            )
        if self.shard_id is not None:
            if not isinstance(self.shard_id, int) or not (
                isinstance(self.shards, int)
                and 0 <= self.shard_id < self.shards
            ):
                problems.append(
                    f"shard_id {self.shard_id!r} outside 0..shards-1"
                )
            if self.shard_group is None:
                problems.append("shard_id requires a shard_group")
        if self.shard_group is not None:
            if not isinstance(self.shard_group, str) or not self.shard_group:
                problems.append(
                    f"shard_group must be a non-empty string, "
                    f"got {self.shard_group!r}"
                )
            if self.shard_id is None:
                problems.append("shard_group requires a shard_id")
        if self.sync_every is not None and (
            not isinstance(self.sync_every, int) or self.sync_every < 1
        ):
            problems.append(
                f"sync_every must be a positive integer, got {self.sync_every!r}"
            )
        if self.executor not in EXECUTOR_MODES:
            problems.append(
                f"unknown executor {self.executor!r}; "
                f"valid executors: {', '.join(EXECUTOR_MODES)}"
            )
        if not isinstance(self.batch_size, int) or self.batch_size < 1:
            problems.append(
                f"batch_size must be a positive integer, got {self.batch_size!r}"
            )
        if self.cull_every is not None and (
            not isinstance(self.cull_every, int) or self.cull_every < 1
        ):
            problems.append(
                f"cull_every must be a positive integer, got {self.cull_every!r}"
            )
        if not isinstance(self.hybrid, bool):
            problems.append(f"hybrid must be a boolean, got {self.hybrid!r}")
        elif self.hybrid and self.tool != "pfuzzer":
            problems.append(
                f"hybrid mode requires the pfuzzer tool, got {self.tool!r}"
            )
        for name, value in (
            ("mine_after", self.mine_after),
            ("gen_batch", self.gen_batch),
            ("gen_depth", self.gen_depth),
        ):
            if value is None:
                continue
            if not isinstance(value, int) or value < 1:
                problems.append(
                    f"{name} must be a positive integer, got {value!r}"
                )
            elif not self.hybrid:
                problems.append(f"{name} requires hybrid mode")
        if not isinstance(self.hunt_crashes, bool):
            problems.append(
                f"hunt_crashes must be a boolean, got {self.hunt_crashes!r}"
            )
        elif self.hunt_crashes and self.tool != "pfuzzer":
            problems.append(
                f"crash hunting requires the pfuzzer tool, got {self.tool!r}"
            )
        if problems:
            raise JobError("; ".join(problems))

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, record: dict) -> "JobSpec":
        """Build a spec from untrusted JSON; unknown keys are rejected.

        Raises:
            JobError: non-object payload, unknown fields, or a missing
                ``subject``.
        """
        if not isinstance(record, dict):
            raise JobError(f"job spec must be a JSON object, got {type(record).__name__}")
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - py39 compat
        unknown = sorted(set(record) - known)
        if unknown:
            raise JobError(f"unknown job spec fields: {', '.join(unknown)}")
        if "subject" not in record:
            raise JobError("job spec is missing the required 'subject' field")
        return cls(**record)


@dataclass
class JobRecord:
    """Where one job is: state, progress counters, outcome.

    Progress counters are advisory (updated at slice boundaries); the
    authoritative campaign state lives in the job's checkpoint directory.
    """

    job_id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    #: Submission order; ties in the fair-share schedule break on this.
    seq: int = 0
    executions: int = 0
    valid_inputs: int = 0
    resumes: int = 0
    #: Completed time slices.
    slices: int = 0
    #: Consecutive failed slice attempts (crashes/timeouts); reset on any
    #: successful slice.
    failures: int = 0
    #: Subject-level crashes observed by the campaign so far (the
    #: *subject* raising, not the worker dying — that is ``failures``).
    crashes: int = 0
    wall_time: float = 0.0
    error: Optional[str] = None
    #: Canonical result fingerprint, set when the job reaches DONE
    #: (:func:`repro.eval.checkpoint.result_fingerprint`; pFuzzer only).
    result_fingerprint: Optional[str] = None

    def to_dict(self) -> dict:
        record = asdict(self)
        record["state"] = self.state.value
        record["spec"] = self.spec.to_dict()
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "JobRecord":
        fields = dict(record)
        fields["spec"] = JobSpec.from_dict(fields["spec"])
        fields["state"] = JobState(fields["state"])
        return cls(**fields)


def check_transition(old: JobState, new: JobState) -> None:
    """Raises :class:`JobStateError` when ``old -> new`` is not an edge."""
    if new not in _TRANSITIONS[old]:
        raise JobStateError(
            f"illegal job transition {old.value} -> {new.value}"
        )


class JobStore:
    """In-memory job table backed by the append-only journal.

    Thread-safe: the HTTP control plane reads and submits from handler
    threads while the scheduler transitions jobs from its own thread.
    """

    def __init__(self, journal_path: PathLike) -> None:
        self.journal_path = Path(journal_path)
        self._lock = threading.RLock()
        self._records: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        self._next_seq = 0
        self._replay()

    # -- journal -------------------------------------------------------- #

    def _append_event(self, event: dict) -> None:
        """One JSON line, flushed and fsynced — survives SIGKILL."""
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(event, ensure_ascii=True, separators=(",", ":"))
        with open(self.journal_path, "a", encoding="ascii") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _apply_event(self, event: dict) -> None:
        kind = event.get("event")
        if kind == "submit":
            spec = JobSpec.from_dict(event["spec"])
            record = JobRecord(
                job_id=event["job_id"], spec=spec, seq=int(event["seq"])
            )
            self._records[record.job_id] = record
            self._order.append(record.job_id)
            self._next_seq = max(self._next_seq, record.seq + 1)
        elif kind == "state":
            record = self._records.get(event["job_id"])
            if record is None:
                return
            record.state = JobState(event["state"])
            if event.get("error") is not None:
                record.error = event["error"]
            if event.get("fingerprint") is not None:
                record.result_fingerprint = event["fingerprint"]
        elif kind == "progress":
            record = self._records.get(event["job_id"])
            if record is None:
                return
            # "crashes" was added within the journal format; tolerant
            # replay keeps pre-crash-tracking journals loading (the key
            # is simply absent from their progress events).
            for name in (
                "executions",
                "valid_inputs",
                "resumes",
                "slices",
                "wall_time",
                "crashes",
            ):
                if name in event:
                    setattr(record, name, event[name])

    def _replay(self) -> None:
        """Rebuild the table from the journal; recover interrupted jobs.

        Malformed lines (the torn tail of a SIGKILLed append) and events
        for unknown jobs are skipped, never fatal.  Jobs left ``RUNNING``
        by a dead process are re-queued — their checkpoints make the
        re-run a resume, not a restart.
        """
        if not self.journal_path.exists():
            return
        with open(self.journal_path, encoding="ascii", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(event, dict):
                    continue
                try:
                    self._apply_event(event)
                except (JobError, KeyError, TypeError, ValueError):
                    continue
        recovered = [
            record
            for record in self._records.values()
            if record.state in (JobState.RUNNING, JobState.PAUSED)
        ]
        for record in recovered:
            record.state = JobState.QUEUED
            self._append_event(
                {
                    "event": "state",
                    "job_id": record.job_id,
                    "state": JobState.QUEUED.value,
                }
            )

    def compact(self) -> int:
        """Atomically rewrite the journal to the current table state.

        Returns the number of journalled jobs.  Uses the checkpoint
        subsystem's tmpfile+fsync+``os.replace`` write, so a crash during
        compaction leaves the previous journal intact.
        """
        with self._lock:
            lines = []
            for job_id in self._order:
                record = self._records[job_id]
                lines.append(
                    json.dumps(
                        {
                            "event": "submit",
                            "job_id": record.job_id,
                            "seq": record.seq,
                            "spec": record.spec.to_dict(),
                        },
                        ensure_ascii=True,
                        separators=(",", ":"),
                    )
                )
                lines.append(
                    json.dumps(
                        {
                            "event": "state",
                            "job_id": record.job_id,
                            "state": record.state.value,
                            "error": record.error,
                            "fingerprint": record.result_fingerprint,
                        },
                        ensure_ascii=True,
                        separators=(",", ":"),
                    )
                )
                lines.append(
                    json.dumps(
                        {
                            "event": "progress",
                            "job_id": record.job_id,
                            "executions": record.executions,
                            "valid_inputs": record.valid_inputs,
                            "resumes": record.resumes,
                            "slices": record.slices,
                            "wall_time": record.wall_time,
                            "crashes": record.crashes,
                        },
                        ensure_ascii=True,
                        separators=(",", ":"),
                    )
                )
            self.journal_path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                self.journal_path, "".join(line + "\n" for line in lines)
            )
            return len(self._order)

    # -- table operations ----------------------------------------------- #

    def submit(self, spec: JobSpec) -> JobRecord:
        """Validate, journal and enqueue one job; returns its record.

        Raises:
            JobError: the spec is invalid (nothing is journalled).
        """
        spec.validate()
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            record = JobRecord(job_id=f"job-{seq:04d}", spec=spec, seq=seq)
            self._append_event(
                {
                    "event": "submit",
                    "job_id": record.job_id,
                    "seq": seq,
                    "spec": spec.to_dict(),
                }
            )
            self._records[record.job_id] = record
            self._order.append(record.job_id)
            return record

    def submit_sharded(self, spec: JobSpec) -> List[JobRecord]:
        """Submit a spec, expanding ``shards`` > 1 into a member group.

        A group submission creates ``spec.shards`` member jobs — shard
        ``i`` gets ``shard_id=i``, ``seed=spec.seed + i`` and the shared
        ``shard_group`` id — journalled as ordinary submits, so journal
        replay reconstructs the group with no extra event type.  A
        single-shard spec degenerates to :meth:`submit`.

        Raises:
            JobError: invalid spec, or a client-supplied ``shard_group``
                (group ids are assigned here, never by callers).
        """
        spec.validate()
        if spec.shard_group is not None:
            raise JobError("shard_group is assigned by the service")
        if spec.shards <= 1:
            return [self.submit(spec)]
        with self._lock:
            group = f"grp-{self._next_seq:04d}"
            return [
                self.submit(
                    replace(
                        spec,
                        shard_id=shard_id,
                        shard_group=group,
                        seed=spec.seed + shard_id,
                    )
                )
                for shard_id in range(spec.shards)
            ]

    def get(self, job_id: str) -> JobRecord:
        """Raises :class:`JobError` for unknown ids."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise JobError(f"unknown job {job_id!r}")
            return record

    def list(self) -> List[JobRecord]:
        """Every record, in submission order."""
        with self._lock:
            return [self._records[job_id] for job_id in self._order]

    def transition(
        self,
        job_id: str,
        state: JobState,
        *,
        error: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> JobRecord:
        """Move a job to ``state``, journalling the change.

        Raises:
            JobError: unknown job id.
            JobStateError: the transition is not a state-machine edge.
        """
        with self._lock:
            record = self.get(job_id)
            check_transition(record.state, state)
            record.state = state
            if error is not None:
                record.error = error
            if fingerprint is not None:
                record.result_fingerprint = fingerprint
            self._append_event(
                {
                    "event": "state",
                    "job_id": job_id,
                    "state": state.value,
                    "error": error,
                    "fingerprint": fingerprint,
                }
            )
            return record

    def update_progress(
        self,
        job_id: str,
        *,
        executions: int,
        valid_inputs: int,
        resumes: int,
        slices: int,
        wall_time: float,
        crashes: int = 0,
    ) -> JobRecord:
        """Record slice-boundary progress counters, journalling them."""
        with self._lock:
            record = self.get(job_id)
            record.executions = executions
            record.valid_inputs = valid_inputs
            record.resumes = resumes
            record.slices = slices
            record.wall_time = wall_time
            record.crashes = crashes
            self._append_event(
                {
                    "event": "progress",
                    "job_id": job_id,
                    "executions": executions,
                    "valid_inputs": valid_inputs,
                    "resumes": resumes,
                    "slices": slices,
                    "wall_time": wall_time,
                    "crashes": crashes,
                }
            )
            return record

    def active(self) -> List[JobRecord]:
        """Records not yet in a terminal state, in submission order."""
        return [
            record
            for record in self.list()
            if record.state not in TERMINAL_STATES
        ]
