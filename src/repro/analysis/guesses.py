"""The §2 cost claim: "building a valid input of size n takes in worst
case 2n guesses".

Each character position costs at most two executions — one rejection that
reveals the comparisons, one run of the corrected prefix — assuming "the
parser only checks for valid substitutions for the rejected character".
This module measures the actual executions-per-character rate of a fuzzing
campaign so the claim can be checked empirically (it holds as an amortised
bound on parsers without search plateaus, like the §2 expression parser).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.subjects.base import Subject


@dataclass
class GuessCost:
    """Executions spent per emitted valid input."""

    text: str
    executions: int

    @property
    def length(self) -> int:
        return len(self.text)

    @property
    def guesses_per_char(self) -> float:
        """Executions per character (∞-safe: empty inputs report raw cost)."""
        if not self.text:
            return float(self.executions)
        return self.executions / len(self.text)


def measure_guess_costs(
    subject: Subject,
    budget: int = 1_000,
    seed: Optional[int] = 1,
) -> List[GuessCost]:
    """Fuzz ``subject`` and report the cumulative cost of each emission.

    The nth entry's ``executions`` is the total executions spent when the
    nth valid input was emitted — the paper's "2n guesses" claim predicts
    ``executions <= 2 * length`` for the *first* input of each length on a
    plateau-free parser, and an O(n) trend overall.
    """
    result = PFuzzer(subject, FuzzerConfig(seed=seed, max_executions=budget)).run()
    return [
        GuessCost(text, executions) for executions, text in result.emit_log
    ]


def best_cost_per_length(costs: List[GuessCost]) -> dict:
    """Cheapest emission for each observed input length."""
    best: dict = {}
    for cost in costs:
        current = best.get(cost.length)
        if current is None or cost.executions < current.executions:
            best[cost.length] = cost
    return best
