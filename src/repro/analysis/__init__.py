"""Supporting analyses from the paper's §3.

* :mod:`repro.analysis.dyck` — the Dyck-path/Catalan argument for why random
  choice between ``(`` and ``)`` almost never closes a prefix (footnote 2).
* :mod:`repro.analysis.search` — the naive depth-first and breadth-first
  substitution searches the paper dismisses, runnable against any subject
  for comparison with pFuzzer's heuristic.
"""

from repro.analysis.dyck import closed_path_probability, simulate_random_walk
from repro.analysis.guesses import GuessCost, best_cost_per_length, measure_guess_costs
from repro.analysis.search import SearchResult, bfs_search, dfs_search

__all__ = [
    "closed_path_probability",
    "simulate_random_walk",
    "dfs_search",
    "bfs_search",
    "SearchResult",
    "GuessCost",
    "measure_guess_costs",
    "best_cost_per_length",
]
