"""The §3 Dyck-path argument.

For the balanced-parenthesis language, a fuzzer that picks ``(`` or ``)``
uniformly at random performs a random walk; the paper's footnote 2 notes
that the probability that a walk of ``2n`` steps that never went negative
ends at zero is ``1/(n+1)`` (the Catalan fraction), i.e. about 1 % after 100
characters — random choice does not close prefixes in practice.
"""

from __future__ import annotations

import math
import random
from typing import Optional


def catalan(n: int) -> int:
    """The nth Catalan number ``C(2n, n) / (n + 1)``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return math.comb(2 * n, n) // (n + 1)


def closed_path_probability(n: int) -> float:
    """Probability that a non-negative 2n-step walk ends at zero: 1/(n+1).

    This is the paper's approximation (footnote 2: paths that touched zero
    and rebounded are ignored "for convenience" in both numerator and
    denominator).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return 1.0 / (n + 1)


def simulate_random_walk(
    steps: int,
    trials: int,
    seed: Optional[int] = None,
) -> float:
    """Empirical closing rate of the random ``(``/``)`` strategy.

    Each trial draws ``steps`` characters uniformly from ``{'(', ')'}``,
    aborting when the depth goes negative (the parser would reject).  Returns
    the fraction of trials that end exactly balanced — the event the paper
    argues becomes vanishingly rare.
    """
    if steps <= 0 or steps % 2:
        raise ValueError("steps must be positive and even")
    rng = random.Random(seed)
    closed = 0
    for _ in range(trials):
        depth = 0
        for _ in range(steps):
            depth += 1 if rng.random() < 0.5 else -1
            if depth < 0:
                break
        else:
            if depth == 0:
                closed += 1
    return closed / trials if trials else 0.0
