"""Naive depth-first / breadth-first substitution search (§3).

The paper motivates its heuristic by dismissing two obvious alternatives:

* **depth-first** search "is fast in generating large prefixes of inputs but
  may not be able to close them properly … and may therefore get stuck in a
  generation loop";
* **breadth-first** search "explores all combinations of possible inputs on
  a shallow level" and drowns in combinatorial explosion before reaching
  interesting depth.

Both are implemented here on top of the same substitution machinery as
pFuzzer (comparisons → substitutions), differing only in queue discipline.
They are used by the ablation benchmarks to show what the §3.1 heuristic
buys.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Set

from repro.core.config import DEFAULT_CHARACTER_POOL
from repro.core.substitute import substitutions_for
from repro.runtime.harness import run_subject
from repro.subjects.base import Subject


@dataclass
class SearchResult:
    """Outcome of a naive search campaign."""

    valid_inputs: List[str] = field(default_factory=list)
    executions: int = 0
    max_depth_reached: int = 0


def _search(
    subject: Subject,
    budget: int,
    seed: Optional[int],
    depth_first: bool,
    max_length: int,
) -> SearchResult:
    rng = random.Random(seed)
    result = SearchResult()
    worklist: Deque[tuple] = deque([("", 0)])
    seen: Set[str] = {""}
    valid_seen: Set[str] = set()
    while worklist and result.executions < budget:
        if depth_first:
            text, depth = worklist.pop()
        else:
            text, depth = worklist.popleft()
        result.max_depth_reached = max(result.max_depth_reached, depth)
        run = run_subject(subject, text, trace_coverage=False)
        result.executions += 1
        if run.valid and text not in valid_seen:
            valid_seen.add(text)
            result.valid_inputs.append(text)
        children: List[str] = [
            substitution.text for substitution in substitutions_for(run)
        ]
        if run.recorder.eof_accessed or run.valid:
            children.append(text + rng.choice(DEFAULT_CHARACTER_POOL))
        for child in children:
            if child in seen or len(child) > max_length:
                continue
            seen.add(child)
            worklist.append((child, depth + 1))
    return result


def dfs_search(
    subject: Subject,
    budget: int,
    seed: Optional[int] = None,
    max_length: int = 100,
) -> SearchResult:
    """Depth-first substitution search (LIFO worklist)."""
    return _search(subject, budget, seed, depth_first=True, max_length=max_length)


def bfs_search(
    subject: Subject,
    budget: int,
    seed: Optional[int] = None,
    max_length: int = 100,
) -> SearchResult:
    """Breadth-first substitution search (FIFO worklist)."""
    return _search(subject, budget, seed, depth_first=False, max_length=max_length)
