"""Exporting mined grammars: EBNF text and conversion to table CFGs.

Closing the loop between the two grammar worlds in this repository: a
grammar mined from a recursive-descent subject (:mod:`repro.miner.mine`)
can be converted to the :mod:`repro.tables` CFG format and — when the mined
grammar happens to be LL(1) — driven through the table parser, connecting
the §7.4 pipeline to the §7.1 machinery.
"""

from __future__ import annotations

from typing import List, Set

from repro.miner.grammar import Grammar, NONTERM, TERM
from repro.tables.grammar import CFG


def to_ebnf(grammar: Grammar) -> str:
    """Render a mined grammar as EBNF-style text (one rule per line)."""
    lines: List[str] = []
    ordered = [grammar.start] + sorted(grammar.nonterminals() - {grammar.start})
    for name in ordered:
        if name not in grammar.rules:
            continue
        alternatives: List[str] = []
        for expansion in sorted(grammar.rules[name]):
            if not expansion:
                alternatives.append("ε")
                continue
            parts = [
                f'"{value}"' if kind == TERM else f"<{value}>"
                for kind, value in expansion
            ]
            alternatives.append(" ".join(parts))
        lines.append(f"<{name}> ::= " + "\n    | ".join(alternatives))
    return "\n".join(lines)


def to_cfg(grammar: Grammar, name: str = "mined") -> CFG:
    """Convert a mined grammar to a :class:`repro.tables.grammar.CFG`.

    Multi-character terminals are split into single characters (the table
    engine consumes one character at a time).  The result is not guaranteed
    to be LL(1) — pass it to :func:`repro.tables.grammar.build_table` and
    catch :class:`repro.tables.grammar.LL1Conflict` to find out.
    """
    cfg = CFG(name=name, start=grammar.start)
    for head in grammar.rules:
        for expansion in sorted(grammar.rules[head]):
            body: List[object] = []
            for kind, value in expansion:
                if kind == NONTERM:
                    body.append(value)
                else:
                    body.extend(value)  # one terminal per character
            cfg.add(head, *body)
    return cfg


def terminal_alphabet(grammar: Grammar) -> Set[str]:
    """Every character that appears in the mined grammar's terminals."""
    alphabet: Set[str] = set()
    for expansions in grammar.rules.values():
        for expansion in expansions:
            for kind, value in expansion:
                if kind == TERM:
                    alphabet.update(value)
    return alphabet


def keyword_terminals(grammar: Grammar, min_length: int = 2) -> Set[str]:
    """Multi-character terminals — the keywords the mining recovered.

    A quick fidelity check for mined grammars: on tinyc these should
    include the language keywords that appeared in the corpus.
    """
    keywords: Set[str] = set()
    for expansions in grammar.rules.values():
        for expansion in expansions:
            for kind, value in expansion:
                if kind == TERM and len(value.strip()) >= min_length:
                    keywords.add(value.strip())
    return keywords
