"""Context-free grammar representation for the miner.

A grammar maps nonterminal names to sets of alternative expansions.  An
expansion is a tuple of symbols; each symbol is ``(TERM, text)`` or
``(NONTERM, name)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

TERM = "t"
NONTERM = "n"

Symbol = Tuple[str, str]
Expansion = Tuple[Symbol, ...]


class Grammar:
    """A mined context-free grammar."""

    def __init__(self, start: str) -> None:
        self.start = start
        self.rules: Dict[str, Set[Expansion]] = {}

    def add_rule(self, name: str, expansion: Sequence[Symbol]) -> None:
        """Record one alternative for ``name``."""
        self.rules.setdefault(name, set()).add(tuple(expansion))

    def nonterminals(self) -> Set[str]:
        return set(self.rules)

    def is_recursive(self, name: str) -> bool:
        """Can ``name`` (transitively) expand to itself?

        Recursion is what grammar-based generation adds on top of pFuzzer's
        shallow exploration (§7.4).
        """
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for expansion in self.rules.get(current, ()):
                for kind, value in expansion:
                    if kind is not NONTERM and kind != NONTERM:
                        continue
                    if value == name:
                        return True
                    if value not in seen:
                        seen.add(value)
                        frontier.append(value)
        return False

    def prune(self) -> None:
        """Drop nonterminals with no rules by inlining them as terminals.

        Mining partial traces can reference a child frame that never itself
        consumed input; such references are replaced with nothing.
        """
        defined = set(self.rules)
        for name, expansions in list(self.rules.items()):
            cleaned: Set[Expansion] = set()
            for expansion in expansions:
                cleaned.add(
                    tuple(
                        symbol
                        for symbol in expansion
                        if symbol[0] == TERM or symbol[1] in defined
                    )
                )
            self.rules[name] = cleaned

    def to_payload(self) -> dict:
        """A JSON-serialisable snapshot of the grammar.

        Expansions are sorted so the payload (and therefore checkpoint
        checksums) is independent of set iteration order.
        """
        return {
            "start": self.start,
            "rules": {
                name: [
                    [[kind, value] for kind, value in expansion]
                    for expansion in sorted(expansions)
                ]
                for name, expansions in sorted(self.rules.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Grammar":
        """Rebuild a grammar from :meth:`to_payload` output."""
        grammar = cls(payload["start"])
        for name, expansions in payload["rules"].items():
            for expansion in expansions:
                grammar.add_rule(
                    name, tuple((kind, value) for kind, value in expansion)
                )
        return grammar

    def __str__(self) -> str:
        lines: List[str] = []
        for name in sorted(self.rules):
            alternatives = []
            for expansion in sorted(self.rules[name]):
                parts = [
                    repr(value) if kind == TERM else f"<{value}>"
                    for kind, value in expansion
                ]
                alternatives.append(" ".join(parts) if parts else "ε")
            lines.append(f"<{name}> ::= " + " | ".join(alternatives))
        return "\n".join(lines)
