"""Grammar-based generation from mined grammars (§7.4).

Once a grammar has been mined from pFuzzer's valid inputs, random expansion
produces arbitrarily deep recursive structures — the regime where pure
parser-directed search is inefficient ("it is more efficient to rely on
parser-directed fuzzing for initial exploration, use a tool to mine the
grammar ... and use the mined grammar for generating longer and more complex
sequences").
"""

from __future__ import annotations

import random
from typing import Container, List, Optional, Set

from repro.miner.grammar import Expansion, Grammar, NONTERM, TERM


class GrammarFuzzer:
    """Random-expansion generation from a mined grammar.

    This is the reference interpreter: it walks ``grammar.rules``
    directly on every expansion, so it stays correct when the grammar is
    still being built up (``GrammarMiner`` mutates grammars between
    ``add_input`` calls).  The hot generation path lives in
    :mod:`repro.hybrid.compile`, which presorts and lowers the grammar
    once instead.

    Output is a pure function of the RNG state: pass ``rng`` to draw
    from an existing stream (how hybrid campaigns seed generation from
    campaign RNG state), or ``seed`` for a fresh one.  ``getstate`` /
    ``setstate`` expose the stream for snapshots.
    """

    def __init__(
        self,
        grammar: Grammar,
        seed: Optional[int] = None,
        max_depth: int = 12,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.grammar = grammar
        self.max_depth = max_depth
        self._rng = rng if rng is not None else random.Random(seed)
        self._costs = self._min_costs()

    def getstate(self):
        """The underlying RNG state (``random.Random.getstate`` form)."""
        return self._rng.getstate()

    def setstate(self, state) -> None:
        """Restore an RNG state captured by :meth:`getstate`."""
        self._rng.setstate(state)

    def _min_costs(self) -> dict:
        """Minimum expansion depth per nonterminal (fixpoint).

        Standard grammar-fuzzing machinery: past the depth budget the
        generator picks the alternative whose nonterminals all have finite,
        minimal cost, guaranteeing termination on any mined grammar.
        """
        infinity = float("inf")
        costs = {name: infinity for name in self.grammar.rules}
        changed = True
        while changed:
            changed = False
            for name, alternatives in self.grammar.rules.items():
                for expansion in alternatives:
                    cost = 1.0
                    for kind, value in expansion:
                        if kind == NONTERM:
                            cost = max(cost, 1.0 + costs.get(value, infinity))
                    if cost < costs[name]:
                        costs[name] = cost
                        changed = True
        return costs

    def _expansion_cost(self, expansion: Expansion) -> float:
        cost = 1.0
        for kind, value in expansion:
            if kind == NONTERM:
                cost = max(cost, 1.0 + self._costs.get(value, float("inf")))
        return cost

    def generate(self, start: Optional[str] = None) -> str:
        """One random sentence from the grammar."""
        name = start if start is not None else self.grammar.start
        return "".join(self._expand(name, 0))

    def generate_many(
        self,
        count: int,
        start: Optional[str] = None,
        *,
        avoid: Optional[Container[str]] = None,
        max_attempts: Optional[int] = None,
    ) -> List[str]:
        """Up to ``count`` random sentences, optionally deduplicated.

        Without ``avoid``, exactly ``count`` sentences are drawn
        (duplicates possible).  With ``avoid`` (any container supporting
        ``in``), only sentences outside it — and distinct from each
        other — are returned, and total draws are bounded by
        ``max_attempts`` (default ``4 * count + 16``): a tiny grammar
        that can only produce a handful of sentences yields a short
        result instead of spinning forever.
        """
        if avoid is None:
            return [self.generate(start) for _ in range(count)]
        if max_attempts is None:
            max_attempts = 4 * count + 16
        out: List[str] = []
        produced: Set[str] = set()
        attempts = 0
        while len(out) < count and attempts < max_attempts:
            attempts += 1
            text = self.generate(start)
            if text in produced or text in avoid:
                continue
            produced.add(text)
            out.append(text)
        return out

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #

    def _expand(self, name: str, depth: int) -> List[str]:
        # Sorted, not set order: rng.choice over a hash-ordered list
        # would make output depend on PYTHONHASHSEED.  Sorting here (not
        # cached) keeps mutation of self.grammar safe.
        alternatives = sorted(self.grammar.rules.get(name, ()))
        if not alternatives:
            return []
        expansion = self._choose(alternatives, depth)
        pieces: List[str] = []
        for kind, value in expansion:
            if kind == TERM:
                pieces.append(value)
            else:
                pieces.extend(self._expand(value, depth + 1))
        return pieces

    def _choose(self, alternatives: List[Expansion], depth: int) -> Expansion:
        """Pick an alternative; beyond max_depth prefer terminal-only ones.

        The closing discipline that keeps random expansion from running
        away — the grammar-level analogue of the paper's stack-size
        heuristic.
        """
        if depth < self.max_depth:
            return self._rng.choice(alternatives)
        cheapest = min(self._expansion_cost(expansion) for expansion in alternatives)
        closing = [
            expansion
            for expansion in alternatives
            if self._expansion_cost(expansion) <= cheapest
        ]
        return self._rng.choice(closing)
