"""Mining grammars from access traces (AutoGram-style, §7.4).

For every valid input, the instrumentation records which subject function
was on the call stack each time an input character was read.  Nesting of
those (function, invocation) frames over contiguous input spans *is* a parse
tree; merging the trees' expansions over many inputs yields a context-free
grammar whose nonterminals are the parser's own function names — the same
idea as AutoGram's "mining input grammars from dynamic taints".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.miner.grammar import Grammar, NONTERM, TERM, Symbol
from repro.runtime.harness import run_subject
from repro.subjects.base import Subject

Frame = Tuple[str, int]


@dataclass
class _Node:
    """One frame's span in the parse tree of a single input."""

    frame: Frame
    lo: int
    hi: int
    children: List["_Node"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.frame[0]


class GrammarMiner:
    """Accumulates a grammar over many valid inputs of one subject."""

    def __init__(self, subject: Subject, start: str = "start") -> None:
        self.subject = subject
        self.grammar = Grammar(start)

    def add_input(self, text: str) -> bool:
        """Mine one input; returns False when the subject rejects it."""
        result = run_subject(self.subject, text)
        if not result.valid:
            return False
        accesses = result.recorder.accesses
        root = _build_tree(accesses)
        if root is None:
            # Valid but traceless (e.g. whitespace-only or empty inputs a
            # subject accepts without reading through instrumented
            # frames): record the raw text so the grammar still derives
            # it instead of silently dropping the observation.
            self.grammar.add_rule(self.grammar.start, ((TERM, text),))
            return True
        _emit_rules(self.grammar, root, text)
        self.grammar.add_rule(
            self.grammar.start, ((NONTERM, root.name),)
        )
        return True

    def finish(self) -> Grammar:
        """Prune and return the mined grammar.

        Always well-formed: even with no (or no valid) inputs the start
        symbol has at least one expansion — the trivial empty sentence —
        so downstream consumers (generation, export, compilation) never
        trip over a missing start rule.
        """
        self.grammar.prune()
        if not self.grammar.rules.get(self.grammar.start):
            self.grammar.add_rule(self.grammar.start, ())
        return self.grammar


def mine_grammar(subject: Subject, inputs: Sequence[str], start: str = "start") -> Grammar:
    """Convenience wrapper: mine a grammar from a corpus of valid inputs."""
    miner = GrammarMiner(subject, start)
    for text in inputs:
        miner.add_input(text)
    return miner.finish()


# ---------------------------------------------------------------------- #
# Tree construction from the access log
# ---------------------------------------------------------------------- #


def _build_tree(accesses: Sequence[Tuple[int, Tuple[Frame, ...]]]) -> Optional[_Node]:
    """Nest (index, stack) samples into a single parse tree.

    Every frame that was on the stack during an access covers that index;
    parent/child structure follows stack order.  Frames are identified by
    their invocation serial, so two calls of the same function stay
    distinct.
    """
    nodes: Dict[Frame, _Node] = {}
    root: Optional[_Node] = None
    for index, stack in accesses:
        if not stack:
            continue
        parent: Optional[_Node] = None
        for frame in stack:
            node = nodes.get(frame)
            if node is None:
                node = _Node(frame, index, index)
                nodes[frame] = node
                if parent is not None:
                    parent.children.append(node)
            else:
                node.lo = min(node.lo, index)
                node.hi = max(node.hi, index)
            parent = node
        outermost = nodes[stack[0]]
        if root is None:
            root = outermost
        elif root.frame != outermost.frame:
            # Multiple top-level frames (e.g. a parser driven by a loop in
            # the subject's entry function): wrap them under a synthetic
            # root covering everything.
            if root.name != "__root__":
                wrapper = _Node(("__root__", 0), root.lo, root.hi, [root])
                root = wrapper
            root.children.append(outermost)
            root.lo = min(root.lo, outermost.lo)
            root.hi = max(root.hi, outermost.hi)
    return root


def _emit_rules(grammar: Grammar, node: _Node, text: str) -> None:
    """Turn one tree node into a grammar rule, recursing into children."""
    children = sorted(node.children, key=lambda child: child.lo)
    expansion: List[Symbol] = []
    cursor = node.lo
    for child in children:
        if child.lo > cursor:
            expansion.append((TERM, text[cursor : child.lo]))
        expansion.append((NONTERM, child.name))
        cursor = max(cursor, child.hi + 1)
        _emit_rules(grammar, child, text)
    if cursor <= node.hi:
        expansion.append((TERM, text[cursor : node.hi + 1]))
    grammar.add_rule(node.name, expansion)
