"""Grammar mining from dynamic taints (the paper's §7.4 future work).

The paper proposes closing the loop: use parser-directed fuzzing for
initial exploration, mine a grammar from the valid inputs (AutoGram,
Höschele & Zeller 2016), then use grammar-based generation for deep
recursive structures.  This package implements that pipeline:

* :mod:`repro.miner.mine` derives, for each valid input, a parse tree from
  the (input index × call stack) access log the instrumentation records —
  each parser function that consumed a span of input becomes a nonterminal;
* :mod:`repro.miner.grammar` merges trees into a context-free grammar;
* :mod:`repro.miner.generate` performs grammar-based random generation,
  giving the recursive-structure coverage §7.4 says pFuzzer alone lacks;
* :mod:`repro.miner.export` renders mined grammars as EBNF and converts
  them to the :mod:`repro.tables` CFG format.

Known limitation (tested, not hidden): mining works well on *scannerless*
parsers (expr, ini, csv, json), where every character is consumed inside
the grammar function that owns it.  Tokenized parsers (tinyc, mjs) consume
characters one token of lookahead early, so spans get attributed to the
previous grammar frame and the mined structure over-generalises — the
miner-side face of the paper's §7.2 tokenization problem.
"""

from repro.miner.export import keyword_terminals, to_cfg, to_ebnf
from repro.miner.generate import GrammarFuzzer
from repro.miner.grammar import Grammar, NONTERM, TERM
from repro.miner.mine import GrammarMiner, mine_grammar

__all__ = [
    "GrammarMiner",
    "mine_grammar",
    "Grammar",
    "TERM",
    "NONTERM",
    "GrammarFuzzer",
    "to_ebnf",
    "to_cfg",
    "keyword_terminals",
]
