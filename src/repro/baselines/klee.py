"""A KLEE-style constraint-based explorer (§6, Cadar et al. 2008).

KLEE executes the program on symbolic input, forks an execution state at
every input-dependent branch, and asks a constraint solver for concrete
bytes that drive execution down the unexplored side.  This baseline
reproduces that search shape with a *concolic generational* loop:

1. run a concrete input under the taint instrumentation; the recorded
   comparison events are exactly the input-dependent branch decisions KLEE
   would have forked on;
2. for every decision on the path, synthesise a child input that **flips**
   that decision (the per-character/string "solver" below — trivially
   complete for parser constraints, which is why KLEE finds keywords on the
   small subjects easily);
3. explore breadth-first with a bounded worklist.

Path explosion is not simulated — it *happens*: on mjs each run produces
hundreds of decisions, the frontier grows multiplicatively, and the
breadth-first worklist exhausts its budget on shallow paths, matching the
paper's observation that "KLEE, suffering from the path explosion problem,
finds almost no valid inputs for mjs" (§5.2).
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Set

from repro.baselines.common import Arc, CampaignResult
from repro.runtime.harness import ExitStatus, RunResult, run_subject
from repro.subjects.base import Subject
from repro.taint.events import ComparisonEvent, ComparisonKind, SET_KINDS


@dataclass
class KleeConfig:
    """Knobs of the KLEE-style baseline."""

    seed: Optional[int] = None
    max_executions: int = 20_000
    #: Upper bound on children generated per state, the analogue of KLEE's
    #: per-state forking limits.
    max_forks_per_state: int = 64
    #: Worklist capacity; enqueue beyond it drops states (KLEE's memory cap).
    max_states: int = 50_000
    max_length: int = 64
    trace_coverage: bool = True


@dataclass
class _State:
    """One worklist entry: a concrete input standing in for a path."""

    text: str
    depth: int


# ---------------------------------------------------------------------- #
# The "solver": satisfy or refute one comparison (shared with Driller)
# ---------------------------------------------------------------------- #


def splice(text: str, index: int, value: str) -> str:
    """Overwrite ``text`` at ``index`` with ``value`` (no truncation)."""
    return text[:index] + value + text[index + len(value) :]


def different_char(char: str) -> str:
    """Any character other than ``char``."""
    return "A" if char != "A" else "B"


def outside_class(members: str) -> str:
    """A printable character not in ``members``."""
    for code in range(0x21, 0x7F):
        if chr(code) not in members:
            return chr(code)
    return "\x01"


def flip_decision(text: str, event: ComparisonEvent, rng: random.Random) -> Optional[str]:
    """An input that drives execution down the other side of ``event``.

    Characters after the spliced constraint keep their old concrete values
    — symbolic execution solves over a fixed buffer, it does not truncate
    (a structural difference from pFuzzer's substitutions).
    """
    index = event.index
    kind = event.kind
    if kind is ComparisonKind.STRCMP:
        # Symbolic execution forks at every character comparison inside
        # strcmp's loop, not once per call: flipping advances ONE character
        # toward (or away from) the expected string.
        expected = event.other_value
        if not expected:
            return None
        if event.result:
            return splice(text, index, different_char(expected[0]))
        concrete = event.tainted_value
        mismatch = 0
        while (
            mismatch < len(expected)
            and mismatch < len(concrete)
            and concrete[mismatch] == expected[mismatch]
        ):
            mismatch += 1
        if mismatch >= len(expected):
            # Expected string is a prefix of the concrete buffer; the
            # remaining constraint is about length, which the fixed-size
            # model cannot express.
            return None
        return splice(text, index + mismatch, expected[mismatch])
    if kind in SET_KINDS:
        if event.result:
            return splice(text, index, outside_class(event.other_value))
        members = event.other_value
        return splice(text, index, rng.choice(members)) if members else None
    other = event.other_value
    if not other:
        return None
    if kind in (ComparisonKind.EQ, ComparisonKind.NE):
        want_equal = (kind is ComparisonKind.EQ) != event.result
        if want_equal:
            return splice(text, index, other)
        return splice(text, index, different_char(other))
    # Relational: satisfy the flipped relation with a boundary value.
    code = ord(other)
    if kind in (ComparisonKind.LT, ComparisonKind.LE):
        flipped_true = not event.result
        target = code - 1 if flipped_true and kind is ComparisonKind.LT else code
        if not flipped_true:
            target = code + 1
    else:  # GT / GE
        flipped_true = not event.result
        target = code + 1 if flipped_true and kind is ComparisonKind.GT else code
        if not flipped_true:
            target = code - 1
    if not 0 <= target < 0x110000:
        return None
    return splice(text, index, chr(target))


class KleeExplorer:
    """Breadth-first concolic exploration of one subject."""

    def __init__(self, subject: Subject, config: Optional[KleeConfig] = None) -> None:
        self.subject = subject
        self.config = config or KleeConfig()
        self._rng = random.Random(self.config.seed)
        self._result = CampaignResult()
        self._seen: Set[str] = set()
        self._covered: Set[Arc] = set()
        self._valid_branches: Set[Arc] = set()

    def _flip(self, text: str, event: ComparisonEvent) -> Optional[str]:
        """One flipped decision (see :func:`flip_decision`)."""
        return flip_decision(text, event, self._rng)

    # ------------------------------------------------------------------ #
    # Exploration
    # ------------------------------------------------------------------ #

    def _execute(self, text: str) -> Optional[RunResult]:
        if self._result.executions >= self.config.max_executions:
            return None
        run = run_subject(self.subject, text, trace_coverage=self.config.trace_coverage)
        self._result.executions += 1
        if run.status is ExitStatus.REJECTED:
            self._result.rejected += 1
        elif run.status is ExitStatus.HANG:
            self._result.hangs += 1
        return run

    def _emit_if_new_coverage(self, run: RunResult) -> None:
        """Paper setup: KLEE only outputs tests that cover new code."""
        new = set(run.branches) - self._covered
        if not new:
            return
        self._covered |= new
        if run.valid:
            self._result.valid_inputs.append(run.text)
            self._valid_branches |= run.branches

    def run(self) -> CampaignResult:
        started = time.monotonic()
        worklist: Deque[_State] = deque([_State("", 0)])
        self._seen.add("")
        while worklist and self._result.executions < self.config.max_executions:
            state = worklist.popleft()
            run = self._execute(state.text)
            if run is None:
                break
            self._emit_if_new_coverage(run)
            children = self._expand(run)
            for child in children:
                if child in self._seen or len(child) > self.config.max_length:
                    continue
                if len(worklist) >= self.config.max_states:
                    break
                self._seen.add(child)
                worklist.append(_State(child, state.depth + 1))
        self._result.valid_branches = frozenset(self._valid_branches)
        self._result.wall_time = time.monotonic() - started
        return self._result

    def _expand(self, run: RunResult) -> List[str]:
        children: List[str] = []
        for event in run.recorder.comparisons:
            if len(children) >= self.config.max_forks_per_state:
                break
            child = self._flip(run.text, event)
            if child is not None and child != run.text:
                children.append(child)
        if run.recorder.eof_accessed and len(run.text) < self.config.max_length:
            # A larger symbolic stdin: extend by one unconstrained byte.
            children.append(run.text + "A")
        return children
