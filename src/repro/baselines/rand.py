"""Miller-style blind random fuzzing (§6.1, Miller et al. 1990).

Generates strings of random length and content, runs them, and keeps the
accepted ones.  No feedback of any kind — the historical baseline that
motivates everything else.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional, Set

from repro.baselines.common import Arc, CampaignResult
from repro.core.config import DEFAULT_CHARACTER_POOL
from repro.runtime.harness import ExitStatus, run_subject
from repro.subjects.base import Subject


@dataclass
class RandomConfig:
    """Knobs of the blind random fuzzer."""

    seed: Optional[int] = None
    max_executions: int = 2_000
    max_length: int = 20
    character_pool: str = DEFAULT_CHARACTER_POOL
    trace_coverage: bool = True


class RandomFuzzer:
    """Blind random input generation."""

    def __init__(self, subject: Subject, config: Optional[RandomConfig] = None) -> None:
        self.subject = subject
        self.config = config or RandomConfig()

    def run(self) -> CampaignResult:
        config = self.config
        rng = random.Random(config.seed)
        result = CampaignResult()
        branches: Set[Arc] = set()
        seen: Set[str] = set()
        started = time.monotonic()
        while result.executions < config.max_executions:
            length = rng.randint(0, config.max_length)
            text = "".join(rng.choice(config.character_pool) for _ in range(length))
            run = run_subject(self.subject, text, trace_coverage=config.trace_coverage)
            result.executions += 1
            if run.status is ExitStatus.REJECTED:
                result.rejected += 1
            elif run.status is ExitStatus.HANG:
                result.hangs += 1
            elif text not in seen:
                seen.add(text)
                result.valid_inputs.append(text)
                branches |= run.branches
        result.valid_branches = frozenset(branches)
        result.wall_time = time.monotonic() - started
        return result
