"""A Driller-style hybrid fuzzer (§6.2, Stephens et al. 2016).

Driller "relies on fuzzing to explore the input space initially, but
switches to symbolic execution when the fuzzer stops making progress —
typically, because it needs to satisfy input predicates such as magic
bytes".  This implementation composes the two baselines accordingly:

* the AFL engine runs as usual;
* a *stagnation detector* watches how long ago the queue last grew;
* on stagnation, a **symbolic stint** picks the most recent queue entries,
  replays them under the taint instrumentation, flips their comparison
  decisions with the shared concolic solver
  (:func:`repro.baselines.klee.flip_decision`), and feeds the flipped
  inputs back through the ordinary AFL path — exactly Driller's
  "drilling past the roadblock, then handing control back to the fuzzer".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Set

from repro.baselines.afl import AFLConfig, AFLFuzzer
from repro.baselines.klee import flip_decision
from repro.runtime.harness import RunResult, run_subject


@dataclass
class DrillerConfig(AFLConfig):
    """AFL knobs plus the stagnation/stint parameters."""

    #: Executions without queue growth before a symbolic stint fires.
    stagnation_threshold: int = 400
    #: Queue entries used as symbolic starting points per stint.
    stint_entries: int = 2
    #: Flipped children generated per explored state.
    stint_forks: int = 16
    #: Executions one stint may spend exploring symbolically.
    stint_budget: int = 200


class DrillerFuzzer(AFLFuzzer):
    """Fuzzing with selective symbolic execution on stagnation."""

    def __init__(self, subject, config: Optional[DrillerConfig] = None) -> None:
        super().__init__(subject, config or DrillerConfig())
        self._executions_at_last_growth = 0
        self._queue_size_seen = 0
        self._stint_cursor = 0
        self.stints = 0

    # ------------------------------------------------------------------ #
    # Stagnation detection
    # ------------------------------------------------------------------ #

    def _stagnated(self) -> bool:
        if len(self._queue) != self._queue_size_seen:
            self._queue_size_seen = len(self._queue)
            self._executions_at_last_growth = self._result.executions
            return False
        elapsed = self._result.executions - self._executions_at_last_growth
        return elapsed >= self.config.stagnation_threshold

    # ------------------------------------------------------------------ #
    # The symbolic stint
    # ------------------------------------------------------------------ #

    def _extra_stage(self) -> bool:
        if not self._stagnated():
            return True
        self.stints += 1
        self._executions_at_last_growth = self._result.executions
        for _ in range(min(self.config.stint_entries, len(self._queue))):
            entry = self._queue[self._stint_cursor % len(self._queue)]
            self._stint_cursor += 1
            if not self._drill(bytes(entry.data).decode("latin-1")):
                return False
        return True

    def _drill(self, text: str) -> bool:
        """Bounded symbolic exploration (breadth-first) from one seed.

        Each explored state's comparison decisions are flipped with the
        concolic solver and the children are explored transitively until
        the stint budget is exhausted — one-level flipping cannot thread a
        multi-character keyword, because the intermediate inputs rarely
        show new coverage (the same observation that motivates AFL-CTP in
        the paper's §6.2).  Everything executed also passes through the
        AFL bitmap, so the fuzzer keeps whatever the stint unearths.
        """
        worklist: Deque[str] = deque([text])
        seen: Set[str] = {text}
        spent = 0
        while worklist and spent < self.config.stint_budget:
            current = worklist.popleft()
            data = bytearray(current.encode("latin-1", "replace"))
            del data[self.config.max_length :]
            if not self._run_and_consider(data):
                return False
            spent += 1
            # The taint replay is a second subject execution; it counts
            # against the global budget like everything else.
            replay: RunResult = run_subject(
                self.subject, current, trace_coverage=False
            )
            self._result.executions += 1
            children: List[str] = []
            for event in replay.recorder.comparisons:
                if len(children) >= self.config.stint_forks:
                    break
                child = flip_decision(current, event, self._rng)
                if child is not None and child != current:
                    children.append(child)
            if replay.recorder.eof_accessed and len(current) < self.config.max_length:
                children.append(current + "A")
            for child in children:
                if child not in seen and len(child) <= self.config.max_length:
                    seen.add(child)
                    worklist.append(child)
        return True
