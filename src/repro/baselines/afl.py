"""An AFL-style coverage-guided mutational fuzzer (§6.2, Zalewski).

Reproduces the strategy of AFL as relevant to the paper's comparison:

* **edge-coverage bitmap** — every branch (line arc) is hashed into a 64 KiB
  bitmap; hit counts are bucketed into AFL's power-of-two classes, and an
  input is "interesting" (added to the queue) iff it sets a byte/bucket the
  global virgin map has not seen;
* **deterministic stages** on each new queue entry — walking bit flips,
  byte flips, 8-bit arithmetic, interesting-value substitution;
* **havoc** — stacked random mutations (bit flips, random bytes, block
  deletion/insertion/duplication) plus **splice** with another queue entry.

The campaign is seeded with a single space character, exactly like the
paper's evaluation setup (§5.1), and is budgeted by executions.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.common import Arc, CampaignResult
from repro.runtime.harness import ExitStatus, RunResult, run_subject
from repro.subjects.base import Subject

#: AFL's hit-count buckets: the bitmap stores the bucket, not the raw count.
_BUCKETS: Tuple[Tuple[int, int], ...] = (
    (1, 1),
    (2, 2),
    (3, 3),
    (4, 8),
    (8, 16),
    (16, 32),
    (32, 128),
    (128, 1 << 30),
)

#: AFL's "interesting" 8-bit values.
_INTERESTING_8 = (0, 1, 16, 32, 64, 100, 127, 128, 255)

MAP_SIZE = 1 << 16


def classify_count(count: int) -> int:
    """Map a raw hit count onto AFL's bucket id (0 for zero hits)."""
    if count <= 0:
        return 0
    for bucket_id, (low, high) in enumerate(_BUCKETS, start=1):
        if low <= count < high or (low == high == count):
            return bucket_id
    return len(_BUCKETS)


def bitmap_of(arcs: Dict[Arc, int]) -> Dict[int, int]:
    """AFL-style classified bitmap for one execution's arcs.

    The tracer reports first-traversal clocks, not counts; every traversed
    arc counts once per *occurrence set*, so the bitmap degenerates to
    bucket 1 per edge — the part of AFL's semantics that matters for queue
    culling is which *edges* are new, which is preserved exactly.
    """
    bitmap: Dict[int, int] = {}
    for arc in arcs:
        index = hash(arc) & (MAP_SIZE - 1)
        bitmap[index] = classify_count(bitmap.get(index, 0) + 1)
    return bitmap


@dataclass
class QueueEntry:
    """One seed in AFL's queue."""

    data: bytearray
    valid: bool
    det_done: bool = False


@dataclass
class AFLConfig:
    """Knobs of the AFL-style baseline."""

    seed: Optional[int] = None
    max_executions: int = 20_000
    #: Paper §5.1: AFL is started from a single space character.
    seeds: Tuple[str, ...] = (" ",)
    max_length: int = 200
    havoc_iterations: int = 48
    havoc_stack: int = 8
    #: Deterministic stages are skipped for entries longer than this (AFL
    #: itself spends most deterministic effort on small seeds).
    det_max_length: int = 32
    #: Cap on the distinct valid inputs kept as the output corpus.
    max_valid_corpus: int = 20_000
    trace_coverage: bool = True


class AFLFuzzer:
    """Coverage-guided mutational fuzzing over one subject."""

    def __init__(self, subject: Subject, config: Optional[AFLConfig] = None) -> None:
        self.subject = subject
        self.config = config or AFLConfig()
        self._rng = random.Random(self.config.seed)
        self._virgin: Dict[int, Set[int]] = {}
        self._queue: List[QueueEntry] = []
        self._result = CampaignResult()
        self._valid_branches: Set[Arc] = set()
        self._seen_valid: Set[str] = set()

    # ------------------------------------------------------------------ #
    # Coverage plumbing
    # ------------------------------------------------------------------ #

    def _has_new_bits(self, bitmap: Dict[int, int]) -> bool:
        new = False
        for index, bucket in bitmap.items():
            seen = self._virgin.setdefault(index, set())
            if bucket not in seen:
                seen.add(bucket)
                new = True
        return new

    def _execute(self, data: bytearray) -> Optional[RunResult]:
        if self._result.executions >= self.config.max_executions:
            return None
        text = bytes(data).decode("latin-1")
        run = run_subject(self.subject, text, trace_coverage=self.config.trace_coverage)
        self._result.executions += 1
        if run.status is ExitStatus.REJECTED:
            self._result.rejected += 1
        elif run.status is ExitStatus.HANG:
            self._result.hangs += 1
        return run

    def _consider(self, data: bytearray, run: RunResult) -> None:
        """Queue on new bitmap bits; keep every distinct valid input.

        AFL's *queue* only holds coverage-increasing entries, but every
        execution is a generated test; the paper's evaluation counts AFL's
        brute-force breadth ("trying out millions of different possible
        inputs", §5.2), so all distinct valid inputs join the output corpus
        up to :attr:`AFLConfig.max_valid_corpus`.
        """
        if run.valid and run.text not in self._seen_valid:
            if len(self._seen_valid) < self.config.max_valid_corpus:
                self._seen_valid.add(run.text)
                self._result.valid_inputs.append(run.text)
                self._valid_branches |= run.branches
        if not self._has_new_bits(bitmap_of(run.arcs)):
            return
        self._queue.append(QueueEntry(bytearray(data), valid=run.valid))

    # ------------------------------------------------------------------ #
    # Mutation stages
    # ------------------------------------------------------------------ #

    def _deterministic(self, entry: QueueEntry) -> bool:
        """Walking bitflips / byteflips / arith / interesting values.

        Returns False when the execution budget ran out mid-stage.
        """
        data = entry.data
        for position in range(len(data)):
            for bit in range(8):
                mutant = bytearray(data)
                mutant[position] ^= 1 << bit
                if not self._run_and_consider(mutant):
                    return False
        for position in range(len(data)):
            mutant = bytearray(data)
            mutant[position] ^= 0xFF
            if not self._run_and_consider(mutant):
                return False
        for position in range(len(data)):
            for delta in (1, 2, 4, 8, 16, -1, -2, -4, -8, -16):
                mutant = bytearray(data)
                mutant[position] = (mutant[position] + delta) & 0xFF
                if not self._run_and_consider(mutant):
                    return False
        for position in range(len(data)):
            for value in _INTERESTING_8:
                mutant = bytearray(data)
                mutant[position] = value
                if not self._run_and_consider(mutant):
                    return False
        return True

    def _havoc_once(self, data: bytearray) -> bytearray:
        rng = self._rng
        mutant = bytearray(data)
        for _ in range(rng.randint(1, self.config.havoc_stack)):
            choice = rng.randrange(6)
            if choice == 0 and mutant:
                position = rng.randrange(len(mutant))
                mutant[position] ^= 1 << rng.randrange(8)
            elif choice == 1 and mutant:
                position = rng.randrange(len(mutant))
                mutant[position] = rng.randrange(256)
            elif choice == 2 and mutant:
                start = rng.randrange(len(mutant))
                length = rng.randint(1, max(1, len(mutant) - start))
                del mutant[start : start + length]
            elif choice == 3 and len(mutant) < self.config.max_length:
                position = rng.randint(0, len(mutant))
                length = rng.randint(1, 4)
                insert = bytes(rng.randrange(256) for _ in range(length))
                mutant[position:position] = insert
            elif choice == 4 and mutant and len(mutant) < self.config.max_length:
                start = rng.randrange(len(mutant))
                length = rng.randint(1, max(1, min(8, len(mutant) - start)))
                block = mutant[start : start + length]
                position = rng.randint(0, len(mutant))
                mutant[position:position] = block
            elif choice == 5 and self._queue:
                other = self._rng.choice(self._queue).data
                if other and mutant:
                    cut_self = rng.randint(0, len(mutant))
                    cut_other = rng.randint(0, len(other))
                    mutant = bytearray(mutant[:cut_self] + other[cut_other:])
        del mutant[self.config.max_length :]
        return mutant

    def _run_and_consider(self, data: bytearray) -> bool:
        run = self._execute(data)
        if run is None:
            return False
        self._consider(data, run)
        return True

    def _extra_stage(self) -> bool:
        """Hook for derived fuzzers (e.g. Steelix's comparison-progress
        stage), run once per queue cycle.  Returns False when the budget
        ran out mid-stage."""
        return True

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(self) -> CampaignResult:
        started = time.monotonic()
        for seed in self.config.seeds:
            data = bytearray(seed.encode("latin-1"))
            run = self._execute(data)
            if run is None:
                break
            # The first run's bitmap is always new, so the seed enters the
            # queue through the ordinary path, as in AFL.
            self._consider(data, run)
        cursor = 0
        while self._result.executions < self.config.max_executions and self._queue:
            if not self._extra_stage():
                break
            entry = self._queue[cursor % len(self._queue)]
            cursor += 1
            if not entry.det_done and len(entry.data) <= self.config.det_max_length:
                alive = self._deterministic(entry)
                entry.det_done = True
                if not alive:
                    break
            for _ in range(self.config.havoc_iterations):
                mutant = self._havoc_once(entry.data)
                if not self._run_and_consider(mutant):
                    break
        self._result.valid_branches = frozenset(self._valid_branches)
        self._result.wall_time = time.monotonic() - started
        return self._result
