"""Shared result type and helpers for baseline fuzzers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

Arc = Tuple[str, int, int]


@dataclass
class CampaignResult:
    """What one baseline campaign produced.

    Attributes:
        valid_inputs: accepted inputs the tool chose to keep (its "output
            corpus"), in discovery order.  The paper determines validity of
            AFL's and KLEE's outputs by exit code; the baselines here check
            the exit status of the very runs that produced the inputs.
        executions: number of subject executions used.
        valid_branches: branches covered by the valid inputs.
        rejected: rejected executions.
        hangs: step-budget exhaustions.
    """

    valid_inputs: List[str] = field(default_factory=list)
    executions: int = 0
    valid_branches: FrozenSet[Arc] = frozenset()
    rejected: int = 0
    hangs: int = 0
    wall_time: float = 0.0
