"""Baseline test generators the paper compares against.

* :mod:`repro.baselines.rand` — Miller-style blind random fuzzing.
* :mod:`repro.baselines.afl` — an AFL-style coverage-guided mutational
  fuzzer (bitmap coverage with bucketed hit counts, deterministic stages,
  havoc/splice), seeded with a single space character as in §5.1.
* :mod:`repro.baselines.klee` — a KLEE-style constraint-based explorer:
  concolic runs collect per-character comparison constraints, a worklist
  flips one decision at a time breadth-first, and path explosion emerges on
  the larger subjects.

All baselines run against the same instrumented subjects as pFuzzer and
report the same :class:`~repro.baselines.common.CampaignResult`.
"""

from repro.baselines.afl import AFLFuzzer, AFLConfig
from repro.baselines.common import CampaignResult
from repro.baselines.driller import DrillerConfig, DrillerFuzzer
from repro.baselines.klee import KleeConfig, KleeExplorer
from repro.baselines.rand import RandomConfig, RandomFuzzer
from repro.baselines.steelix import SteelixConfig, SteelixFuzzer

__all__ = [
    "CampaignResult",
    "RandomFuzzer",
    "RandomConfig",
    "AFLFuzzer",
    "AFLConfig",
    "KleeExplorer",
    "KleeConfig",
    "SteelixFuzzer",
    "SteelixConfig",
    "DrillerFuzzer",
    "DrillerConfig",
]
