"""A Steelix-style fuzzer: AFL plus comparison-progress feedback (§6.2).

Steelix (Li et al., FSE 2017) augments coverage-guided mutational fuzzing
with *comparison progress*: when a multi-byte comparison (a magic-byte or
keyword check) partially matches, the fuzzer learns which offset to mutate
next and applies local exhaustive mutations there, instead of waiting for
havoc to guess the next byte.

The paper positions pFuzzer against Steelix (§6.2): "the mutations for
Steelix is primarily random, with local exhaustive mutations for solving
magic bytes applied only if magic bytes are found.  pFuzzer on the other
hand, uses comparisons as the main driver."  This implementation makes that
comparison measurable: it inherits the AFL engine and adds exactly one
thing — a worklist of inputs derived from partially-matching string
comparisons, advanced one byte per generation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Set

from repro.baselines.afl import AFLConfig, AFLFuzzer
from repro.runtime.harness import RunResult
from repro.taint.events import ComparisonKind


@dataclass
class SteelixConfig(AFLConfig):
    """AFL knobs plus the comparison-progress worklist bound."""

    #: Maximum pending magic-byte mutants (oldest dropped beyond this).
    magic_worklist_limit: int = 2_000


class SteelixFuzzer(AFLFuzzer):
    """AFL with Steelix's comparison-progress stage."""

    def __init__(self, subject, config: SteelixConfig = None) -> None:
        super().__init__(subject, config or SteelixConfig())
        self._magic_worklist: Deque[bytearray] = deque()
        self._magic_seen: Set[str] = set()

    # ------------------------------------------------------------------ #
    # Comparison-progress extraction
    # ------------------------------------------------------------------ #

    def _consider(self, data: bytearray, run: RunResult) -> None:
        super()._consider(data, run)
        self._harvest_progress(run)

    def _harvest_progress(self, run: RunResult) -> None:
        """Derive next-byte mutants from partially-matching comparisons.

        Unlike pFuzzer, Steelix only reacts to *multi-byte* comparisons
        whose prefix already matches (its magic-byte detector); single
        character comparisons stay invisible, and there is no search
        heuristic — derived mutants just join a FIFO worklist.
        """
        text = run.text
        for event in run.recorder.comparisons:
            if event.kind is not ComparisonKind.STRCMP or event.result:
                continue
            expected = event.other_value
            concrete = event.tainted_value
            progress = 0
            while (
                progress < len(expected)
                and progress < len(concrete)
                and concrete[progress] == expected[progress]
            ):
                progress += 1
            if progress == 0 or progress >= len(expected):
                continue  # no partial match -> not a magic-byte site
            position = event.index + progress
            mutant = text[:position] + expected[progress] + text[position + 1 :]
            if mutant == text or mutant in self._magic_seen:
                continue
            self._magic_seen.add(mutant)
            if len(self._magic_worklist) >= self.config.magic_worklist_limit:
                self._magic_worklist.popleft()
            self._magic_worklist.append(bytearray(mutant.encode("latin-1", "replace")))

    # ------------------------------------------------------------------ #
    # Stage wiring
    # ------------------------------------------------------------------ #

    def _extra_stage(self) -> bool:
        while self._magic_worklist:
            mutant = self._magic_worklist.popleft()
            if not self._run_and_consider(mutant):
                return False
        return True
