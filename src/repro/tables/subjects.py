"""Table-driven subjects for the §7.1 ablation.

:class:`TableExprSubject` accepts (a superset of) the §2 arithmetic
expression language, but through an LL(1) table instead of recursive
descent — the same input space with a completely different code shape, so
the effect of table-element coverage can be measured directly against the
recursive-descent ``expr`` subject.  :class:`TableJsonSubject` does the
same for a whitespace-free JSON core against the cJSON subject.
"""

from __future__ import annotations

import string

from repro.runtime.stream import InputStream
from repro.subjects.base import Subject
from repro.tables.engine import TableParser
from repro.tables.grammar import CFG, CharClass, build_table

DIGIT = CharClass("digit", "0123456789")

#: Characters allowed inside (table-)JSON strings: printable ASCII minus
#: the quote and backslash (escapes are out of scope for the LL(1) core).
STRING_CHAR = CharClass(
    "strchar",
    "".join(
        c for c in string.printable[:-5] if c not in '"\\'
    ),
)


def expr_cfg() -> CFG:
    """An LL(1) grammar for arithmetic expressions.

    ::

        E  -> T E'
        E' -> + T E' | - T E' | ε
        T  -> ( E ) | + T | - T | N
        N  -> digit N'
        N' -> digit N' | ε
    """
    grammar = CFG(name="expr", start="E")
    grammar.add("E", "T", "E'")
    grammar.add("E'", "+", "T", "E'")
    grammar.add("E'", "-", "T", "E'")
    grammar.add("E'")
    grammar.add("T", "(", "E", ")")
    grammar.add("T", "+", "T")
    grammar.add("T", "-", "T")
    grammar.add("T", "N")
    grammar.add("N", DIGIT, "N'")
    grammar.add("N'", DIGIT, "N'")
    grammar.add("N'")
    return grammar


def json_cfg() -> CFG:
    """An LL(1) grammar for a whitespace-free JSON core.

    Objects, arrays, escaped-free strings, integers and the three keyword
    literals — enough surface to compare table-driven parsing against the
    recursive-descent cJSON subject.  Keywords are spelled out character by
    character, so even the instrumented table parser has to discover
    ``true`` one table cell at a time (there is no ``strcmp`` to observe —
    an honest structural difference of table-driven parsing).
    """
    grammar = CFG(name="json", start="V")
    grammar.add("V", "O")
    grammar.add("V", "A")
    grammar.add("V", "S")
    grammar.add("V", "N")
    grammar.add("V", "t", "r", "u", "e")
    grammar.add("V", "f", "a", "l", "s", "e")
    grammar.add("V", "n", "u", "l", "l")
    grammar.add("O", "{", "M", "}")
    grammar.add("M")
    grammar.add("M", "P", "M'")
    grammar.add("M'")
    grammar.add("M'", ",", "P", "M'")
    grammar.add("P", "S", ":", "V")
    grammar.add("A", "[", "E", "]")
    grammar.add("E")
    grammar.add("E", "V", "E'")
    grammar.add("E'")
    grammar.add("E'", ",", "V", "E'")
    grammar.add("S", '"', "C", '"')
    grammar.add("C")
    grammar.add("C", STRING_CHAR, "C")
    grammar.add("N", "-", "D")
    grammar.add("N", "D")
    grammar.add("D", DIGIT, "D'")
    grammar.add("D'")
    grammar.add("D'", DIGIT, "D'")
    return grammar


class TableJsonSubject(Subject):
    """JSON core via a table-driven LL(1) parser (see :func:`json_cfg`)."""

    name = "table-json"
    description = "LL(1) table-driven JSON core"

    def __init__(self, instrumented: bool = False) -> None:
        self.instrumented = instrumented
        self._parser = TableParser(build_table(json_cfg()), instrumented=instrumented)

    def parse(self, stream: InputStream) -> int:
        return self._parser.parse(stream)


class TableExprSubject(Subject):
    """Arithmetic expressions via a table-driven LL(1) parser.

    ``instrumented=False`` reproduces the §7.1 limitation (the driver loop
    gives branch coverage no signal and nonterminal expansion records no
    comparisons); ``instrumented=True`` enables table-element coverage and
    row-scan comparison recording, the paper's proposed fix.
    """

    name = "table-expr"
    description = "LL(1) table-driven arithmetic expressions"

    def __init__(self, instrumented: bool = False) -> None:
        self.instrumented = instrumented
        self._parser = TableParser(build_table(expr_cfg()), instrumented=instrumented)

    def parse(self, stream: InputStream) -> int:
        return self._parser.parse(stream)
