"""Context-free grammars, FIRST/FOLLOW sets, and LL(1) table construction.

Terminals are single characters or named character classes
(:class:`CharClass`, e.g. the digits); nonterminals are strings.  The table
builder is the textbook algorithm: FIRST and FOLLOW by fixpoint, then one
table cell per (nonterminal, lookahead terminal), with conflicts reported
as :class:`LL1Conflict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Set, Tuple, Union

#: The empty production marker.
EPSILON = "ε"

#: End-of-input terminal used in FOLLOW sets and the table.
END = "$"


@dataclass(frozen=True)
class CharClass:
    """A named set of terminal characters treated as one table column.

    LL(1) tables over raw characters would need one column per character;
    classes such as "digit" keep the table small while the parser still
    compares concrete characters (recorded) at runtime.
    """

    name: str
    chars: str

    def __contains__(self, char: str) -> bool:
        return char in self.chars


Terminal = Union[str, CharClass]
Symbol = Union[str, CharClass]  # nonterminals are plain strings not in the grammar's terminal set


@dataclass(frozen=True)
class Production:
    """One grammar rule ``head -> body`` (empty body = epsilon)."""

    head: str
    body: Tuple[Symbol, ...]

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head} -> {EPSILON}"
        rendered = " ".join(
            symbol.name if isinstance(symbol, CharClass) else symbol
            for symbol in self.body
        )
        return f"{self.head} -> {rendered}"


class LL1Conflict(ValueError):
    """The grammar is not LL(1): two productions claim one table cell."""


@dataclass
class CFG:
    """A context-free grammar with single-character terminals.

    Attributes:
        name: used to namespace table-cell coverage keys.
        start: start nonterminal.
        productions: the rules, in declaration order.
    """

    name: str
    start: str
    productions: List[Production] = field(default_factory=list)

    def add(self, head: str, *body: Symbol) -> "CFG":
        """Append a production (chainable)."""
        self.productions.append(Production(head, tuple(body)))
        return self

    @property
    def nonterminals(self) -> Set[str]:
        return {production.head for production in self.productions}

    def productions_of(self, head: str) -> List[Production]:
        return [p for p in self.productions if p.head == head]

    def is_nonterminal(self, symbol: Symbol) -> bool:
        return isinstance(symbol, str) and symbol in self.nonterminals

    # ------------------------------------------------------------------ #
    # FIRST / FOLLOW
    # ------------------------------------------------------------------ #

    def first_sets(self) -> Dict[str, Set[Terminal]]:
        """FIRST for every nonterminal; ``EPSILON`` marks nullability."""
        first: Dict[str, Set[Terminal]] = {n: set() for n in self.nonterminals}
        changed = True
        while changed:
            changed = False
            for production in self.productions:
                before = len(first[production.head])
                first[production.head] |= self._first_of_body(production.body, first)
                changed |= len(first[production.head]) != before
        return first

    def _first_of_body(
        self, body: Sequence[Symbol], first: Mapping[str, Set[Terminal]]
    ) -> Set[Terminal]:
        out: Set[Terminal] = set()
        for symbol in body:
            if not self.is_nonterminal(symbol):
                out.add(symbol)  # terminal (char or CharClass)
                return out
            out |= first[symbol] - {EPSILON}
            if EPSILON not in first[symbol]:
                return out
        out.add(EPSILON)
        return out

    def follow_sets(self) -> Dict[str, Set[Terminal]]:
        """FOLLOW for every nonterminal; ``END`` marks end of input."""
        first = self.first_sets()
        follow: Dict[str, Set[Terminal]] = {n: set() for n in self.nonterminals}
        follow[self.start].add(END)
        changed = True
        while changed:
            changed = False
            for production in self.productions:
                trailer: Set[Terminal] = set(follow[production.head])
                for symbol in reversed(production.body):
                    if self.is_nonterminal(symbol):
                        before = len(follow[symbol])
                        follow[symbol] |= trailer
                        changed |= len(follow[symbol]) != before
                        if EPSILON in first[symbol]:
                            trailer = trailer | (first[symbol] - {EPSILON})
                        else:
                            trailer = first[symbol] - {EPSILON}
                    else:
                        trailer = {symbol}
        return follow


@dataclass
class ParseTable:
    """An LL(1) parse table: (nonterminal, terminal) -> production.

    Terminal columns are concrete characters, character classes, or ``END``.
    """

    grammar: CFG
    cells: Dict[Tuple[str, Terminal], Production]

    def lookup(self, nonterminal: str, char: str, at_end: bool) -> Union[Production, None]:
        """The production to expand ``nonterminal`` on lookahead ``char``.

        Checks concrete-character columns first, then character classes,
        then the ``END`` column when the input is exhausted.
        """
        if not at_end:
            direct = self.cells.get((nonterminal, char))
            if direct is not None:
                return direct
            for (head, terminal), production in self.cells.items():
                if head == nonterminal and isinstance(terminal, CharClass) and char in terminal:
                    return production
            return None
        return self.cells.get((nonterminal, END))

    def expected_terminals(self, nonterminal: str) -> List[Terminal]:
        """Every terminal column with an entry for ``nonterminal``."""
        return [
            terminal
            for (head, terminal) in self.cells
            if head == nonterminal and terminal != END
        ]


def build_table(grammar: CFG) -> ParseTable:
    """The textbook LL(1) construction.

    Raises:
        LL1Conflict: two productions land in the same cell.
    """
    first = grammar.first_sets()
    follow = grammar.follow_sets()
    cells: Dict[Tuple[str, Terminal], Production] = {}

    def claim(head: str, terminal: Terminal, production: Production) -> None:
        key = (head, terminal)
        existing = cells.get(key)
        if existing is not None and existing != production:
            raise LL1Conflict(
                f"cell ({head}, {terminal}) claimed by both "
                f"'{existing}' and '{production}'"
            )
        cells[key] = production

    for production in grammar.productions:
        body_first = grammar._first_of_body(production.body, first)
        for terminal in body_first - {EPSILON}:
            claim(production.head, terminal, production)
        if EPSILON in body_first:
            for terminal in follow[production.head]:
                claim(production.head, terminal, production)
    return ParseTable(grammar, cells)
