"""Sentence generation from the table package's CFGs.

Random derivation with a min-cost closing discipline (the same idea as the
miner's generator, §7.4): below the depth budget alternatives are chosen
uniformly; beyond it, the production with the cheapest finite expansion
wins, guaranteeing termination on any grammar whose nonterminals are all
productive.  Used to property-test the LL(1) engine: everything the grammar
derives, the table parser must accept.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.tables.grammar import CFG, CharClass, Production


class SentenceGenerator:
    """Random sentences of a CFG."""

    def __init__(self, grammar: CFG, seed: Optional[int] = None, max_depth: int = 10) -> None:
        self.grammar = grammar
        self.max_depth = max_depth
        self._rng = random.Random(seed)
        self._costs = self._min_costs()

    def _min_costs(self) -> Dict[str, float]:
        infinity = float("inf")
        costs: Dict[str, float] = {name: infinity for name in self.grammar.nonterminals}
        changed = True
        while changed:
            changed = False
            for production in self.grammar.productions:
                cost = self._production_cost(production, costs)
                if cost < costs[production.head]:
                    costs[production.head] = cost
                    changed = True
        return costs

    def _production_cost(self, production: Production, costs: Dict[str, float]) -> float:
        cost = 1.0
        for symbol in production.body:
            if self.grammar.is_nonterminal(symbol):
                cost = max(cost, 1.0 + costs.get(symbol, float("inf")))
        return cost

    def generate(self, start: Optional[str] = None) -> str:
        """One random sentence from ``start`` (default: grammar start)."""
        pieces: List[str] = []
        self._expand(start or self.grammar.start, 0, pieces)
        return "".join(pieces)

    def generate_many(self, count: int) -> List[str]:
        return [self.generate() for _ in range(count)]

    def _expand(self, name: str, depth: int, pieces: List[str]) -> None:
        alternatives = self.grammar.productions_of(name)
        if not alternatives:
            return
        if depth < self.max_depth:
            production = self._rng.choice(alternatives)
        else:
            cheapest = min(
                self._production_cost(p, self._costs) for p in alternatives
            )
            closing = [
                p
                for p in alternatives
                if self._production_cost(p, self._costs) <= cheapest
            ]
            production = self._rng.choice(closing)
        for symbol in production.body:
            if self.grammar.is_nonterminal(symbol):
                self._expand(symbol, depth + 1, pieces)
            elif isinstance(symbol, CharClass):
                pieces.append(self._rng.choice(symbol.chars))
            else:
                pieces.append(symbol)
