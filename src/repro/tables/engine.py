"""The table-driven LL(1) parsing engine.

A classic explicit-stack predictive parser: push the start symbol, then
repeatedly (a) match terminals against the lookahead or (b) replace the top
nonterminal using the parse table.  The engine demonstrates the paper's
§7.1 observation and its proposed fix side by side:

* ``instrumented=False`` (the limitation): the table lookup is a pure data
  access.  No character comparisons are recorded for nonterminal expansion,
  and the driver loop executes the same few lines of *code* regardless of
  the input — branch coverage and comparison tracking are both blind.
* ``instrumented=True`` (the fix): each table consultation (i) reports the
  consulted cell as a coverage item ("coverage of table elements") and
  (ii) scans the nonterminal's row with recorded comparisons, so the
  lookahead character is compared against every terminal the row accepts —
  exactly the signal a recursive-descent parser's if-chains provide for
  free.
"""

from __future__ import annotations

from typing import List, Union

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.taint.recorder import current_recorder
from repro.taint.tchar import TChar
from repro.tables.grammar import CharClass, END, ParseTable, Terminal


class TableParser:
    """Predictive parser driven by an LL(1) table."""

    #: Stack-size safety bound (the table analogue of a recursion guard).
    max_stack = 300

    def __init__(self, table: ParseTable, instrumented: bool = False) -> None:
        self.table = table
        self.grammar = table.grammar
        self.instrumented = instrumented

    # ------------------------------------------------------------------ #
    # Instrumentation hooks (§7.1)
    # ------------------------------------------------------------------ #

    def _record_cell(self, nonterminal: str, terminal: Union[Terminal, None]) -> None:
        recorder = current_recorder()
        if recorder is None or not self.instrumented:
            return
        column = (
            terminal.name
            if isinstance(terminal, CharClass)
            else (terminal if terminal is not None else "<miss>")
        )
        recorder.record_branch((f"table:{self.grammar.name}", nonterminal, column))

    def _scan_row(self, nonterminal: str, lookahead: TChar) -> None:
        """Recorded comparisons of the lookahead against the row's terminals."""
        if not self.instrumented:
            return
        for terminal in self.table.expected_terminals(nonterminal):
            if isinstance(terminal, CharClass):
                lookahead.in_set(terminal.chars)
            else:
                lookahead == terminal  # noqa: B015 - comparison IS the effect

    # ------------------------------------------------------------------ #
    # Parsing
    # ------------------------------------------------------------------ #

    def parse(self, stream: InputStream) -> int:
        """Parse one input to exhaustion; returns the number of reductions."""
        stack: List[object] = [self.grammar.start]
        reductions = 0
        while stack:
            if len(stack) > self.max_stack:
                raise ParseError(f"parse stack overflow at {stream.pos}", stream.pos)
            top = stack.pop()
            lookahead = stream.peek()
            if self.grammar.is_nonterminal(top):
                reductions += self._expand(top, lookahead, stack)
                continue
            self._match_terminal(top, lookahead, stream)
        trailing = stream.peek()
        if not trailing.is_eof:
            raise ParseError(f"trailing input at {trailing.index}", trailing.index)
        return reductions

    def _expand(self, nonterminal: str, lookahead: TChar, stack: List[object]) -> int:
        self._scan_row(nonterminal, lookahead)
        production = self.table.lookup(
            nonterminal,
            "" if lookahead.is_eof else lookahead.value,
            at_end=lookahead.is_eof,
        )
        if production is None:
            self._record_cell(nonterminal, None)
            raise ParseError(
                f"no table entry for ({nonterminal}) at {lookahead.index}",
                lookahead.index,
            )
        matched_column: Union[Terminal, None]
        if lookahead.is_eof:
            matched_column = END
        else:
            matched_column = self._column_of(nonterminal, lookahead.value)
        self._record_cell(nonterminal, matched_column)
        for symbol in reversed(production.body):
            stack.append(symbol)
        return 1

    def _column_of(self, nonterminal: str, char: str) -> Union[Terminal, None]:
        if (nonterminal, char) in self.table.cells:
            return char
        for (head, terminal) in self.table.cells:
            if head == nonterminal and isinstance(terminal, CharClass) and char in terminal:
                return terminal
        return END if (nonterminal, END) in self.table.cells else None

    def _match_terminal(
        self, expected: Terminal, lookahead: TChar, stream: InputStream
    ) -> None:
        if isinstance(expected, CharClass):
            # Class matches always go through a recorded membership test:
            # even the plain engine compares concrete characters here, the
            # way a real scanner does.  The EOF sentinel compares (and
            # records) like C comparing the terminating byte.
            if not lookahead.in_set(expected.chars):
                raise ParseError(
                    f"expected {expected.name} at {lookahead.index}",
                    lookahead.index,
                )
            stream.next_char()
            return
        matched = lookahead == expected
        if not matched:
            raise ParseError(
                f"expected {expected!r} at {lookahead.index}", lookahead.index
            )
        stream.next_char()
