"""Table-driven parsers (the paper's §7.1 future work, implemented).

The paper's coverage metric assumes the parser's *code* encodes its state;
a table-driven parser instead "defines its state based on the table it
reads", so branch coverage carries almost no signal.  The paper suggests the
fix — "instead of code coverage, one could implement coverage of table
elements" — and this package builds the whole pipeline:

* :mod:`repro.tables.grammar` — context-free grammars with FIRST/FOLLOW
  computation and LL(1) parse-table construction (conflicts detected);
* :mod:`repro.tables.engine` — a stack-machine LL(1) parser over the tainted
  input stream with two instrumentation modes: ``plain`` (the §7.1
  limitation: table lookups are data accesses, invisible to the fuzzer)
  and ``instrumented`` (table-element coverage + per-row comparison
  recording, the proposed fix);
* :mod:`repro.tables.subjects` — table-driven subjects over the same
  languages as the recursive-descent ones, for direct ablation.
"""

from repro.tables.engine import TableParser
from repro.tables.grammar import CFG, EPSILON, LL1Conflict, ParseTable, build_table
from repro.tables.subjects import (
    TableExprSubject,
    TableJsonSubject,
    expr_cfg,
    json_cfg,
)

__all__ = [
    "CFG",
    "EPSILON",
    "ParseTable",
    "LL1Conflict",
    "build_table",
    "TableParser",
    "TableExprSubject",
    "TableJsonSubject",
    "expr_cfg",
    "json_cfg",
]
