"""Parallel campaign executor: the evaluation grid as a fault-isolated pool.

The paper's evaluation grid (3 tools x 5 subjects x N repetitions) is
embarrassingly parallel — every run is independent, "48 CPU-hours per
subject/tool, 3 repetitions, best run".  :func:`run_grid` fans a list of
:class:`RunSpec` cells out across worker processes and guarantees:

* **fault isolation** — a worker that crashes or stalls marks only its own
  cell ``FAILED``/``TIMEOUT``; the rest of the grid completes;
* **per-run wall-clock timeouts** — enforced in-worker by
  :func:`repro.runtime.limits.time_limit`, with a parent-side watchdog as
  the backstop for hard hangs (workers past their deadline are killed and
  replaced);
* **bounded retry with backoff** — crashed runs are retried up to
  ``retries`` times with exponential backoff (timeouts are not retried
  unless checkpointing is on: a run that exhausted its budget once will
  again — but a *resumed* run continues from its snapshot instead of
  restarting, so with ``checkpoint_dir`` set, timeouts retry up to
  ``resume_retries`` times);
* **durability** — with ``checkpoint_dir`` set, every pFuzzer cell
  snapshots into its own ``<tool>-<subject>-s<seed>`` subdirectory and
  every attempt resumes from the newest valid snapshot, so a crashed or
  killed cell loses at most one checkpoint interval of work and the
  resumed result is byte-identical to an uninterrupted run;
* **deterministic ordering** — results come back in spec order regardless
  of completion order, so :func:`parallel_best_of` and the table/figure
  pipelines are byte-identical to the sequential path for the same seeds.

Observability rides along: every resolved cell yields a
:class:`repro.eval.metrics.CampaignMetrics` record (written as JSONL when
``metrics_path`` is given) and an optional ``progress`` callback streams
records in completion order.  With ``corpus_path`` set, the parent appends
every successful cell's valid inputs to that
:class:`~repro.eval.corpus_store.CorpusStore` in spec order (parent-side,
after the grid resolves, so concurrent workers never interleave writes).

Fault injection for the test suite goes through the ``_test_fail_on``
hook: a mapping from ``(tool, subject, seed)`` to one of ``"crash"``
(always die), ``"flaky"`` (die on the first attempt only), ``"hang"``
(stall until the in-worker alarm fires), ``"hang-hard"`` (stall with the
alarm blocked, so only the parent watchdog can recover) or
``"kill-at-N"`` (SIGKILL the worker mid-campaign once the fuzzer reaches
``N * (attempt + 1)`` executions; from the third attempt on the run is
clean — exercising multiple resumes of one cell).
"""

from __future__ import annotations

import heapq
import multiprocessing
import multiprocessing.connection
import os
import signal
import time
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.eval.campaign import ToolOutput, run_campaign, validate_campaign
from repro.eval.metrics import CampaignMetrics, write_jsonl
from repro.runtime.limits import RunTimeout, peak_rss_bytes, time_limit

#: Exit code used by injected crashes, distinguishable from real signals.
_CRASH_EXIT_CODE = 23

#: Key identifying a run for fault injection: (tool, subject, seed).
FaultKey = Tuple[str, str, int]


class RunStatus(Enum):
    """Terminal state of one grid cell."""

    OK = "ok"
    FAILED = "failed"
    TIMEOUT = "timeout"


@dataclass(frozen=True)
class RunSpec:
    """One cell of the evaluation grid."""

    tool: str
    subject: str
    budget: int
    seed: int = 0

    def fault_key(self) -> FaultKey:
        return (self.tool, self.subject, self.seed)


@dataclass
class RunRecord:
    """Resolved outcome of one grid cell.

    ``output`` is ``None`` exactly when ``status`` is not ``OK``; the
    ``metrics`` record is always present so failed cells stay auditable.
    """

    spec: RunSpec
    status: RunStatus
    output: Optional[ToolOutput]
    metrics: CampaignMetrics
    attempts: int = 1
    error: Optional[str] = None


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


def _inject_fault(mode: str, attempt: int, timeout: Optional[float]) -> None:
    """Simulate a worker failure (test hook; see module docstring)."""
    if mode == "crash" or (mode == "flaky" and attempt == 0):
        os._exit(_CRASH_EXIT_CODE)
    if mode.startswith("kill-at-"):
        import repro.core.fuzzer as fuzzer_module

        if attempt < 2:
            # The fuzzer SIGKILLs its own process at the threshold — no
            # cleanup, no atexit, exactly like the OOM killer.  Scaling the
            # threshold by attempt lets a resumed run progress past the
            # previous kill point before dying again.
            fuzzer_module._TEST_KILL_AT = int(mode[len("kill-at-"):]) * (
                attempt + 1
            )
        return
    if mode in ("hang", "hang-hard"):
        if mode == "hang-hard" and hasattr(signal, "pthread_sigmask"):
            signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
        stall = min(300.0, (timeout or 1.0) * 50)
        deadline = time.monotonic() + stall
        while time.monotonic() < deadline:
            time.sleep(0.05)


def _cell_checkpoint_dir(root: str, tool: str, subject: str, seed: int) -> str:
    """Per-cell snapshot directory: cells never share generations."""
    return os.path.join(root, f"{tool}-{subject}-s{seed}")


def _worker_main(
    worker_id: int,
    inbox,
    results,
    timeout: Optional[float],
    fail_on: Optional[Dict[FaultKey, str]],
    durability: Optional[Dict[str, object]],
    trace_dir: Optional[str] = None,
    engine: Optional[Dict[str, object]] = None,
) -> None:
    """Worker loop: take (task_id, spec, attempt) tasks until sentinel.

    ``inbox``/``results`` are :class:`multiprocessing.connection.Connection`
    ends of per-worker pipes, not shared queues: sends complete synchronously
    in this thread, so a worker dying between tasks (crash injection, a real
    segfault, the parent watchdog's SIGTERM) can never orphan a lock or leave
    a half-written frame that would wedge its siblings.  The parent sees a
    dead worker's pipe as EOF and re-dispatches whatever it was assigned.

    The EOF only fires if every copy of the inbox write-end is closed, and
    siblings forked later inherit this worker's copy — so a SIGKILLed
    parent would leave idle workers sleeping in ``recv`` forever.  Poll
    with a timeout and exit once re-parented instead.
    """
    parent = os.getppid()
    while True:
        try:
            while not inbox.poll(1.0):
                if os.getppid() != parent:
                    return
            item = inbox.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        task_id, (tool, subject, budget, seed), attempt = item
        started = time.monotonic()
        campaign_options: Dict[str, object] = {}
        if durability is not None:
            campaign_options["checkpoint_dir"] = _cell_checkpoint_dir(
                str(durability["root"]), tool, subject, seed
            )
            # Every attempt resumes: the first finds no snapshot and starts
            # fresh; retries continue from where the previous attempt died.
            campaign_options["resume"] = True
            if durability.get("every") is not None:
                campaign_options["checkpoint_every"] = durability["every"]
        if trace_dir is not None:
            # Append-mode NDJSON: a retried attempt continues the same file,
            # with its "resumed" event marking the seam.
            campaign_options["trace_path"] = os.path.join(
                trace_dir, f"{tool}-{subject}-s{seed}.ndjson"
            )
        if engine:
            # Execution-engine knobs (executor/batch_size/executor_workers)
            # are environmental, like trace_path: they never change a cell's
            # result, only how fast it runs.
            campaign_options.update(engine)
        try:
            with time_limit(timeout):
                import repro.core.fuzzer as fuzzer_module

                fuzzer_module._TEST_KILL_AT = None
                mode = (fail_on or {}).get((tool, subject, seed))
                if mode:
                    _inject_fault(mode, attempt, timeout)
                output = run_campaign(
                    tool, subject, budget, seed=seed, **campaign_options
                )
            results.send(
                (
                    "ok",
                    worker_id,
                    task_id,
                    attempt,
                    output,
                    peak_rss_bytes(),
                    time.monotonic() - started,
                )
            )
        except RunTimeout:
            results.send(
                ("timeout", worker_id, task_id, attempt, time.monotonic() - started)
            )
        except BaseException as exc:  # noqa: BLE001 - isolate, report, survive
            results.send(
                (
                    "error",
                    worker_id,
                    task_id,
                    attempt,
                    f"{type(exc).__name__}: {exc}",
                    time.monotonic() - started,
                )
            )


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #


@dataclass
class _Worker:
    worker_id: int
    process: multiprocessing.process.BaseProcess
    task_conn: multiprocessing.connection.Connection  # parent -> worker
    result_conn: multiprocessing.connection.Connection  # worker -> parent


class WorkerPool:
    """Bounded pool of pipe-connected worker processes.

    The process/pipe mechanics shared by the evaluation grid
    (:class:`_GridExecutor`) and the campaign service's time-slicing
    scheduler (:mod:`repro.service.scheduler`): spawn workers running
    ``target(worker_id, inbox, results, *extra_args)``, send them tasks,
    drain their result messages, and detect/remove dead ones.  Task
    semantics — what a task is, retry policy, deadlines — stay with the
    caller; the pool only guarantees that a worker dying at any point
    surfaces as EOF/exit-code, never as a wedged sibling (per-worker pipes,
    no shared queues or locks).
    """

    def __init__(self, target, extra_args: Tuple = ()) -> None:
        self._target = target
        self._extra_args = tuple(extra_args)
        # fork keeps the child's hash seed identical to the parent's, which
        # the sequential-equivalence guarantee relies on (path signatures
        # hash branch sets); fall back to the platform default elsewhere.
        methods = multiprocessing.get_all_start_methods()
        self.ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._workers: Dict[int, _Worker] = {}
        self._next_worker_id = 0

    def __len__(self) -> int:
        return len(self._workers)

    def worker_ids(self) -> List[int]:
        return list(self._workers)

    def spawn(self) -> int:
        """Start one worker; returns its pool-unique id."""
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_recv, task_send = self.ctx.Pipe(duplex=False)
        result_recv, result_send = self.ctx.Pipe(duplex=False)
        # daemon=False: workers host PooledExecutor children of their own
        # (daemonic processes may not have children).  Orphan cleanup does
        # not rely on the flag anyway — workers poll getppid and exit once
        # re-parented, and shutdown() sends sentinels then terminates.
        process = self.ctx.Process(
            target=self._target,
            args=(worker_id, task_recv, result_send) + self._extra_args,
            daemon=False,
        )
        process.start()
        # Close the child's ends immediately: the parent must not hold a
        # duplicate of result_send, or a dead worker's pipe would never
        # reach EOF (and later forks must not inherit this worker's ends).
        task_recv.close()
        result_send.close()
        self._workers[worker_id] = _Worker(
            worker_id, process, task_send, result_recv
        )
        return worker_id

    def send(self, worker_id: int, task) -> bool:
        """Send one task; False when the worker died before delivery."""
        try:
            self._workers[worker_id].task_conn.send(task)
            return True
        except (OSError, ValueError):
            return False

    def drain(self, timeout: float = 0.05) -> List[Tuple]:
        """Collect every result message currently readable.

        A worker that died mid-send leaves EOF (or a truncated frame) on
        its pipe; that is silently skipped here — :meth:`reap` is where the
        death itself is observed.
        """
        conns = [worker.result_conn for worker in self._workers.values()]
        if not conns:  # pragma: no cover - only between respawns
            time.sleep(min(timeout, 0.01))
            return []
        messages = []
        for conn in multiprocessing.connection.wait(conns, timeout=timeout):
            try:
                messages.append(conn.recv())
            except (EOFError, OSError):
                continue
        return messages

    def reap(self) -> List[Tuple[int, Optional[int]]]:
        """Remove dead workers; returns their ``(worker_id, exitcode)``."""
        dead = []
        for worker_id in list(self._workers):
            worker = self._workers[worker_id]
            if worker.process.is_alive():
                continue
            dead.append((worker_id, worker.process.exitcode))
            self.remove(worker_id, terminate=False)
        return dead

    def remove(self, worker_id: int, terminate: bool) -> None:
        worker = self._workers.pop(worker_id)
        if terminate and worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=2.0)
        if worker.process.is_alive():  # pragma: no cover - stubborn child
            worker.process.kill()
            worker.process.join(timeout=2.0)
        for conn in (worker.task_conn, worker.result_conn):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def shutdown(self) -> None:
        """Send every worker the exit sentinel, then terminate stragglers."""
        for worker_id in self.worker_ids():
            self.send(worker_id, None)
        for worker_id in self.worker_ids():
            self.remove(worker_id, terminate=True)


class _GridExecutor:
    """One run_grid invocation: pool, dispatch, watchdog, retry, collect."""

    def __init__(
        self,
        specs: Sequence[RunSpec],
        jobs: int,
        timeout: Optional[float],
        retries: int,
        backoff: float,
        watchdog_grace: float,
        progress: Optional[Callable[[RunRecord], None]],
        fail_on: Optional[Dict[FaultKey, str]],
        durability: Optional[Dict[str, object]] = None,
        resume_retries: int = 0,
        trace_dir: Optional[str] = None,
        engine: Optional[Dict[str, object]] = None,
    ) -> None:
        self.specs = list(specs)
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.watchdog_grace = watchdog_grace
        self.progress = progress
        self.fail_on = dict(fail_on) if fail_on else None
        self.durability = durability
        self.resume_retries = resume_retries
        self.pool = WorkerPool(
            _worker_main, (timeout, self.fail_on, durability, trace_dir, engine)
        )
        self.records: List[Optional[RunRecord]] = [None] * len(self.specs)
        self.pending = deque(
            (task_id, 0) for task_id in range(len(self.specs))
        )
        self.retry_heap: List[Tuple[float, int, int]] = []
        self.assignments: Dict[int, Tuple[int, int, Optional[float]]] = {}
        self.unresolved = len(self.specs)

    # -- task resolution ------------------------------------------------ #

    def _finish(self, task_id: int, record: RunRecord) -> None:
        if self.records[task_id] is not None:  # pragma: no cover - raced twice
            return
        self.records[task_id] = record
        self.unresolved -= 1
        if self.progress is not None:
            self.progress(record)

    def _failure_resumes(self, attempt: int) -> int:
        """Checkpoint restores a failed cell performed before giving up.

        With durability on, every attempt after the first resumed from the
        previous attempt's snapshot, so the 0-based ``attempt`` index *is*
        the resume count.  Without durability nothing ever resumed.
        """
        return attempt if self.durability is not None else 0

    def _retry_or_fail(
        self, task_id: int, attempt: int, error: str, wall: float
    ) -> None:
        """Crash/exception path: bounded retry with exponential backoff."""
        if self.records[task_id] is not None:  # pragma: no cover - raced twice
            return
        spec = self.specs[task_id]
        if attempt < self.retries:
            delay = self.backoff * (2**attempt)
            heapq.heappush(
                self.retry_heap, (time.monotonic() + delay, task_id, attempt + 1)
            )
            return
        metrics = CampaignMetrics.for_failure(
            spec.tool,
            spec.subject,
            spec.seed,
            spec.budget,
            status=RunStatus.FAILED.value,
            attempts=attempt + 1,
            wall_time=wall,
            resumes=self._failure_resumes(attempt),
        )
        self._finish(
            task_id,
            RunRecord(spec, RunStatus.FAILED, None, metrics, attempt + 1, error),
        )

    def _timeout_task(self, task_id: int, attempt: int, wall: float) -> None:
        """Resolve (or, with checkpointing, retry) a timed-out cell.

        Without checkpointing a timeout is deterministic — re-running would
        exhaust the same budget again — so it is never retried.  With
        ``checkpoint_dir`` set, the retry *resumes* from the last snapshot
        instead of restarting, so each attempt makes fresh progress; such
        timeouts retry up to ``resume_retries`` times.
        """
        if self.records[task_id] is not None:  # pragma: no cover - raced twice
            return
        if self.durability is not None and attempt < self.resume_retries:
            delay = self.backoff * (2**attempt)
            heapq.heappush(
                self.retry_heap, (time.monotonic() + delay, task_id, attempt + 1)
            )
            return
        spec = self.specs[task_id]
        metrics = CampaignMetrics.for_failure(
            spec.tool,
            spec.subject,
            spec.seed,
            spec.budget,
            status=RunStatus.TIMEOUT.value,
            attempts=attempt + 1,
            wall_time=wall,
            resumes=self._failure_resumes(attempt),
        )
        self._finish(
            task_id,
            RunRecord(
                spec,
                RunStatus.TIMEOUT,
                None,
                metrics,
                attempt + 1,
                f"exceeded {self.timeout:g}s wall-clock limit"
                if self.timeout
                else "timed out",
            ),
        )

    # -- event loop ----------------------------------------------------- #

    def _dispatch_ready(self) -> None:
        now = time.monotonic()
        while self.retry_heap and self.retry_heap[0][0] <= now:
            _, task_id, attempt = heapq.heappop(self.retry_heap)
            self.pending.append((task_id, attempt))
        idle = [
            worker_id
            for worker_id in self.pool.worker_ids()
            if worker_id not in self.assignments
        ]
        for worker_id in idle:
            if not self.pending:
                break
            task_id, attempt = self.pending.popleft()
            spec = self.specs[task_id]
            deadline = (
                now + self.timeout + self.watchdog_grace
                if self.timeout is not None
                else None
            )
            self.assignments[worker_id] = (task_id, attempt, deadline)
            # A worker that died between spawn and dispatch keeps its
            # assignment in place — _reap_dead_workers re-queues it.
            self.pool.send(
                worker_id,
                (
                    task_id,
                    (spec.tool, spec.subject, spec.budget, spec.seed),
                    attempt,
                ),
            )

    def _handle_message(self, message: Tuple) -> None:
        kind, worker_id = message[0], message[1]
        self.assignments.pop(worker_id, None)
        if kind == "ok":
            _, _, task_id, attempt, output, rss, wall = message
            spec = self.specs[task_id]
            metrics = CampaignMetrics.from_output(
                output,
                spec.budget,
                status=RunStatus.OK.value,
                attempts=attempt + 1,
                peak_rss_bytes=rss,
            )
            self._finish(
                task_id, RunRecord(spec, RunStatus.OK, output, metrics, attempt + 1)
            )
        elif kind == "timeout":
            _, _, task_id, attempt, wall = message
            self._timeout_task(task_id, attempt, wall)
        else:  # "error"
            _, _, task_id, attempt, error, wall = message
            self._retry_or_fail(task_id, attempt, error, wall)

    def _drain_results(self) -> None:
        for message in self.pool.drain(timeout=0.05):
            self._handle_message(message)

    def _reap_dead_workers(self) -> None:
        for worker_id, exit_code in self.pool.reap():
            assignment = self.assignments.pop(worker_id, None)
            if assignment is not None:
                task_id, attempt, _ = assignment
                self._retry_or_fail(
                    task_id,
                    attempt,
                    f"worker died (exit code {exit_code})",
                    0.0,
                )

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        for worker_id in self.pool.worker_ids():
            assignment = self.assignments.get(worker_id)
            if assignment is None:
                continue
            task_id, attempt, deadline = assignment
            if deadline is None or now < deadline:
                continue
            self.pool.remove(worker_id, terminate=True)
            self.assignments.pop(worker_id, None)
            self._timeout_task(task_id, attempt, self.timeout or 0.0)

    def _ensure_capacity(self) -> None:
        wanted = min(self.jobs, self.unresolved)
        while len(self.pool) < wanted:
            self.pool.spawn()

    def run(self) -> List[RunRecord]:
        try:
            self._ensure_capacity()
            while self.unresolved:
                self._dispatch_ready()
                self._drain_results()
                self._reap_dead_workers()
                self._enforce_deadlines()
                self._ensure_capacity()
        finally:
            self.pool.shutdown()
        return [record for record in self.records if record is not None]


def run_grid(
    specs: Sequence[RunSpec],
    *,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.05,
    watchdog_grace: float = 5.0,
    metrics_path: Optional[Union[str, "os.PathLike[str]"]] = None,
    progress: Optional[Callable[[RunRecord], None]] = None,
    checkpoint_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
    checkpoint_every: Optional[int] = None,
    resume_retries: int = 2,
    corpus_path: Optional[Union[str, "os.PathLike[str]"]] = None,
    trace_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
    executor: Optional[str] = None,
    batch_size: Optional[int] = None,
    cull_every: Optional[int] = None,
    hybrid: bool = False,
    mine_after: Optional[int] = None,
    gen_batch: Optional[int] = None,
    gen_depth: Optional[int] = None,
    hunt_crashes: bool = False,
    subject_module: Optional[str] = None,
    _test_fail_on: Optional[Mapping[FaultKey, str]] = None,
) -> List[RunRecord]:
    """Execute every spec across a worker pool; records come back in order.

    Args:
        specs: grid cells to run; results are returned in this order.
        jobs: worker processes (default ``os.cpu_count()``).
        timeout: per-run wall-clock limit in seconds (``None`` = unlimited).
        retries: extra attempts for crashed runs (timeouts never retry
            unless ``checkpoint_dir`` makes them resumable).
        backoff: base delay before a retry; doubles per attempt.
        watchdog_grace: extra seconds past ``timeout`` before the parent
            kills a hung worker (the in-worker alarm normally fires first).
        metrics_path: write one metrics JSONL line per cell, in spec order.
        progress: callback invoked with each :class:`RunRecord` as it
            resolves, in completion order (the live results stream).
        checkpoint_dir: root directory for durable snapshots; each cell
            snapshots into ``<tool>-<subject>-s<seed>/`` below it and every
            attempt resumes from the newest valid snapshot there (pFuzzer
            cells only; baseline tools ignore durability).
        checkpoint_every: snapshot cadence in executions (pFuzzer default
            when ``None``).
        resume_retries: with ``checkpoint_dir`` set, extra attempts for
            timed-out cells (each attempt resumes, so repeated attempts
            make forward progress instead of re-burning the same budget).
        corpus_path: append every successful cell's valid inputs to this
            :class:`~repro.eval.corpus_store.CorpusStore` file, parent-side
            in spec order after the grid resolves.
        trace_dir: write each cell's NDJSON campaign trace to
            ``<tool>-<subject>-s<seed>.ndjson`` below this directory
            (pFuzzer cells only; created if missing).
        executor: execution engine for pFuzzer cells (``"inline"`` or
            ``"pooled"``; see :mod:`repro.runtime.executor`).  Purely a
            throughput knob — cell results are engine-independent.
        batch_size: speculative batch size for the pooled engine.
        cull_every: queue-hygiene cadence in executions for pFuzzer cells
            (:attr:`repro.core.config.FuzzerConfig.cull_every`).
            Environmental like ``executor`` — cell results are
            cull-independent, which the cull equivalence suite asserts.
        hybrid: run pFuzzer cells in hybrid mine/generate mode (see
            :mod:`repro.hybrid`).  Not environmental: it changes cell
            results and participates in each cell's snapshot
            fingerprint, so retries/resumes must (and do) keep it.
        mine_after: hybrid gain-evidence/inter-phase floor.
        gen_batch: hybrid generated candidates per flood.
        gen_depth: hybrid compiled-generator flood depth budget.
        hunt_crashes: run pFuzzer cells in crash-hunting mode (see
            :attr:`repro.core.config.FuzzerConfig.hunt_crashes`).  Like
            ``hybrid``, not environmental: it changes cell results and
            participates in snapshot fingerprints, so retries keep it.
        subject_module: import this module (registering its plugin
            subjects) before validation, and again inside every worker
            before the cell runs — workers may be spawned rather than
            forked, so the parent's import does not always carry over.
        _test_fail_on: fault-injection hook for the test suite; see the
            module docstring.

    Raises:
        ValueError: any spec names an unknown tool or subject (checked up
            front, before any worker starts).
    """
    if subject_module is not None:
        from repro.subjects.registry import load_subject_module

        load_subject_module(subject_module)
    specs = [
        spec if isinstance(spec, RunSpec) else RunSpec(*spec) for spec in specs
    ]
    for spec in specs:
        validate_campaign(spec.tool, spec.subject)
    if metrics_path is not None:
        from pathlib import Path

        parent = Path(metrics_path).parent
        if not parent.is_dir():
            raise ValueError(
                f"metrics path {str(metrics_path)!r}: directory {str(parent)!r} "
                "does not exist"
            )
    if not specs:
        if metrics_path is not None:
            write_jsonl(metrics_path, [])
        return []
    durability: Optional[Dict[str, object]] = None
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
        durability = {"root": str(checkpoint_dir), "every": checkpoint_every}
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
        trace_dir = str(trace_dir)
    engine: Optional[Dict[str, object]] = None
    if executor is not None or batch_size is not None or cull_every is not None:
        # Environmental knobs, shipped to workers as extra campaign
        # options: engine choice and cull cadence change how a cell runs,
        # never what it produces.
        engine = {}
        if executor is not None:
            engine["executor"] = executor
        if batch_size is not None:
            engine["batch_size"] = batch_size
        if cull_every is not None:
            engine["cull_every"] = cull_every
    if hybrid:
        # Rides in the same per-worker options dict as the engine knobs,
        # but is campaign state, not environment: a hybrid cell's
        # checkpoints fingerprint the hybrid config, so every retry of
        # the cell runs with the same options (they come from here).
        engine = dict(engine or {})
        engine["hybrid"] = True
        if mine_after is not None:
            engine["mine_after"] = mine_after
        if gen_batch is not None:
            engine["gen_batch"] = gen_batch
        if gen_depth is not None:
            engine["gen_depth"] = gen_depth
    if hunt_crashes:
        # Same discipline as hybrid: hunting is campaign state and every
        # retry of a cell must keep it (checkpoints fingerprint it).
        engine = dict(engine or {})
        engine["hunt_crashes"] = True
    if subject_module is not None:
        # run_campaign re-imports the module inside the worker, covering
        # spawn-start platforms where the parent's import is not inherited.
        engine = dict(engine or {})
        engine["subject_module"] = subject_module
    effective_jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
    effective_jobs = min(effective_jobs, len(specs))
    executor = _GridExecutor(
        specs,
        effective_jobs,
        timeout,
        retries,
        backoff,
        watchdog_grace,
        progress,
        dict(_test_fail_on) if _test_fail_on else None,
        durability,
        resume_retries,
        trace_dir,
        engine,
    )
    records = executor.run()
    if metrics_path is not None:
        write_jsonl(metrics_path, [record.metrics for record in records])
    if corpus_path is not None:
        from repro.eval.corpus_store import CorpusStore

        store = CorpusStore(corpus_path)
        for record in records:
            if record.output is not None:
                store.add_output(record.output)
    return records


# --------------------------------------------------------------------- #
# Sharded campaigns (see repro.eval.shards)
# --------------------------------------------------------------------- #


def run_sharded_campaign(
    subject: str,
    budget: int,
    shards: int = 2,
    *,
    base_seed: int = 0,
    slice_executions: int = 200,
    sync_every: Optional[int] = None,
    checkpoint_every: int = 100,
    shard_rotate_every: int = 200,
    coverage_backend: str = "settrace",
    root: Union[str, "os.PathLike[str]", None] = None,
):
    """Grid-level entry point for a sharded campaign group.

    Builds a :class:`~repro.eval.shards.ShardPlan` and runs it through
    :func:`~repro.eval.shards.run_sharded`: ``shards`` shard-aware
    pFuzzer campaigns on one subject, exchanging valid inputs through a
    shared corpus store under ``root`` (a temporary directory when None
    — pass a real one to make the group resumable).  Returns the
    :class:`~repro.eval.shards.ShardGroupResult`.
    """
    import tempfile

    from repro.eval.shards import ShardPlan, run_sharded

    plan = ShardPlan(
        subject=subject,
        budget=budget,
        shards=shards,
        base_seed=base_seed,
        slice_executions=slice_executions,
        sync_every=sync_every,
        checkpoint_every=checkpoint_every,
        shard_rotate_every=shard_rotate_every,
        coverage_backend=coverage_backend,
    )
    if root is None:
        root = tempfile.mkdtemp(prefix="repro-shards-")
    return run_sharded(plan, root)


# --------------------------------------------------------------------- #
# Sequential-API mirrors
# --------------------------------------------------------------------- #


def parallel_campaigns(
    subjects: Sequence[str],
    tools: Sequence[str],
    budgets: Optional[Dict[str, int]] = None,
    default_budget: int = 2_000,
    seed: int = 0,
    **grid_options,
) -> Dict[Tuple[str, str], ToolOutput]:
    """Parallel mirror of :func:`repro.eval.campaign.run_campaigns`.

    Failed/timed-out cells map to an empty :class:`ToolOutput` (zero
    executions, no valid inputs) so downstream tables keep their shape.
    """
    specs = [
        RunSpec(tool, subject, (budgets or {}).get(subject, default_budget), seed)
        for subject in subjects
        for tool in tools
    ]
    records = run_grid(specs, **grid_options)
    results: Dict[Tuple[str, str], ToolOutput] = {}
    for record in records:
        spec = record.spec
        output = record.output
        if output is None:
            output = ToolOutput(tool=spec.tool, subject=spec.subject, seed=spec.seed)
        results[(spec.subject, spec.tool)] = output
    return results


def parallel_best_of(
    tool: str,
    subject_name: str,
    budget: int,
    metric: Callable[[ToolOutput], float],
    repetitions: int = 3,
    base_seed: int = 0,
    **grid_options,
) -> ToolOutput:
    """Parallel mirror of :func:`repro.eval.campaign.best_of`.

    Repetitions run concurrently but are compared in seed order, so the
    selected repetition is identical to the sequential path (``max`` keeps
    the earliest maximum in both).

    Raises:
        RuntimeError: every repetition failed.
    """
    specs = [
        RunSpec(tool, subject_name, budget, base_seed + repetition)
        for repetition in range(repetitions)
    ]
    records = run_grid(specs, **grid_options)
    outputs = [record.output for record in records if record.output is not None]
    if not outputs:
        raise RuntimeError(
            f"all {repetitions} repetitions of {tool} on {subject_name} failed"
        )
    return max(outputs, key=metric)
