"""Tiny text plots for reports: sparklines and step curves.

Keeps the benchmark output self-contained — no plotting dependency, every
figure renders in a terminal or a text file.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line bar sparkline of ``values`` (empty string for no data)."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return _BLOCKS[4] * len(values)
    span = high - low
    return "".join(
        _BLOCKS[1 + int((value - low) / span * (len(_BLOCKS) - 2))]
        for value in values
    )


def step_curve(
    points: Sequence[Tuple[int, int]],
    width: int = 60,
    label_x: str = "executions",
    label_y: str = "tokens",
) -> str:
    """Render an (x, y) step curve as indented text rows.

    Each row is one y level with the x position where it was first reached,
    plus a proportional bar — enough to eyeball a discovery curve without a
    plotting library.
    """
    if not points:
        return "(no data)"
    max_x = max(x for x, _ in points) or 1
    lines: List[str] = [f"{label_y:>8} | reached at ({label_x})"]
    for x, y in points:
        bar = "#" * max(1, int(width * x / max_x))
        lines.append(f"{y:8d} | {x:6d} {bar}")
    return "\n".join(lines)
