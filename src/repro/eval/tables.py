"""Tables 1–4: subject sizes and token inventories."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.eval.tokens import PAPER_TOKEN_COUNTS, inventory_by_length
from repro.subjects.registry import PAPER_LOC, SUBJECT_NAMES, load_subject, subject_sloc


@dataclass(frozen=True)
class Table1Row:
    """One subject's size: upstream C LoC (paper) vs this reproduction."""

    name: str
    paper_loc: int
    repro_sloc: int


def table1() -> List[Table1Row]:
    """Table 1: the subjects used for the evaluation, with sizes."""
    rows: List[Table1Row] = []
    for name in SUBJECT_NAMES:
        subject = load_subject(name)
        rows.append(Table1Row(name, PAPER_LOC[name], subject_sloc(subject)))
    return rows


def token_table(subject_name: str) -> Dict[int, Tuple[int, Tuple[str, ...]]]:
    """Tables 2/3/4 shape: length -> (count, token names).

    ``token_table("json")`` reproduces Table 2, ``"tinyc"`` Table 3 and
    ``"mjs"`` Table 4; for ini/csv it reports the (paper-implied) inventory
    used in Figure 3.
    """
    grouped = inventory_by_length(subject_name)
    return {length: (len(names), names) for length, names in grouped.items()}


def check_against_paper(subject_name: str) -> bool:
    """Do the inventory's per-length counts match the paper's table?"""
    expected = PAPER_TOKEN_COUNTS.get(subject_name)
    if expected is None:
        return True
    actual = {length: count for length, (count, _) in token_table(subject_name).items()}
    return actual == expected
