"""Campaign statistics: discovery curves and efficiency summaries.

The paper's "orders of magnitude fewer tests" claim (§1, §5.2) is about
*efficiency*: how much token coverage a tool buys per execution.  These
helpers turn a campaign's emission log into a token-discovery curve and a
one-line efficiency summary, used by reports and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.eval.extract import extract_tokens
from repro.eval.metrics import CampaignMetrics
from repro.eval.tokens import TOKEN_INVENTORIES


@dataclass(frozen=True)
class CurvePoint:
    """Token coverage after ``executions`` subject executions."""

    executions: int
    tokens_found: int


def discovery_curve(
    subject_name: str, emit_log: Sequence[Tuple[int, str]]
) -> List[CurvePoint]:
    """Cumulative inventory tokens found over the emission log.

    ``emit_log`` is :attr:`repro.core.fuzzer.FuzzingResult.emit_log` —
    (execution count, emitted input) pairs in emission order.  The curve is
    monotone; one point per emission that discovered at least one new
    token, plus the initial point of the first emission.
    """
    inventory = {token.name for token in TOKEN_INVENTORIES[subject_name]}
    found: Set[str] = set()
    curve: List[CurvePoint] = []
    for executions, text in emit_log:
        new = (extract_tokens(subject_name, text) & inventory) - found
        if new or not curve:
            found |= new
            curve.append(CurvePoint(executions, len(found)))
    return curve


def executions_to_reach(
    curve: Sequence[CurvePoint], tokens: int
) -> int:
    """Executions needed to reach ``tokens`` coverage (-1 if never)."""
    for point in curve:
        if point.tokens_found >= tokens:
            return point.executions
    return -1


@dataclass(frozen=True)
class CampaignStats:
    """One-line efficiency summary of a campaign."""

    subject: str
    executions: int
    valid_inputs: int
    tokens_found: int

    @property
    def validity_rate(self) -> float:
        """Valid inputs per execution."""
        if not self.executions:
            return 0.0
        return self.valid_inputs / self.executions

    @property
    def executions_per_token(self) -> float:
        """Cost of one inventory token, in executions."""
        if not self.tokens_found:
            return float("inf")
        return self.executions / self.tokens_found


@dataclass(frozen=True)
class GridSummary:
    """Fleet-level rollup of a campaign grid's metrics records.

    The parallel executor emits one :class:`CampaignMetrics` per cell;
    this is the one-screen view of the whole grid — how much ran, how
    fast, and how much of it failed.
    """

    runs: int
    status_counts: Tuple[Tuple[str, int], ...]
    total_executions: int
    total_valid_inputs: int
    total_wall_time: float
    mean_executions_per_second: float
    max_peak_rss_bytes: int

    @property
    def ok_rate(self) -> float:
        """Fraction of cells that finished cleanly."""
        if not self.runs:
            return 0.0
        ok = dict(self.status_counts).get("ok", 0)
        return ok / self.runs


def summarize_grid(records: Iterable[CampaignMetrics]) -> GridSummary:
    """Roll a grid's per-run metrics up into one :class:`GridSummary`."""
    records = list(records)
    statuses: Dict[str, int] = {}
    for record in records:
        statuses[record.status] = statuses.get(record.status, 0) + 1
    ok_records = [record for record in records if record.status == "ok"]
    mean_rate = (
        sum(record.executions_per_second for record in ok_records) / len(ok_records)
        if ok_records
        else 0.0
    )
    return GridSummary(
        runs=len(records),
        status_counts=tuple(sorted(statuses.items())),
        total_executions=sum(record.executions for record in records),
        total_valid_inputs=sum(record.valid_inputs for record in records),
        total_wall_time=sum(record.wall_time for record in records),
        mean_executions_per_second=mean_rate,
        max_peak_rss_bytes=max(
            (record.peak_rss_bytes for record in records), default=0
        ),
    )


def summarize(
    subject_name: str, valid_inputs: Iterable[str], executions: int
) -> CampaignStats:
    """Build the summary for one tool's campaign output."""
    inventory = {token.name for token in TOKEN_INVENTORIES[subject_name]}
    found: Set[str] = set()
    count = 0
    for text in valid_inputs:
        count += 1
        found |= extract_tokens(subject_name, text) & inventory
    return CampaignStats(
        subject=subject_name,
        executions=executions,
        valid_inputs=count,
        tokens_found=len(found),
    )
