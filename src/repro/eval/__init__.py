"""Evaluation harness: everything needed to regenerate the paper's
tables and figures.

* Table 1 — subject sizes (:mod:`repro.eval.tables`)
* Figure 2 — code coverage per subject and tool (:mod:`repro.eval.code_cov`)
* Tables 2–4 — token inventories (:mod:`repro.eval.tokens`)
* Figure 3 — tokens generated, by token length (:mod:`repro.eval.token_cov`)

Campaign plumbing (running a tool on a subject under a budget, best-of-N)
lives in :mod:`repro.eval.campaign`; token extraction from generated valid
inputs in :mod:`repro.eval.extract`; text rendering in
:mod:`repro.eval.report`.
"""

from repro.eval.campaign import ToolOutput, best_of, run_campaign, run_campaigns
from repro.eval.code_cov import coverage_of_inputs, figure2
from repro.eval.corpus import load_corpus, revalidate, save_corpus
from repro.eval.experiments import ExperimentReport, render_markdown, run_all
from repro.eval.extract import extract_tokens
from repro.eval.stats import CampaignStats, discovery_curve, summarize
from repro.eval.token_cov import TokenCoverage, aggregate_by_length, figure3, token_coverage
from repro.eval.tokens import TOKEN_INVENTORIES, TokenInfo, inventory_by_length

__all__ = [
    "run_campaign",
    "run_campaigns",
    "best_of",
    "ToolOutput",
    "extract_tokens",
    "TOKEN_INVENTORIES",
    "TokenInfo",
    "inventory_by_length",
    "token_coverage",
    "TokenCoverage",
    "aggregate_by_length",
    "figure3",
    "coverage_of_inputs",
    "figure2",
    "save_corpus",
    "load_corpus",
    "revalidate",
    "discovery_curve",
    "summarize",
    "CampaignStats",
    "run_all",
    "render_markdown",
    "ExperimentReport",
]
