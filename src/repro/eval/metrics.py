"""Campaign observability: per-run metrics records and JSONL persistence.

Every run in the evaluation grid — sequential or parallel — can be
summarised as one :class:`CampaignMetrics` record: throughput
(executions/sec), valid-input rate, final pFuzzer queue depth, peak RSS and
wall time.  Records serialise to one JSON object per line so a campaign's
metrics file can be streamed, tailed and appended without rewriting
(`python -m repro compare --jobs N --metrics out.jsonl`).

The schema is versioned (:data:`SCHEMA_VERSION`); readers reject records
from a different major schema rather than misinterpreting fields.
"""

from __future__ import annotations

import json
import socket
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.eval.campaign import ToolOutput

#: Bumped on any field rename/retyping; additions keep the version.
SCHEMA_VERSION = 1


def _hostname() -> str:
    """Best-effort machine name ("" rather than an exception)."""
    try:
        return socket.gethostname()
    except OSError:  # pragma: no cover - pathological resolver setups
        return ""

#: Field order is part of the schema: JSONL lines keep this key order.
FIELD_NAMES = (
    "schema",
    "tool",
    "subject",
    "seed",
    "budget",
    "status",
    "attempts",
    "executions",
    "valid_inputs",
    "executions_per_second",
    "valid_rate",
    "queue_depth",
    "peak_rss_bytes",
    "wall_time",
    "phase_times",
    "resumes",
    "hostname",
    "peak_rss_kb",
    "crashes",
)


@dataclass(frozen=True)
class CampaignMetrics:
    """One grid cell's observability record.

    ``status`` is ``"ok"``, ``"failed"`` or ``"timeout"`` (matching
    :class:`repro.eval.parallel.RunStatus` values); failed/timed-out runs
    carry zero counters but keep their identity fields so the grid stays
    auditable.
    """

    schema: int
    tool: str
    subject: str
    seed: int
    budget: int
    status: str
    attempts: int
    executions: int
    valid_inputs: int
    executions_per_second: float
    valid_rate: float
    queue_depth: Optional[int]
    peak_rss_bytes: int
    wall_time: float
    #: Seconds per campaign phase ("execute" / "rescore" / "substitute" /
    #: "checkpoint"), None for tools that do not report a breakdown.  Added
    #: within schema version 1; absent in older records and read back as
    #: None.
    phase_times: Optional[Dict[str, float]] = None
    #: Times the run was restored from a durable checkpoint (0 = ran
    #: uninterrupted).  Added within schema version 1; absent in older
    #: records and read back as 0.
    resumes: int = 0
    #: Machine that executed the run — one metrics stream can mix hosts
    #: once campaigns are scheduled by the service.  Added within schema
    #: version 1; absent in older records and read back as "".
    hostname: str = ""
    #: High-water RSS in kilobytes (``resource.getrusage``; 0 where the
    #: ``resource`` module is unavailable).  Added within schema version 1;
    #: absent in older records and read back as 0.
    peak_rss_kb: int = 0
    #: Subject executions that crashed (raised outside the subject's
    #: declared rejection exceptions).  Added within schema version 1;
    #: absent in older records and read back as 0.
    crashes: int = 0

    @classmethod
    def from_output(
        cls,
        output: ToolOutput,
        budget: int,
        *,
        status: str = "ok",
        attempts: int = 1,
        peak_rss_bytes: int = 0,
        hostname: Optional[str] = None,
    ) -> "CampaignMetrics":
        """Summarise one campaign's :class:`ToolOutput`."""
        wall = max(output.wall_time, 0.0)
        per_second = output.executions / wall if wall > 0 else 0.0
        rate = (
            len(output.valid_inputs) / output.executions if output.executions else 0.0
        )
        return cls(
            schema=SCHEMA_VERSION,
            tool=output.tool,
            subject=output.subject,
            seed=output.seed,
            budget=budget,
            status=status,
            attempts=attempts,
            executions=output.executions,
            valid_inputs=len(output.valid_inputs),
            executions_per_second=per_second,
            valid_rate=rate,
            queue_depth=output.queue_depth,
            peak_rss_bytes=peak_rss_bytes,
            wall_time=wall,
            phase_times=output.phase_times,
            resumes=output.resumes,
            hostname=hostname if hostname is not None else _hostname(),
            peak_rss_kb=peak_rss_bytes // 1024,
            crashes=getattr(output, "crashes", 0),
        )

    @classmethod
    def for_failure(
        cls,
        tool: str,
        subject: str,
        seed: int,
        budget: int,
        *,
        status: str,
        attempts: int,
        wall_time: float = 0.0,
        resumes: int = 0,
        hostname: Optional[str] = None,
    ) -> "CampaignMetrics":
        """Record for a run that produced no output (crash / timeout).

        ``resumes`` counts checkpoint restores performed before the run
        ultimately failed — with durable retries a failed cell can still
        have made resumed progress, and dropping the count made failure
        records claim the run never restarted.
        """
        return cls(
            schema=SCHEMA_VERSION,
            tool=tool,
            subject=subject,
            seed=seed,
            budget=budget,
            status=status,
            attempts=attempts,
            executions=0,
            valid_inputs=0,
            executions_per_second=0.0,
            valid_rate=0.0,
            queue_depth=None,
            peak_rss_bytes=0,
            wall_time=wall_time,
            phase_times=None,
            resumes=resumes,
            hostname=hostname if hostname is not None else _hostname(),
        )

    def to_json_line(self) -> str:
        """One compact JSON object, keys in :data:`FIELD_NAMES` order."""
        record = asdict(self)
        ordered = {name: record[name] for name in FIELD_NAMES}
        return json.dumps(ordered, separators=(",", ":"), sort_keys=False)

    @classmethod
    def from_json_line(cls, line: str) -> "CampaignMetrics":
        """Parse one JSONL line, rejecting unknown schema versions.

        Raises:
            ValueError: malformed JSON, wrong schema version, or missing
                fields.
        """
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed metrics line: {exc}") from None
        if not isinstance(record, dict):
            raise ValueError(f"metrics line is not an object: {line!r}")
        version = record.get("schema")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported metrics schema {version!r} (expected {SCHEMA_VERSION})"
            )
        # phase_times, resumes, hostname and peak_rss_kb were added within
        # schema version 1: tolerate records written before they existed.
        record.setdefault("phase_times", None)
        record.setdefault("resumes", 0)
        record.setdefault("hostname", "")
        record.setdefault("peak_rss_kb", 0)
        record.setdefault("crashes", 0)
        missing = [name for name in FIELD_NAMES if name not in record]
        if missing:
            raise ValueError(f"metrics line missing fields: {', '.join(missing)}")
        return cls(**{name: record[name] for name in FIELD_NAMES})


def write_jsonl(
    path: Union[str, Path], records: Iterable[CampaignMetrics]
) -> None:
    """Write ``records`` to ``path``, one JSON object per line."""
    text = "".join(record.to_json_line() + "\n" for record in records)
    Path(path).write_text(text, encoding="utf-8")


def append_jsonl(path: Union[str, Path], record: CampaignMetrics) -> None:
    """Append one record to ``path`` (streaming emission)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(record.to_json_line() + "\n")


def read_jsonl(
    path: Union[str, Path], *, strict: bool = False
) -> List[CampaignMetrics]:
    """Read every record from ``path``, skipping blank lines.

    Metrics files are appended to while campaigns run, so a reader can
    observe a torn final line (a crash or a concurrent ``append_jsonl``
    mid-write).  By default such a trailing fragment is skipped — the same
    discipline the corpus store and the service's job journal apply to
    their append-only files.  Corruption anywhere *before* the final line
    is never forgiven, and ``strict=True`` restores raise-on-anything
    behaviour for integrity checks.

    Raises:
        ValueError: a malformed non-final line, or (with ``strict=True``)
            any malformed line.
    """
    lines = [
        line
        for line in Path(path).read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    records: List[CampaignMetrics] = []
    for position, line in enumerate(lines):
        try:
            records.append(CampaignMetrics.from_json_line(line))
        except ValueError:
            if strict or position != len(lines) - 1:
                raise
    return records
