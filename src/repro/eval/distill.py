"""Corpus distillation: a minimal record set preserving arc coverage.

Sharded campaigns grow the shared corpus fast — every shard pushes every
emitted input — and most records are coverage-redundant once the group
has converged.  Distillation (AFL's ``cmin``, applied to this repo's
JSONL store) re-executes each distinct stored input and keeps a greedy
minimal subset whose *union of covered arcs equals the full corpus's*:

1. collect distinct inputs per subject in file order (first occurrence
   keeps the earliest provenance);
2. execute each once under the requested coverage backend, recording its
   branch set (interned arc ids; one process, so ids are comparable);
3. greedy set cover — repeatedly keep the input adding the most
   still-uncovered arcs, ties broken by file order, until every arc of
   the full corpus is covered.

The guarantee is coverage *equality*, not global minimality (greedy set
cover is the standard log-factor approximation); the property test in
``tests/eval/test_distill.py`` re-executes both sets and asserts equal
arc unions on every subject.  The store rewrite is atomic and leaves
other subjects' records untouched, so ``repro corpus distill --subject``
is safe on a mixed store.

Crash findings (``kind="crash"`` records written by ``--hunt-crashes``)
are findings, not coverage seeds: they pass through every distillation
untouched and never compete with valid records for set-cover picks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.eval.corpus_store import CorpusRecord, CorpusStore
from repro.runtime.harness import run_subject
from repro.subjects.registry import load_subject


@dataclass
class DistillStats:
    """Outcome of distilling one subject's records."""

    subject: str
    kept: int  # records kept
    dropped: int  # records dropped (redundant inputs + duplicates)
    arcs: int  # arcs covered by both the full and distilled sets


def minimal_cover(
    branch_sets: Sequence[FrozenSet[int]],
) -> List[int]:
    """Greedy set cover over ``branch_sets``; returns kept indices, sorted.

    Deterministic: the next pick is the set adding the most uncovered
    arcs, ties broken by the lowest index (file order).  Inputs covering
    nothing new — including empty sets — are dropped.
    """
    target = frozenset().union(*branch_sets) if branch_sets else frozenset()
    covered: set = set()
    remaining = list(range(len(branch_sets)))
    chosen: List[int] = []
    while covered != set(target):
        best_index = None
        best_gain = 0
        for index in remaining:
            gain = len(branch_sets[index] - covered)
            if gain > best_gain:
                best_gain = gain
                best_index = index
        if best_index is None:  # pragma: no cover - covered==target first
            break
        chosen.append(best_index)
        covered |= branch_sets[best_index]
        remaining.remove(best_index)
    return sorted(chosen)


def distill_subject(
    subject_name: str,
    inputs: Sequence[str],
    coverage_backend: str = "settrace",
) -> Tuple[List[str], int]:
    """Distill a list of inputs for one subject.

    Returns ``(kept_inputs, arc_count)`` where ``kept_inputs`` preserves
    the original order and covers exactly the arcs the full list covers.
    """
    subject = load_subject(subject_name)
    branch_sets = [
        run_subject(
            subject, text, coverage_backend=coverage_backend
        ).branches
        for text in inputs
    ]
    chosen = minimal_cover(branch_sets)
    arcs = len(frozenset().union(*branch_sets)) if branch_sets else 0
    return ([inputs[index] for index in chosen], arcs)


def distill_store(
    store: CorpusStore,
    subject: Optional[str] = None,
    coverage_backend: str = "settrace",
) -> List[DistillStats]:
    """Distill a corpus store in place (atomic rewrite).

    Args:
        store: the JSONL store to distill.
        subject: restrict to one subject; None distills every subject in
            the store.  Records of other subjects pass through untouched.
        coverage_backend: backend used for the re-executions.

    Returns:
        Per-subject :class:`DistillStats`, sorted by subject name.
    """
    all_records = list(store.records())
    subjects = sorted(
        {record.subject for record in all_records}
        if subject is None
        else {subject}
    )
    keep_inputs: Dict[str, set] = {}
    stats: List[DistillStats] = []
    for name in subjects:
        distinct: List[str] = []
        seen: set = set()
        for record in all_records:
            if (
                record.subject == name
                and record.kind == "valid"
                and record.input not in seen
            ):
                seen.add(record.input)
                distinct.append(record.input)
        kept, arcs = distill_subject(name, distinct, coverage_backend)
        keep_inputs[name] = set(kept)
        total = sum(
            1
            for record in all_records
            if record.subject == name and record.kind == "valid"
        )
        stats.append(
            DistillStats(
                subject=name,
                kept=len(kept),
                dropped=total - len(kept),
                arcs=arcs,
            )
        )
    kept_records: List[CorpusRecord] = []
    emitted: set = set()
    for record in all_records:
        if record.subject not in keep_inputs or record.kind != "valid":
            kept_records.append(record)
            continue
        key = (record.subject, record.input)
        if record.input in keep_inputs[record.subject] and key not in emitted:
            emitted.add(key)
            kept_records.append(record)
    _rewrite(store, kept_records)
    return stats


def _rewrite(store: CorpusStore, records: List[CorpusRecord]) -> None:
    """Atomically replace the store's contents (same discipline as
    :meth:`CorpusStore.compact`)."""
    import os
    import tempfile

    store.path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=".corpus-tmp-", suffix=".jsonl", dir=store.path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(record.to_json_line() + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, store.path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
