"""Token inventories of the five subjects (paper Tables 2, 3 and 4).

Following the paper's §5.3 conventions: "Strings, numbers and identifiers
are classified as one token as they can consist of many different characters
but will all trigger the same behavior in the program.  Any non-token
characters (e.g. whitespaces) are ignored."  A token's *length* is the
length of its shortest spelling (``string`` is length 2 — two quotes;
``number``/``identifier`` are length 1).

The mjs inventory reconstructs Table 4's exact per-length counts
(27/24/13/10/9/7/3/3/2/1 = 99 tokens).  The paper only prints examples per
length, so the precise membership is a documented reconstruction from the
mjs language surface; the counts match Table 4 exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class TokenInfo:
    """One language token: evaluation name and classified length."""

    name: str
    length: int


def _tokens(*groups: Tuple[int, Tuple[str, ...]]) -> Tuple[TokenInfo, ...]:
    out: List[TokenInfo] = []
    for length, names in groups:
        for name in names:
            out.append(TokenInfo(name, length))
    return tuple(out)


#: inih tokens: section brackets, the separator, the comment marker, and the
#: name/value text class (Figure 3 shows five length-1 tokens for ini).
INI_TOKENS = _tokens((1, ("[", "]", "=", ";", "name")))

#: csvparser tokens: the field separator and the field text class (Figure 3
#: shows two tokens for csv).
CSV_TOKENS = _tokens((1, (",", "field")))

#: cJSON tokens, exactly Table 2 (8 / 1 / 2 / 1 by length).
JSON_TOKENS = _tokens(
    (1, ("{", "}", "[", "]", "-", ":", ",", "number")),
    (2, ("string",)),
    (4, ("null", "true")),
    (5, ("false",)),
)

#: tinyC tokens, exactly Table 3 (11 / 2 / 1 / 1 by length).
TINYC_TOKENS = _tokens(
    (1, ("<", "+", "-", ";", "=", "{", "}", "(", ")", "identifier", "number")),
    (2, ("if", "do")),
    (4, ("else",)),
    (5, ("while",)),
)

#: mjs builtin names that count as their own tokens (they appear in
#: Table 4's examples: ``Object``, ``indexOf``, ``stringify``, ...).
MJS_BUILTIN_NAME_TOKENS = frozenset(
    {
        "JSON",
        "load",
        "print",
        "slice",
        "isNaN",
        "Object",
        "length",
        "substr",
        "indexOf",
        "stringify",
    }
)

#: mjs tokens; per-length counts match Table 4 exactly
#: (27, 24, 13, 10, 9, 7, 3, 3, 2, 1).
MJS_TOKENS = _tokens(
    (
        1,
        (
            "(", ")", "{", "}", "[", "]", ";", ",", ".",
            "+", "-", "*", "/", "%", "<", ">", "=",
            "&", "|", "^", "!", "~", "?", ":",
            "identifier", "number", "newline",
        ),
    ),
    (
        2,
        (
            "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
            "==", "!=", "<=", ">=", "&&", "||", "++", "--",
            "<<", ">>", "=>",
            "if", "in", "do", "of",
            "string",
        ),
    ),
    (
        3,
        (
            "===", "!==", "<<=", ">>=", ">>>", "&&=", "||=",
            "for", "try", "let", "new", "var", "NaN",
        ),
    ),
    (4, (">>>=", "true", "null", "void", "with", "else", "this", "case", "JSON", "load")),
    (5, ("false", "throw", "while", "break", "catch", "const", "print", "slice", "isNaN")),
    (6, ("return", "delete", "typeof", "Object", "switch", "length", "substr")),
    (7, ("default", "finally", "indexOf")),
    (8, ("continue", "function", "debugger")),
    (9, ("undefined", "stringify")),
    (10, ("instanceof",)),
)

#: Every subject's inventory, keyed by registry name.
TOKEN_INVENTORIES: Dict[str, Tuple[TokenInfo, ...]] = {
    "ini": INI_TOKENS,
    "csv": CSV_TOKENS,
    "json": JSON_TOKENS,
    "tinyc": TINYC_TOKENS,
    "mjs": MJS_TOKENS,
}

#: Paper Table 2/3/4 per-length counts, for the inventory self-checks.
PAPER_TOKEN_COUNTS: Dict[str, Dict[int, int]] = {
    "json": {1: 8, 2: 1, 4: 2, 5: 1},
    "tinyc": {1: 11, 2: 2, 4: 1, 5: 1},
    "mjs": {1: 27, 2: 24, 3: 13, 4: 10, 5: 9, 6: 7, 7: 3, 8: 3, 9: 2, 10: 1},
}


def inventory_by_length(subject: str) -> Dict[int, Tuple[str, ...]]:
    """Token names grouped by classified length for one subject."""
    grouped: Dict[int, List[str]] = {}
    for token in TOKEN_INVENTORIES[subject]:
        grouped.setdefault(token.length, []).append(token.name)
    return {length: tuple(names) for length, names in sorted(grouped.items())}
