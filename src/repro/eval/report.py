"""Text rendering of every table and figure the harness regenerates.

Each ``render_*`` function returns a plain-text block with the same rows /
series the paper reports, so benchmark runs print paper-shaped output.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.eval.tables import Table1Row, table1, token_table
from repro.eval.token_cov import TokenCoverage


def _rule(widths: Sequence[int]) -> str:
    return "+".join("-" * (width + 2) for width in widths)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A simple aligned ASCII table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [
        " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        _rule(widths),
    ]
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_table1(rows: Sequence[Table1Row] = ()) -> str:
    """Table 1: subjects and sizes (paper C LoC vs reproduction SLoC)."""
    rows = rows or table1()
    return render_table(
        ("Name", "Paper LoC (C)", "Repro SLoC (Python)"),
        [(row.name, str(row.paper_loc), str(row.repro_sloc)) for row in rows],
    )


def render_token_table(subject_name: str, max_examples: int = 6) -> str:
    """Tables 2/3/4: token counts per length with examples."""
    rows = []
    for length, (count, names) in token_table(subject_name).items():
        examples = " ".join(names[:max_examples])
        if len(names) > max_examples:
            examples += " ..."
        rows.append((str(length), str(count), examples))
    return render_table(("Length", "#", "Examples"), rows)


def render_figure2(
    coverage: Dict[Tuple[str, str], float],
    subjects: Sequence[str],
    tools: Sequence[str],
    bar_width: int = 40,
) -> str:
    """Figure 2: coverage bars per subject and tool."""
    lines: List[str] = ["Coverage by each tool (percent of executable lines)"]
    for subject in subjects:
        lines.append(f"\n{subject}:")
        for tool in tools:
            percent = coverage.get((subject, tool), 0.0)
            bar = "#" * int(round(bar_width * percent / 100.0))
            lines.append(f"  {tool:<8} {percent:5.1f} |{bar}")
    return "\n".join(lines)


def render_figure3(
    coverages: Dict[Tuple[str, str], TokenCoverage],
    subjects: Sequence[str],
    tools: Sequence[str],
) -> str:
    """Figure 3: tokens found per token length, per subject and tool."""
    lengths = list(range(1, 11))
    headers = ["Subject", "Tool"] + [str(length) for length in lengths] + ["Total"]
    rows: List[Tuple[str, ...]] = []
    for subject in subjects:
        for tool in tools:
            coverage = coverages.get((subject, tool))
            cells: List[str] = [subject, tool]
            for length in lengths:
                if coverage is None or length not in coverage.by_length:
                    cells.append("")
                else:
                    found, possible = coverage.by_length[length]
                    cells.append(f"{found}/{possible}")
            total = f"{coverage.total_found}/{coverage.total_possible}" if coverage else ""
            cells.append(total)
            rows.append(tuple(cells))
    return render_table(headers, rows)


def render_aggregates(
    short: Dict[str, float], long_: Dict[str, float], split: int = 3
) -> str:
    """The §5.3 headline aggregates."""
    rows = [
        (tool, f"{short.get(tool, 0.0):.1f}%", f"{long_.get(tool, 0.0):.1f}%")
        for tool in sorted(set(short) | set(long_))
    ]
    return render_table(
        ("Tool", f"tokens len<={split}", f"tokens len>{split}"), rows
    )
