"""Lockstep multi-shard campaigns over one shared corpus store.

:func:`run_sharded` is the deterministic reference orchestrator for
sharded campaigns (DESIGN.md §8): N shard-aware :class:`~repro.core.
fuzzer.PFuzzer` instances attack the same subject, each owning a rotating
slice of the candidate space, exchanging valid inputs through one shared
:class:`~repro.eval.corpus_store.CorpusStore` JSONL file.

Shards advance in **rounds**: round *k* runs each shard — in shard-id
order — up to the absolute execution target ``min(budget, (k+1) *
slice_executions)``.  Every slice runs in a forked child process (so a
SIGKILL mid-slice kills only that shard) with ``resume=True`` over the
shard's private checkpoint directory, and is retried on death; the retry
resumes from the last snapshot and finishes the *same* absolute target.
Because the target is absolute — not relative to where the resumed
process happened to start — a killed+resumed slice ends at exactly the
executions count an unkilled one would, which keeps every later sync
point on schedule.  That, plus the sync protocol's own invariants
(:mod:`repro.eval.sync`), makes the whole group a deterministic function
of ``(subject, seeds, schedule)``: the cross-shard harness in
``tests/eval/test_resume_equivalence.py`` asserts fingerprint equality
across reruns and across SIGKILLs of individual shards.

The sequential round-robin is deliberately the *reference* executor —
simple enough to reason about byte-for-byte.  The service layer
(:mod:`repro.service.scheduler`) runs the same shard configs
concurrently as a gang-scheduled job group; its smoke test checks it
against this module's fingerprints.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ShardPlan:
    """Schedule of one sharded campaign group.

    The plan *is* the determinism key: two runs of the same plan (same
    seeds, same slice/sync cadence) produce identical per-shard results.

    Attributes:
        subject: registry name of the subject under test.
        budget: per-shard execution budget.
        shards: number of shards (``shard_count``).
        base_seed: shard ``i`` runs with seed ``base_seed + i``.
        slice_executions: round length; shard slices end at absolute
            multiples of this.
        sync_every: corpus-sync cadence in executions (defaults to
            ``slice_executions`` so every round syncs at least once).
        checkpoint_every: snapshot cadence within a slice.
        shard_rotate_every: partition rotation cadence.
        coverage_backend: ``"settrace"`` or ``"ast"``.
    """

    subject: str
    budget: int
    shards: int = 2
    base_seed: int = 0
    slice_executions: int = 200
    sync_every: Optional[int] = None
    checkpoint_every: int = 100
    shard_rotate_every: int = 200
    coverage_backend: str = "settrace"


@dataclass
class ShardOutcome:
    """Terminal state of one shard."""

    shard_id: int
    seed: int
    executions: int
    valid_inputs: List[str]
    valid_signatures: List[int]
    queue_depth: int
    resumes: int
    #: False when the shard ran out of candidates before its budget (the
    #: campaign is over even though ``executions`` < budget).
    preempted: bool
    #: :func:`repro.eval.checkpoint.result_fingerprint` of the final
    #: result, computed in the shard's own process (arc ids are
    #: process-local).
    fingerprint: str


@dataclass
class ShardGroupResult:
    """Outcome of :func:`run_sharded`."""

    plan: ShardPlan
    shards: List[ShardOutcome]
    store_path: str
    rounds: int = 0
    kills: int = 0

    @property
    def group_fingerprint(self) -> str:
        """One sha256 over all shard fingerprints, in shard order."""
        digest = hashlib.sha256()
        for outcome in self.shards:
            digest.update(outcome.fingerprint.encode("utf-8"))
            digest.update(b"\0")
        return digest.hexdigest()


def shard_config(plan: ShardPlan, shard_id: int, root: PathLike):
    """The :class:`~repro.core.config.FuzzerConfig` of one shard.

    Shared between this orchestrator and the service scheduler so both
    run byte-identical shard campaigns for the same plan.
    """
    from repro.core.config import FuzzerConfig

    root = Path(root)
    return FuzzerConfig(
        seed=plan.base_seed + shard_id,
        max_executions=plan.budget,
        coverage_backend=plan.coverage_backend,
        shard_id=shard_id,
        shard_count=plan.shards,
        shard_rotate_every=plan.shard_rotate_every,
        sync_store=str(root / "corpus.jsonl"),
        sync_every=(
            plan.sync_every
            if plan.sync_every is not None
            else plan.slice_executions
        ),
        checkpoint_dir=str(root / f"shard-{shard_id}"),
        checkpoint_every=plan.checkpoint_every,
        resume=True,
    )


def _slice_child(conn, plan: ShardPlan, shard_id: int, root: str,
                 target: int, kill_at: Optional[int]) -> None:
    """Run one shard up to the absolute ``target`` and send the outcome.

    Runs in a forked child: a ``kill_at`` SIGKILL (the fault-injection
    hook) takes down only this slice, and arc interning stays
    process-local to the slice that fingerprints it.
    """
    import repro.core.fuzzer as fuzzer_module
    from repro.core.fuzzer import PFuzzer
    from repro.eval.checkpoint import result_fingerprint
    from repro.runtime.arcs import arc_table_for
    from repro.subjects.registry import load_subject

    fuzzer_module._TEST_KILL_AT = kill_at
    subject = load_subject(plan.subject)
    fuzzer = PFuzzer(
        subject,
        shard_config(plan, shard_id, root),
        # Absolute target: a resumed slice preempts at the same total
        # executions count an uninterrupted one would, keeping slice ends
        # — and therefore sync points — on the plan's schedule.
        should_preempt=lambda _run, total: total >= target,
    )
    result = fuzzer.run()
    conn.send(
        ShardOutcome(
            shard_id=shard_id,
            seed=plan.base_seed + shard_id,
            executions=result.executions,
            valid_inputs=list(result.valid_inputs),
            valid_signatures=list(result.valid_signatures),
            queue_depth=result.queue_depth,
            resumes=result.resumes,
            preempted=result.preempted,
            fingerprint=result_fingerprint(result, arc_table_for(subject)),
        )
    )
    conn.close()


def run_sharded(
    plan: ShardPlan,
    root: PathLike,
    kill_at: Optional[Dict[int, int]] = None,
    max_attempts: int = 4,
) -> ShardGroupResult:
    """Run a sharded campaign group to completion, lockstep rounds.

    Args:
        plan: the group's schedule (see :class:`ShardPlan`).
        root: working directory; holds ``corpus.jsonl`` (the shared
            store) and ``shard-<i>/`` checkpoint directories.  Rerunning
            on a used root resumes every shard from its snapshots.
        kill_at: fault injection — ``{shard_id: executions}`` SIGKILLs
            that shard's slice once it reaches the absolute execution
            count; the retry resumes from its last checkpoint and the
            final result must equal an unkilled run's (the harness's
            core assertion).
        max_attempts: attempts per slice before giving up.

    Raises:
        RuntimeError: a slice died ``max_attempts`` times in a row.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    ctx = multiprocessing.get_context(
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else None
    )
    pending_kills = dict(kill_at or {})
    outcomes: Dict[int, ShardOutcome] = {}
    done = [False] * plan.shards
    rounds = 0
    kills = 0
    while not all(done):
        rounds += 1
        target = min(plan.budget, rounds * plan.slice_executions)
        for shard_id in range(plan.shards):
            if done[shard_id]:
                continue
            outcome = None
            for _attempt in range(max_attempts):
                recv, send = ctx.Pipe(duplex=False)
                child = ctx.Process(
                    target=_slice_child,
                    args=(
                        send,
                        plan,
                        shard_id,
                        str(root),
                        target,
                        pending_kills.get(shard_id),
                    ),
                )
                child.start()
                send.close()
                try:
                    outcome = recv.recv()
                except EOFError:
                    outcome = None
                child.join()
                recv.close()
                if outcome is not None:
                    break
                # The slice died (injected SIGKILL or a real crash); the
                # fault fires once, then the retry resumes clean.
                kills += 1
                pending_kills.pop(shard_id, None)
            if outcome is None:
                raise RuntimeError(
                    f"shard {shard_id} died {max_attempts} times "
                    f"(round {rounds})"
                )
            outcomes[shard_id] = outcome
            # Done on budget exhaustion *or* a natural finish (candidate
            # space exhausted before the budget: not preempted).
            if outcome.executions >= plan.budget or not outcome.preempted:
                done[shard_id] = True
    return ShardGroupResult(
        plan=plan,
        shards=[outcomes[shard_id] for shard_id in range(plan.shards)],
        store_path=str(root / "corpus.jsonl"),
        rounds=rounds,
        kills=kills,
    )
