"""Corpus persistence: save and reload campaign outputs.

Campaign corpora are plain lists of input strings; storing them as JSON
Lines keeps them greppable and diff-friendly while surviving every control
character a fuzzer can produce.  Each record carries the subject, tool and
seed, so mixed corpora can be filtered on reload.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from repro.eval.campaign import ToolOutput

PathLike = Union[str, Path]


def save_corpus(path: PathLike, output: ToolOutput) -> int:
    """Append one campaign's valid inputs to ``path``; returns count written."""
    records = [
        {
            "subject": output.subject,
            "tool": output.tool,
            "seed": output.seed,
            "input": text,
        }
        for text in output.valid_inputs
    ]
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, ensure_ascii=True) + "\n")
    return len(records)


def iter_corpus(
    path: PathLike,
    subject: Optional[str] = None,
    tool: Optional[str] = None,
) -> Iterator[str]:
    """Yield stored inputs, optionally filtered by subject and tool.

    Malformed lines are skipped (a half-written trailing record after an
    interrupted campaign must not poison the rest of the corpus).
    """
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict) or "input" not in record:
                continue
            if subject is not None and record.get("subject") != subject:
                continue
            if tool is not None and record.get("tool") != tool:
                continue
            yield record["input"]


def load_corpus(
    path: PathLike,
    subject: Optional[str] = None,
    tool: Optional[str] = None,
) -> List[str]:
    """All stored inputs matching the filters, in file order."""
    return list(iter_corpus(path, subject=subject, tool=tool))


def revalidate(subject_name: str, inputs: Iterable[str]) -> List[str]:
    """Re-run stored inputs and keep only the still-valid ones.

    The paper re-checks exit codes when evaluating stored tool outputs;
    this is the same safeguard for corpora that may predate subject
    changes.
    """
    from repro.subjects.registry import load_subject

    subject = load_subject(subject_name)
    return [text for text in inputs if subject.accepts(text)]
