"""Token extraction: which inventory tokens appear in a generated input?

The extractors tokenize with the *subjects' own lexers* where the subject
has one (tinyC, mjs) so that token classification matches the program under
test rather than a regex approximation; ini/csv/json use small dedicated
scanners mirroring their parsers.  Inputs are expected to be valid for the
subject; invalid inputs yield a best-effort (possibly partial) token set.
"""

from __future__ import annotations

from typing import Callable, Dict, Set

from repro.runtime.errors import SubjectError
from repro.runtime.stream import InputStream
from repro.eval.tokens import MJS_BUILTIN_NAME_TOKENS


def extract_tokens(subject_name: str, text: str) -> Set[str]:
    """Inventory-token names appearing in ``text`` for ``subject_name``."""
    try:
        extractor = _EXTRACTORS[subject_name]
    except KeyError:
        known = ", ".join(sorted(_EXTRACTORS))
        raise KeyError(
            f"no token extractor for {subject_name!r}; known: {known}"
        ) from None
    try:
        return extractor(text)
    except SubjectError:
        return set()


# ---------------------------------------------------------------------- #
# ini
# ---------------------------------------------------------------------- #


def _extract_ini(text: str) -> Set[str]:
    found: Set[str] = set()
    for line in text.split("\n"):
        stripped = line.strip(" \t")
        if not stripped:
            continue
        if stripped.startswith(";"):
            found.add(";")
            continue
        if stripped.startswith("#"):
            continue
        if stripped.startswith("["):
            found.add("[")
            closing = stripped.find("]")
            if closing >= 0:
                found.add("]")
                if stripped[1:closing].strip(" \t"):
                    found.add("name")
            continue
        separator = min(
            (pos for pos in (stripped.find("="), stripped.find(":")) if pos >= 0),
            default=-1,
        )
        if separator >= 0:
            if stripped[separator] == "=":
                found.add("=")
            if stripped[:separator].strip(" \t") or stripped[separator + 1 :].strip(" \t"):
                found.add("name")
            if ";" in stripped[separator + 1 :]:
                found.add(";")
    return found


# ---------------------------------------------------------------------- #
# csv
# ---------------------------------------------------------------------- #


def _extract_csv(text: str) -> Set[str]:
    found: Set[str] = set()
    in_quotes = False
    field_has_content = False
    for char in text:
        if in_quotes:
            if char == '"':
                in_quotes = False
            else:
                field_has_content = True
            continue
        if char == '"':
            in_quotes = True
            field_has_content = True  # a quoted field is a field
        elif char == ",":
            found.add(",")
            if field_has_content:
                found.add("field")
            field_has_content = False
        elif char in "\n\r":
            if field_has_content:
                found.add("field")
            field_has_content = False
        else:
            field_has_content = True
    if field_has_content:
        found.add("field")
    return found


# ---------------------------------------------------------------------- #
# json
# ---------------------------------------------------------------------- #

_JSON_PUNCT = "{}[]:,"


def _extract_json(text: str) -> Set[str]:
    found: Set[str] = set()
    position = 0
    while position < len(text):
        char = text[position]
        if char in _JSON_PUNCT:
            found.add(char)
            position += 1
        elif char == '"':
            found.add("string")
            position += 1
            while position < len(text):
                if text[position] == "\\":
                    position += 2
                    continue
                if text[position] == '"':
                    position += 1
                    break
                position += 1
        elif char == "-":
            found.add("-")
            position += 1
        elif char.isdigit():
            found.add("number")
            while position < len(text) and text[position] in "0123456789.eE+-":
                position += 1
        elif text.startswith("null", position):
            found.add("null")
            position += 4
        elif text.startswith("true", position):
            found.add("true")
            position += 4
        elif text.startswith("false", position):
            found.add("false")
            position += 5
        else:
            position += 1
    return found


# ---------------------------------------------------------------------- #
# tinyc — reuse the subject's own lexer
# ---------------------------------------------------------------------- #


def _extract_tinyc(text: str) -> Set[str]:
    from repro.subjects.tinyc import Sym, TinyCLexer

    names = {
        Sym.LESS: "<",
        Sym.PLUS: "+",
        Sym.MINUS: "-",
        Sym.SEMI: ";",
        Sym.EQUAL: "=",
        Sym.LBRA: "{",
        Sym.RBRA: "}",
        Sym.LPAR: "(",
        Sym.RPAR: ")",
        Sym.ID: "identifier",
        Sym.INT: "number",
        Sym.IF: "if",
        Sym.DO: "do",
        Sym.ELSE: "else",
        Sym.WHILE: "while",
    }
    found: Set[str] = set()
    lexer = TinyCLexer(InputStream(text))
    while lexer.token.sym is not Sym.EOI:
        name = names.get(lexer.token.sym)
        if name is not None:
            found.add(name)
        lexer.next_sym()
    return found


# ---------------------------------------------------------------------- #
# mjs — reuse the subject's own lexer
# ---------------------------------------------------------------------- #


def _extract_mjs(text: str) -> Set[str]:
    from repro.subjects.mjs.lexer import MjsLexer
    from repro.subjects.mjs.tokens import TokKind

    found: Set[str] = set()
    lexer = MjsLexer(InputStream(text))
    while True:
        token = lexer.next_token()
        if token.nl_before:
            found.add("newline")
        if token.kind is TokKind.EOF:
            break
        if token.kind is TokKind.PUNCT or token.kind is TokKind.KEYWORD:
            found.add(token.text)
        elif token.kind is TokKind.NUMBER:
            found.add("number")
        elif token.kind is TokKind.STRING:
            found.add("string")
        elif token.kind is TokKind.IDENT:
            if token.text in MJS_BUILTIN_NAME_TOKENS:
                found.add(token.text)
            else:
                found.add("identifier")
    return found


_EXTRACTORS: Dict[str, Callable[[str], Set[str]]] = {
    "ini": _extract_ini,
    "csv": _extract_csv,
    "json": _extract_json,
    "tinyc": _extract_tinyc,
    "mjs": _extract_mjs,
}
