"""Campaign plumbing: run one tool on one subject under a budget.

The paper runs every tool for 48 hours per subject, three repetitions, and
reports the best run.  Here budgets are execution counts (see DESIGN.md §2)
and repetitions vary the seed; :func:`best_of` picks the best repetition by
a caller-supplied metric, mirroring the paper's "we report the best run".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.afl import AFLConfig, AFLFuzzer
from repro.baselines.klee import KleeConfig, KleeExplorer
from repro.baselines.rand import RandomConfig, RandomFuzzer
from repro.baselines.driller import DrillerConfig, DrillerFuzzer
from repro.baselines.steelix import SteelixConfig, SteelixFuzzer
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.subjects.registry import load_subject

#: Tool names accepted by :func:`run_campaign`.  "steelix" (AFL +
#: comparison progress) and "driller" (AFL + symbolic stints) are the §6.2
#: related-work baselines, not part of the paper's evaluation grid.
TOOLS: Tuple[str, ...] = ("pfuzzer", "afl", "klee", "random", "steelix", "driller")


@dataclass
class ToolOutput:
    """Normalised campaign output, whichever tool produced it."""

    tool: str
    subject: str
    seed: int
    valid_inputs: List[str] = field(default_factory=list)
    executions: int = 0
    wall_time: float = 0.0


def run_campaign(
    tool: str,
    subject_name: str,
    budget: int,
    seed: int = 0,
) -> ToolOutput:
    """Run ``tool`` on ``subject_name`` with an execution ``budget``."""
    subject = load_subject(subject_name)
    if tool == "pfuzzer":
        result = PFuzzer(subject, FuzzerConfig(seed=seed, max_executions=budget)).run()
        valid = list(result.valid_inputs)
        executions = result.executions
        wall = result.wall_time
    elif tool == "afl":
        outcome = AFLFuzzer(subject, AFLConfig(seed=seed, max_executions=budget)).run()
        valid = list(outcome.valid_inputs)
        executions = outcome.executions
        wall = outcome.wall_time
    elif tool == "klee":
        outcome = KleeExplorer(subject, KleeConfig(seed=seed, max_executions=budget)).run()
        valid = list(outcome.valid_inputs)
        executions = outcome.executions
        wall = outcome.wall_time
    elif tool == "random":
        outcome = RandomFuzzer(subject, RandomConfig(seed=seed, max_executions=budget)).run()
        valid = list(outcome.valid_inputs)
        executions = outcome.executions
        wall = outcome.wall_time
    elif tool == "steelix":
        outcome = SteelixFuzzer(
            subject, SteelixConfig(seed=seed, max_executions=budget)
        ).run()
        valid = list(outcome.valid_inputs)
        executions = outcome.executions
        wall = outcome.wall_time
    elif tool == "driller":
        outcome = DrillerFuzzer(
            subject, DrillerConfig(seed=seed, max_executions=budget)
        ).run()
        valid = list(outcome.valid_inputs)
        executions = outcome.executions
        wall = outcome.wall_time
    else:
        raise ValueError(f"unknown tool {tool!r}; known tools: {', '.join(TOOLS)}")
    return ToolOutput(
        tool=tool,
        subject=subject_name,
        seed=seed,
        valid_inputs=valid,
        executions=executions,
        wall_time=wall,
    )


def best_of(
    tool: str,
    subject_name: str,
    budget: int,
    metric: Callable[[ToolOutput], float],
    repetitions: int = 3,
    base_seed: int = 0,
) -> ToolOutput:
    """Best of N repetitions by ``metric`` (paper: "we report the best run")."""
    outputs = [
        run_campaign(tool, subject_name, budget, seed=base_seed + repetition)
        for repetition in range(repetitions)
    ]
    return max(outputs, key=metric)


def run_campaigns(
    subjects: Sequence[str],
    tools: Sequence[str],
    budgets: Optional[Dict[str, int]] = None,
    default_budget: int = 2_000,
    seed: int = 0,
) -> Dict[Tuple[str, str], ToolOutput]:
    """Run every (subject, tool) pair once; key the results by the pair."""
    results: Dict[Tuple[str, str], ToolOutput] = {}
    for subject_name in subjects:
        budget = (budgets or {}).get(subject_name, default_budget)
        for tool in tools:
            results[(subject_name, tool)] = run_campaign(
                tool, subject_name, budget, seed=seed
            )
    return results
